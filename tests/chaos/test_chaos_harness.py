"""The ``repro.harness chaos`` fault-matrix harness."""

import json

import pytest

from repro.harness.chaos import (
    FAILING,
    FAULT_PROFILES,
    CellResult,
    _classify,
    profile_spec,
    render_matrix,
    run_backend_matrix,
    run_chaos_command,
    run_chaos_matrix,
)


def _run(**overrides):
    base = {
        "commits": 8,
        "aborts": 3,
        "cycles": 1000,
        "aborts_by_kind": {},
        "escalations": {},
        "series": {},
        "injected": {"coherence.drop": 2},
        "watchdog": {},
        "invariant_checks": 5,
        "serializable": True,
        "memory_ok": True,
        "error": "",
        "error_kind": "",
    }
    base.update(overrides)
    return base


BASELINE = _run(injected={})


def test_profile_specs_are_deterministic_and_distinct():
    assert profile_spec("storm", 1, "CGL") == profile_spec("storm", 1, "CGL")
    assert profile_spec("storm", 1, "CGL") != profile_spec("storm", 2, "CGL")
    assert profile_spec("storm", 1, "CGL") != profile_spec("storm", 1, "TL2")
    assert profile_spec("storm", 1, "CGL") != profile_spec("sched", 1, "CGL")
    with pytest.raises(KeyError):
        profile_spec("nope", 1, "CGL")


def test_every_profile_arms_at_least_one_site():
    for name in FAULT_PROFILES:
        assert profile_spec(name, 1, "FlexTM").any_faults, name


def test_classify_crash():
    cell = _classify(_run(error="ZeroDivisionError: boom", error_kind="crash"),
                     BASELINE, 8)
    assert cell.classification == "crash"
    assert not cell.ok


def test_classify_diagnosed_on_repro_error():
    cell = _classify(
        _run(error="InvariantViolation: [cst-symmetry] ...", error_kind="repro"),
        BASELINE, 8,
    )
    assert cell.classification == "diagnosed"
    assert cell.ok


def test_classify_wedged_on_commit_shortfall():
    cell = _classify(_run(commits=5), BASELINE, 8)
    assert cell.classification == "wedged"
    assert not cell.ok


def test_classify_silent_corruption_on_memory_divergence():
    cell = _classify(_run(memory_ok=False), BASELINE, 8)
    assert cell.classification == "silent-corruption"
    assert not cell.ok


def test_classify_clean_when_nothing_fired():
    cell = _classify(_run(injected={}), BASELINE, 8)
    assert cell.classification == "clean"


def test_classify_masked_vs_degraded():
    masked = _classify(_run(), BASELINE, 8)
    assert masked.classification == "masked"
    degraded = _classify(_run(aborts=7), BASELINE, 8)
    assert degraded.classification == "degraded"
    assert masked.ok and degraded.ok


def test_failing_set_is_locked():
    assert set(FAILING) == {"crash", "wedged", "silent-corruption"}


def test_backend_matrix_runs_and_classifies():
    rows = run_backend_matrix(
        "CGL", ["sched"], seed=2, threads=2, txns=3, cycle_limit=50_000_000
    )
    assert [cell.profile for cell in rows] == ["sched"]
    assert all(cell.ok for cell in rows)
    assert rows[0].backend == "CGL"
    assert rows[0].commits == 6


def test_backend_matrix_is_deterministic():
    kwargs = dict(seed=4, threads=2, txns=3, cycle_limit=50_000_000)
    first = run_backend_matrix("FlexTM", ["coherence"], **kwargs)
    second = run_backend_matrix("FlexTM", ["coherence"], **kwargs)
    assert [c.to_json() for c in first] == [c.to_json() for c in second]


def test_matrix_order_independent_of_jobs():
    serial = run_chaos_matrix(["CGL", "TL2"], ["sched"], 2, jobs=1,
                              threads=2, txns=2)
    parallel = run_chaos_matrix(["CGL", "TL2"], ["sched"], 2, jobs=2,
                                threads=2, txns=2)
    assert [c.to_json() for c in serial] == [c.to_json() for c in parallel]


def test_render_matrix_marks_failures():
    rows = [
        CellResult(backend="CGL", profile="aou", classification="masked",
                   injected={"aou.drop": 1}),
        CellResult(backend="TL2", profile="storm", classification="wedged",
                   injected={}, detail="3/8 commits"),
    ]
    text = render_matrix(rows)
    assert "masked" in text
    assert "FAIL" in text
    assert "3/8 commits" in text


def test_cli_smoke_and_report(tmp_path, capsys):
    report = tmp_path / "chaos.json"
    code = run_chaos_command([
        "--backends", "CGL", "--profiles", "sched", "--seed", "2",
        "--threads", "2", "--txns", "3", "--report", str(report), "--quiet",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "chaos:" in out
    document = json.loads(report.read_text())
    assert document["ok"] is True
    assert document["seed"] == 2
    assert len(document["cells"]) == 1
    assert document["cells"][0]["classification"] not in FAILING


def test_cli_rejects_unknown_names():
    with pytest.raises(SystemExit):
        run_chaos_command(["--backends", "Nope", "--quiet"])
    with pytest.raises(SystemExit):
        run_chaos_command(["--profiles", "Nope", "--quiet"])
