"""The runtime invariant checker."""

import pytest

from repro.chaos import InvariantChecker
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.errors import InvariantViolation
from repro.params import small_test_params


@pytest.fixture
def machine():
    return FlexTMMachine(small_test_params(4))


def test_fresh_machine_passes_sweep(machine):
    checker = InvariantChecker()
    checker.check_machine(machine)
    assert checker.sweeps == 1


def test_sweep_passes_after_plain_traffic(machine):
    checker = InvariantChecker()
    machine.set_invariants(checker)
    base = machine.allocate_words(32, line_aligned=True)
    for proc in range(4):
        machine.store(proc, base + 8 * proc, proc)
        machine.load(proc, base)
    checker.check_machine(machine)


@pytest.mark.parametrize(
    "old,new",
    [
        (TxStatus.INVALID, TxStatus.ACTIVE),
        (TxStatus.ACTIVE, TxStatus.COMMITTED),
        (TxStatus.ACTIVE, TxStatus.ABORTED),
        (TxStatus.ACTIVE, TxStatus.COMMITTING),
        (TxStatus.COMMITTING, TxStatus.COMMITTED),
        (TxStatus.ABORTED, TxStatus.ACTIVE),
    ],
)
def test_legal_tsw_transitions(old, new):
    InvariantChecker().on_tsw_write(0x100, int(old), int(new))


@pytest.mark.parametrize(
    "old,new",
    [
        (TxStatus.COMMITTED, TxStatus.ABORTED),
        (TxStatus.ABORTED, TxStatus.COMMITTED),
        (TxStatus.INVALID, TxStatus.COMMITTED),
        (TxStatus.COMMITTING, TxStatus.ACTIVE),
    ],
)
def test_illegal_tsw_transitions_raise(old, new):
    with pytest.raises(InvariantViolation) as info:
        InvariantChecker().on_tsw_write(0x100, int(old), int(new))
    assert info.value.invariant == "tsw-legality"


def test_same_value_tsw_rewrite_tolerated():
    InvariantChecker().on_tsw_write(0x100, int(TxStatus.ACTIVE), int(TxStatus.ACTIVE))


def test_non_status_tsw_value_raises():
    with pytest.raises(InvariantViolation) as info:
        InvariantChecker().on_tsw_write(0x100, int(TxStatus.ACTIVE), 0xDEAD)
    assert info.value.invariant == "tsw-legality"
    assert "0xdead" in str(info.value) or "57005" in str(info.value)


def test_idle_hygiene_catches_stale_cst(machine):
    checker = InvariantChecker()
    # Corrupt an idle core: set a CST bit with no running transaction.
    machine.processors[2].csts.r_w.set(1)
    with pytest.raises(InvariantViolation) as info:
        checker.check_machine(machine)
    assert info.value.invariant == "idle-hygiene"
    assert "proc 2" in info.value.detail


def test_idle_hygiene_catches_stale_overlay(machine):
    machine.processors[1].overlay[0x40] = 99
    with pytest.raises(InvariantViolation) as info:
        InvariantChecker().check_machine(machine)
    assert info.value.invariant == "idle-hygiene"


def test_owner_listing_catches_unlisted_exclusive(machine):
    # Give proc 0 an exclusive copy the directory knows about, then
    # wipe the directory entry behind its back.
    base = machine.allocate_words(8, line_aligned=True)
    machine.store(0, base, 1)
    line = base // machine.params.line_bytes
    assert machine.directory._entries.pop(line, None) is not None
    with pytest.raises(InvariantViolation) as info:
        InvariantChecker().check_machine(machine)
    assert info.value.invariant == "owner-listing"


def test_violation_is_structured():
    error = InvariantViolation("cst-symmetry", "proc 0 vs proc 1")
    assert error.invariant == "cst-symmetry"
    assert error.detail == "proc 0 vs proc 1"
    assert "cst-symmetry" in str(error)
