"""The livelock watchdog's escalation ladder."""

import types

import pytest

from repro.chaos import LivelockWatchdog, WatchdogSpec
from repro.core.descriptor import TransactionDescriptor
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.params import small_test_params
from repro.runtime.contention import ConflictManager


class _Thread:
    def __init__(self):
        self.commits = 0


class _Scheduler:
    """The slice of the scheduler interface observe() consumes."""

    def __init__(self, machine, nthreads=2):
        self.machine = machine
        self.slots = [
            types.SimpleNamespace(thread=_Thread()) for _ in range(nthreads)
        ]


@pytest.fixture
def machine():
    return FlexTMMachine(small_test_params(4))


def _watchdog(machine, **spec_kw):
    spec = WatchdogSpec(window_cycles=1_000, **spec_kw)
    watchdog = LivelockWatchdog(spec)
    backend = types.SimpleNamespace(manager=ConflictManager(), machine=machine)
    watchdog.attach(machine, backend)
    return watchdog


def _active_descriptor(machine, thread_id, wounds=0):
    tsw = machine.allocate_words(1)
    machine.memory.write(tsw, TxStatus.ACTIVE)
    descriptor = TransactionDescriptor(thread_id=thread_id, tsw_address=tsw)
    descriptor.wounds_inflicted = wounds
    machine.register_descriptor(descriptor)
    return descriptor


def test_no_escalation_while_commits_flow(machine):
    watchdog = _watchdog(machine)
    scheduler = _Scheduler(machine)
    for step in range(5):
        scheduler.slots[0].thread.commits += 1
        machine.processors[0].clock.advance(5_000)
        watchdog.observe(scheduler)
    assert watchdog.escalations == 0
    assert watchdog.manager.boost == 1


def test_backoff_boost_then_forced_abort(machine):
    watchdog = _watchdog(machine, backoff_growth=2, max_boost=8, force_abort_after=2)
    scheduler = _Scheduler(machine)
    victim = _active_descriptor(machine, thread_id=0, wounds=3)
    bystander = _active_descriptor(machine, thread_id=1, wounds=1)
    clock = machine.processors[0].clock
    watchdog.observe(scheduler)  # primes the commit baseline
    # Levels 1 and 2: manager back-off boost, no forced aborts.
    clock.advance(1_000)
    watchdog.observe(scheduler)
    assert (watchdog.escalations, watchdog.manager.boost) == (1, 2)
    clock.advance(2_000)  # window widens with the level
    watchdog.observe(scheduler)
    assert (watchdog.escalations, watchdog.manager.boost) == (2, 4)
    assert watchdog.forced_aborts == 0
    # Level 3: the ladder runs out of patience and wounds the most
    # prolific ACTIVE wounder.
    clock.advance(3_000)
    watchdog.observe(scheduler)
    assert watchdog.forced_aborts == 1
    assert machine.read_status(victim) is TxStatus.ABORTED
    assert victim.wound_kind == "watchdog"
    assert victim.wounded_by == -1
    assert machine.read_status(bystander) is TxStatus.ACTIVE
    assert machine.stats.counter("watchdog.forced_aborts").value == 1


def test_forced_abort_tiebreak_prefers_lowest_thread(machine):
    watchdog = _watchdog(machine, force_abort_after=0)
    scheduler = _Scheduler(machine)
    low = _active_descriptor(machine, thread_id=0, wounds=2)
    high = _active_descriptor(machine, thread_id=3, wounds=2)
    watchdog.observe(scheduler)
    machine.processors[0].clock.advance(1_000)
    watchdog.observe(scheduler)
    assert machine.read_status(low) is TxStatus.ABORTED
    assert machine.read_status(high) is TxStatus.ACTIVE


def test_commit_deescalates_and_resets_boost(machine):
    watchdog = _watchdog(machine)
    scheduler = _Scheduler(machine)
    clock = machine.processors[0].clock
    watchdog.observe(scheduler)
    clock.advance(1_000)
    watchdog.observe(scheduler)
    assert watchdog.manager.boost == 2
    scheduler.slots[1].thread.commits += 1
    watchdog.observe(scheduler)
    assert watchdog.manager.boost == 1
    assert watchdog.recoveries == 1
    assert machine.stats.counter("watchdog.recoveries").value == 1
    # The ladder restarts from level zero after recovery.
    clock.advance(1_000)
    watchdog.observe(scheduler)
    assert watchdog.manager.boost == 2


def test_boost_is_bounded(machine):
    watchdog = _watchdog(machine, max_boost=4, force_abort_after=99)
    scheduler = _Scheduler(machine)
    clock = machine.processors[0].clock
    watchdog.observe(scheduler)
    for level in range(1, 8):
        clock.advance(1_000 * level)
        watchdog.observe(scheduler)
    assert watchdog.manager.boost == 4


def test_forced_abort_skips_resolved_transactions(machine):
    watchdog = _watchdog(machine, force_abort_after=0)
    scheduler = _Scheduler(machine)
    done = _active_descriptor(machine, thread_id=0, wounds=5)
    machine.memory.write(done.tsw_address, TxStatus.COMMITTED)
    watchdog.observe(scheduler)
    machine.processors[0].clock.advance(1_000)
    watchdog.observe(scheduler)
    assert watchdog.forced_aborts == 0
    assert machine.read_status(done) is TxStatus.COMMITTED
