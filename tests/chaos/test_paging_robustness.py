"""Paging and context-switch robustness under chaos.

Preemption storms and forced evictions are the two fault families that
stress the OS-facing machinery (Section 4.1/5 of the paper: unmap /
remap flows, suspend / resume with summary signatures, migration
abort-and-restart).  These tests pin the *attribution* contract: every
migration-policy abort is counted once in ``ctxsw.migration_aborts``
and lands under exactly the ``migration`` kind in
``RunResult.aborts_by_kind`` — no double counting, no leakage into
``unattributed``.
"""

import itertools

import pytest

from repro.chaos import ChaosEngine, ChaosSpec, InvariantChecker
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.core.paging import PAGE_BYTES, remap_page, unmap_page
from repro.harness.chaos import FAULT_PROFILES, _bodies
from repro.params import small_test_params
from repro.resilience import DegradeSpec, ResilienceController
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.sim.rng import DeterministicRng
from tests.helpers import begin_hardware_transaction

#: The chaos harness's preemption-storm and forced-eviction profiles.
PREEMPTION_STORM = ChaosSpec(seed=5, **FAULT_PROFILES["sched"])
FORCED_EVICTION = ChaosSpec(seed=5, **FAULT_PROFILES["overflow"])

THREADS = 4
TXNS = 6


def _oversubscribed_run(chaos, degrade=None):
    """Finite contended workload, 4 threads on 2 cores, chaos armed.

    The workload retires (txns per thread) so the run never truncates
    at a cycle budget — every counted migration abort must also have
    been *delivered* by the time the result is built, which is what
    makes exact-attribution assertions meaningful.
    """
    machine = FlexTMMachine(small_test_params(4))
    machine.set_chaos(ChaosEngine(chaos, stats=machine.stats))
    machine.set_invariants(InvariantChecker())
    if degrade is not None:
        machine.set_resilience(ResilienceController(degrade))
    backend = FlexTMRuntime(machine, mode=ConflictMode.EAGER)
    if degrade is not None:
        machine.resilience.bind_manager(backend.manager)
    line = machine.params.line_bytes
    cells = [machine.allocate(line, line_aligned=True) for _ in range(6)]
    for index, cell in enumerate(cells):
        machine.memory.write(cell, index)
    unique = itertools.count(1000)
    threads = [
        TxThread(i, backend, _bodies(cells, DeterministicRng(7 * 7919 + i), TXNS, unique))
        for i in range(THREADS)
    ]
    # Two cores for four threads: every preemption can migrate.
    return Scheduler(machine, threads, processors=[0, 1]).run(
        cycle_limit=100_000_000
    )


def _assert_exact_migration_attribution(result):
    counted = result.stats.get("ctxsw.migration_aborts", 0)
    attributed = result.aborts_by_kind.get("migration", 0)
    assert attributed == counted, result.aborts_by_kind


def test_preemption_storm_migration_attribution_is_exact():
    result = _oversubscribed_run(PREEMPTION_STORM)
    assert result.commits == THREADS * TXNS
    assert result.stats.get("ctxsw.switches", 0) > 0
    # The storm must actually migrate transactions for this to bite.
    assert result.stats.get("ctxsw.migration_aborts", 0) > 0
    _assert_exact_migration_attribution(result)


def test_forced_eviction_migration_attribution_is_exact():
    result = _oversubscribed_run(FORCED_EVICTION)
    assert result.commits == THREADS * TXNS
    # Evictions alone never masquerade as migration aborts.
    _assert_exact_migration_attribution(result)


def test_preemption_storm_with_ladder_armed_still_attributes_exactly():
    # The pinned serial holder is exempt from preemption; everyone
    # else's migration aborts must still be counted exactly once.
    result = _oversubscribed_run(
        PREEMPTION_STORM,
        degrade=DegradeSpec(boost_after=1, eager_after=2, irrevocable_after=3),
    )
    assert result.commits == THREADS * TXNS
    _assert_exact_migration_attribution(result)


@pytest.fixture
def m():
    machine = FlexTMMachine(small_test_params(4))
    machine.set_chaos(ChaosEngine(FORCED_EVICTION, stats=machine.stats))
    machine.set_invariants(InvariantChecker())
    return machine


def _page_base(m):
    base = m.allocate(2 * PAGE_BYTES, line_aligned=True)
    return (base + PAGE_BYTES - 1) & ~(PAGE_BYTES - 1)


def test_unmap_remap_commit_survives_chaos(m):
    # The end-to-end paging flow of tests/core/test_paging.py, re-run
    # with the forced-eviction chaos engine and invariants armed: the
    # OT spill path must stay correct when walks fail underneath it.
    base = _page_base(m)
    new_base = base + PAGE_BYTES
    begin_hardware_transaction(m, 0)
    m.tstore(0, base, 41)
    m.tstore(0, base + 64, 42)
    moved = unmap_page(m, base)
    assert moved == 2
    remap_page(m, base, new_base)
    proc = m.processors[0]
    assert proc.ot.lookup(m.amap.line_of(new_base))
    assert m.cas_commit(0).success
    assert m.memory.read(new_base) == 41
    assert m.memory.read(new_base + 64) == 42


def test_unmap_under_chaos_preserves_speculative_values(m):
    base = _page_base(m)
    begin_hardware_transaction(m, 0)
    m.tstore(0, base, 7)
    unmap_page(m, base)
    proc = m.processors[0]
    assert proc.overlay[base] == 7
    assert proc.ot.active
