"""The deterministic fault-injection engine."""

import dataclasses
import pickle

import pytest

from repro.chaos import CHAOS_RETRY_CYCLES, ChaosEngine, ChaosSpec

#: Every fault site armed; used by the determinism tests.
STORM = ChaosSpec(
    seed=7,
    coh_drop=0.2, coh_delay=0.2, coh_dup=0.2,
    alert_drop=0.2, alert_spurious=0.2,
    sig_false_positive=0.2, sig_false_negative=0.2,
    ot_walk_fail=0.2, l1_evict=0.2, sched_preempt=0.2,
)


def _drive(engine: ChaosEngine):
    """A fixed call sequence exercising every injection site."""
    for line in range(0, 64 * 64, 64):
        engine.coherence_extra_cycles(line)
        engine.duplicate_response(line)
        engine.alert_lost(line)
        engine.spurious_alert()
        engine.sig_member("rsig", line, bool(line & 64))
        engine.sig_member("wsig", line, not (line & 64))
        engine.ot_walk_failed(line)
        if engine.l1_pressure():
            engine.pick(4)
        engine.forced_preempt()
    return engine


def test_default_spec_has_no_faults():
    assert not ChaosSpec().any_faults
    assert STORM.any_faults


def test_zero_spec_injects_nothing():
    engine = _drive(ChaosEngine(ChaosSpec(seed=3)))
    assert engine.total_injected == 0
    assert engine.log == []
    assert not engine.injected


def test_zero_probability_rolls_draw_no_stream_state():
    # A zero-probability site must not consume RNG state: arming only
    # coherence faults yields the same coherence stream whether or not
    # the other sites are consulted in between.
    spec = ChaosSpec(seed=5, coh_drop=0.3)
    lines = list(range(0, 64 * 32, 64))
    plain = ChaosEngine(spec)
    first = [plain.coherence_extra_cycles(line) for line in lines]
    mixed = ChaosEngine(spec)
    second = []
    for line in lines:
        mixed.alert_lost(line)      # zero prob: no draw
        mixed.forced_preempt()      # zero prob: no draw
        second.append(mixed.coherence_extra_cycles(line))
    assert first == second


def test_same_spec_same_log():
    assert _drive(ChaosEngine(STORM)).log == _drive(ChaosEngine(STORM)).log
    assert (
        _drive(ChaosEngine(STORM)).injected == _drive(ChaosEngine(STORM)).injected
    )


def test_different_seed_different_log():
    other = dataclasses.replace(STORM, seed=8)
    assert _drive(ChaosEngine(STORM)).log != _drive(ChaosEngine(other)).log


def test_consecutive_drop_bound():
    engine = ChaosEngine(ChaosSpec(seed=1, coh_drop=1.0, max_consecutive_drops=3))
    # Certain drops still terminate: bounded NACK/retry latency.
    assert engine.coherence_extra_cycles(0) == 3 * CHAOS_RETRY_CYCLES
    assert engine.injected["coherence.drop"] == 3


def test_delay_charges_spec_cycles():
    engine = ChaosEngine(ChaosSpec(seed=1, coh_delay=1.0, coh_delay_cycles=77))
    assert engine.coherence_extra_cycles(0x40) == 77
    assert engine.log[-1] == ("coherence", "delay", 0x40)


def test_sig_false_positive_only_fakes_hits():
    engine = ChaosEngine(ChaosSpec(seed=1, sig_false_positive=1.0))
    assert engine.sig_member("rsig", 0, False) is True
    # A real hit is never flipped by the false-positive knob.
    assert engine.sig_member("rsig", 0, True) is True
    assert engine.injected["signature.false_positive.rsig"] == 1


def test_sig_false_negative_only_hides_hits():
    engine = ChaosEngine(ChaosSpec(seed=1, sig_false_negative=1.0))
    assert engine.sig_member("wsig", 0, True) is False
    assert engine.sig_member("wsig", 0, False) is False
    assert engine.injected["signature.false_negative.wsig"] == 1


def test_pick_is_in_range():
    engine = ChaosEngine(ChaosSpec(seed=9, l1_evict=1.0))
    for _ in range(50):
        assert engine.l1_pressure()
        assert 0 <= engine.pick(3) < 3


def test_spec_is_frozen_and_picklable():
    with pytest.raises(dataclasses.FrozenInstanceError):
        STORM.seed = 1  # type: ignore[misc]
    assert pickle.loads(pickle.dumps(STORM)) == STORM
