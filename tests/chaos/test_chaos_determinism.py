"""Determinism guarantees of the chaos layer.

Two properties are locked here:

* same ``(seed, ChaosSpec)`` -> bit-identical runs (same commits,
  aborts, cycles, per-thread numbers, stats — including the chaos
  injection counters);
* an all-zero spec (engine installed, nothing armed) is bit-identical
  to running with no engine at all, for every TM backend: the hooks
  are free when the dice are cold.
"""

import pytest

from repro.chaos import ChaosSpec, WatchdogSpec
from repro.harness.runner import SYSTEMS, ExperimentConfig, run_experiment
from repro.params import small_test_params

FAULTY = ChaosSpec(
    seed=11,
    coh_drop=0.02, coh_delay=0.02, coh_dup=0.01,
    alert_drop=0.05, alert_spurious=0.002,
    ot_walk_fail=0.05, l1_evict=0.01, sched_preempt=0.001,
)


def _config(system, chaos=None, invariants=False, watchdog=None):
    return ExperimentConfig(
        workload="HashTable",
        system=system,
        threads=2,
        cycle_limit=40_000,
        seed=9,
        params=small_test_params(4),
        chaos=chaos,
        invariants=invariants,
        watchdog=watchdog,
    )


def test_same_seed_same_spec_bit_identical():
    first = run_experiment(_config("FlexTM", chaos=FAULTY, invariants=True))
    second = run_experiment(_config("FlexTM", chaos=FAULTY, invariants=True))
    assert first == second
    assert any(key.startswith("chaos.") for key in first.stats)


def test_different_chaos_seed_diverges():
    import dataclasses

    first = run_experiment(_config("FlexTM", chaos=FAULTY))
    second = run_experiment(
        _config("FlexTM", chaos=dataclasses.replace(FAULTY, seed=12))
    )
    injections = lambda result: {
        key: value for key, value in result.stats.items() if key.startswith("chaos.")
    }
    assert injections(first) != injections(second)


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_zero_spec_identical_to_no_engine(system):
    bare = run_experiment(_config(system))
    armed = run_experiment(_config(system, chaos=ChaosSpec(seed=99)))
    # The armed run carries no chaos counters (nothing fired) and must
    # otherwise be indistinguishable.
    assert not any(key.startswith("chaos.") for key in armed.stats)
    assert armed == bare


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_invariants_and_watchdog_do_not_change_numbers(system):
    bare = run_experiment(_config(system))
    checked = run_experiment(
        _config(system, invariants=True, watchdog=WatchdogSpec())
    )
    # Observation must be free: the checker asserts and the watchdog
    # never fires on a healthy run (its boost stays 1, preserving the
    # contention manager's RNG stream).
    assert {k: v for k, v in checked.stats.items() if not k.startswith("watchdog.")} == bare.stats
    assert (checked.cycles, checked.commits, checked.aborts) == (
        bare.cycles, bare.commits, bare.aborts,
    )
    assert checked.per_thread == bare.per_thread
