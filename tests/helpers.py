"""Shared test utilities."""

from __future__ import annotations

from repro.core.descriptor import ConflictMode, TransactionDescriptor
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus


def drive(machine: FlexTMMachine, proc_id: int, generator):
    """Synchronously execute a generator of low-level ops on one core.

    A miniature version of the scheduler's op engine for unit tests
    that want to run a single thread to completion.  Returns the
    generator's return value.
    """
    result = None
    try:
        while True:
            op = generator.send(result)
            result = execute_op(machine, proc_id, op)
    except StopIteration as stop:
        return stop.value


def execute_op(machine: FlexTMMachine, proc_id: int, op):
    kind = op[0]
    clock = machine.processors[proc_id].clock
    if kind == "work":
        clock.advance(max(1, op[1]))
        return None
    dispatch = {
        "tload": lambda: machine.tload(proc_id, op[1]),
        "tstore": lambda: machine.tstore(proc_id, op[1], op[2]),
        "load": lambda: machine.load(proc_id, op[1]),
        "store": lambda: machine.store(proc_id, op[1], op[2]),
        "cas": lambda: machine.cas(proc_id, op[1], op[2], op[3]),
        "cas_commit": lambda: machine.cas_commit(proc_id),
        "aload": lambda: machine.aload(proc_id, op[1]),
    }
    result = dispatch[kind]()
    clock.advance(max(1, result.cycles))
    return result


def begin_hardware_transaction(
    machine: FlexTMMachine, proc_id: int, mode: ConflictMode = ConflictMode.LAZY
) -> TransactionDescriptor:
    """Minimal transaction bring-up without the full runtime."""
    tsw = machine.allocate(machine.params.line_bytes, line_aligned=True)
    descriptor = TransactionDescriptor(
        thread_id=proc_id, tsw_address=tsw, mode=mode, last_processor=proc_id
    )
    machine.memory.write(tsw, TxStatus.ACTIVE)
    machine.register_descriptor(descriptor)
    machine.processors[proc_id].begin_transaction(descriptor)
    machine.aload(proc_id, tsw)
    return descriptor
