"""Public API surface: every documented export resolves."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.sim",
    "repro.signatures",
    "repro.memory",
    "repro.coherence",
    "repro.core",
    "repro.runtime",
    "repro.stm",
    "repro.workloads",
    "repro.obs",
    "repro.tools",
    "repro.verify",
    "repro.area",
    "repro.harness",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name, None) is not None, f"{module_name}.{name}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_every_public_class_documented():
    """Spot-check that exported classes carry docstrings."""
    import repro.core as core
    import repro.runtime as runtime
    import repro.stm as stm

    for module in (core, runtime, stm):
        for name in module.__all__:
            obj = getattr(module, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"
