"""BugBench programs and the Table 4(b) bands."""

import pytest

from repro.tools.bugbench import BUGBENCH, run_program
from repro.tools.discover import DiscoverInstrumenter
from repro.harness.table4 import PUBLISHED_TABLE4, run_table4


def test_all_programs_detect_their_bug():
    for name, program in BUGBENCH.items():
        report = run_program(program)
        assert report.bugs_detected > 0, f"{name} missed its bug"


def test_runs_are_deterministic():
    report_a = run_program(BUGBENCH["BC-BO"], seed=7)
    report_b = run_program(BUGBENCH["BC-BO"], seed=7)
    assert report_a.cycles == report_b.cycles
    assert report_a.alerts == report_b.alerts


def test_slowdowns_land_in_paper_bands():
    """FlexWatcher: 5%-2.5x; within 40% of each published number."""
    results = run_table4()
    for name, data in results.items():
        published = PUBLISHED_TABLE4[name]["flexwatcher"]
        assert 1.0 <= data["flexwatcher"] < 3.5
        assert abs(data["flexwatcher"] - published) / published < 0.4, name


def test_discover_much_slower_than_flexwatcher():
    discover = DiscoverInstrumenter()
    for name, program in BUGBENCH.items():
        slowdown = discover.slowdown(program)
        if slowdown is None:
            assert PUBLISHED_TABLE4[name]["discover"] is None
            continue
        report = run_program(program)
        assert slowdown > 10 * report.slowdown, name


def test_discover_matches_published_order_of_magnitude():
    discover = DiscoverInstrumenter()
    for name, program in BUGBENCH.items():
        published = PUBLISHED_TABLE4[name]["discover"]
        modeled = discover.slowdown(program)
        if published is None:
            assert modeled is None
        else:
            assert abs(modeled - published) / published < 0.3, name


def test_unmonitored_run_has_no_alerts():
    report = run_program(BUGBENCH["BC-BO"], monitored=False)
    assert report.alerts == 0
    assert report.slowdown == pytest.approx(1.0, abs=0.01)
