"""FlexWatcher mechanics."""


from repro.tools.flexwatcher import (
    ACTION_CYCLES,
    HANDLER_CYCLES,
    FlexWatcher,
    WatchMode,
)


def test_inactive_watcher_costs_nothing_extra():
    watcher = FlexWatcher(WatchMode.BUFFER_OVERFLOW)
    watcher.watch(0x1000, 64)
    label = watcher.access(0x1000, is_write=True)
    assert label is None  # not activated
    assert watcher.alerts == 0


def test_bo_detects_pad_write():
    watcher = FlexWatcher(WatchMode.BUFFER_OVERFLOW)
    watcher.watch(0x1000, 64)
    watcher.activate()
    assert watcher.access(0x1008, is_write=True) == "buffer-overflow"
    assert watcher.bugs_detected == 1


def test_bo_ignores_reads_of_pads():
    """Pads are watched for *modification* only."""
    watcher = FlexWatcher(WatchMode.BUFFER_OVERFLOW)
    watcher.watch(0x1000, 64)
    watcher.activate()
    assert watcher.access(0x1000, is_write=False) is None
    assert watcher.alerts == 0


def test_unwatched_access_is_free():
    watcher = FlexWatcher(WatchMode.BUFFER_OVERFLOW)
    watcher.watch(0x1000, 64)
    watcher.activate()
    before = watcher.clock.now
    watcher.access(0x900000, is_write=True)
    assert watcher.clock.now == before + 1  # just the access cycle


def test_alert_costs_handler_cycles():
    watcher = FlexWatcher(WatchMode.BUFFER_OVERFLOW)
    watcher.watch(0x1000, 64)
    watcher.activate()
    before = watcher.clock.now
    watcher.access(0x1000, is_write=True)
    assert watcher.clock.now == before + 1 + HANDLER_CYCLES + ACTION_CYCLES


def test_iv_mode_is_precise():
    """AOU-based invariants never suffer signature aliasing."""
    watcher = FlexWatcher(WatchMode.INVARIANT)
    watcher.watch(0x2000, 8)
    watcher.activate()
    assert watcher.access(0x2000, is_write=False) == "invariant-violation"
    # Saturate the signatures; IV must still not false-alert.
    for address in range(0, 1 << 16, 64):
        watcher.rsig.insert(address >> 6)
    watcher.access(0x50000, is_write=False)
    assert watcher.false_alerts == 0


def test_ml_mode_tracks_timestamps_and_finds_stale():
    watcher = FlexWatcher(WatchMode.MEMORY_LEAK)
    watcher.watch(0x1000, 64)  # touched object
    watcher.watch(0x9000, 64)  # never touched -> leak candidate
    watcher.activate()
    watcher.clock.advance(10_000)
    assert watcher.access(0x1000, is_write=False) is None  # a touch, not a bug
    stale = watcher.stale_objects(horizon_cycles=5_000)
    assert 0x9000 >> 6 in stale
    assert 0x1000 >> 6 not in stale


def test_clear_deactivates():
    watcher = FlexWatcher(WatchMode.BUFFER_OVERFLOW)
    watcher.watch(0x1000, 64)
    watcher.activate()
    watcher.clear()
    assert watcher.access(0x1000, is_write=True) is None
