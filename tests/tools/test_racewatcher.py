"""RaceWatcher: CST-based data-race detection."""

import pytest

from repro.tools.racewatcher import RaceWatcher


def test_requires_two_threads():
    with pytest.raises(ValueError):
        RaceWatcher(1)


def test_write_read_race_detected():
    watcher = RaceWatcher(2)
    watcher.access(0, 0x1000, is_write=True)
    watcher.access(1, 0x1000, is_write=False)
    reports = watcher.sync(0)
    assert any(r.kind == "W-R" and r.confirmed for r in reports)
    assert watcher.racy_pairs() == {(0, 1)}


def test_write_write_race_detected():
    watcher = RaceWatcher(2)
    watcher.access(0, 0x2000, is_write=True)
    watcher.access(1, 0x2000, is_write=True)
    reports = watcher.sync(1)
    assert any(r.kind == "W-W" for r in reports)


def test_read_read_is_not_a_race():
    watcher = RaceWatcher(2)
    watcher.access(0, 0x3000, is_write=False)
    watcher.access(1, 0x3000, is_write=False)
    assert watcher.sync(0) == []
    assert watcher.sync(1) == []


def test_disjoint_accesses_are_clean():
    watcher = RaceWatcher(2)
    watcher.access(0, 0x1000, is_write=True)
    watcher.access(1, 0x9000, is_write=True)
    assert watcher.sync(0) == []


def test_synchronized_sharing_is_clean():
    """A sync between the write and the read establishes order."""
    watcher = RaceWatcher(2)
    watcher.access(0, 0x1000, is_write=True)
    watcher.sync(0)  # e.g. unlock
    watcher.sync(1)  # e.g. lock
    watcher.access(1, 0x1000, is_write=False)
    assert watcher.sync(1) == []
    assert watcher.racy_pairs() == set()


def test_race_report_names_the_line():
    watcher = RaceWatcher(2, line_bytes=64)
    watcher.access(0, 0x1008, is_write=True)
    watcher.access(1, 0x1030, is_write=False)  # same 64B line
    reports = watcher.sync(0)
    assert reports and reports[0].line_address == 0x1000 >> 6


def test_three_threads_pairwise_attribution():
    watcher = RaceWatcher(3)
    watcher.access(0, 0x1000, is_write=True)
    watcher.access(1, 0x1000, is_write=False)
    watcher.access(2, 0x5000, is_write=True)  # unrelated
    reports = watcher.sync(0)
    assert {(r.first_thread, r.second_thread) for r in reports} == {(0, 1)}


def test_aliasing_candidates_are_disambiguated():
    """Tiny signatures alias; the handler must filter them out.

    Addresses are drawn pseudo-randomly: H3 hashing is XOR-linear, so
    *structured* (constant-offset) address sets can systematically miss
    each other even in a saturated filter.
    """
    from repro.sim.rng import DeterministicRng

    rng = DeterministicRng(3)
    watcher = RaceWatcher(2, signature_bits=32, num_hashes=2)
    writes = {rng.randint(0, 1 << 24) & ~63 for _ in range(60)}
    reads = {rng.randint(1 << 25, 1 << 26) & ~63 for _ in range(60)}
    for address in writes:
        watcher.access(0, address, is_write=True)
    for address in reads:
        watcher.access(1, address, is_write=False)
    reports = watcher.sync(0)
    assert reports == []  # no true sharing (address ranges disjoint)
    assert watcher.false_candidates > 0  # but aliasing did fire
