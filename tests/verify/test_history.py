"""The serializability checker itself (unit level)."""

import pytest

from repro.verify.history import (
    HistoryRecorder,
    SerializabilityViolation,
    check_serializable,
)


def test_empty_history_is_serializable():
    assert check_serializable(HistoryRecorder()) == []


def test_serial_history_passes():
    recorder = HistoryRecorder()
    recorder.note_initial(0x10, 0)
    recorder.commit(0, reads={0x10: 0}, writes={0x10: 1})
    recorder.commit(1, reads={0x10: 1}, writes={0x10: 2})
    order = check_serializable(recorder)
    assert [txn.thread_id for txn in order] == [0, 1]


def test_read_from_thin_air_rejected():
    recorder = HistoryRecorder()
    recorder.note_initial(0x10, 0)
    recorder.commit(0, reads={0x10: 99}, writes={})
    with pytest.raises(SerializabilityViolation):
        check_serializable(recorder)


def test_lost_update_cycle_rejected():
    """Two increments from the same base value: the classic lost update."""
    recorder = HistoryRecorder()
    recorder.note_initial(0x10, 0)
    recorder.commit(0, reads={0x10: 0}, writes={0x10: 1})
    recorder.commit(1, reads={0x10: 0}, writes={0x10: 1})
    with pytest.raises(SerializabilityViolation):
        check_serializable(recorder)


def test_torn_snapshot_rejected():
    """Reader sees x from T1 but y from before T1."""
    recorder = HistoryRecorder()
    recorder.note_initial(0x10, 0)
    recorder.note_initial(0x20, 0)
    recorder.commit(0, reads={}, writes={0x10: 1, 0x20: 1})
    recorder.commit(1, reads={0x10: 1, 0x20: 0}, writes={})
    with pytest.raises(SerializabilityViolation):
        check_serializable(recorder)


def test_commit_order_need_not_be_serial_order():
    """A reader that saw the initial value may commit *after* the
    writer — it simply serializes before it."""
    recorder = HistoryRecorder()
    recorder.note_initial(0x10, 0)
    recorder.commit(0, reads={}, writes={0x10: 5})  # writer, ticket 1
    recorder.commit(1, reads={0x10: 0}, writes={})  # late reader, ticket 2
    order = check_serializable(recorder)
    # The witness order puts the reader first.
    assert [txn.thread_id for txn in order] == [1, 0]


def test_disjoint_transactions_any_order():
    recorder = HistoryRecorder()
    recorder.commit(0, reads={}, writes={0x10: 1})
    recorder.commit(1, reads={}, writes={0x20: 1})
    assert len(check_serializable(recorder)) == 2
