"""RecordingBackend decorator behaviour."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.txthread import TxThread
from repro.verify.history import RecordingBackend
from tests.helpers import drive


@pytest.fixture
def rig():
    machine = FlexTMMachine(small_test_params(4))
    backend = RecordingBackend(FlexTMRuntime(machine, mode=ConflictMode.LAZY))
    thread = TxThread(0, backend, iter(()))
    thread.processor = 0
    return machine, backend, thread


def test_committed_transaction_recorded(rig):
    machine, backend, thread = rig
    address = machine.allocate_words(1)
    machine.memory.write(address, 3)
    backend.recorder.note_initial(address, 3)
    drive(machine, 0, backend.begin(thread))
    assert drive(machine, 0, backend.read(thread, address)) == 3
    drive(machine, 0, backend.write(thread, address, 9))
    drive(machine, 0, backend.commit(thread))
    assert len(backend.recorder.committed) == 1
    txn = backend.recorder.committed[0]
    assert txn.reads == {address: 3}
    assert txn.writes == {address: 9}
    assert txn.thread_id == 0


def test_aborted_attempt_not_recorded(rig):
    machine, backend, thread = rig
    address = machine.allocate_words(1)
    drive(machine, 0, backend.begin(thread))
    drive(machine, 0, backend.write(thread, address, 9))
    machine.memory.write(thread.descriptor.tsw_address, TxStatus.ABORTED)
    drive(machine, 0, backend.on_abort(thread))
    assert backend.recorder.committed == []


def test_read_after_own_write_not_logged_as_read(rig):
    machine, backend, thread = rig
    address = machine.allocate_words(1)
    drive(machine, 0, backend.begin(thread))
    drive(machine, 0, backend.write(thread, address, 9))
    assert drive(machine, 0, backend.read(thread, address)) == 9
    drive(machine, 0, backend.commit(thread))
    txn = backend.recorder.committed[0]
    assert address not in txn.reads  # it observed its own write


def test_only_first_read_recorded(rig):
    machine, backend, thread = rig
    address = machine.allocate_words(1)
    machine.memory.write(address, 5)
    drive(machine, 0, backend.begin(thread))
    drive(machine, 0, backend.read(thread, address))
    drive(machine, 0, backend.read(thread, address))
    drive(machine, 0, backend.commit(thread))
    assert backend.recorder.committed[0].reads == {address: 5}


def test_tickets_are_commit_ordered(rig):
    machine, backend, thread = rig
    address = machine.allocate_words(1)
    for _ in range(3):
        drive(machine, 0, backend.begin(thread))
        drive(machine, 0, backend.write(thread, address, 1))
        drive(machine, 0, backend.commit(thread))
    tickets = [txn.ticket for txn in backend.recorder.committed]
    assert tickets == sorted(tickets) == [1, 2, 3]


def test_name_reflects_inner(rig):
    _, backend, _ = rig
    assert "FlexTM" in backend.name


def test_delegation_of_runtime_hooks(rig):
    machine, backend, thread = rig
    assert backend.check_aborted(thread) is False
    assert backend.retry_backoff(2) >= 0
    assert backend.suspend(thread) is None
