"""CycleClock semantics."""

import pytest

from repro.sim.clock import CycleClock


def test_starts_at_zero():
    assert CycleClock().now == 0


def test_advance_accumulates():
    clock = CycleClock()
    clock.advance(5)
    clock.advance(7)
    assert clock.now == 12


def test_advance_zero_is_noop():
    clock = CycleClock(3)
    assert clock.advance(0) == 3


def test_negative_advance_rejected():
    clock = CycleClock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        CycleClock(-5)


def test_advance_to_only_moves_forward():
    clock = CycleClock(10)
    clock.advance_to(20)
    assert clock.now == 20
    clock.advance_to(5)
    assert clock.now == 20
