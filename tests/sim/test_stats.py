"""Counters, histograms, and the registry."""

import pytest

from repro.sim.stats import Counter, Histogram, StatsRegistry


def test_counter_increments():
    counter = Counter("x")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("x").increment(-1)


def test_counter_reset():
    counter = Counter("x")
    counter.increment(9)
    counter.reset()
    assert counter.value == 0


def test_histogram_order_statistics():
    histogram = Histogram("h")
    for sample in [5, 1, 9, 3, 7]:
        histogram.record(sample)
    assert histogram.minimum == 1
    assert histogram.maximum == 9
    assert histogram.median == 5
    assert histogram.count == 5
    assert histogram.total == 25
    assert histogram.mean == 5.0


def test_histogram_empty_defaults():
    histogram = Histogram("h")
    assert histogram.median == 0
    assert histogram.maximum == 0
    assert histogram.mean == 0.0


def test_percentile_bounds_checked():
    histogram = Histogram("h")
    histogram.record(1)
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_percentile_extremes():
    histogram = Histogram("h")
    for sample in range(1, 101):
        histogram.record(sample)
    assert histogram.percentile(0.0) == 1
    assert histogram.percentile(1.0) == 100


def test_registry_creates_and_caches():
    registry = StatsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("b") is registry.histogram("b")


def test_registry_snapshot_includes_both_kinds():
    registry = StatsRegistry()
    registry.counter("events").increment(3)
    registry.histogram("sizes").record(10)
    snapshot = registry.snapshot()
    assert snapshot["events"] == 3
    assert snapshot["sizes.count"] == 1


def test_registry_reset_clears_everything():
    registry = StatsRegistry()
    registry.counter("events").increment(3)
    registry.histogram("sizes").record(10)
    registry.reset()
    assert registry.counter("events").value == 0
    assert registry.histogram("sizes").count == 0


def test_registry_snapshot_summarizes_histograms():
    registry = StatsRegistry()
    histogram = registry.histogram("sizes")
    for sample in range(1, 101):
        histogram.record(sample)
    snapshot = registry.snapshot()
    assert snapshot["sizes.count"] == 100
    assert snapshot["sizes.mean"] == pytest.approx(50.5)
    assert snapshot["sizes.max"] == 100
    assert snapshot["sizes.p95"] == histogram.percentile(0.95)


def test_registry_histograms_iterator_sorted():
    registry = StatsRegistry()
    registry.histogram("zeta").record(1)
    registry.histogram("alpha").record(2)
    names = [name for name, _ in registry.histograms()]
    assert names == ["alpha", "zeta"]
    pairs = dict(registry.histograms())
    assert pairs["alpha"].total == 2
