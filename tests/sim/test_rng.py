"""DeterministicRng: reproducibility and distribution helpers."""

import pytest

from repro.sim.rng import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(7)
    b = DeterministicRng(7)
    assert [a.randint(0, 1000) for _ in range(50)] == [b.randint(0, 1000) for _ in range(50)]


def test_different_seeds_diverge():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.randint(0, 10 ** 9) for _ in range(10)] != [b.randint(0, 10 ** 9) for _ in range(10)]


def test_fork_is_deterministic_and_independent():
    root = DeterministicRng(99)
    fork_a1 = root.fork(1)
    fork_a2 = DeterministicRng(99).fork(1)
    assert fork_a1.randint(0, 10 ** 9) == fork_a2.randint(0, 10 ** 9)
    fork_b = root.fork(2)
    assert fork_b.seed != fork_a1.seed


def test_fork_streams_do_not_share_state():
    root = DeterministicRng(5)
    one, two = root.fork(1), root.fork(2)
    before = two.randint(0, 10 ** 9)
    # Draw lots from stream one; stream two must be unaffected.
    for _ in range(100):
        one.random()
    assert DeterministicRng(5).fork(2).randint(0, 10 ** 9) == before


def test_randint_bounds():
    rng = DeterministicRng(3)
    draws = [rng.randint(2, 5) for _ in range(200)]
    assert min(draws) >= 2 and max(draws) <= 5
    assert set(draws) == {2, 3, 4, 5}


def test_choice_and_sample():
    rng = DeterministicRng(4)
    items = ["a", "b", "c"]
    assert rng.choice(items) in items
    picked = rng.sample(list(range(10)), 4)
    assert len(picked) == len(set(picked)) == 4


def test_shuffle_permutes_in_place():
    rng = DeterministicRng(8)
    items = list(range(20))
    rng.shuffle(items)
    assert sorted(items) == list(range(20))


def test_geometric_mean_tracks_parameter():
    rng = DeterministicRng(11)
    draws = [rng.geometric(0.5) for _ in range(2000)]
    mean = sum(draws) / len(draws)
    assert 1.8 < mean < 2.2  # E[X] = 1/p = 2


def test_geometric_rejects_bad_p():
    rng = DeterministicRng(0)
    with pytest.raises(ValueError):
        rng.geometric(0.0)
    with pytest.raises(ValueError):
        rng.geometric(1.5)
