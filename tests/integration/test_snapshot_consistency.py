"""Snapshot consistency: no *committed* transaction saw a torn update.

Writers keep two cells equal (x == y, updated together); readers record
the pair they observed by *transactionally* writing it to a private log
cell.  If the reading attempt aborts, the log write rolls back with it —
so after the run, every populated log cell corresponds to a committed
read, and each must hold an equal pair.  Any TM system that lets a
committed reader see a half-applied update fails here.
"""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem
from repro.stm.cgl import CglRuntime
from repro.stm.rstm import RstmRuntime
from repro.stm.rtmf import RtmfRuntime
from repro.stm.logtmse import LogTmSeRuntime
from repro.stm.tl2 import Tl2Runtime

BACKENDS = [
    ("CGL", lambda machine: CglRuntime(machine)),
    ("FlexTM-eager", lambda machine: FlexTMRuntime(machine, mode=ConflictMode.EAGER)),
    ("FlexTM-lazy", lambda machine: FlexTMRuntime(machine, mode=ConflictMode.LAZY)),
    ("RTM-F", lambda machine: RtmfRuntime(machine)),
    ("RSTM", lambda machine: RstmRuntime(machine)),
    ("TL2", lambda machine: Tl2Runtime(machine)),
    ("LogTM-SE", lambda machine: LogTmSeRuntime(machine)),
]

WRITES_PER_WRITER = 25
READS_PER_READER = 50
ENCODE_SHIFT = 20  # log value = (x << SHIFT) | y | SENTINEL
SENTINEL = 1 << 60


@pytest.mark.parametrize("name,factory", BACKENDS, ids=[name for name, _ in BACKENDS])
def test_no_torn_reads_commit(name, factory):
    machine = FlexTMMachine(small_test_params(4))
    backend = factory(machine)
    line = machine.params.line_bytes
    cell_x = machine.allocate(line, line_aligned=True)
    cell_y = machine.allocate(line, line_aligned=True)
    log_cells = [
        machine.allocate(line, line_aligned=True) for _ in range(2 * READS_PER_READER)
    ]

    def writer_items():
        def bump(ctx):
            x = yield from ctx.read(cell_x)
            yield from ctx.write(cell_x, x + 1)
            yield from ctx.work(30)  # widen any torn window
            y = yield from ctx.read(cell_y)
            yield from ctx.write(cell_y, y + 1)

        for _ in range(WRITES_PER_WRITER):
            yield WorkItem(bump)

    def reader_items(log_slice):
        def make_check(log_cell):
            def check(ctx):
                x = yield from ctx.read(cell_x)
                yield from ctx.work(30)
                y = yield from ctx.read(cell_y)
                yield from ctx.write(log_cell, SENTINEL | (x << ENCODE_SHIFT) | y)

            return check

        for log_cell in log_slice:
            yield WorkItem(make_check(log_cell))

    threads = [
        TxThread(0, backend, writer_items()),
        TxThread(1, backend, writer_items()),
        TxThread(2, backend, reader_items(log_cells[:READS_PER_READER])),
        TxThread(3, backend, reader_items(log_cells[READS_PER_READER:])),
    ]
    result = Scheduler(machine, threads).run(cycle_limit=200_000_000)
    expected = 2 * WRITES_PER_WRITER + 2 * READS_PER_READER
    assert result.commits == expected, f"{name}: work incomplete"
    assert machine.memory.read(cell_x) == machine.memory.read(cell_y) == 2 * WRITES_PER_WRITER

    torn = []
    populated = 0
    for log_cell in log_cells:
        word = machine.memory.read(log_cell)
        if not word & SENTINEL:
            continue
        populated += 1
        x = (word & ~SENTINEL) >> ENCODE_SHIFT
        y = word & ((1 << ENCODE_SHIFT) - 1)
        if x != y:
            torn.append((x, y))
    assert populated == 2 * READS_PER_READER, f"{name}: committed reads missing"
    assert torn == [], f"{name}: committed readers saw torn pairs {torn[:5]}"
