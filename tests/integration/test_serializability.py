"""Cross-system serializability: the bank-transfer invariant.

Every TM system must preserve the total balance across concurrent
random transfers — the canonical atomicity check.  This exercises
conflicting read-write transactions, aborts, retries and commits on all
five systems under both conflict-management modes.
"""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem
from repro.sim.rng import DeterministicRng
from repro.stm.cgl import CglRuntime
from repro.stm.rstm import RstmRuntime
from repro.stm.rtmf import RtmfRuntime
from repro.stm.logtmse import LogTmSeRuntime
from repro.stm.tl2 import Tl2Runtime

NUM_ACCOUNTS = 8
INITIAL_BALANCE = 1000


def _bank(machine):
    line = machine.params.line_bytes
    base = machine.allocate(NUM_ACCOUNTS * line, line_aligned=True)
    accounts = [base + index * line for index in range(NUM_ACCOUNTS)]
    for account in accounts:
        machine.memory.write(account, INITIAL_BALANCE)
    return accounts


def _transfer_items(accounts, rng, count):
    def make(src, dst, amount):
        def transfer(ctx):
            src_balance = yield from ctx.read(src)
            dst_balance = yield from ctx.read(dst)
            yield from ctx.write(src, src_balance - amount)
            yield from ctx.work(10)
            yield from ctx.write(dst, dst_balance + amount)

        return transfer

    for _ in range(count):
        src, dst = rng.sample(accounts, 2)
        yield WorkItem(make(src, dst, rng.randint(1, 50)))


BACKENDS = [
    ("CGL", lambda machine: CglRuntime(machine)),
    ("FlexTM-eager", lambda machine: FlexTMRuntime(machine, mode=ConflictMode.EAGER)),
    ("FlexTM-lazy", lambda machine: FlexTMRuntime(machine, mode=ConflictMode.LAZY)),
    ("RTM-F", lambda machine: RtmfRuntime(machine)),
    ("RSTM", lambda machine: RstmRuntime(machine)),
    ("TL2", lambda machine: Tl2Runtime(machine)),
    ("LogTM-SE", lambda machine: LogTmSeRuntime(machine)),
]


@pytest.mark.parametrize("name,factory", BACKENDS, ids=[name for name, _ in BACKENDS])
def test_total_balance_conserved(name, factory):
    machine = FlexTMMachine(small_test_params(4))
    backend = factory(machine)
    accounts = _bank(machine)
    threads = [
        TxThread(i, backend, _transfer_items(accounts, DeterministicRng(100 + i), 25))
        for i in range(4)
    ]
    result = Scheduler(machine, threads).run(cycle_limit=50_000_000)
    assert result.commits == 100, f"{name}: not all transfers committed"
    total = sum(machine.memory.read(account) for account in accounts)
    assert total == NUM_ACCOUNTS * INITIAL_BALANCE, f"{name}: money not conserved"


@pytest.mark.parametrize("name,factory", BACKENDS[1:], ids=[name for name, _ in BACKENDS[1:]])
def test_aborted_transactions_leave_no_trace(name, factory):
    """Run under heavy contention; rolled-back updates must not leak."""
    machine = FlexTMMachine(small_test_params(4))
    backend = factory(machine)
    accounts = _bank(machine)[:2]  # two hot accounts -> constant conflicts
    threads = [
        TxThread(i, backend, _transfer_items(accounts, DeterministicRng(i), 20))
        for i in range(4)
    ]
    result = Scheduler(machine, threads).run(cycle_limit=80_000_000)
    assert result.commits == 80
    total = sum(machine.memory.read(account) for account in accounts)
    assert total == 2 * INITIAL_BALANCE
