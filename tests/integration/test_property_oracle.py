"""Hypothesis-driven serializability fuzzing.

Random transaction mixes (random read/write sets over a small cell
pool, random thread counts) run on FlexTM in both modes; every run's
committed history must pass the conflict-serializability oracle and
replay to the final memory state.  This is the test that originally
caught the two write-skew bugs documented in EXPERIMENTS.md.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem
from repro.verify.history import RecordingBackend, check_serializable

NUM_CELLS = 4

# One transaction = (reads mask, writes mask) over the cell pool.
txn_strategy = st.tuples(
    st.integers(min_value=0, max_value=(1 << NUM_CELLS) - 1),
    st.integers(min_value=1, max_value=(1 << NUM_CELLS) - 1),
)
schedule_strategy = st.lists(
    st.lists(txn_strategy, min_size=1, max_size=6), min_size=2, max_size=3
)


def _bits(mask):
    return [index for index in range(NUM_CELLS) if (mask >> index) & 1]


@given(schedule=schedule_strategy, lazy=st.booleans())
@settings(max_examples=25, deadline=None)
def test_random_mixes_are_serializable(schedule, lazy):
    machine = FlexTMMachine(small_test_params(4))
    mode = ConflictMode.LAZY if lazy else ConflictMode.EAGER
    backend = RecordingBackend(FlexTMRuntime(machine, mode=mode))
    line = machine.params.line_bytes
    cells = [machine.allocate(line, line_aligned=True) for _ in range(NUM_CELLS)]
    for index, cell in enumerate(cells):
        machine.memory.write(cell, index)
        backend.recorder.note_initial(cell, index)
    unique = itertools.count(100)

    def items(per_thread):
        def make(read_mask, write_mask):
            def body(ctx):
                for index in _bits(read_mask):
                    yield from ctx.read(cells[index])
                yield from ctx.work(5)
                for index in _bits(write_mask):
                    yield from ctx.write(cells[index], next(unique))

            return body

        for read_mask, write_mask in per_thread:
            yield WorkItem(make(read_mask, write_mask))

    threads = [
        TxThread(thread_id, backend, items(per_thread))
        for thread_id, per_thread in enumerate(schedule)
    ]
    result = Scheduler(machine, threads).run(cycle_limit=100_000_000)
    expected = sum(len(per_thread) for per_thread in schedule)
    assert result.commits == expected

    witness = check_serializable(backend.recorder)
    replay = dict(backend.recorder.initial_values)
    for txn in witness:
        replay.update(txn.writes)
    for cell in cells:
        assert machine.memory.read(cell) == replay[cell]
