"""Transactions coexisting with non-transactional traffic.

Strong isolation end to end: a plain-store thread and transactional
threads share data; the non-transactional writes serialize before
conflicting transactions, and no committed transaction's effects are
lost.
"""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem


@pytest.mark.parametrize("mode", [ConflictMode.EAGER, ConflictMode.LAZY])
def test_nontx_writer_vs_transactions(mode):
    machine = FlexTMMachine(small_test_params(4))
    runtime = FlexTMRuntime(machine, mode=mode)
    line = machine.params.line_bytes
    tx_counter = machine.allocate(line, line_aligned=True)
    flag_cell = machine.allocate(line, line_aligned=True)

    def tx_increment(ctx):
        value = yield from ctx.read(tx_counter)
        yield from ctx.work(20)
        yield from ctx.write(tx_counter, value + 1)
        # Also read the flag: the non-tx writer will threaten us.
        yield from ctx.read(flag_cell)

    def tx_items(count):
        for _ in range(count):
            yield WorkItem(tx_increment)

    def nontx_body(ctx):
        # A plain writer hammering the flag cell (strong isolation).
        for value in range(50):
            yield ("store", flag_cell, value)
            yield ("work", 40)

    threads = [
        TxThread(0, runtime, tx_items(30)),
        TxThread(1, runtime, tx_items(30)),
        TxThread(2, runtime, iter([WorkItem(nontx_body, transactional=False)])),
    ]
    result = Scheduler(machine, threads).run(cycle_limit=50_000_000)
    assert result.commits == 60
    # No committed increment lost despite strong-isolation aborts.
    assert machine.memory.read(tx_counter) == 60
    # The plain writer finished, and its last value is in place.
    assert machine.memory.read(flag_cell) == 49
    # The writer actually wounded transactions along the way.
    assert result.stats.get("strong_isolation.aborts", 0) > 0
    assert result.aborts >= result.stats["strong_isolation.aborts"]
