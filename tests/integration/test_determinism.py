"""Full-stack determinism: identical seeds replay bit-identically."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.params import small_test_params

CONFIGS = [
    ("HashTable", "FlexTM", ConflictMode.EAGER),
    ("RBTree", "FlexTM", ConflictMode.LAZY),
    ("LFUCache", "TL2", ConflictMode.EAGER),
    ("RandomGraph", "RSTM", ConflictMode.EAGER),
    ("Vacation-High", "CGL", ConflictMode.EAGER),
    ("Delaunay", "RTM-F", ConflictMode.EAGER),
]


@pytest.mark.parametrize(
    "workload,system,mode", CONFIGS, ids=[f"{w}-{s}" for w, s, _ in CONFIGS]
)
def test_replay_is_bit_identical(workload, system, mode):
    def run():
        result = run_experiment(
            ExperimentConfig(
                workload=workload,
                system=system,
                threads=3,
                mode=mode,
                cycle_limit=40_000,
                seed=7,
                params=small_test_params(4),
            )
        )
        return (result.commits, result.aborts, result.cycles, tuple(
            (entry["thread_id"], entry["commits"], entry["aborts"])
            for entry in result.per_thread
        ))

    assert run() == run()


def test_different_seeds_differ():
    def run(seed):
        result = run_experiment(
            ExperimentConfig(
                workload="RBTree",
                system="FlexTM",
                threads=3,
                cycle_limit=40_000,
                seed=seed,
                params=small_test_params(4),
            )
        )
        return (result.commits, result.aborts)

    # Two seeds giving identical commit AND abort counts would be a
    # suspicious coincidence for a 3-thread contended run.
    outcomes = {run(seed) for seed in (1, 2, 3, 4)}
    assert len(outcomes) > 1
