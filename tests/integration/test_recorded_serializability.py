"""Every TM system's recorded histories must pass the oracle.

The strongest correctness statement in the suite: wrap each backend in
the RecordingBackend, run contended random read/write transactions, and
feed the committed history to the conflict-serializability checker.
"""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem
from repro.sim.rng import DeterministicRng
from repro.stm.cgl import CglRuntime
from repro.stm.rstm import RstmRuntime
from repro.stm.rtmf import RtmfRuntime
from repro.stm.logtmse import LogTmSeRuntime
from repro.stm.tl2 import Tl2Runtime
from repro.verify.history import RecordingBackend, check_serializable

NUM_CELLS = 6

BACKENDS = [
    ("CGL", lambda machine: CglRuntime(machine)),
    ("FlexTM-eager", lambda machine: FlexTMRuntime(machine, mode=ConflictMode.EAGER)),
    ("FlexTM-lazy", lambda machine: FlexTMRuntime(machine, mode=ConflictMode.LAZY)),
    ("RTM-F", lambda machine: RtmfRuntime(machine)),
    ("RSTM", lambda machine: RstmRuntime(machine)),
    ("TL2", lambda machine: Tl2Runtime(machine)),
    ("LogTM-SE", lambda machine: LogTmSeRuntime(machine)),
]


def _random_items(cells, rng, count, unique):
    """Transactions writing globally unique values, so the checker's
    reads-from attribution is exact (value -> writer is injective)."""

    def make(reads, writes):
        def body(ctx):
            for address in reads:
                yield from ctx.read(address)
            yield from ctx.work(10)
            for address in writes:
                yield from ctx.write(address, next(unique))

        return body

    for _ in range(count):
        reads = rng.sample(cells, rng.randint(1, 3))
        writes = rng.sample(cells, rng.randint(1, 2))
        yield WorkItem(make(tuple(reads), tuple(writes)))


@pytest.mark.parametrize("name,factory", BACKENDS, ids=[n for n, _ in BACKENDS])
def test_recorded_history_is_serializable(name, factory):
    machine = FlexTMMachine(small_test_params(4))
    backend = RecordingBackend(factory(machine))
    line = machine.params.line_bytes
    cells = [machine.allocate(line, line_aligned=True) for _ in range(NUM_CELLS)]
    for index, cell in enumerate(cells):
        machine.memory.write(cell, index)
        backend.recorder.note_initial(cell, index)
    import itertools

    unique = itertools.count(1000)
    threads = [
        TxThread(i, backend, _random_items(cells, DeterministicRng(50 + i), 20, unique))
        for i in range(4)
    ]
    result = Scheduler(machine, threads).run(cycle_limit=100_000_000)
    assert result.commits == 80, f"{name}: not all transactions committed"
    assert len(backend.recorder.committed) == 80
    witness = check_serializable(backend.recorder)
    assert len(witness) == 80
    # Final memory state must equal replaying the witness serially.
    replay = dict(backend.recorder.initial_values)
    for txn in witness:
        replay.update(txn.writes)
    for cell in cells:
        assert machine.memory.read(cell) == replay[cell], f"{name}: final state diverges"
