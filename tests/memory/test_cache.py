"""Set-associative cache array behaviour."""

import pytest

from repro.coherence.states import LineState
from repro.errors import ProtocolError
from repro.memory.cache import CacheArray


def test_install_and_lookup():
    cache = CacheArray(num_sets=4, associativity=2)
    cache.install(0, LineState.E)
    line = cache.lookup(0)
    assert line is not None and line.state is LineState.E


def test_lookup_misses_invalid_lines():
    cache = CacheArray(4, 2)
    line = cache.install(0, LineState.E)
    line.state = LineState.I
    assert cache.lookup(0) is None


def test_install_rejects_duplicates_and_full_sets():
    cache = CacheArray(4, 2)
    cache.install(0, LineState.S)
    with pytest.raises(ProtocolError):
        cache.install(0, LineState.S)
    cache.install(4, LineState.S)  # same set (0 mod 4)
    with pytest.raises(ProtocolError):
        cache.install(8, LineState.S)


def test_choose_victim_is_lru():
    cache = CacheArray(4, 2)
    cache.install(0, LineState.S)
    cache.install(4, LineState.S)
    cache.lookup(0)  # 0 becomes most recently used
    victim = cache.choose_victim(8)
    assert victim is not None and victim.line_address == 4


def test_choose_victim_none_when_room():
    cache = CacheArray(4, 2)
    cache.install(0, LineState.S)
    assert cache.choose_victim(4) is None


def test_choose_victim_skips_pinned():
    cache = CacheArray(4, 2)
    cache.install(0, LineState.S)
    cache.install(4, LineState.S)
    cache.lookup(0)
    victim = cache.choose_victim(8, pinned=lambda line: line.line_address == 4)
    assert victim.line_address == 0


def test_choose_victim_falls_back_when_all_pinned():
    cache = CacheArray(4, 2)
    cache.install(0, LineState.S)
    cache.install(4, LineState.S)
    victim = cache.choose_victim(8, pinned=lambda line: True)
    assert victim is not None


def test_remove_frees_slot():
    cache = CacheArray(4, 1)
    cache.install(0, LineState.M)
    cache.remove(0)
    cache.install(4, LineState.M)
    assert cache.lookup(4) is not None


def test_flash_transform_sweeps_and_prunes():
    cache = CacheArray(4, 2)
    cache.install(0, LineState.TMI).t_bit = True
    cache.install(1, LineState.TI).t_bit = True
    cache.install(2, LineState.M)

    def commit(line):
        line.state = line.state.after_commit()
        line.t_bit = False

    cache.flash_transform(commit)
    assert cache.peek(0).state is LineState.M
    assert cache.peek(1) is None  # TI -> I, pruned
    assert cache.peek(2).state is LineState.M


def test_occupancy_counts():
    cache = CacheArray(4, 2)
    cache.install(0, LineState.S)
    cache.install(1, LineState.E)
    assert cache.occupancy() == 2
    assert cache.set_occupancy(0) == 1


def test_valid_lines_iterates_all():
    cache = CacheArray(4, 2)
    for address in (0, 1, 2):
        cache.install(address, LineState.S)
    assert sorted(line.line_address for line in cache.valid_lines()) == [0, 1, 2]


def test_shape_validation():
    with pytest.raises(ValueError):
        CacheArray(3, 2)
    with pytest.raises(ValueError):
        CacheArray(4, 0)


def test_peek_does_not_touch_lru():
    cache = CacheArray(4, 2)
    cache.install(0, LineState.S)
    cache.install(4, LineState.S)
    cache.lookup(4)
    cache.peek(0)  # must not refresh 0
    victim = cache.choose_victim(8)
    assert victim.line_address == 0
