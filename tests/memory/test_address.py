"""Address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.address import AddressMap


def test_line_of_strips_offset():
    amap = AddressMap(64)
    assert amap.line_of(0) == 0
    assert amap.line_of(63) == 0
    assert amap.line_of(64) == 1
    assert amap.line_of(130) == 2


def test_base_and_offset_roundtrip():
    amap = AddressMap(64)
    assert amap.base_of(3) == 192
    assert amap.offset_of(197) == 5


@given(st.integers(min_value=0, max_value=1 << 40))
def test_line_base_offset_reconstruct(address):
    amap = AddressMap(64)
    assert amap.base_of(amap.line_of(address)) + amap.offset_of(address) == address


def test_lines_spanning():
    amap = AddressMap(64)
    assert list(amap.lines_spanning(0, 64)) == [0]
    assert list(amap.lines_spanning(60, 8)) == [0, 1]
    assert list(amap.lines_spanning(128, 200)) == [2, 3, 4, 5]


def test_lines_spanning_rejects_nonpositive_length():
    with pytest.raises(ValueError):
        AddressMap(64).lines_spanning(0, 0)


def test_rejects_non_power_of_two_line():
    with pytest.raises(ValueError):
        AddressMap(48)


def test_rejects_negative_address():
    with pytest.raises(ValueError):
        AddressMap(64).line_of(-1)


def test_set_index_uses_low_bits():
    amap = AddressMap(64)
    assert amap.set_index(0b1011, 8) == 0b011
