"""Victim buffer semantics."""

from repro.coherence.states import LineState
from repro.memory.victim import VictimBuffer


def test_insert_and_extract():
    buffer = VictimBuffer(4)
    buffer.insert(10, LineState.E)
    assert buffer.contains(10)
    assert buffer.extract(10) is LineState.E
    assert not buffer.contains(10)


def test_fifo_displacement_when_full():
    buffer = VictimBuffer(2)
    buffer.insert(1, LineState.S)
    buffer.insert(2, LineState.S)
    buffer.insert(3, LineState.S)
    assert not buffer.contains(1)
    assert buffer.contains(2) and buffer.contains(3)


def test_reinsert_refreshes_age():
    buffer = VictimBuffer(2)
    buffer.insert(1, LineState.S)
    buffer.insert(2, LineState.S)
    buffer.insert(1, LineState.E)  # refresh 1, update state
    buffer.insert(3, LineState.S)  # displaces 2, not 1
    assert buffer.contains(1)
    assert not buffer.contains(2)
    assert buffer.extract(1) is LineState.E


def test_unbounded_capacity():
    buffer = VictimBuffer(None)
    for address in range(1000):
        buffer.insert(address, LineState.TMI)
    assert len(buffer) == 1000


def test_zero_capacity_drops_everything():
    buffer = VictimBuffer(0)
    buffer.insert(1, LineState.S)
    assert len(buffer) == 0


def test_invalid_state_not_stored():
    buffer = VictimBuffer(4)
    buffer.insert(1, LineState.I)
    assert not buffer.contains(1)


def test_invalidate_and_clear():
    buffer = VictimBuffer(4)
    buffer.insert(1, LineState.S)
    buffer.insert(2, LineState.S)
    buffer.invalidate(1)
    assert not buffer.contains(1)
    buffer.clear()
    assert len(buffer) == 0
