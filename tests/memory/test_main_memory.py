"""Functional memory image."""

from repro.memory.main_memory import MainMemory


def test_default_value_is_zero():
    memory = MainMemory()
    assert memory.read(123456) == 0


def test_write_then_read():
    memory = MainMemory()
    memory.write(8, 42)
    assert memory.read(8) == 42


def test_bulk_write():
    memory = MainMemory()
    memory.bulk_write([(0, 1), (8, 2), (16, 3)])
    assert [memory.read(a) for a in (0, 8, 16)] == [1, 2, 3]


def test_counters_track_traffic():
    memory = MainMemory()
    memory.write(0, 1)
    memory.read(0)
    memory.read(8)
    assert memory.writes == 1
    assert memory.reads == 2


def test_snapshot_is_a_copy():
    memory = MainMemory()
    memory.write(0, 1)
    snapshot = memory.snapshot()
    snapshot[0] = 99
    assert memory.read(0) == 1
    assert len(memory) == 1
