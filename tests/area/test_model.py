"""Area model vs the published Table 2."""

import pytest

from repro.area.model import (
    MEROM,
    NIAGARA2,
    POWER6,
    PROCESSORS,
    PUBLISHED_TABLE2,
    FlexTMAreaModel,
)


@pytest.fixture
def model():
    return FlexTMAreaModel()


def test_signature_area_matches_published(model):
    for spec in PROCESSORS:
        published = PUBLISHED_TABLE2[spec.name]["signature_mm2"]
        assert model.signature_area(spec) == pytest.approx(published, rel=0.05)


def test_cst_register_counts_exact(model):
    for spec in PROCESSORS:
        assert model.cst_registers(spec) == PUBLISHED_TABLE2[spec.name]["cst_registers"]


def test_state_bits_exact(model):
    for spec in PROCESSORS:
        assert model.extra_state_bits(spec) == PUBLISHED_TABLE2[spec.name]["extra_state_bits"]
    assert model.state_bit_labels(MEROM) == "T,A"
    assert model.state_bit_labels(NIAGARA2) == "T,A,ID"


def test_id_bits_scale_with_smt(model):
    assert model.id_bits(MEROM) == 0
    assert model.id_bits(POWER6) == 1
    assert model.id_bits(NIAGARA2) == 3


def test_ot_controller_within_tolerance(model):
    """Published OT numbers embed design detail; allow 30%."""
    for spec in PROCESSORS:
        published = PUBLISHED_TABLE2[spec.name]["ot_controller_mm2"]
        assert model.ot_controller_area(spec) == pytest.approx(published, rel=0.3)


def test_l1_increase_within_tolerance(model):
    for spec in PROCESSORS:
        published = PUBLISHED_TABLE2[spec.name]["l1_increase_percent"]
        assert model.l1_increase_percent(spec) == pytest.approx(published, rel=0.2)


def test_core_increase_within_tolerance(model):
    for spec in PROCESSORS:
        published = PUBLISHED_TABLE2[spec.name]["core_increase_percent"]
        assert model.core_increase_percent(spec) == pytest.approx(published, rel=0.25)


def test_headline_claims(model):
    """Section 6's conclusions: ~2.6% only on 8-way SMT, <1% elsewhere."""
    assert model.core_increase_percent(NIAGARA2) > 2.0
    assert model.core_increase_percent(MEROM) < 1.0
    assert model.core_increase_percent(POWER6) < 1.0


def test_signature_area_scales_with_bits():
    small = FlexTMAreaModel(signature_bits=1024)
    large = FlexTMAreaModel(signature_bits=4096)
    assert large.signature_area(MEROM) == pytest.approx(4 * small.signature_area(MEROM))


def test_estimate_rows_render(model):
    estimate = model.estimate(MEROM)
    row = estimate.row()
    assert row[0] == "Merom"
    assert any("T,A" in str(cell) for cell in row)
