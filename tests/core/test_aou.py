"""Alert-on-update unit."""

from repro.core.aou import AlertUnit, PendingAlert


def test_alert_requires_mark():
    unit = AlertUnit()
    unit.raise_alert(10, "invalidated")
    assert not unit.has_pending


def test_marked_line_alerts():
    unit = AlertUnit()
    unit.mark(10)
    unit.raise_alert(10, "invalidated")
    assert unit.has_pending
    assert unit.peek_pending() == [PendingAlert(10, "invalidated")]


def test_signature_alerts_bypass_marks():
    """FlexWatcher's 'activate' path raises alerts without per-line marks."""
    unit = AlertUnit()
    unit.raise_alert(99, "signature")
    assert unit.has_pending


def test_drain_delivers_fifo_through_handler():
    unit = AlertUnit()
    seen = []
    unit.set_handler(seen.append)
    unit.mark(1)
    unit.mark(2)
    unit.raise_alert(1, "invalidated")
    unit.raise_alert(2, "evicted")
    delivered = unit.drain()
    assert [alert.line_address for alert in delivered] == [1, 2]
    assert seen == delivered
    assert not unit.has_pending
    assert unit.alerts_delivered == 2


def test_unmark_stops_alerts():
    unit = AlertUnit()
    unit.mark(1)
    unit.unmark(1)
    unit.raise_alert(1, "invalidated")
    assert not unit.has_pending


def test_clear_drops_marks_and_pending():
    unit = AlertUnit()
    unit.mark(1)
    unit.raise_alert(1, "invalidated")
    unit.clear()
    assert not unit.has_pending
    assert not unit.is_marked(1)


def test_counters():
    unit = AlertUnit()
    unit.mark(1)
    unit.raise_alert(1, "invalidated")
    assert unit.alerts_raised == 1
    unit.drain()
    assert unit.alerts_delivered == 1
