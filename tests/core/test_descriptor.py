"""Transaction descriptors and status words."""

import pytest

from repro.core.descriptor import (
    ConflictMode,
    RunState,
    SavedHardwareState,
    TransactionDescriptor,
)
from repro.core.tsw import TxStatus, decode_status
from repro.signatures.bloom import Signature


def _saved(read_lines=(), write_lines=()):
    rsig = Signature(256, 2)
    wsig = Signature(256, 2)
    rsig.insert_all(read_lines)
    wsig.insert_all(write_lines)
    return SavedHardwareState(
        overlay={}, ot_registers=None, rsig=rsig, wsig=wsig,
        csts={"r_w": 0, "w_r": 0, "w_w": 0}, last_processor=1,
    )


def test_status_decoding():
    assert decode_status(1) is TxStatus.ACTIVE
    assert decode_status(2) is TxStatus.COMMITTED
    assert decode_status(3) is TxStatus.ABORTED
    assert decode_status(999) is TxStatus.INVALID


def test_terminal_states():
    assert TxStatus.COMMITTED.is_terminal
    assert TxStatus.ABORTED.is_terminal
    assert not TxStatus.ACTIVE.is_terminal


def test_descriptor_defaults():
    descriptor = TransactionDescriptor(thread_id=1, tsw_address=64)
    assert descriptor.mode is ConflictMode.LAZY
    assert descriptor.run_state is RunState.RUNNING
    assert descriptor.saved is None
    assert descriptor.commits == 0


def test_conflicts_with_uses_saved_signatures():
    descriptor = TransactionDescriptor(thread_id=1, tsw_address=64)
    assert not descriptor.conflicts_with(10, is_write=True)  # no saved state
    descriptor.saved = _saved(read_lines=[10], write_lines=[20])
    assert descriptor.conflicts_with(20, is_write=False)  # their write vs read
    assert descriptor.conflicts_with(10, is_write=True)  # their read vs write
    assert not descriptor.conflicts_with(10, is_write=False)  # read vs read


def test_record_suspended_conflict_updates_saved_csts():
    descriptor = TransactionDescriptor(thread_id=1, tsw_address=64)
    descriptor.saved = _saved(write_lines=[20])
    descriptor.record_suspended_conflict(3, local_was_write=True, remote_is_write=False)
    assert descriptor.saved.csts["w_r"] == 1 << 3
    descriptor.record_suspended_conflict(5, local_was_write=True, remote_is_write=True)
    assert descriptor.saved.csts["w_w"] == 1 << 5
    descriptor.record_suspended_conflict(2, local_was_write=False, remote_is_write=True)
    assert descriptor.saved.csts["r_w"] == 1 << 2


def test_record_conflict_without_saved_state_rejected():
    descriptor = TransactionDescriptor(thread_id=1, tsw_address=64)
    with pytest.raises(ValueError):
        descriptor.record_suspended_conflict(0, True, True)
