"""Property-based checks on the per-core processor state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from tests.helpers import begin_hardware_transaction

lines = st.lists(
    st.integers(min_value=0, max_value=200), min_size=0, max_size=30, unique=True
)


@given(read_lines=lines, write_lines=lines)
@settings(max_examples=40, deadline=None)
def test_save_restore_roundtrip(read_lines, write_lines):
    """Suspend + resume preserves signatures, CSTs and overlay exactly."""
    machine = FlexTMMachine(small_test_params(2))
    descriptor = begin_hardware_transaction(machine, 0)
    base = machine.allocate(256 * machine.params.line_bytes, line_aligned=True)
    for index in read_lines:
        machine.tload(0, base + index * machine.params.line_bytes)
    for index in write_lines:
        machine.tstore(0, base + index * machine.params.line_bytes, index)
    proc = machine.processors[0]
    rsig_before = proc.rsig.copy()
    wsig_before = proc.wsig.copy()
    overlay_before = dict(proc.overlay)
    proc.csts.w_r.set(1)

    saved = proc.save_transactional_state()
    # Hardware is clean after the save.
    assert proc.rsig.is_empty and proc.wsig.is_empty
    assert proc.overlay == {}
    assert proc.csts.is_empty

    proc.restore_transactional_state(descriptor, saved)
    assert proc.overlay == overlay_before
    assert proc.csts.w_r.test(1)
    for index in read_lines:
        line = machine.amap.line_of(base + index * machine.params.line_bytes)
        assert proc.rsig.member(line) == rsig_before.member(line)
    for index in write_lines:
        line = machine.amap.line_of(base + index * machine.params.line_bytes)
        assert proc.wsig.member(line) == wsig_before.member(line)


@given(write_lines=lines)
@settings(max_examples=40, deadline=None)
def test_flash_abort_is_total(write_lines):
    """After flash_abort no speculative state survives anywhere."""
    machine = FlexTMMachine(small_test_params(2))
    begin_hardware_transaction(machine, 0)
    base = machine.allocate(256 * machine.params.line_bytes, line_aligned=True)
    for index in write_lines:
        machine.tstore(0, base + index * machine.params.line_bytes, index + 1)
    proc = machine.processors[0]
    proc.flash_abort()
    assert list(proc.l1.speculative_lines()) == []
    assert proc.overlay == {}
    assert proc.rsig.is_empty and proc.wsig.is_empty
    assert not proc.ot.active
    for index in write_lines:
        assert machine.memory.read(base + index * machine.params.line_bytes) == 0


@given(write_lines=lines)
@settings(max_examples=40, deadline=None)
def test_commit_publishes_every_write(write_lines):
    """CAS-Commit makes every speculative word globally visible,
    regardless of whether its line stayed in the L1 or overflowed."""
    machine = FlexTMMachine(small_test_params(2))
    begin_hardware_transaction(machine, 0)
    base = machine.allocate(256 * machine.params.line_bytes, line_aligned=True)
    for index in write_lines:
        machine.tstore(0, base + index * machine.params.line_bytes, index + 1)
    assert machine.cas_commit(0).success
    for index in write_lines:
        assert machine.memory.read(base + index * machine.params.line_bytes) == index + 1
