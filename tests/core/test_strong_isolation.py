"""Strong isolation (Section 3.5, E9).

Non-transactional writes abort conflicting transactions (serialize
before them); non-transactional reads see only committed values and
leave threatened lines uncached.
"""

import pytest

from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.params import small_test_params
from tests.helpers import begin_hardware_transaction


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def test_nontx_write_aborts_transactional_writer(m):
    address = m.allocate_words(1)
    victim = begin_hardware_transaction(m, 1)
    m.tstore(1, address, 99)
    m.store(0, address, 5)
    assert m.read_status(victim) is TxStatus.ABORTED
    assert m.memory.read(address) == 5
    assert m.stats.counter("strong_isolation.aborts").value == 1


def test_nontx_write_aborts_transactional_reader(m):
    address = m.allocate_words(1)
    victim = begin_hardware_transaction(m, 1)
    m.tload(1, address)
    m.store(0, address, 5)
    assert m.read_status(victim) is TxStatus.ABORTED


def test_nontx_read_does_not_abort(m):
    address = m.allocate_words(1)
    victim = begin_hardware_transaction(m, 1)
    m.tstore(1, address, 99)
    result = m.load(0, address)
    assert result.value == 0  # committed value, not 99
    assert m.read_status(victim) is TxStatus.ACTIVE


def test_nontx_write_to_unrelated_line_harmless(m):
    address = m.allocate_words(1)
    other = m.allocate(m.params.line_bytes * 8, line_aligned=True)
    victim = begin_hardware_transaction(m, 1)
    m.tstore(1, address, 99)
    m.store(0, other, 5)
    assert m.read_status(victim) is TxStatus.ACTIVE


def test_transactional_cas_traffic_is_not_strong_isolation(m):
    """A transaction's own Commit()/manager CASes must not trigger the
    non-transactional-writer rule against its enemies."""
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    victim = begin_hardware_transaction(m, 1)
    m.tstore(1, address, 1)
    m.tload(0, address)
    scratch = m.allocate_words(1, line_aligned=True)
    m.cas(0, scratch, 0, 1)  # proc 0 is in a transaction
    assert m.read_status(victim) is TxStatus.ACTIVE


def test_committed_writer_not_aborted_by_late_store(m):
    address = m.allocate_words(1)
    victim = begin_hardware_transaction(m, 1)
    m.tstore(1, address, 99)
    assert m.cas_commit(1).success
    m.store(0, address, 5)
    assert m.read_status(victim) is TxStatus.COMMITTED
    assert m.memory.read(address) == 5
