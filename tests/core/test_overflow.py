"""Overflow tables and the OT controller (Section 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overflow import OverflowController, OverflowTable
from repro.errors import OverflowTableError


def test_insert_lookup_extract():
    table = OverflowTable(num_sets=4, associativity=2)
    assert table.insert(10)
    entry = table.lookup(10)
    assert entry is not None and entry.physical_line == 10
    assert table.extract(10).physical_line == 10
    assert table.lookup(10) is None


def test_insert_full_set_returns_false():
    table = OverflowTable(num_sets=2, associativity=1)
    assert table.insert(0)
    assert not table.insert(2)  # same set (0 mod 2)
    assert table.insert(1)  # other set


def test_expand_rehashes_everything():
    table = OverflowTable(num_sets=2, associativity=1)
    table.insert(0)
    grown = table.expand()
    assert grown.num_sets == 4
    assert grown.expansions == 1
    assert grown.lookup(0) is not None


def test_retag_moves_physical_address():
    table = OverflowTable(num_sets=4, associativity=2)
    table.insert(10, logical_line=77)
    assert table.retag(10, 20)
    assert table.lookup(10) is None
    entry = table.lookup(20)
    assert entry.logical_line == 77
    assert not table.retag(999, 1000)


def test_shape_validation():
    with pytest.raises(OverflowTableError):
        OverflowTable(3, 2)
    with pytest.raises(OverflowTableError):
        OverflowTable(4, 0)


@given(st.sets(st.integers(min_value=0, max_value=10_000), max_size=100))
@settings(max_examples=30, deadline=None)
def test_controller_never_loses_lines(lines):
    """Everything spilled is either found by lookup or was extracted."""
    controller = OverflowController(signature_bits=256, num_hashes=2, default_sets=2, associativity=2)
    controller.allocate(thread_id=1)
    for line in lines:
        controller.spill(line)
    for line in lines:
        assert controller.lookup(line)
    assert controller.count == len(lines)
    drained = {physical for physical, _ in controller.committed_lines()}
    assert drained == set(lines)


def test_controller_spill_requires_allocation():
    controller = OverflowController()
    with pytest.raises(OverflowTableError):
        controller.spill(1)


def test_controller_osig_filters_lookups():
    controller = OverflowController(signature_bits=2048, num_hashes=4)
    controller.allocate(thread_id=0)
    controller.spill(10)
    assert controller.lookup(10)
    assert not controller.lookup(123456789)


def test_copyback_window_nacks():
    controller = OverflowController()
    controller.allocate(thread_id=0)
    controller.spill(10)
    done_at = controller.begin_copyback(now=1000, cycles_per_line=20)
    assert done_at == 1020
    assert controller.nacks(10, now=1010)
    assert not controller.nacks(10, now=1020)  # drain finished
    assert not controller.nacks(999_999, now=1010)  # not in Osig


def test_speculative_table_never_nacks():
    controller = OverflowController()
    controller.allocate(thread_id=0)
    controller.spill(10)
    assert not controller.nacks(10, now=0)  # not committed


def test_release_returns_table():
    controller = OverflowController()
    controller.allocate(thread_id=0)
    controller.spill(10)
    controller.release()
    assert not controller.active
    assert controller.count == 0
    assert not controller.lookup(10)


def test_save_restore_roundtrip():
    controller = OverflowController()
    controller.allocate(thread_id=5)
    controller.spill(10)
    saved = controller.save()
    controller.release()
    controller.restore(saved)
    assert controller.active
    assert controller.lookup(10)
    assert controller.thread_id == 5


def test_way_overflow_triggers_expansion():
    controller = OverflowController(default_sets=2, associativity=1)
    controller.allocate(thread_id=0)
    controller.spill(0)
    controller.spill(2)  # same set -> expands rather than failing
    assert controller.lookup(0) and controller.lookup(2)
    assert controller.table.num_sets > 2
