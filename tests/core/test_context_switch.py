"""Context-switch virtualization (Section 5, E8).

Exercised at the hardware level (save/restore on the processor) and at
the machine level (summary signatures catching conflicts against
descheduled transactions).
"""

import pytest

from repro.coherence.messages import ResponseKind
from repro.core.descriptor import RunState
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.params import small_test_params
from tests.helpers import begin_hardware_transaction


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _suspend(m, proc_id):
    """OS suspend path against machine internals (runtime-free)."""
    proc = m.processors[proc_id]
    descriptor = proc.current
    descriptor.run_state = RunState.SUSPENDED
    saved = proc.save_transactional_state()
    descriptor.saved = saved
    m.summary.install(descriptor.thread_id, saved.rsig, saved.wsig, proc_id)
    m.register_suspended(descriptor)
    return descriptor, saved


def test_save_flushes_speculative_state(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 42)
    descriptor, saved = _suspend(m, 0)
    proc = m.processors[0]
    assert proc.l1.array.peek(m.amap.line_of(address)) is None
    assert proc.rsig.is_empty and proc.wsig.is_empty
    assert proc.overlay == {}
    assert saved.overlay[address] == 42
    assert saved.wsig.member(m.amap.line_of(address))


def test_restore_reinstates_registers(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 42)
    descriptor, saved = _suspend(m, 0)
    proc = m.processors[0]
    proc.restore_transactional_state(descriptor, saved)
    assert proc.overlay[address] == 42
    assert proc.wsig.member(m.amap.line_of(address))
    # The transaction can continue and commit its value.
    m.memory.write(descriptor.tsw_address, TxStatus.ACTIVE)
    descriptor.run_state = RunState.RUNNING
    assert m.cas_commit(0).success
    assert m.memory.read(address) == 42


def test_summary_conflict_traps_and_updates_saved_csts(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 42)
    descriptor, _ = _suspend(m, 0)
    # A running transaction on another core misses and conflicts.
    begin_hardware_transaction(m, 1)
    result = m.tload(1, address)
    assert (0, ResponseKind.THREATENED) in result.conflicts
    assert m.stats.counter("summary.traps").value >= 1
    # The suspended transaction's saved W-R names processor 1.
    assert descriptor.saved.csts["w_r"] == 1 << 1
    # The running requestor's R-W names processor 0 (the CMT home).
    assert m.processors[1].csts.r_w.test(0)


def test_summary_read_vs_suspended_reader_no_conflict(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tload(0, address)
    _suspend(m, 0)
    begin_hardware_transaction(m, 1)
    result = m.tload(1, address)
    assert result.conflicts == []


def test_summary_write_vs_suspended_reader_conflicts(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tload(0, address)
    descriptor, _ = _suspend(m, 0)
    begin_hardware_transaction(m, 1)
    result = m.tstore(1, address, 1)
    assert (0, ResponseKind.EXPOSED_READ) in result.conflicts
    assert descriptor.saved.csts["r_w"] == 1 << 1


def test_nontx_store_aborts_suspended_writer(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 42)
    descriptor, _ = _suspend(m, 0)
    m.store(1, address, 5)
    assert m.read_status(descriptor) is TxStatus.ABORTED


def test_summary_removed_on_resume(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 42)
    descriptor, saved = _suspend(m, 0)
    m.summary.remove(descriptor.thread_id)
    m.unregister_suspended(descriptor.thread_id)
    begin_hardware_transaction(m, 1)
    traps_before = m.stats.counter("summary.traps").value
    m.tload(1, address)
    assert m.stats.counter("summary.traps").value == traps_before


def test_sticky_sharer_keeps_directory_listing(m):
    """Cores-Summary: the directory must keep forwarding to a core whose
    descheduled transaction accessed the line."""
    address = m.allocate_words(1)
    line = m.amap.line_of(address)
    begin_hardware_transaction(m, 0)
    m.tload(0, address)
    _suspend(m, 0)
    assert m.summary.sticky_sharer(line, 0)
    # Another core takes the line exclusively; proc 0's L1 dropped it on
    # suspend, but the directory must keep it listed.
    m.store(1, address, 1)
    entry = m.directory.peek_entry(line)
    assert entry.is_sharer(0) or entry.is_owner(0)
