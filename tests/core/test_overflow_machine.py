"""Overflow-table behaviour at the machine level (Section 4.1).

These exercise the full path: TMI eviction -> OT spill -> Osig-filtered
refill on a later access -> committed copy-back with remote NACKs.
"""

import pytest

from repro.coherence.states import LineState
from repro.core.machine import FlexTMMachine
from repro.params import CacheGeometry, SystemParams
from tests.helpers import begin_hardware_transaction


def _tiny_l1_params():
    """1-way 256B L1 (4 lines): trivially overflowed write sets."""
    return SystemParams(
        num_processors=2,
        l1=CacheGeometry(size_bytes=256, associativity=1, line_bytes=64),
        l2=CacheGeometry(size_bytes=64 * 1024, associativity=8, line_bytes=64),
        victim_buffer_entries=0,
        ot_initial_sets=4,
    )


@pytest.fixture
def m():
    return FlexTMMachine(_tiny_l1_params())


def _write_lines(machine, proc, base, count, value_of=lambda i: i + 1):
    for index in range(count):
        machine.tstore(proc, base + index * 64, value_of(index))


def test_tmi_eviction_spills_to_ot(m):
    begin_hardware_transaction(m, 0)
    base = m.allocate(64 * 16, line_aligned=True)
    _write_lines(m, 0, base, 8)
    proc = m.processors[0]
    assert proc.ot.active
    assert proc.ot.count > 0
    assert m.stats.counter("ot.spills").value > 0


def test_ot_refill_on_reaccess(m):
    begin_hardware_transaction(m, 0)
    base = m.allocate(64 * 16, line_aligned=True)
    _write_lines(m, 0, base, 8)
    # Re-read the first line: it was evicted to the OT; the value must
    # come back from the overlay and the line refills as TMI.
    result = m.tload(0, base)
    assert result.value == 1
    refills = m.stats.counter("ot.refills").value
    assert refills >= 1
    line = m.processors[0].l1.array.peek(m.amap.line_of(base))
    assert line is not None and line.state is LineState.TMI


def test_overflowed_transaction_commits_atomically(m):
    begin_hardware_transaction(m, 0)
    base = m.allocate(64 * 16, line_aligned=True)
    _write_lines(m, 0, base, 10)
    assert m.cas_commit(0).success
    for index in range(10):
        assert m.memory.read(base + index * 64) == index + 1
    # OT begins its copy-back (committed bit set).
    assert m.processors[0].ot.committed


def test_overflowed_transaction_abort_discards_everything(m):
    descriptor = begin_hardware_transaction(m, 0)
    base = m.allocate(64 * 16, line_aligned=True)
    _write_lines(m, 0, base, 10)
    m.processors[0].flash_abort()
    for index in range(10):
        assert m.memory.read(base + index * 64) == 0
    assert not m.processors[0].ot.active  # returned to the OS


def test_copyback_window_nacks_remote_requests(m):
    begin_hardware_transaction(m, 0)
    base = m.allocate(64 * 16, line_aligned=True)
    _write_lines(m, 0, base, 10)
    assert m.cas_commit(0).success
    assert m.processors[0].ot.copyback_until > 0
    # A remote access inside the window gets NACKed and must retry.
    result = m.load(1, base)
    assert result.nacked
    assert m.stats.counter("ot.nacks").value >= 1
    # After the drain completes the same access succeeds.
    m.processors[1].clock.advance_to(m.processors[0].ot.copyback_until + 1)
    result = m.load(1, base)
    assert not result.nacked
    assert result.value == 1


def test_remote_conflict_detected_for_overflowed_line(m):
    """Signatures answer for lines living in the OT: the directory keeps
    the owner listed and the Wsig still says Threatened."""
    begin_hardware_transaction(m, 0)
    begin_hardware_transaction(m, 1)
    base = m.allocate(64 * 16, line_aligned=True)
    _write_lines(m, 0, base, 8)  # first lines have overflowed by now
    result = m.tload(1, base)
    assert result.conflicts, "conflict lost when TMI line moved to OT"
    assert result.value == 0  # speculative value invisible


def test_paging_retag_keeps_lookup_working(m):
    begin_hardware_transaction(m, 0)
    base = m.allocate(64 * 16, line_aligned=True)
    _write_lines(m, 0, base, 8)
    proc = m.processors[0]
    spilled = proc.ot.committed_lines()
    physical, logical = spilled[0]
    # OS re-maps the page: update tags and signatures (Section 4.1).
    new_physical = physical + (1 << 20)
    assert proc.ot.table.retag(physical, new_physical)
    proc.ot.osig.insert(new_physical)
    assert proc.ot.lookup(new_physical)
