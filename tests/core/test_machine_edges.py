"""Machine-level corners: warm-up, NACK paths, summary registration."""

import pytest

from repro.core.machine import WORD_BYTES, FlexTMMachine
from repro.core.tsw import TxStatus
from repro.params import small_test_params
from tests.helpers import begin_hardware_transaction


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def test_warm_region_skips_memory_latency(m):
    cold = m.allocate(m.params.line_bytes, line_aligned=True)
    warm = m.allocate(m.params.line_bytes, line_aligned=True)
    m.warm_region(warm, WORD_BYTES)
    cold_cycles = m.load(0, cold).cycles
    warm_cycles = m.load(1, warm).cycles
    assert cold_cycles >= m.params.memory_cycles
    assert warm_cycles < m.params.memory_cycles


def test_warm_region_charges_no_cycles(m):
    m.warm_region(m.allocate(4096, line_aligned=True), 4096)
    assert m.max_cycle() == 0


def test_read_status_for_unknown_value(m):
    descriptor = begin_hardware_transaction(m, 0)
    m.memory.write(descriptor.tsw_address, 999)
    assert m.read_status(descriptor) is TxStatus.INVALID


def test_max_cycle_tracks_busiest_processor(m):
    m.processors[2].clock.advance(500)
    assert m.max_cycle() == 500


def test_suspended_registry_roundtrip(m):
    descriptor = begin_hardware_transaction(m, 0)
    m.register_suspended(descriptor)
    assert m._suspended[descriptor.thread_id] is descriptor
    m.unregister_suspended(descriptor.thread_id)
    assert descriptor.thread_id not in m._suspended
    m.unregister_suspended(descriptor.thread_id)  # idempotent


def test_descriptor_registry_routes_aborts_only_when_registered(m):
    descriptor = begin_hardware_transaction(m, 0)
    address = m.allocate_words(1)
    m.tstore(0, address, 5)
    m.unregister_descriptor(descriptor)
    # An enemy CAS still flips the word, but no hardware-abort routing
    # happens (the descriptor is no longer registered).
    result = m.cas(1, descriptor.tsw_address, TxStatus.ACTIVE, TxStatus.ABORTED)
    assert result.success
    assert descriptor.aborts == 0
    # The speculative line is still there (no flash abort was routed).
    line = m.processors[0].l1.array.peek(m.amap.line_of(address))
    assert line is not None


def test_store_value_visible_to_all_processors(m):
    address = m.allocate_words(1)
    m.store(3, address, 1234)
    for proc in range(4):
        assert m.load(proc, address).value == 1234


def test_aload_marks_and_reads(m):
    address = m.allocate_words(1)
    m.memory.write(address, 88)
    result = m.aload(2, address)
    assert result.value == 88
    assert m.processors[2].alerts.is_marked(m.amap.line_of(address))
