"""Machine-level operation semantics: CAS, CAS-Commit, PDI values."""

import pytest

from repro.coherence.states import LineState
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.errors import ProtocolError
from repro.params import small_test_params
from tests.helpers import begin_hardware_transaction


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def test_cas_success_and_failure(m):
    address = m.allocate_words(1)
    m.store(0, address, 5)
    win = m.cas(1, address, 5, 9)
    assert win.success and win.value == 5
    lose = m.cas(2, address, 5, 11)
    assert not lose.success and lose.value == 9
    assert m.memory.read(address) == 9


def test_tload_tstore_require_transaction(m):
    address = m.allocate_words(1)
    with pytest.raises(ProtocolError):
        m.tload(0, address)
    with pytest.raises(ProtocolError):
        m.tstore(0, address, 1)


def test_speculative_value_private_until_commit(m):
    address = m.allocate_words(1)
    m.store(0, address, 5)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 42)
    # Own transactional read sees the speculative value.
    assert m.tload(0, address).value == 42
    # Global memory still holds the committed value.
    assert m.memory.read(address) == 5
    assert m.load(1, address).value == 5


def test_cas_commit_publishes_values_atomically(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 42)
    result = m.cas_commit(0)
    assert result.success
    assert m.memory.read(address) == 42
    line = m.processors[0].l1.array.peek(m.amap.line_of(address))
    assert line.state is LineState.M  # flash TMI -> M


def test_cas_commit_fails_when_cst_nonzero(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    begin_hardware_transaction(m, 1)
    m.tstore(0, address, 1)
    m.tload(1, address)  # sets proc0's W-R
    result = m.cas_commit(0)
    assert not result.success
    # TSW still active and speculative state preserved (Figure 3 loop).
    assert m.read_status(m.processors[0].current) is TxStatus.ACTIVE
    line = m.processors[0].l1.array.peek(m.amap.line_of(address))
    assert line.state is LineState.TMI


def test_cas_commit_flash_aborts_when_already_aborted(m):
    address = m.allocate_words(1)
    descriptor = begin_hardware_transaction(m, 0)
    m.tstore(0, address, 1)
    m.memory.write(descriptor.tsw_address, TxStatus.ABORTED)
    result = m.cas_commit(0)
    assert not result.success
    assert m.processors[0].l1.array.peek(m.amap.line_of(address)) is None
    assert m.memory.read(address) == 0  # speculation discarded


def test_enemy_cas_abort_triggers_alert_and_flash_abort(m):
    address = m.allocate_words(1)
    victim = begin_hardware_transaction(m, 1)
    m.tstore(1, address, 7)
    result = m.cas(0, victim.tsw_address, TxStatus.ACTIVE, TxStatus.ABORTED)
    assert result.success
    # Victim hardware reverted immediately; alert pending for software.
    assert m.processors[1].l1.array.peek(m.amap.line_of(address)) is None
    assert m.processors[1].alerts.has_pending
    assert victim.aborts == 1


def test_tsw_race_commit_beats_abort(m):
    """Coherence on the TSW line serializes CAS-Commit vs enemy CAS."""
    victim = begin_hardware_transaction(m, 1)
    assert m.cas_commit(1).success
    lose = m.cas(0, victim.tsw_address, TxStatus.ACTIVE, TxStatus.ABORTED)
    assert not lose.success
    assert m.read_status(victim) is TxStatus.COMMITTED


def test_overlay_cleared_after_commit(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 9)
    m.cas_commit(0)
    assert m.processors[0].overlay == {}


def test_allocate_alignment(m):
    word = m.allocate_words(1)
    assert word % 8 == 0
    line = m.allocate(10, line_aligned=True)
    assert line % m.params.line_bytes == 0
    with pytest.raises(ValueError):
        m.allocate(0)


def test_distinct_allocations_do_not_overlap(m):
    a = m.allocate(100)
    b = m.allocate(100)
    assert b >= a + 100
