"""Conflict summary tables, incl. property-based register checks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cst import ConflictSummaryTables, CstRegister


def test_set_test_clear_bit():
    register = CstRegister("R-W", 16)
    register.set(3)
    assert register.test(3)
    register.clear_bit(3)
    assert not register.test(3)


def test_copy_and_clear_is_atomic_read_zero():
    register = CstRegister("W-W", 16)
    register.set(1)
    register.set(5)
    value = register.copy_and_clear()
    assert value == (1 << 1) | (1 << 5)
    assert register.is_empty


def test_processors_iteration_order():
    register = CstRegister("W-R", 16)
    for processor in (9, 2, 13):
        register.set(processor)
    assert list(register.processors()) == [2, 9, 13]


def test_bounds_checked():
    register = CstRegister("R-W", 8)
    with pytest.raises(ValueError):
        register.set(8)
    with pytest.raises(ValueError):
        register.test(-1)
    with pytest.raises(ValueError):
        register.value = 1 << 8


@given(st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_popcount_matches_bits(mask):
    register = CstRegister("x", 16)
    register.value = mask
    assert register.popcount == bin(mask).count("1")
    assert list(register.processors()) == [
        index for index in range(16) if (mask >> index) & 1
    ]


def test_tables_must_abort_mask_is_wr_or_ww():
    tables = ConflictSummaryTables(16)
    tables.r_w.set(1)  # R-W does NOT require aborting anyone
    tables.w_r.set(2)
    tables.w_w.set(3)
    assert tables.must_abort_mask == (1 << 2) | (1 << 3)
    assert tables.enemies() == [2, 3]


def test_conflict_degree_unions_all_three():
    tables = ConflictSummaryTables(16)
    tables.r_w.set(1)
    tables.w_r.set(1)
    tables.w_w.set(2)
    assert tables.conflict_degree() == 2


def test_clear_empties_everything():
    tables = ConflictSummaryTables(16)
    tables.r_w.set(0)
    tables.w_r.set(1)
    tables.w_w.set(2)
    tables.clear()
    assert tables.is_empty


@given(
    st.integers(min_value=0, max_value=(1 << 16) - 1),
    st.integers(min_value=0, max_value=(1 << 16) - 1),
    st.integers(min_value=0, max_value=(1 << 16) - 1),
)
def test_save_restore_roundtrip(rw, wr, ww):
    tables = ConflictSummaryTables(16)
    tables.r_w.value = rw
    tables.w_r.value = wr
    tables.w_w.value = ww
    saved = tables.save()
    other = ConflictSummaryTables(16)
    other.restore(saved)
    assert (other.r_w.value, other.w_r.value, other.w_w.value) == (rw, wr, ww)
