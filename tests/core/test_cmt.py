"""Conflict management table invariants (Section 5)."""

import pytest

from repro.core.cmt import ConflictManagementTable
from repro.core.descriptor import TransactionDescriptor


def _descriptor(thread_id):
    return TransactionDescriptor(thread_id=thread_id, tsw_address=thread_id * 64)


def test_register_and_lookup():
    cmt = ConflictManagementTable(4)
    descriptor = _descriptor(1)
    cmt.register(2, descriptor)
    assert cmt.active_on(2) == [descriptor]
    assert descriptor.last_processor == 2


def test_register_is_idempotent():
    cmt = ConflictManagementTable(4)
    descriptor = _descriptor(1)
    cmt.register(0, descriptor)
    cmt.register(0, descriptor)
    assert len(cmt.active_on(0)) == 1


def test_unregister_removes_everywhere():
    cmt = ConflictManagementTable(4)
    descriptor = _descriptor(1)
    cmt.register(0, descriptor)
    cmt.register(1, descriptor)  # e.g. re-registered after reschedule
    cmt.unregister(descriptor)
    assert cmt.active_on(0) == [] and cmt.active_on(1) == []


def test_move_rehomes():
    cmt = ConflictManagementTable(4)
    descriptor = _descriptor(1)
    cmt.register(0, descriptor)
    cmt.move(descriptor, 3)
    assert cmt.active_on(0) == []
    assert cmt.active_on(3) == [descriptor]
    assert descriptor.last_processor == 3


def test_multiple_descriptors_per_processor():
    """Running + suspended transactions can share a processor's list."""
    cmt = ConflictManagementTable(4)
    running = _descriptor(1)
    suspended = _descriptor(2)
    cmt.register(0, running)
    cmt.register(0, suspended)
    assert set(d.thread_id for d in cmt.active_on(0)) == {1, 2}
    assert len(cmt) == 2


def test_bounds_checked():
    cmt = ConflictManagementTable(2)
    with pytest.raises(ValueError):
        cmt.register(5, _descriptor(1))
    with pytest.raises(ValueError):
        cmt.active_on(-1)
    with pytest.raises(ValueError):
        ConflictManagementTable(0)


def test_all_descriptors_deduplicates():
    cmt = ConflictManagementTable(4)
    descriptor = _descriptor(1)
    cmt.register(0, descriptor)
    # Manually force a second listing (reschedule invariant).
    cmt._lists[1].append(descriptor)
    assert len(list(cmt.all_descriptors())) == 1
