"""Paging flows of Section 4.1."""

import pytest

from repro.core.machine import FlexTMMachine
from repro.core.paging import PAGE_BYTES, page_lines, remap_page, unmap_page
from repro.params import small_test_params
from tests.helpers import begin_hardware_transaction


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _page_base(m):
    base = m.allocate(2 * PAGE_BYTES, line_aligned=True)
    return (base + PAGE_BYTES - 1) & ~(PAGE_BYTES - 1)


def test_page_lines_geometry(m):
    base = _page_base(m)
    lines = page_lines(m, base)
    assert len(lines) == PAGE_BYTES // m.params.line_bytes
    with pytest.raises(ValueError):
        page_lines(m, base + 8)


def test_unmap_moves_tmi_lines_to_ot(m):
    base = _page_base(m)
    begin_hardware_transaction(m, 0)
    m.tstore(0, base, 7)
    m.tstore(0, base + 64, 8)
    moved = unmap_page(m, base)
    assert moved == 2
    proc = m.processors[0]
    assert proc.ot.active
    assert proc.ot.lookup(m.amap.line_of(base))
    assert proc.l1.array.peek(m.amap.line_of(base)) is None
    # Speculative values are still intact in the overlay.
    assert proc.overlay[base] == 7


def test_unmap_drops_plain_copies(m):
    base = _page_base(m)
    m.load(0, base)
    unmap_page(m, base)
    assert m.processors[0].l1.array.peek(m.amap.line_of(base)) is None


def test_remap_updates_running_signatures(m):
    base = _page_base(m)
    new_base = base + PAGE_BYTES
    begin_hardware_transaction(m, 0)
    m.tload(0, base)
    m.tstore(0, base + 64, 9)
    updates = remap_page(m, base, new_base)
    assert updates >= 2
    proc = m.processors[0]
    assert proc.rsig.member(m.amap.line_of(new_base))
    assert proc.wsig.member(m.amap.line_of(new_base + 64))
    # Old addresses stay set (false positives only — conservative).
    assert proc.rsig.member(m.amap.line_of(base))
    # Overlay values moved to the new frame.
    assert proc.overlay[new_base + 64] == 9


def test_remap_retags_ot_entries(m):
    base = _page_base(m)
    new_base = base + PAGE_BYTES
    begin_hardware_transaction(m, 0)
    m.tstore(0, base, 7)
    unmap_page(m, base)  # push the TMI line into the OT
    remap_page(m, base, new_base)
    proc = m.processors[0]
    assert proc.ot.lookup(m.amap.line_of(new_base))


def test_remap_updates_suspended_signatures(m):
    base = _page_base(m)
    new_base = base + PAGE_BYTES
    descriptor = begin_hardware_transaction(m, 0)
    m.tload(0, base)
    from repro.core.descriptor import RunState

    descriptor.run_state = RunState.SUSPENDED
    saved = m.processors[0].save_transactional_state()
    descriptor.saved = saved
    m.register_suspended(descriptor)
    remap_page(m, base, new_base)
    assert descriptor.saved.rsig.member(m.amap.line_of(new_base))


def test_remap_rejects_unaligned_target(m):
    base = _page_base(m)
    with pytest.raises(ValueError):
        remap_page(m, base, base + 8)


def test_remapped_transaction_still_commits(m):
    """End to end: write, unmap, remap, then commit at the new frame."""
    base = _page_base(m)
    new_base = base + PAGE_BYTES
    begin_hardware_transaction(m, 0)
    m.tstore(0, base, 41)
    unmap_page(m, base)
    remap_page(m, base, new_base)
    assert m.cas_commit(0).success
    assert m.memory.read(new_base) == 41
