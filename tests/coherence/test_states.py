"""TMESI state encodings and transforms (Figure 1)."""


from repro.coherence.states import LineState


def test_encoding_table_matches_figure1():
    assert LineState.I.encoding == (0, 0, 0)
    assert LineState.S.encoding == (0, 1, 0)
    assert LineState.M.encoding == (1, 0, 0)
    assert LineState.E.encoding == (1, 1, 0)
    assert LineState.TMI.encoding == (1, 0, 1)
    assert LineState.TI.encoding == (0, 0, 1)


def test_t_bit_marks_transactional_states():
    for state in LineState:
        assert state.is_transactional == (state.encoding[2] == 1)


def test_commit_transform():
    """TMI -> M (speculation becomes real), TI -> I (copy may be stale)."""
    assert LineState.TMI.after_commit() is LineState.M
    assert LineState.TI.after_commit() is LineState.I
    for state in (LineState.M, LineState.E, LineState.S, LineState.I):
        assert state.after_commit() is state


def test_abort_transform():
    """Both transactional states discard to I."""
    assert LineState.TMI.after_abort() is LineState.I
    assert LineState.TI.after_abort() is LineState.I
    for state in (LineState.M, LineState.E, LineState.S, LineState.I):
        assert state.after_abort() is state


def test_readability():
    assert LineState.TI.readable
    assert LineState.TMI.readable
    assert not LineState.I.readable


def test_writability():
    assert LineState.M.writable and LineState.E.writable
    for state in (LineState.S, LineState.I, LineState.TI, LineState.TMI):
        assert not state.writable


def test_tstore_hits_only_in_tmi():
    assert LineState.TMI.tstore_hits
    for state in LineState:
        if state is not LineState.TMI:
            assert not state.tstore_hits


def test_validity():
    assert not LineState.I.is_valid
    for state in LineState:
        if state is not LineState.I:
            assert state.is_valid
