"""L1 controller corner cases: AOU bits, flash sweeps, victim buffer."""

import pytest

from repro.coherence.messages import AccessKind
from repro.coherence.states import LineState
from repro.core.machine import FlexTMMachine
from repro.params import CacheGeometry, SystemParams
from tests.helpers import begin_hardware_transaction


def _params():
    return SystemParams(
        num_processors=2,
        l1=CacheGeometry(size_bytes=512, associativity=2, line_bytes=64),
        l2=CacheGeometry(size_bytes=64 * 1024, associativity=8, line_bytes=64),
        victim_buffer_entries=4,
    )


@pytest.fixture
def m():
    return FlexTMMachine(_params())


def test_aload_sets_and_arelease_clears_a_bit(m):
    address = m.allocate_words(1)
    m.aload(0, address)
    line = m.processors[0].l1.array.peek(m.amap.line_of(address))
    assert line.a_bit
    m.processors[0].l1.arelease(m.amap.line_of(address))
    assert not line.a_bit


def test_alert_on_remote_invalidation(m):
    address = m.allocate_words(1)
    m.aload(0, address)
    m.store(1, address, 5)  # remote GETX invalidates the marked line
    assert m.processors[0].alerts.has_pending
    pending = m.processors[0].alerts.peek_pending()
    assert pending[0].reason == "invalidated"


def test_alert_on_capacity_eviction(m):
    params = m.params
    address = m.allocate_words(1, line_aligned=True)
    m.aload(0, address)
    # Fill the set until the marked line is evicted.
    set_span = params.l1.num_sets * params.line_bytes
    for way in range(1, params.l1.associativity + 1):
        m.load(0, address + way * set_span)
    assert m.processors[0].alerts.has_pending
    assert m.processors[0].alerts.peek_pending()[0].reason == "evicted"


def test_no_alert_without_mark(m):
    address = m.allocate_words(1)
    m.load(0, address)
    m.store(1, address, 5)
    assert not m.processors[0].alerts.has_pending


def test_remote_gets_keeps_local_shared_copy(m):
    address = m.allocate_words(1)
    m.load(0, address)
    m.load(1, address)
    line = m.processors[0].l1.array.peek(m.amap.line_of(address))
    assert line is not None and line.state is LineState.S


def test_ti_line_in_victim_buffer_cleared_on_commit(m):
    """The flash transforms must sweep the victim buffer too."""
    proc = m.processors[0]
    line_address = 0x4000 >> m.params.offset_bits
    proc.l1.victims.insert(line_address, LineState.TI)
    proc.l1.flash_commit()
    assert not proc.l1.victims.contains(line_address)


def test_ti_line_in_victim_buffer_cleared_on_abort(m):
    proc = m.processors[0]
    line_address = 0x4000 >> m.params.offset_bits
    proc.l1.victims.insert(line_address, LineState.TI)
    proc.l1.flash_abort()
    assert not proc.l1.victims.contains(line_address)


def test_tmi_to_victim_mode_commits_from_buffer():
    """The E7 'ideal machine': TMI evictions go to an unbounded victim
    buffer and commit by flash-transform, no OT involved."""
    machine = FlexTMMachine(_params(), tmi_to_victim=True)
    begin_hardware_transaction(machine, 0)
    base = machine.allocate(64 * 16, line_aligned=True)
    for index in range(12):
        machine.tstore(0, base + index * 64, index + 1)
    assert not machine.processors[0].ot.active  # OT never engaged
    assert machine.cas_commit(0).success
    for index in range(12):
        assert machine.memory.read(base + index * 64) == index + 1


def test_eviction_of_plain_lines_is_silent(m):
    address = m.allocate_words(1, line_aligned=True)
    m.load(0, address)
    silent_before = m.stats.counter("l1.silent_evictions").value
    set_span = m.params.l1.num_sets * m.params.line_bytes
    for way in range(1, m.params.l1.associativity + 1):
        m.load(0, address + way * set_span)
    assert m.stats.counter("l1.silent_evictions").value > silent_before
    # Directory still lists us (sticky until a forward notices).
    assert 0 in m.directory.owners_of(m.amap.line_of(address)) or (
        0 in m.directory.sharers_of(m.amap.line_of(address))
    )


def test_store_to_local_tmi_is_a_protocol_error(m):
    from repro.errors import ProtocolError

    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 1)
    with pytest.raises(ProtocolError):
        m.processors[0].l1.access(AccessKind.STORE, m.amap.line_of(address))
