"""Directory bookkeeping details."""

import pytest

from repro.coherence.directory import DirectoryEntry
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from tests.helpers import begin_hardware_transaction


def test_entry_bitmask_operations():
    entry = DirectoryEntry()
    entry.add_sharer(2)
    entry.add_sharer(5)
    entry.add_owner(5)  # promotion clears the sharer bit
    assert entry.is_owner(5) and not entry.is_sharer(5)
    assert entry.is_sharer(2)
    entry.demote_owner_to_sharer(5)
    assert entry.is_sharer(5) and not entry.is_owner(5)
    entry.drop(5)
    entry.drop(2)
    assert entry.empty


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def test_signature_holder_stays_listed_after_invalidation(m):
    """The fix behind the write-skew bug (EXPERIMENTS.md): an
    invalidated transactional reader keeps receiving forwards."""
    address = m.allocate_words(1, line_aligned=True)
    line = m.amap.line_of(address)
    begin_hardware_transaction(m, 0)
    m.tload(0, address)  # proc0 reads (S + Rsig)
    begin_hardware_transaction(m, 1)
    m.tstore(1, address, 5)  # invalidates proc0's copy...
    assert m.processors[0].l1.array.peek(line) is None
    entry = m.directory.peek_entry(line)
    assert entry.is_sharer(0) or entry.is_owner(0)  # ...but keeps it listed
    # A second writer still detects the conflict with proc0's read.
    begin_hardware_transaction(m, 2)
    result = m.tstore(2, address, 7)
    assert any(proc == 0 for proc, _ in result.conflicts)


def test_non_transactional_holder_pruned_after_drop(m):
    """Without a signature stake, lazily pruning is still correct."""
    address = m.allocate_words(1, line_aligned=True)
    line = m.amap.line_of(address)
    m.load(0, address)  # plain read: no signature
    m.store(1, address, 5)  # invalidates proc0
    entry = m.directory.peek_entry(line)
    assert not entry.is_sharer(0) and not entry.is_owner(0)


def test_stale_signature_holder_pruned_after_transaction_ends(m):
    address = m.allocate_words(1, line_aligned=True)
    line = m.amap.line_of(address)
    begin_hardware_transaction(m, 0)
    m.tload(0, address)
    begin_hardware_transaction(m, 1)
    m.tstore(1, address, 5)  # proc0 invalidated but retained (Rsig)
    # proc0's transaction ends: signatures clear.
    m.processors[0].flash_abort()
    m.processors[0].end_transaction()
    # The next forward finds no stake and prunes proc0.
    m.store(2, address, 9)
    entry = m.directory.peek_entry(line)
    assert not entry.is_sharer(0) and not entry.is_owner(0)


def test_writeback_updates_l2_without_touching_lists(m):
    address = m.allocate_words(1, line_aligned=True)
    line = m.amap.line_of(address)
    m.store(0, address, 1)
    owners_before = m.directory.owners_of(line)
    m.directory.writeback(0, line)
    assert m.directory.owners_of(line) == owners_before


def test_gets_demotes_m_owner_to_sharer(m):
    address = m.allocate_words(1, line_aligned=True)
    line = m.amap.line_of(address)
    m.store(0, address, 1)
    assert m.directory.owners_of(line) == [0]
    m.load(1, address)
    assert 0 in m.directory.sharers_of(line)
    assert 0 not in m.directory.owners_of(line)
