"""Pin the executable LineState enum against the machine-readable spec.

Figure 1's encoding table and predicates exist twice by design: once as
executable properties on :class:`repro.coherence.states.LineState` and
once as plain data in :mod:`repro.coherence.spec` (which the simcheck
protocol rules consume).  These tests are the bridge — if either copy
drifts, the suite fails before the static pass ever runs.
"""

from __future__ import annotations

import pytest

from repro.coherence import spec
from repro.coherence.messages import AccessKind, RequestType, ResponseKind
from repro.coherence.states import LineState

_ACCESS_BY_NAME = {
    "Load": AccessKind.LOAD,
    "Store": AccessKind.STORE,
    "TLoad": AccessKind.TLOAD,
    "TStore": AccessKind.TSTORE,
}


def test_spec_states_match_enum_members():
    assert set(spec.STATES) == {state.name for state in LineState}
    assert set(spec.REQUESTS) == {request.name for request in RequestType}
    assert set(spec.ACCESSES) == set(_ACCESS_BY_NAME)
    assert set(spec.RESPONSES) == {response.value for response in ResponseKind}


@pytest.mark.parametrize("state", list(LineState))
def test_encodings_match_figure1(state):
    assert state.encoding == spec.ENCODINGS[state.name]


def test_encodings_are_distinct():
    encodings = [spec.ENCODINGS[name] for name in spec.STATES]
    assert len(set(encodings)) == len(encodings)


@pytest.mark.parametrize("state", list(LineState))
def test_state_predicates_match_spec(state):
    for predicate, satisfying in spec.STATE_PREDICATES.items():
        assert getattr(state, predicate) == (state.name in satisfying), (
            f"LineState.{state.name}.{predicate} disagrees with "
            f"spec.STATE_PREDICATES[{predicate!r}]"
        )


def test_t_bit_is_exactly_the_transactional_predicate():
    for state in LineState:
        assert (state.encoding[2] == 1) == state.is_transactional


def test_m_v_bits_match_predicates():
    for state in LineState:
        m_bit, v_bit, t_bit = state.encoding
        # Writable (exclusive, non-speculative) states are M-bit
        # non-transactional states.
        assert state.writable == (m_bit == 1 and t_bit == 0)
        # I is the only state without a usable copy.
        assert state.is_valid == (state is not LineState.I)


@pytest.mark.parametrize("kind", list(AccessKind))
def test_access_predicates_match_spec(kind):
    name = next(name for name, member in _ACCESS_BY_NAME.items() if member is kind)
    for predicate, satisfying in spec.ACCESS_PREDICATES.items():
        assert getattr(kind, predicate) == (name in satisfying)


@pytest.mark.parametrize("req_type", list(RequestType))
def test_request_predicates_match_spec(req_type):
    for predicate, satisfying in spec.REQUEST_PREDICATES.items():
        assert getattr(req_type, predicate) == (req_type.name in satisfying)


@pytest.mark.parametrize("state", list(LineState))
def test_flash_transforms_match_figure3(state):
    assert state.after_commit().name == spec.COMMIT_TRANSFORM[state.name]
    assert state.after_abort().name == spec.ABORT_TRANSFORM[state.name]


def test_dual_cst_is_an_involution():
    for table, mirror in spec.DUAL_CST.items():
        assert spec.DUAL_CST[mirror] == table


def test_response_conflict_signal_matches_table():
    # Every response the spec derives from a signature hit signals a
    # conflict relationship except plain Shared.
    conflicting = {
        response
        for response in spec.RESPONSE_TABLE.values()
        if response != "Shared"
    }
    for response in ResponseKind:
        if response.value in conflicting:
            assert response.signals_conflict
