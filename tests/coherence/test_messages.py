"""Request/response vocabulary."""

from repro.coherence.messages import AccessKind, AccessResult, RequestType, ResponseKind


def test_access_kind_classification():
    assert AccessKind.TLOAD.is_transactional
    assert AccessKind.TSTORE.is_transactional
    assert not AccessKind.LOAD.is_transactional
    assert AccessKind.STORE.is_write and AccessKind.TSTORE.is_write
    assert not AccessKind.TLOAD.is_write


def test_exclusive_requests():
    assert RequestType.GETX.is_exclusive
    assert RequestType.TGETX.is_exclusive
    assert not RequestType.GETS.is_exclusive


def test_conflict_signalling():
    assert ResponseKind.THREATENED.signals_conflict
    assert ResponseKind.EXPOSED_READ.signals_conflict
    # Rsig hit on a non-transactional GETX (strong isolation).
    assert ResponseKind.INVALIDATED.signals_conflict
    assert not ResponseKind.SHARED.signals_conflict


def test_access_result_defaults():
    result = AccessResult()
    assert not result.conflicted
    assert result.cycles == 0
    result.conflicts.append((1, ResponseKind.THREATENED))
    assert result.conflicted
