"""Property-based protocol stress: random op interleavings.

Hypothesis drives random sequences of transactional and plain accesses
across processors and checks global invariants after every operation:

* single-writer-or-multiple-readers for non-transactional lines;
* speculative (TMI) values never visible to other processors or memory;
* directory owner/sharer lists cover every cached copy;
* flash abort erases all speculative state.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.coherence.states import LineState
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.params import small_test_params
from tests.helpers import begin_hardware_transaction

NUM_PROCS = 3
NUM_LINES = 4

op_strategy = st.tuples(
    st.sampled_from(["load", "store", "tload", "tstore", "commit", "abort"]),
    st.integers(min_value=0, max_value=NUM_PROCS - 1),
    st.integers(min_value=0, max_value=NUM_LINES - 1),
    st.integers(min_value=1, max_value=100),
)


def _check_invariants(machine, addresses, shadow):
    for address in addresses:
        line = machine.amap.line_of(address)
        entry = machine.directory.peek_entry(line)
        non_tmi_owners = []
        for proc in machine.processors:
            cached = proc.l1.array.peek(line)
            if cached is None:
                continue
            # Directory covers every cached copy (possibly conservatively).
            assert entry is not None
            assert entry.is_owner(proc.proc_id) or entry.is_sharer(proc.proc_id), (
                f"proc {proc.proc_id} caches 0x{line:x} ({cached.state}) unlisted"
            )
            if cached.state in (LineState.M, LineState.E):
                non_tmi_owners.append(proc.proc_id)
        assert len(non_tmi_owners) <= 1, "two exclusive non-TMI owners"
        # Committed value integrity: memory only changes via commits and
        # plain stores, both tracked in the shadow model.
        assert machine.memory.read(address) == shadow[address]


@given(st.lists(op_strategy, min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
# A non-transactional reader of a TMI line leaves a W-R CST bit on the
# writer; commit must clear-and-resolve it (there is no enemy TSW to
# abort) instead of wedging on CAS-Commit's CST check and leaking the
# TMI line into a plain store.
@example(
    ops=[("tstore", 1, 3, 1),
         ("load", 0, 3, 1),
         ("commit", 1, 0, 1),
         ("store", 1, 3, 1)],
)
def test_random_interleavings_preserve_invariants(ops):
    machine = FlexTMMachine(small_test_params(NUM_PROCS))
    base = machine.allocate(NUM_LINES * machine.params.line_bytes, line_aligned=True)
    addresses = [base + i * machine.params.line_bytes for i in range(NUM_LINES)]
    shadow = {address: 0 for address in addresses}
    descriptors = {}
    overlays = {p: {} for p in range(NUM_PROCS)}

    for op, proc, index, value in ops:
        address = addresses[index]
        in_txn = proc in descriptors and (
            machine.read_status(descriptors[proc]) is TxStatus.ACTIVE
        )
        if op in ("tload", "tstore", "commit", "abort") and not in_txn:
            if proc in descriptors:
                machine.processors[proc].flash_abort()
                machine.processors[proc].end_transaction()
                descriptors.pop(proc, None)
            if op in ("commit", "abort"):
                continue
            descriptors[proc] = begin_hardware_transaction(machine, proc)
            overlays[proc] = {}
        if op == "load":
            if machine.processors[proc].in_transaction:
                continue  # plain ops modelled outside transactions only
            result = machine.load(proc, address)
            assert result.value == shadow[address]
        elif op == "store":
            if machine.processors[proc].in_transaction:
                continue
            machine.store(proc, address, value)
            shadow[address] = value
        elif op == "tload":
            result = machine.tload(proc, address)
            expected = overlays[proc].get(address, shadow[address])
            assert result.value == expected
        elif op == "tstore":
            machine.tstore(proc, address, value)
            overlays[proc][address] = value
        elif op == "commit":
            descriptor = descriptors.pop(proc)
            # Figure 3's Commit(): snapshot-and-clear the W-R/W-W CSTs,
            # then abort the enemies they name.  Clearing matters — a
            # bit may name a *non-transactional* reader (strong
            # isolation gives it the committed value and no TSW to
            # abort), and CAS-Commit retries forever while the live
            # registers are non-zero.
            csts = machine.processors[proc].csts
            mask = csts.w_r.copy_and_clear() | csts.w_w.copy_and_clear()
            enemy = 0
            while mask:
                if mask & 1 and enemy != proc and enemy in descriptors:
                    machine.cas(
                        proc,
                        descriptors[enemy].tsw_address,
                        TxStatus.ACTIVE,
                        TxStatus.ABORTED,
                    )
                mask >>= 1
                enemy += 1
            result = machine.cas_commit(proc)
            if result.success:
                shadow.update(overlays[proc])
            # On a lost race cas_commit has already flash-aborted the
            # speculative state; either way the transaction is over.
            machine.processors[proc].end_transaction()
            overlays[proc] = {}
        elif op == "abort":
            descriptor = descriptors.pop(proc)
            machine.memory.write(descriptor.tsw_address, TxStatus.ABORTED)
            machine.processors[proc].flash_abort()
            machine.processors[proc].end_transaction()
            overlays[proc] = {}
        # Clean up any processor whose transaction got wounded.
        for other, descriptor in list(descriptors.items()):
            if machine.read_status(descriptor) is TxStatus.ABORTED:
                machine.processors[other].flash_abort()
                machine.processors[other].end_transaction()
                descriptors.pop(other)
                overlays[other] = {}
        _check_invariants(machine, addresses, shadow)
