"""Directory + L1 protocol transitions, exercised through the machine.

These are the Figure 1 transitions observed from outside: local state
after each access, response types, directory bookkeeping, invalidation
on exclusive requests, TMI multiple-owner behaviour, Threatened reads
installing TI, and eviction stickiness.
"""

import pytest

from repro.coherence.messages import ResponseKind
from repro.coherence.states import LineState
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from tests.helpers import begin_hardware_transaction


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _state(machine, proc, address):
    line = machine.amap.line_of(address)
    cached = machine.processors[proc].l1.array.peek(line)
    return cached.state if cached else LineState.I


def test_cold_load_grants_exclusive(m):
    address = m.allocate_words(1)
    m.load(0, address)
    assert _state(m, 0, address) is LineState.E
    assert m.directory.owners_of(m.amap.line_of(address)) == [0]


def test_second_reader_demotes_to_shared(m):
    address = m.allocate_words(1)
    m.load(0, address)
    m.load(1, address)
    assert _state(m, 0, address) is LineState.S
    assert _state(m, 1, address) is LineState.S
    assert m.directory.sharers_of(m.amap.line_of(address)) == [0, 1]


def test_store_invalidates_sharers(m):
    address = m.allocate_words(1)
    m.load(0, address)
    m.load(1, address)
    m.store(1, address, 9)
    assert _state(m, 1, address) is LineState.M
    assert _state(m, 0, address) is LineState.I
    assert m.directory.owners_of(m.amap.line_of(address)) == [1]


def test_silent_e_to_m_upgrade(m):
    address = m.allocate_words(1)
    m.load(0, address)
    requests_before = m.stats.counter("dir.requests.GETX").value
    m.store(0, address, 5)
    assert _state(m, 0, address) is LineState.M
    assert m.stats.counter("dir.requests.GETX").value == requests_before


def test_remote_m_flushes_on_read(m):
    address = m.allocate_words(1)
    m.store(0, address, 7)
    result = m.load(1, address)
    assert result.value == 7
    assert _state(m, 0, address) is LineState.S
    assert _state(m, 1, address) is LineState.S


def test_tstore_installs_tmi(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 1)
    assert _state(m, 0, address) is LineState.TMI
    line = m.amap.line_of(address)
    assert m.directory.owners_of(line) == [0]
    assert m.processors[0].wsig.member(line)


def test_tmi_supports_multiple_owners(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    begin_hardware_transaction(m, 1)
    m.tstore(0, address, 1)
    result = m.tstore(1, address, 2)
    assert (0, ResponseKind.THREATENED) in result.conflicts
    assert _state(m, 0, address) is LineState.TMI  # TMI never yields
    assert _state(m, 1, address) is LineState.TMI
    assert m.directory.owners_of(m.amap.line_of(address)) == [0, 1]


def test_threatened_tload_installs_ti_and_reads_old_value(m):
    address = m.allocate_words(1)
    m.store(0, address, 5)  # committed value
    begin_hardware_transaction(m, 0)
    begin_hardware_transaction(m, 1)
    m.tstore(0, address, 99)
    result = m.tload(1, address)
    assert result.value == 5  # speculative 99 is invisible
    assert (0, ResponseKind.THREATENED) in result.conflicts
    assert _state(m, 1, address) is LineState.TI


def test_threatened_plain_load_stays_uncached(m):
    address = m.allocate_words(1)
    m.store(1, address, 5)
    begin_hardware_transaction(m, 0)
    m.tstore(0, address, 99)
    result = m.load(2, address)
    assert result.value == 5
    assert _state(m, 2, address) is LineState.I


def test_tload_of_uncontended_line_shares(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    result = m.tload(0, address)
    assert not result.conflicts
    assert _state(m, 0, address) in (LineState.E, LineState.S)
    assert m.processors[0].rsig.member(m.amap.line_of(address))


def test_exposed_read_on_tgetx_over_reader(m):
    address = m.allocate_words(1)
    begin_hardware_transaction(m, 0)
    begin_hardware_transaction(m, 1)
    m.tload(0, address)
    result = m.tstore(1, address, 3)
    assert (0, ResponseKind.EXPOSED_READ) in result.conflicts


def test_tstore_on_local_m_flushes_then_tmi(m):
    address = m.allocate_words(1)
    m.store(0, address, 4)
    begin_hardware_transaction(m, 0)
    writebacks = m.stats.counter("dir.writebacks").value
    m.tstore(0, address, 5)
    assert _state(m, 0, address) is LineState.TMI
    assert m.stats.counter("dir.writebacks").value == writebacks + 1


def test_x_request_invalidates_remote_ti(m):
    address = m.allocate_words(1)
    m.store(0, address, 5)
    begin_hardware_transaction(m, 0)
    begin_hardware_transaction(m, 1)
    m.tstore(0, address, 99)
    m.tload(1, address)  # TI at proc 1
    assert _state(m, 1, address) is LineState.TI
    begin_hardware_transaction(m, 2)
    m.tstore(2, address, 55)
    assert _state(m, 1, address) is LineState.I


def test_latency_ordering(m):
    """hit < L2 < memory, and remote forwards sit between."""
    address = m.allocate_words(1)
    cold = m.load(0, address).cycles
    hit = m.load(0, address).cycles
    remote = m.load(1, address).cycles
    assert hit < remote < cold


def test_victim_refill_cheaper_than_l2(m):
    params = m.params
    # Fill one set beyond associativity to force a silent eviction.
    set_span = params.l1.num_sets * params.line_bytes
    base = m.allocate(set_span * (params.l1.associativity + 1), line_aligned=True)
    addresses = [base + way * set_span for way in range(params.l1.associativity + 1)]
    for address in addresses:
        m.load(0, address)
    refill = m.load(0, addresses[0])  # comes from the victim buffer
    assert refill.cycles < m.params.l2_hit_cycles
