"""Table-driven conformance against Figure 1's transition tables.

For every (local state, processor operation) and (local state, remote
request) pair, build a two-processor machine, place the line in the
required state at processor 0, apply the stimulus, and check the
resulting local state against the figure.
"""

import pytest

from repro.coherence.messages import AccessKind, RequestType, ResponseKind
from repro.coherence.states import LineState
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from tests.helpers import begin_hardware_transaction


def _machine():
    return FlexTMMachine(small_test_params(4))


def _put_in_state(machine, state):
    """Drive processor 0's copy of a fresh line into ``state``."""
    address = machine.allocate_words(1, line_aligned=True)
    if state is LineState.E:
        machine.load(0, address)
    elif state is LineState.S:
        machine.load(0, address)
        machine.load(1, address)
    elif state is LineState.M:
        machine.store(0, address, 1)
    elif state is LineState.TMI:
        begin_hardware_transaction(machine, 0)
        machine.tstore(0, address, 1)
    elif state is LineState.TI:
        begin_hardware_transaction(machine, 1)
        machine.tstore(1, address, 1)
        begin_hardware_transaction(machine, 0)
        machine.tload(0, address)
    elif state is LineState.I:
        pass
    observed = _state_of(machine, 0, address)
    assert observed is state, f"setup failed: wanted {state}, got {observed}"
    return address


def _state_of(machine, proc, address):
    cached = machine.processors[proc].l1.array.peek(machine.amap.line_of(address))
    return cached.state if cached else LineState.I


def _ensure_txn(machine, proc):
    if machine.processors[proc].current is None:
        begin_hardware_transaction(machine, proc)


# (start state, op, expected state) — the local-operation half of Fig.1.
LOCAL_TRANSITIONS = [
    (LineState.I, AccessKind.LOAD, LineState.E),  # sole reader gets E
    (LineState.I, AccessKind.STORE, LineState.M),
    (LineState.I, AccessKind.TLOAD, LineState.E),
    (LineState.I, AccessKind.TSTORE, LineState.TMI),
    (LineState.S, AccessKind.LOAD, LineState.S),
    (LineState.S, AccessKind.TLOAD, LineState.S),
    (LineState.S, AccessKind.STORE, LineState.M),
    (LineState.S, AccessKind.TSTORE, LineState.TMI),
    (LineState.E, AccessKind.LOAD, LineState.E),
    (LineState.E, AccessKind.TLOAD, LineState.E),
    (LineState.E, AccessKind.STORE, LineState.M),  # silent upgrade
    (LineState.E, AccessKind.TSTORE, LineState.TMI),
    (LineState.M, AccessKind.LOAD, LineState.M),
    (LineState.M, AccessKind.TLOAD, LineState.M),
    (LineState.M, AccessKind.STORE, LineState.M),
    (LineState.M, AccessKind.TSTORE, LineState.TMI),  # with flush
    (LineState.TMI, AccessKind.LOAD, LineState.TMI),
    (LineState.TMI, AccessKind.TLOAD, LineState.TMI),
    (LineState.TMI, AccessKind.TSTORE, LineState.TMI),
    (LineState.TI, AccessKind.LOAD, LineState.TI),
    (LineState.TI, AccessKind.TLOAD, LineState.TI),
    (LineState.TI, AccessKind.TSTORE, LineState.TMI),
]


@pytest.mark.parametrize(
    "start,op,expected",
    LOCAL_TRANSITIONS,
    ids=[f"{s.name}-{o.value}" for s, o, e in LOCAL_TRANSITIONS],
)
def test_local_transition(start, op, expected):
    machine = _machine()
    address = _put_in_state(machine, start)
    if op.is_transactional:
        _ensure_txn(machine, 0)
    dispatch = {
        AccessKind.LOAD: machine.load,
        AccessKind.TLOAD: machine.tload,
    }
    if op in dispatch:
        dispatch[op](0, address)
    elif op is AccessKind.STORE:
        machine.store(0, address, 9)
    else:
        machine.tstore(0, address, 9)
    assert _state_of(machine, 0, address) is expected


# (holder state, remote request, expected holder state) — remote half.
# Requests issue from processor 2 (processor 1 may be a TI/TMI party).
REMOTE_TRANSITIONS = [
    (LineState.S, RequestType.GETS, LineState.S),
    (LineState.S, RequestType.GETX, LineState.I),
    (LineState.S, RequestType.TGETX, LineState.I),
    (LineState.E, RequestType.GETS, LineState.S),
    (LineState.E, RequestType.GETX, LineState.I),
    (LineState.E, RequestType.TGETX, LineState.I),
    (LineState.M, RequestType.GETS, LineState.S),  # with flush
    (LineState.M, RequestType.GETX, LineState.I),  # with flush
    (LineState.M, RequestType.TGETX, LineState.I),
    (LineState.TMI, RequestType.GETS, LineState.TMI),  # never yields
    (LineState.TMI, RequestType.TGETX, LineState.TMI),
    (LineState.TI, RequestType.GETX, LineState.I),
    (LineState.TI, RequestType.TGETX, LineState.I),
    (LineState.TI, RequestType.GETS, LineState.TI),
]


@pytest.mark.parametrize(
    "holder,request_type,expected",
    REMOTE_TRANSITIONS,
    ids=[f"{h.name}-{r.value}" for h, r, e in REMOTE_TRANSITIONS],
)
def test_remote_transition(holder, request_type, expected):
    machine = _machine()
    address = _put_in_state(machine, holder)
    if request_type is RequestType.GETS:
        machine.load(2, address)
    elif request_type is RequestType.GETX:
        machine.store(2, address, 7)
    else:
        begin_hardware_transaction(machine, 2)
        machine.tstore(2, address, 7)
    assert _state_of(machine, 0, address) is expected


def test_response_table():
    """Figure 1's signature-response table, all six cells."""
    # Wsig hit rows.
    for request, expected in [
        (RequestType.GETS, ResponseKind.THREATENED),
        (RequestType.GETX, ResponseKind.THREATENED),
        (RequestType.TGETX, ResponseKind.THREATENED),
    ]:
        machine = _machine()
        begin_hardware_transaction(machine, 0)
        address = machine.allocate_words(1, line_aligned=True)
        machine.tstore(0, address, 1)
        kind = machine.processors[0].classify_remote(
            2, request, machine.amap.line_of(address)
        )
        assert kind is expected, request
    # Rsig-only hit rows.
    for request, expected in [
        (RequestType.GETS, ResponseKind.SHARED),
        (RequestType.GETX, ResponseKind.INVALIDATED),
        (RequestType.TGETX, ResponseKind.EXPOSED_READ),
    ]:
        machine = _machine()
        begin_hardware_transaction(machine, 0)
        address = machine.allocate_words(1, line_aligned=True)
        machine.tload(0, address)
        kind = machine.processors[0].classify_remote(
            2, request, machine.amap.line_of(address)
        )
        assert kind is expected, request
