"""SystemParams validation."""

import pytest

from repro.errors import ConfigurationError
from repro.params import CacheGeometry, SystemParams, small_test_params


def test_default_params_match_table3a():
    params = SystemParams()
    assert params.num_processors == 16
    assert params.l1.size_bytes == 32 * 1024
    assert params.l1.associativity == 2
    assert params.line_bytes == 64
    assert params.l2.size_bytes == 8 * 1024 * 1024
    assert params.victim_buffer_entries == 32
    assert params.signature_bits == 2048
    assert params.l2_hit_cycles == 20
    assert params.memory_cycles == 250


def test_geometry_derived_values():
    geometry = CacheGeometry(size_bytes=32 * 1024, associativity=2, line_bytes=64)
    assert geometry.num_lines == 512
    assert geometry.num_sets == 256


def test_geometry_validation():
    with pytest.raises(ConfigurationError):
        CacheGeometry(size_bytes=1000, associativity=2, line_bytes=64)
    with pytest.raises(ConfigurationError):
        CacheGeometry(size_bytes=64, associativity=2, line_bytes=64)


def test_params_validation():
    with pytest.raises(ConfigurationError):
        SystemParams(num_processors=0)
    with pytest.raises(ConfigurationError):
        SystemParams(signature_bits=1000)
    with pytest.raises(ConfigurationError):
        SystemParams(
            l1=CacheGeometry(1024, 2, 64),
            l2=CacheGeometry(65536, 8, 128),  # mismatched line size
        )
    with pytest.raises(ConfigurationError):
        SystemParams(memory_cycles=0)


def test_offset_bits():
    assert SystemParams().offset_bits == 6


def test_small_test_params_are_valid_and_small():
    params = small_test_params(4)
    assert params.num_processors == 4
    assert params.l1.num_lines < SystemParams().l1.num_lines
