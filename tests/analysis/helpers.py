"""Shared fixtures for the simcheck test suite."""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis import all_rules, run_analysis
from repro.analysis.engine import AnalysisReport

#: The real source tree, used by mutation tests.
SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def analyze_snippet(
    tmp_path: Path,
    relpath: str,
    source: str,
    rules: Sequence[str],
    baseline: Optional[Dict[str, int]] = None,
) -> AnalysisReport:
    """Write ``source`` at ``relpath`` under a scratch root and analyze it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    registry = all_rules()
    selected = [registry[name] for name in rules]
    return run_analysis(
        tmp_path, [target], rules=selected, baseline_fingerprints=baseline
    )


def rule_ids(report: AnalysisReport) -> List[str]:
    return [finding.rule for finding in report.findings]


def copy_repro_subtree(tmp_path: Path, *subpaths: str) -> Path:
    """Copy parts of the real ``repro`` package into a scratch root.

    Returns the scratch root; the copies live at ``repro/<subpath>``
    so path-scoped rules see their expected layout.
    """
    for subpath in subpaths:
        source = SRC_ROOT / "repro" / subpath
        destination = tmp_path / "repro" / subpath
        destination.parent.mkdir(parents=True, exist_ok=True)
        if source.is_dir():
            shutil.copytree(source, destination)
        else:
            shutil.copy(source, destination)
    return tmp_path


def mutate(root: Path, relpath: str, old: str, new: str) -> None:
    """Single-occurrence source mutation, asserting the needle exists."""
    path = root / relpath
    text = path.read_text(encoding="utf-8")
    assert old in text, f"mutation needle not found in {relpath}: {old!r}"
    path.write_text(text.replace(old, new, 1), encoding="utf-8")
