"""Renderer sanity: text, JSON, and SARIF 2.1.0 structure."""

from __future__ import annotations

import json

from repro.analysis import all_rules
from repro.analysis.output import SARIF_VERSION, render_json, render_sarif, render_text

from tests.analysis.helpers import analyze_snippet

_BAD = """
class Machine:
    def step(self):
        self.tracer.tx_begin(0, 1, 2)
"""


def _report(tmp_path):
    return analyze_snippet(tmp_path, "repro/core/bad.py", _BAD, ["SIM-H102"])


def test_text_has_location_and_summary(tmp_path):
    text = render_text(_report(tmp_path))
    assert "repro/core/bad.py:4:9: error: SIM-H102:" in text
    assert "1 error(s)" in text


def test_json_is_parseable_and_complete(tmp_path):
    payload = json.loads(render_json(_report(tmp_path)))
    assert payload["summary"] == {"errors": 1, "warnings": 0}
    (finding,) = payload["findings"]
    assert finding["rule"] == "SIM-H102"
    assert finding["path"] == "repro/core/bad.py"
    assert len(finding["fingerprint"]) == 20


def test_sarif_schema_sanity(tmp_path):
    rules = list(all_rules().values())
    log = json.loads(render_sarif(_report(tmp_path), rules))
    assert log["version"] == SARIF_VERSION
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")

    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "simcheck"

    declared = {descriptor["id"] for descriptor in driver["rules"]}
    assert declared == set(all_rules())
    for descriptor in driver["rules"]:
        assert descriptor["shortDescription"]["text"]
        assert descriptor["defaultConfiguration"]["level"] in ("error", "warning")

    (result,) = run["results"]
    assert result["ruleId"] == "SIM-H102"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "repro/core/bad.py"
    assert location["region"]["startLine"] == 4
    # Every result's ruleId must be declared by the driver.
    assert result["ruleId"] in declared


def test_sarif_of_clean_report_has_no_results(tmp_path):
    report = analyze_snippet(
        tmp_path, "repro/core/ok.py", "class Machine:\n    pass\n", ["SIM-H102"]
    )
    log = json.loads(render_sarif(report, list(all_rules().values())))
    assert log["runs"][0]["results"] == []
