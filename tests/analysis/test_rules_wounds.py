"""Fixtures for the SIM-E203/E204 wound-kind registry rules."""

from __future__ import annotations

from repro.analysis import all_rules, run_analysis
from repro.runtime.tmtypes import (
    UNATTRIBUTED_KIND,
    WOUND_KIND_REGISTRY,
    WOUND_KINDS,
)

from tests.analysis.helpers import analyze_snippet, copy_repro_subtree, rule_ids


class TestRegistryModule:
    def test_registry_is_nonempty_and_consistent(self):
        assert WOUND_KINDS == frozenset(WOUND_KIND_REGISTRY)
        assert "W-W" in WOUND_KINDS
        assert "adversary" in WOUND_KINDS
        assert "stall-deadlock" in WOUND_KINDS
        # The fallback bucket is deliberately NOT a registered kind: it
        # marks attribution loss, and nothing may stage it on purpose.
        assert UNATTRIBUTED_KIND not in WOUND_KINDS

    def test_every_kind_has_a_description(self):
        for kind, description in WOUND_KIND_REGISTRY.items():
            assert description.strip(), f"wound kind {kind} has no description"


class TestUnregisteredWoundKind:
    def test_flags_unknown_literal_kind(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/runtime/bad.py",
            """
            class Manager:
                def resolve(self, tsw, by):
                    self.machine.stage_wound(tsw, by, "warpstorm")
            """,
            ["SIM-E203"],
        )
        assert rule_ids(report) == ["SIM-E203"]
        assert "'warpstorm'" in report.findings[0].message

    def test_flags_missing_kind_argument(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/chaos/bad.py",
            """
            class Dog:
                def bite(self, machine, victim):
                    machine.force_abort(victim, by=-1)
            """,
            ["SIM-E203"],
        )
        assert rule_ids(report) == ["SIM-E203"]
        assert "unattributed" in report.findings[0].message

    def test_registered_literal_is_clean(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/runtime/ok.py",
            """
            class Manager:
                def resolve(self, tsw, by):
                    self.machine.stage_wound(tsw, by, "W-W")
                def migrate(self, machine, victim):
                    machine.force_abort(victim, by=-1, kind="migration")
            """,
            ["SIM-E203"],
        )
        assert report.findings == []

    def test_conditional_expression_is_resolved(self, tmp_path):
        # Both arms registered: clean.  One arm a typo: flagged.
        clean = analyze_snippet(
            tmp_path,
            "repro/runtime/cond_ok.py",
            """
            class Manager:
                def resolve(self, tsw, by, writer):
                    kind = "W-W" if writer else "W-R"
                    self.machine.stage_wound(tsw, by, kind)
            """,
            ["SIM-E203"],
        )
        assert clean.findings == []
        dirty = analyze_snippet(
            tmp_path,
            "repro/runtime/cond_bad.py",
            """
            class Manager:
                def resolve(self, tsw, by, writer):
                    kind = "W-W" if writer else "WR"
                    self.machine.stage_wound(tsw, by, kind)
            """,
            ["SIM-E203"],
        )
        assert rule_ids(dirty) == ["SIM-E203"]
        assert "'WR'" in dirty.findings[0].message

    def test_dynamic_kind_is_skipped(self, tmp_path):
        # classify_conflict(...) results and parameter pass-through are
        # genuinely dynamic: the runtime strict check owns those, the
        # static rule must not guess.
        report = analyze_snippet(
            tmp_path,
            "repro/runtime/dynamic.py",
            """
            class Manager:
                def resolve(self, tsw, by, kind):
                    self.machine.stage_wound(tsw, by, kind)
                def classify_and_wound(self, tsw, by, sets):
                    self.machine.stage_wound(tsw, by, self.classify(sets))
            """,
            ["SIM-E203"],
        )
        assert report.findings == []

    def test_pristine_tree_is_clean(self):
        from tests.analysis.helpers import SRC_ROOT

        registry = all_rules()
        report = run_analysis(
            SRC_ROOT,
            [SRC_ROOT],
            rules=[registry["SIM-E203"], registry["SIM-E204"]],
        )
        assert report.findings == []


class TestDeadWoundKind:
    def _run(self, root):
        registry = all_rules()
        return run_analysis(root, [root], rules=[registry["SIM-E204"]])

    def test_registry_alone_flags_every_kind_dead(self, tmp_path):
        # Only the registry module in the file set: no literal uses
        # anywhere, so every kind is dead taxonomy.
        root = copy_repro_subtree(tmp_path, "runtime/tmtypes.py")
        report = self._run(root)
        assert sorted(f.message.split("'")[1] for f in report.findings) == (
            sorted(WOUND_KINDS)
        )
        assert all(f.severity == "warning" for f in report.findings)
        assert all(
            f.path.endswith("repro/runtime/tmtypes.py")
            for f in report.findings
        )

    def test_used_kinds_are_not_flagged(self, tmp_path):
        root = copy_repro_subtree(tmp_path, "runtime/tmtypes.py")
        users = "\n".join(
            f'    KINDS.append("{kind}")' for kind in sorted(WOUND_KINDS)
        )
        emitters = root / "repro" / "runtime" / "emitters.py"
        emitters.write_text(
            "KINDS = []\n\ndef use_all():\n" + users + "\n",
            encoding="utf-8",
        )
        report = self._run(root)
        assert report.findings == []

    def test_registry_outside_file_set_skips(self, tmp_path):
        # Mirrors SIM-E202: without the registry module in view, the
        # deadness check would flag every kind — skip instead.
        target = tmp_path / "repro" / "runtime" / "other.py"
        target.parent.mkdir(parents=True)
        target.write_text("VALUE = 1\n", encoding="utf-8")
        report = self._run(tmp_path)
        assert report.findings == []
