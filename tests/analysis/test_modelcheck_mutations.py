"""Mutation-kill suite: each invariant detects its matching spec hole.

One deliberately-corrupted spec cell per SIM-M rule.  Each fixture must
produce *exactly* the corresponding finding (no collateral noise from
other rules), with a minimal BFS counterexample, and the exported
counterexample must lower onto the real simulator through the
adversary bridge — classified ``confirmed`` when the implementation
shares the hole, ``spec-only`` when it does not.
"""

from __future__ import annotations

import pytest

from repro.adversary.bridge import (
    export_counterexample,
    load_counterexample,
    replay_violation,
    spec_from_violation,
)
from repro.analysis.modelcheck import ProtocolSpec, check

BASE = ProtocolSpec.from_tables()


def _without(mapping, key):
    copy = dict(mapping)
    del copy[key]
    return copy


def _with(mapping, key, value):
    copy = dict(mapping)
    copy[key] = value
    return copy


def _mutants():
    """(rule, mutated spec, expected minimal counterexample) triples."""
    yield (
        # Writer keeps M while a second GETX is granted: two M holders.
        "SIM-M401",
        BASE.replace(
            remote_next_state=_with(BASE.remote_next_state, ("GETX", "M"), "M")
        ),
        "Store@0?; Store@0!; Store@1?; Store@1!",
    )
    yield (
        # GETS may no longer grant E: the sole-sharer load has no grant.
        "SIM-M402",
        BASE.replace(
            grants=_with(BASE.grants, "GETS", BASE.grants["GETS"] - {"E"})
        ),
        "Load@0?; Load@0!",
    )
    yield (
        # DUAL_CST routes w_r back to w_r, and REQUESTER_CST is mutated
        # coherently so both sides still *agree* — only the intrinsic
        # mirror check can see the symmetry is broken.
        "SIM-M403",
        BASE.replace(
            dual_cst=_with(BASE.dual_cst, "w_r", "w_r"),
            requester_cst=_with(
                BASE.requester_cst, ("TLoad", "Threatened"), "w_r"
            ),
        ),
        "TLoad@0?; TStore@1?; TStore@1!; TLoad@0!",
    )
    yield (
        # Requester records the wrong CST for a Threatened TLoad: the
        # responder's dual-routed update no longer matches.
        "SIM-M404",
        BASE.replace(
            requester_cst=_with(
                BASE.requester_cst, ("TLoad", "Threatened"), "w_w"
            )
        ),
        "TLoad@0?; TStore@1?; TStore@1!; TLoad@0!",
    )
    yield (
        # A TGETX hitting a write signature produces no response at
        # all — the Threatened message is silently lost.
        "SIM-M405",
        BASE.replace(
            response_table=_without(BASE.response_table, ("TGETX", "wsig"))
        ),
        "TStore@0?; TStore@0!; TStore@1?; TStore@1!",
    )
    yield (
        # Abort leaves the speculative TMI line in place: the wsig is
        # cleared but the line still claims transactional-modified.
        "SIM-M406",
        BASE.replace(
            abort_transform=_with(BASE.abort_transform, "TMI", "TMI")
        ),
        "TStore@0?; TStore@0!; abort@0",
    )
    yield (
        # A remote GETS finds an E holder and the next-state table has
        # no entry: the protocol wedges mid-request.
        "SIM-M407",
        BASE.replace(
            remote_next_state=_without(BASE.remote_next_state, ("GETS", "E"))
        ),
        "Load@0?; Load@0!; Load@1?; Load@1!",
    )


MUTANTS = list(_mutants())


@pytest.mark.parametrize(
    "rule,spec,trace", MUTANTS, ids=[rule for rule, _, _ in MUTANTS]
)
def test_mutation_is_killed_by_exactly_its_rule(rule, spec, trace):
    result = check(spec=spec, caches=2)
    assert [v.rule for v in result.violations] == [rule]
    assert result.violations[0].render_trace() == trace


@pytest.mark.parametrize(
    "rule,spec,trace", MUTANTS, ids=[rule for rule, _, _ in MUTANTS]
)
def test_counterexample_replays_on_the_real_simulator(rule, spec, trace):
    result = check(spec=spec, caches=2)
    violation = result.violations[0]
    replay = replay_violation(violation, backend="FlexTM", seed=1)
    assert replay["rule"] == rule
    # The bridge must always reach a verdict — confirmed means the
    # implementation shares the spec hole, spec-only means the model
    # found a hole the hardened implementation does not exhibit.
    assert replay["classification"] in ("confirmed", "spec-only")
    assert replay["verdict"] in (
        "conforms",
        "aborts-as-required",
        "violates",
    )
    # At HEAD the implementation is hardened, so every pure spec
    # mutation replays clean: the finding is explicitly spec-only.
    assert replay["classification"] == "spec-only"


def test_counterexample_export_round_trips(tmp_path):
    rule, spec, _trace = MUTANTS[0]
    violation = check(spec=spec, caches=2).violations[0]
    path = tmp_path / "mc-sim-m401.json"
    document = export_counterexample(violation, path)
    assert path.exists()
    assert document["rule"] == rule

    loaded, schedule_spec = load_counterexample(path)
    assert loaded["rule"] == rule
    assert schedule_spec.name == spec_from_violation(violation).name
    assert schedule_spec.threads == violation.caches


def test_mutations_do_not_leak_into_the_live_tables():
    # Every fixture went through ProtocolSpec.replace on dict copies;
    # the module-level tables must be untouched afterwards.
    assert ProtocolSpec.from_tables() == BASE
    assert check(caches=2).ok
