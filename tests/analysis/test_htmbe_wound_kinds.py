"""Acceptance: the HTM-BE wound kinds are registered and alive.

The best-effort backend introduced four wound kinds (``capacity``,
``htm-conflict``, ``explicit``, ``fallback``).  This is the simcheck
acceptance gate: all four live in ``WOUND_KIND_REGISTRY`` with
descriptions, and the grown tree stays at zero SIM-E203 (unregistered
kind at a staging site) and zero SIM-E204 (registered-but-dead kind)
findings — i.e. the taxonomy and the backend agree exactly.
"""

from repro.analysis import all_rules, run_analysis
from repro.runtime.tmtypes import WOUND_KIND_REGISTRY
from tests.analysis.helpers import SRC_ROOT, copy_repro_subtree, mutate

HTMBE_KINDS = ("capacity", "htm-conflict", "explicit", "fallback")


def test_htmbe_kinds_are_registered_with_descriptions():
    for kind in HTMBE_KINDS:
        assert kind in WOUND_KIND_REGISTRY
        assert WOUND_KIND_REGISTRY[kind].strip()


def test_grown_tree_has_zero_wound_findings():
    registry = all_rules()
    report = run_analysis(
        SRC_ROOT,
        [SRC_ROOT],
        rules=[registry["SIM-E203"], registry["SIM-E204"]],
    )
    assert report.findings == []


def test_dropping_a_htmbe_emitter_is_caught(tmp_path):
    # Remove htmbe's one staging of the "fallback" kind: the registered
    # kind goes dead and SIM-E204 must notice (proves the acceptance
    # test above cannot pass vacuously).
    root = copy_repro_subtree(tmp_path, "runtime/tmtypes.py", "stm/htmbe.py")
    registry = all_rules()

    def dead_kinds():
        report = run_analysis(root, [root], rules=[registry["SIM-E204"]])
        return {finding.message.split("'")[1] for finding in report.findings}

    assert "fallback" not in dead_kinds()
    mutate(root, "repro/stm/htmbe.py", 'kind="fallback"', 'kind="conflict"')
    assert "fallback" in dead_kinds()
