"""The ``python -m repro.harness analyze`` command surface."""

from __future__ import annotations

import json
import textwrap

from repro.harness.analyze import run_analyze_command

_BAD = """
class Machine:
    def step(self):
        self.tracer.tx_begin(0, 1, 2)
"""


def _seed_violation(tmp_path):
    target = tmp_path / "repro/core/bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(_BAD), encoding="utf-8")
    return target


def test_exits_nonzero_on_violation(tmp_path, capsys):
    _seed_violation(tmp_path)
    status = run_analyze_command(
        ["--root", str(tmp_path), "--no-baseline", str(tmp_path / "repro")]
    )
    assert status == 1
    out = capsys.readouterr().out
    assert "SIM-H102" in out


def test_exits_zero_on_clean_tree(tmp_path, capsys):
    target = tmp_path / "repro/core/ok.py"
    target.parent.mkdir(parents=True)
    target.write_text("class Machine:\n    pass\n", encoding="utf-8")
    status = run_analyze_command(
        ["--root", str(tmp_path), "--no-baseline", str(tmp_path / "repro")]
    )
    assert status == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_exits_zero_on_repo_at_head(capsys):
    # The acceptance criterion: the committed tree analyzes clean.
    status = run_analyze_command([])
    assert status == 0, capsys.readouterr().out


def test_update_baseline_then_gate_passes(tmp_path, capsys):
    _seed_violation(tmp_path)
    target = str(tmp_path / "repro")
    assert run_analyze_command(["--root", str(tmp_path), target]) == 1
    assert (
        run_analyze_command(["--root", str(tmp_path), "--update-baseline", target])
        == 0
    )
    assert (tmp_path / "simcheck-baseline.json").exists()
    assert run_analyze_command(["--root", str(tmp_path), target]) == 0
    capsys.readouterr()


def test_rule_selection_and_unknown_rule(tmp_path, capsys):
    _seed_violation(tmp_path)
    target = str(tmp_path / "repro")
    # The violation is SIM-H102; selecting only determinism rules passes.
    status = run_analyze_command(
        ["--root", str(tmp_path), "--no-baseline", "--rule", "SIM-D001", target]
    )
    assert status == 0
    assert run_analyze_command(["--rule", "SIM-X999"]) == 2
    capsys.readouterr()


def test_list_rules(capsys):
    assert run_analyze_command(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SIM-D001", "SIM-H101", "SIM-E201", "SIM-P301"):
        assert rule_id in out


def test_list_rules_json_includes_scope_and_model_rules(capsys):
    assert run_analyze_command(["--list-rules", "--format", "json"]) == 0
    catalog = json.loads(capsys.readouterr().out)
    by_id = {entry["id"]: entry for entry in catalog}
    assert {"id", "severity", "scope", "description"} <= set(by_id["SIM-D001"])
    assert by_id["SIM-D001"]["scope"] == "module"
    for index in range(1, 8):
        rule_id = f"SIM-M40{index}"
        assert by_id[rule_id]["scope"] == "modelcheck"
        assert by_id[rule_id]["severity"] == "error"


def test_prune_baseline_drops_stale_keeps_live(tmp_path, capsys):
    from repro.analysis.baseline import load_baseline

    _seed_violation(tmp_path)
    target = str(tmp_path / "repro")
    # Baseline the real finding, then plant a stale entry beside it.
    assert run_analyze_command(["--root", str(tmp_path), "--update-baseline", target]) == 0
    baseline_path = tmp_path / "simcheck-baseline.json"
    live = load_baseline(baseline_path)
    assert len(live) == 1

    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    data["suppressions"]["deadbeefdeadbeefdead"] = {
        "rule": "SIM-X999", "path": "gone.py", "message": "stale", "count": 1,
    }
    baseline_path.write_text(json.dumps(data), encoding="utf-8")

    status = run_analyze_command(["--root", str(tmp_path), "--prune-baseline", target])
    assert status == 0
    out = capsys.readouterr().out
    assert "pruned 1 stale baseline entry (1 kept)" in out
    assert load_baseline(baseline_path) == live
    # Idempotent: a second prune removes nothing.
    assert run_analyze_command(["--root", str(tmp_path), "--prune-baseline", target]) == 0
    assert "pruned 0 stale baseline entries (1 kept)" in capsys.readouterr().out


def test_prune_baseline_without_file_is_a_noop(tmp_path, capsys):
    target = tmp_path / "repro/core/ok.py"
    target.parent.mkdir(parents=True)
    target.write_text("class Machine:\n    pass\n", encoding="utf-8")
    status = run_analyze_command(
        ["--root", str(tmp_path), "--prune-baseline", str(tmp_path / "repro")]
    )
    assert status == 0
    assert "pruned 0" in capsys.readouterr().out


def test_analyze_modelcheck_merges_clean_at_head(capsys):
    status = run_analyze_command(["--modelcheck", "--modelcheck-caches", "2"])
    assert status == 0, capsys.readouterr().out
    capsys.readouterr()


def test_modelcheck_command_exit_codes(tmp_path, capsys):
    from repro.harness.modelcheck import run_modelcheck_command

    assert run_modelcheck_command(["--caches", "2"]) == 0
    out = capsys.readouterr().out
    assert "states=360" in out
    assert "all invariants hold" in out

    assert run_modelcheck_command(["--caches", "7"]) == 2
    capsys.readouterr()

    out_file = tmp_path / "mc.json"
    assert (
        run_modelcheck_command(
            ["--caches", "2", "--format", "json", "--out", str(out_file)]
        )
        == 0
    )
    capsys.readouterr()
    payload = json.loads(out_file.read_text(encoding="utf-8"))
    assert payload["schema"] == "repro.modelcheck/v1"
    assert payload["ok"] is True
    assert payload["replays"] == []


def test_json_report_to_file(tmp_path, capsys):
    _seed_violation(tmp_path)
    out_file = tmp_path / "report.json"
    status = run_analyze_command(
        [
            "--root",
            str(tmp_path),
            "--no-baseline",
            "--format",
            "json",
            "--out",
            str(out_file),
            str(tmp_path / "repro"),
        ]
    )
    assert status == 1
    payload = json.loads(out_file.read_text(encoding="utf-8"))
    assert payload["summary"]["errors"] == 1
    capsys.readouterr()
