"""Fixtures for the SIM-E2xx tracer-event registry rules."""

from __future__ import annotations

from repro.obs.events import EVENT_KINDS, EVENT_REGISTRY, is_registered

from tests.analysis.helpers import analyze_snippet, rule_ids


class TestRegistryModule:
    def test_registry_is_nonempty_and_consistent(self):
        assert EVENT_KINDS == frozenset(EVENT_REGISTRY)
        assert is_registered("tx_begin")
        assert not is_registered("tx_warp")

    def test_every_kind_has_a_description(self):
        for kind, description in EVENT_REGISTRY.items():
            assert description.strip(), f"event {kind} has no description"


class TestUnregisteredEvent:
    def test_flags_unknown_literal_kind(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/runtime/bad.py",
            """
            class Sched:
                def run(self):
                    if self.tracer.enabled:
                        self.tracer.sched(0, 1, "telport", 2)
            """,
            ["SIM-E201"],
        )
        assert rule_ids(report) == ["SIM-E201"]
        assert "'telport'" in report.findings[0].message

    def test_prefixed_methods_apply_prefix(self, tmp_path):
        # watchdog("escalate") resolves to watchdog_escalate: registered.
        report = analyze_snippet(
            tmp_path,
            "repro/runtime/ok.py",
            """
            class Watch:
                def bark(self, now):
                    if self.tracer.enabled:
                        self.tracer.watchdog(now, "escalate", tx=3)
            """,
            ["SIM-E201"],
        )
        assert report.findings == []

    def test_conditional_expression_is_resolved(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/mixed.py",
            """
            class Machine:
                def trace(self, kind, writing):
                    rw = "read" if not writing else "wrote"
                    if self.tracer.enabled:
                        self.tracer.tx_access(0, 1, 2, rw, 64)
            """,
            ["SIM-E201"],
        )
        # "tx_read" is registered, "tx_wrote" is not.
        assert rule_ids(report) == ["SIM-E201"]
        assert "'tx_wrote'" in report.findings[0].message

    def test_dynamic_kind_is_skipped_not_guessed(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/dynamic.py",
            """
            class Machine:
                def trace(self, what):
                    if self.tracer.enabled:
                        self.tracer.degrade(3, what)
            """,
            ["SIM-E201"],
        )
        assert report.findings == []

    def test_fixed_kind_methods_are_always_registered(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/ok.py",
            """
            class Machine:
                def finish(self):
                    if self.tracer.enabled:
                        self.tracer.tx_commit(0, 1, 2)
                        self.tracer.conflict(0, 1, 2, "r_w", 64)
            """,
            ["SIM-E201"],
        )
        assert report.findings == []


class TestDeadEvent:
    def test_reports_registered_kind_with_no_emitter(self, tmp_path):
        # Analyze a scratch tree containing the registry module and one
        # emitter: every other registered kind is dead.
        from repro.analysis import all_rules, run_analysis

        registry_copy = tmp_path / "repro/obs/events.py"
        registry_copy.parent.mkdir(parents=True)
        registry_copy.write_text(
            "EVENT_REGISTRY = {}\n",  # content irrelevant; rule keys on path
            encoding="utf-8",
        )
        emitter = tmp_path / "repro/runtime/only_emitter.py"
        emitter.parent.mkdir(parents=True)
        emitter.write_text(
            "class Sched:\n"
            "    def run(self):\n"
            "        if self.tracer.enabled:\n"
            '            self.tracer.sched(0, 1, "dispatch", 2)\n',
            encoding="utf-8",
        )
        report = run_analysis(
            tmp_path, [tmp_path], rules=[all_rules()["SIM-E202"]]
        )
        dead = {finding.message.split("'")[1] for finding in report.findings}
        assert "dispatch" not in dead
        assert "tx_begin" in dead
        assert all(finding.severity == "warning" for finding in report.findings)

    def test_skipped_when_registry_module_not_analyzed(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/runtime/only_emitter.py",
            """
            class Sched:
                def run(self):
                    if self.tracer.enabled:
                        self.tracer.sched(0, 1, "dispatch", 2)
            """,
            ["SIM-E202"],
        )
        assert report.findings == []
