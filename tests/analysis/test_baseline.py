"""Baseline round-trip, counting, and staleness semantics."""

from __future__ import annotations

import json

from repro.analysis import all_rules, run_analysis
from repro.analysis.baseline import load_baseline, write_baseline

from tests.analysis.helpers import analyze_snippet

_BAD = """
class Machine:
    def step(self):
        self.tracer.tx_begin(0, 1, 2)
"""


def _violation_report(tmp_path, baseline=None):
    return analyze_snippet(
        tmp_path, "repro/core/bad.py", _BAD, ["SIM-H102"], baseline=baseline
    )


def test_round_trip_suppresses_the_finding(tmp_path):
    report = _violation_report(tmp_path)
    assert len(report.findings) == 1

    baseline_path = tmp_path / "simcheck-baseline.json"
    counts = write_baseline(baseline_path, report.findings)
    assert load_baseline(baseline_path) == counts

    suppressed = _violation_report(tmp_path, baseline=counts)
    assert suppressed.findings == []
    assert len(suppressed.baselined) == 1
    assert suppressed.exit_code() == 0


def test_count_limits_how_many_match(tmp_path):
    source = _BAD + "        self.tracer.tx_begin(0, 1, 2)\n"
    report = analyze_snippet(tmp_path, "repro/core/bad.py", source, ["SIM-H102"])
    # Identical message + scope: both findings share one fingerprint.
    fingerprints = {finding.fingerprint() for finding in report.findings}
    assert len(report.findings) == 2 and len(fingerprints) == 1

    limited = analyze_snippet(
        tmp_path,
        "repro/core/bad.py",
        source,
        ["SIM-H102"],
        baseline={next(iter(fingerprints)): 1},
    )
    assert len(limited.findings) == 1
    assert len(limited.baselined) == 1


def test_stale_entries_are_reported(tmp_path):
    report = analyze_snippet(
        tmp_path,
        "repro/core/ok.py",
        "class Machine:\n    pass\n",
        ["SIM-H102"],
        baseline={"deadbeefdeadbeefdead": 1},
    )
    assert report.stale_baseline == ["deadbeefdeadbeefdead"]
    assert report.exit_code() == 0  # stale entries warn, they don't gate


def test_fingerprint_survives_line_moves(tmp_path):
    before = _violation_report(tmp_path)
    moved = analyze_snippet(
        tmp_path,
        "repro/core/bad.py",
        "# a new leading comment\n\n" + _BAD,
        ["SIM-H102"],
    )
    assert before.findings[0].line != moved.findings[0].line
    assert before.findings[0].fingerprint() == moved.findings[0].fingerprint()


def test_baseline_file_is_versioned_and_sorted(tmp_path):
    report = _violation_report(tmp_path)
    baseline_path = tmp_path / "simcheck-baseline.json"
    write_baseline(baseline_path, report.findings)
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert data["version"] == 1
    for entry in data["suppressions"].values():
        assert {"rule", "path", "message", "count"} <= set(entry)


def test_update_baseline_prunes_stale(tmp_path):
    # write_baseline from a clean run produces an empty suppression map.
    baseline_path = tmp_path / "simcheck-baseline.json"
    write_baseline(baseline_path, [])
    assert load_baseline(baseline_path) == {}


def test_repo_clean_gate(tmp_path):
    """The real tree at HEAD must analyze clean against its baseline.

    This is the acceptance gate: zero unsuppressed errors (including
    zero unhandled protocol pairs) over ``src/repro``.
    """
    from tests.analysis.helpers import SRC_ROOT

    root = SRC_ROOT.parent  # repo root
    baseline = load_baseline(root / "simcheck-baseline.json")
    report = run_analysis(
        root,
        [SRC_ROOT / "repro"],
        rules=list(all_rules().values()),
        baseline_fingerprints=baseline,
    )
    assert report.errors == [], [finding.to_dict() for finding in report.errors]
    assert report.stale_baseline == []
