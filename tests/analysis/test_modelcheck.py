"""Exhaustive TMESI/CST model checker: HEAD is clean and deterministic."""

from __future__ import annotations

import pytest

from repro.analysis.modelcheck import (
    ProtocolSpec,
    UNDRIVEN_CELLS,
    annotate_trace,
    check,
    coverage_universe,
    findings_from,
    iter_model_rules,
)


def test_head_spec_is_clean_at_two_caches():
    result = check(caches=2)
    assert result.ok, [v.render_trace() for v in result.violations]
    assert result.violations == []
    assert result.dead_cells == []
    assert not result.truncated
    # Pinned so an accidental semantic change to the model (a lost
    # event kind, a silently-narrowed enabling condition) shows up as
    # a count drift even when every invariant still holds.
    assert (result.states, result.transitions, result.depth) == (360, 1816, 10)


def test_head_spec_is_clean_at_three_caches():
    # The CI gate configuration.
    result = check(caches=3)
    assert result.ok, [v.render_trace() for v in result.violations]
    assert (result.states, result.transitions) == (7206, 57660)


def test_exploration_is_deterministic():
    first = check(caches=2)
    second = check(caches=2)
    assert first.to_json() == second.to_json()


def test_dfs_agrees_with_bfs_on_the_state_space():
    bfs = check(caches=2, strategy="bfs")
    dfs = check(caches=2, strategy="dfs")
    assert bfs.states == dfs.states
    assert dfs.ok


def test_depth_bound_truncates_and_reports_it():
    result = check(caches=2, depth=3)
    assert result.truncated
    assert result.states < 360
    # A truncated run must not report dead cells as findings-worthy
    # silence: they are listed, the caller sees ``truncated`` and
    # knows coverage is partial.
    assert result.dead_cells != []


def test_parameter_validation():
    with pytest.raises(ValueError, match="caches"):
        check(caches=1)
    with pytest.raises(ValueError, match="caches"):
        check(caches=6)
    with pytest.raises(ValueError, match="strategy"):
        check(caches=2, strategy="random")


def test_coverage_universe_contains_every_dispatch_cell():
    spec = ProtocolSpec.from_tables()
    universe = set(coverage_universe(spec))
    assert "LOCAL_DISPATCH[TStore,I]" in universe
    assert "RESPONSE_TABLE[TGETX,wsig]" in universe
    assert "COMMIT_TRANSFORM[TMI]" in universe
    # The one legal-but-undrivable cell is exempted, not covered.
    assert UNDRIVEN_CELLS <= universe


def test_annotate_trace_resolves_issue_and_deliver():
    spec = ProtocolSpec.from_tables()
    trace = (("access", 0, "TStore"), ("deliver", 0, ""), ("commit", 0, ""))
    annotated = annotate_trace(spec, 2, trace)
    kinds = [event[0] for event in annotated]
    assert kinds == ["issue", "deliver", "commit"]
    assert annotated[1][2] == "TStore"  # deliver resolves its access kind


def test_model_rules_are_registered_with_modelcheck_scope():
    rules = list(iter_model_rules())
    names = [rule.name for rule in rules]
    assert names == sorted(names)
    assert names == [f"SIM-M40{i}" for i in range(1, 8)]
    for rule in rules:
        assert rule.scope == "modelcheck"
        assert rule.severity == "error"
        assert rule.description
        # Model rules are no-ops in AST runs: the program-level hook
        # only fires through findings_from().
        assert list(rule.check_program(None)) == []


def test_findings_from_anchor_into_the_spec_module(tmp_path):
    spec = ProtocolSpec.from_tables()
    # Corrupt one remote transition so a violation exists to render.
    mutated = dict(spec.remote_next_state)
    mutated[("GETX", "M")] = "M"
    result = check(spec=spec.replace(remote_next_state=mutated), caches=2)
    assert not result.ok

    findings = findings_from(result, tmp_path)  # no spec.py: line 1 anchors
    assert findings, "violations must surface as findings"
    for finding in findings:
        assert finding.rule.startswith("SIM-M4")
        assert finding.path == "src/repro/coherence/spec.py"
        assert "modelcheck(caches=2)" in finding.context


def test_clean_result_produces_no_findings(tmp_path):
    result = check(caches=2)
    assert findings_from(result, tmp_path) == []
