"""SIM-P3xx protocol-exhaustiveness rules, exercised by mutation.

Each test copies the real controller sources into a scratch tree,
seeds one protocol bug, and asserts the matching rule catches it —
plus one test asserting the pristine tree is clean, which is what
makes the mutations meaningful.
"""

from __future__ import annotations

from repro.analysis import all_rules, run_analysis

from tests.analysis.helpers import copy_repro_subtree, mutate

_PROTOCOL_RULES = [
    "SIM-P301",
    "SIM-P302",
    "SIM-P303",
    "SIM-P304",
    "SIM-P305",
    "SIM-P306",
]


def _run(root, rules=_PROTOCOL_RULES):
    registry = all_rules()
    return run_analysis(root, [root], rules=[registry[name] for name in rules])


def _scratch(tmp_path):
    return copy_repro_subtree(
        tmp_path,
        "coherence/l1.py",
        "coherence/directory.py",
        "coherence/states.py",
        "core/processor.py",
    )


def test_pristine_tree_is_clean(tmp_path):
    root = _scratch(tmp_path)
    report = _run(root)
    assert report.findings == []


def test_p301_catches_dropped_store_hit(tmp_path):
    # Remove the Store-on-M fast path: (M, Store) now falls to the
    # ProtocolError raise in _upgrade.
    root = _scratch(tmp_path)
    mutate(
        root,
        "repro/coherence/l1.py",
        "if state is LineState.M:",
        "if state is LineState.I:",
    )
    report = _run(root, ["SIM-P301"])
    assert any(
        "(M, Store)" in finding.message and finding.rule == "SIM-P301"
        for finding in report.findings
    )


def test_p301_catches_wrong_miss_request(tmp_path):
    # TStore miss must issue TGETX, not GETX.
    root = _scratch(tmp_path)
    mutate(
        root,
        "repro/coherence/l1.py",
        "AccessKind.TSTORE: RequestType.TGETX",
        "AccessKind.TSTORE: RequestType.GETX",
    )
    report = _run(root, ["SIM-P301"])
    assert any(
        "TStore" in finding.message and "TGETX" in finding.message
        for finding in report.findings
    )


def test_p302_catches_tmi_yielding_remotely(tmp_path):
    # Delete the TMI early-return: a forwarded exclusive now drops the
    # speculative line, losing the only copy of transactional data.
    root = _scratch(tmp_path)
    mutate(
        root,
        "repro/coherence/l1.py",
        "if line is not None and line.state is LineState.TMI:",
        "if line is not None and line.state is LineState.I:",
    )
    report = _run(root, ["SIM-P302"])
    assert any(
        "TMI" in finding.message and finding.rule == "SIM-P302"
        for finding in report.findings
    )


def test_p303_catches_wrong_response(tmp_path):
    # Threatened responder answering a TGETX with Shared.
    root = _scratch(tmp_path)
    mutate(
        root,
        "repro/core/processor.py",
        "return ResponseKind.THREATENED",
        "return ResponseKind.SHARED",
    )
    report = _run(root, ["SIM-P303"])
    assert any(
        "response mismatch" in finding.message for finding in report.findings
    )


def test_p303_catches_wrong_responder_cst(tmp_path):
    root = _scratch(tmp_path)
    mutate(
        root,
        "repro/core/processor.py",
        "self.csts.w_r.set(",
        "self.csts.r_w.set(",
    )
    report = _run(root, ["SIM-P303"])
    assert any(
        "responder CST mismatch" in finding.message for finding in report.findings
    )


def test_p304_catches_missing_requester_update(tmp_path):
    # The requester-side mirror of Exposed-Read must set w_r.
    root = _scratch(tmp_path)
    mutate(
        root,
        "repro/core/processor.py",
        "self.csts.w_r.set(responder)",
        "self.csts.noted = bool(responder)",
    )
    report = _run(root, ["SIM-P304"])
    assert any(
        "requester CST mismatch" in finding.message for finding in report.findings
    )


def test_p305_catches_wrong_grant(tmp_path):
    # GETX must be granted M, never E.
    root = _scratch(tmp_path)
    mutate(
        root,
        "repro/coherence/directory.py",
        "return LineState.M",
        "return LineState.E",
    )
    report = _run(root, ["SIM-P305"])
    assert any("grant mismatch" in finding.message for finding in report.findings)


def test_p306_catches_broken_flash_commit(tmp_path):
    # Flash commit must promote TMI to M.
    root = _scratch(tmp_path)
    mutate(
        root,
        "repro/coherence/states.py",
        "return LineState.M",
        "return LineState.E",
    )
    report = _run(root, ["SIM-P306"])
    assert any(
        "after_commit(TMI)" in finding.message for finding in report.findings
    )


def test_missing_function_is_reported_not_silent(tmp_path):
    # Renaming a dispatch function must fail loudly, not pass vacuously.
    root = _scratch(tmp_path)
    mutate(
        root,
        "repro/coherence/l1.py",
        "def _try_hit(",
        "def _try_hit_renamed(",
    )
    report = _run(root, ["SIM-P301"])
    assert any(
        "extraction failed" in finding.message for finding in report.findings
    )
