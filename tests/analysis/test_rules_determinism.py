"""Positive and negative fixtures for the SIM-D0xx determinism rules."""

from __future__ import annotations

from tests.analysis.helpers import analyze_snippet, rule_ids


class TestWallClock:
    def test_flags_time_time(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/bad.py",
            """
            import time

            def stamp():
                return time.time()
            """,
            ["SIM-D001"],
        )
        assert rule_ids(report) == ["SIM-D001"]

    def test_flags_datetime_now_and_from_import(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/bad.py",
            """
            import datetime
            from time import monotonic

            def stamp():
                return datetime.datetime.now()
            """,
            ["SIM-D001"],
        )
        assert rule_ids(report) == ["SIM-D001", "SIM-D001"]

    def test_perf_counter_is_allowed(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/harness/ok.py",
            """
            import time

            def wall():
                return time.perf_counter()
            """,
            ["SIM-D001"],
        )
        assert report.findings == []

    def test_sanctioned_clock_module_exempt(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/sim/clock.py",
            """
            import time

            def now():
                return time.time()
            """,
            ["SIM-D001"],
        )
        assert report.findings == []


class TestGlobalRandom:
    def test_flags_import_and_call(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/workloads/bad.py",
            """
            import random

            def roll():
                return random.randint(1, 6)
            """,
            ["SIM-D002"],
        )
        assert rule_ids(report) == ["SIM-D002", "SIM-D002"]

    def test_sim_rng_exempt_and_streams_clean(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/sim/rng.py",
            """
            import random

            def make(seed):
                return random.Random(seed)
            """,
            ["SIM-D002"],
        )
        assert report.findings == []


class TestOsEntropy:
    def test_flags_urandom_uuid_secrets(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/bad.py",
            """
            import os
            import uuid
            import secrets

            def token():
                return os.urandom(8), uuid.uuid4(), secrets.token_hex(4)
            """,
            ["SIM-D003"],
        )
        assert rule_ids(report) == ["SIM-D003"] * 4  # import secrets + 3 calls

    def test_uuid5_is_deterministic_and_clean(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/ok.py",
            """
            import uuid

            def name_id(ns, name):
                return uuid.uuid5(ns, name)
            """,
            ["SIM-D003"],
        )
        assert report.findings == []


class TestBuiltinHash:
    def test_flags_builtin_hash(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/signatures/bad.py",
            """
            def bucket(key):
                return hash(key) % 64
            """,
            ["SIM-D004"],
        )
        assert rule_ids(report) == ["SIM-D004"]

    def test_hashlib_and_methods_clean(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/signatures/ok.py",
            """
            import hashlib
            import zlib

            def bucket(key):
                return zlib.crc32(key.encode()) % 64

            def digest(key):
                return hashlib.sha256(key.encode()).hexdigest()
            """,
            ["SIM-D004"],
        )
        assert report.findings == []


class TestSetIteration:
    def test_flags_for_loop_over_set(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/bad.py",
            """
            def drain(items):
                pending = set(items)
                out = []
                for item in pending:
                    out.append(item)
                return out
            """,
            ["SIM-D005"],
        )
        assert rule_ids(report) == ["SIM-D005"]

    def test_flags_self_attribute_and_list_sink(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/bad.py",
            """
            class Tracker:
                def __init__(self):
                    self.seen = set()

                def snapshot(self):
                    return list(self.seen)
            """,
            ["SIM-D005"],
        )
        assert rule_ids(report) == ["SIM-D005"]

    def test_flags_annotated_set(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/bad.py",
            """
            from typing import Set

            class Tracker:
                def __init__(self):
                    self.seen: Set[int] = set()

                def items(self):
                    return [x for x in self.seen]
            """,
            ["SIM-D005"],
        )
        assert rule_ids(report) == ["SIM-D005"]

    def test_sorted_iteration_and_membership_clean(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/ok.py",
            """
            def drain(items):
                pending = set(items)
                if 3 in pending:
                    pending.discard(3)
                return [item for item in sorted(pending)]
            """,
            ["SIM-D005"],
        )
        assert report.findings == []

    def test_nested_frozenset_annotation_is_not_a_set(self, tmp_path):
        # Regression: List[Tuple[X, FrozenSet[str]]] is a list.
        report = analyze_snippet(
            tmp_path,
            "repro/core/ok.py",
            """
            from typing import FrozenSet, List, Tuple

            def spin(work):
                states: List[Tuple[int, FrozenSet[str]]] = [(0, frozenset())]
                for state in states:
                    pass
            """,
            ["SIM-D005"],
        )
        assert report.findings == []
