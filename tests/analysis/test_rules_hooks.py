"""Positive and negative fixtures for the SIM-H1xx hook-hygiene rules."""

from __future__ import annotations

from tests.analysis.helpers import analyze_snippet, rule_ids


class TestOptionalHookGuard:
    def test_flags_unguarded_chaos(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/coherence/bad.py",
            """
            class Cache:
                def evict(self, n):
                    return self.chaos.pick(n)
            """,
            ["SIM-H101"],
        )
        assert rule_ids(report) == ["SIM-H101"]

    def test_if_guard_is_recognized(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/coherence/ok.py",
            """
            class Cache:
                def evict(self, n):
                    if self.chaos is not None:
                        return self.chaos.pick(n)
                    return None
            """,
            ["SIM-H101"],
        )
        assert report.findings == []

    def test_early_return_guard_is_recognized(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/ok.py",
            """
            class Walker:
                def walk_penalty(self):
                    if self.chaos is None or not self.chaos.enabled:
                        return 0
                    return self.chaos.walk_cycles()
            """,
            ["SIM-H101"],
        )
        assert report.findings == []

    def test_and_chain_guard_is_recognized(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/runtime/ok.py",
            """
            class Sched:
                def maybe(self):
                    return self.resilience is not None and self.resilience.active()
            """,
            ["SIM-H101"],
        )
        assert report.findings == []

    def test_guard_in_caller_does_not_count(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/bad.py",
            """
            class Machine:
                def outer(self):
                    if self.chaos is not None:
                        self.inner()

                def inner(self):
                    self.chaos.flip()
            """,
            ["SIM-H101"],
        )
        assert rule_ids(report) == ["SIM-H101"]

    def test_out_of_scope_directory_is_ignored(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/harness/anything.py",
            """
            class Runner:
                def go(self):
                    return self.chaos.pick(3)
            """,
            ["SIM-H101"],
        )
        assert report.findings == []


class TestTracerEmitGuard:
    def test_flags_unguarded_emit(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/bad.py",
            """
            class Machine:
                def step(self):
                    self.tracer.tx_begin(0, 1, 2)
            """,
            ["SIM-H102"],
        )
        assert rule_ids(report) == ["SIM-H102"]

    def test_enabled_guard_is_recognized(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/ok.py",
            """
            class Machine:
                def step(self):
                    if self.tracer.enabled:
                        self.tracer.tx_begin(0, 1, 2)
            """,
            ["SIM-H102"],
        )
        assert report.findings == []

    def test_alias_guard_is_recognized(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/runtime/ok.py",
            """
            class Thread:
                def run(self):
                    tracer = self.machine.tracer
                    if tracer.enabled:
                        tracer.tx_commit(0, 1, 2)
            """,
            ["SIM-H102"],
        )
        assert report.findings == []

    def test_early_return_guard_is_recognized(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/ok.py",
            """
            class Machine:
                def _trace_access(self, now):
                    if not self.tracer.enabled:
                        return
                    self.tracer.tx_access(0, 1, now, "read", 64)
            """,
            ["SIM-H102"],
        )
        assert report.findings == []

    def test_enabled_read_itself_is_clean(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/ok.py",
            """
            class Machine:
                def active(self):
                    return self.tracer.enabled
            """,
            ["SIM-H102"],
        )
        assert report.findings == []

    def test_wrong_alias_guard_still_flags(self, tmp_path):
        # Guarding other.enabled must not license self.tracer emits.
        report = analyze_snippet(
            tmp_path,
            "repro/core/bad.py",
            """
            class Machine:
                def step(self, other):
                    if other.enabled:
                        self.tracer.tx_begin(0, 1, 2)
            """,
            ["SIM-H102"],
        )
        assert rule_ids(report) == ["SIM-H102"]


class TestInlineSuppression:
    def test_ignore_comment_silences_one_site(self, tmp_path):
        report = analyze_snippet(
            tmp_path,
            "repro/core/bad.py",
            """
            class Machine:
                def step(self):
                    self.tracer.tx_begin(0, 1, 2)  # simcheck: ignore[SIM-H102]
                    self.tracer.tx_abort(0, 1, 2)
            """,
            ["SIM-H102"],
        )
        assert rule_ids(report) == ["SIM-H102"]
        assert len(report.inline_suppressed) == 1
        assert report.findings[0].message.startswith("self.tracer.tx_abort")
