"""Signature (Bloom filter) semantics, incl. property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures.bloom import Signature

addresses = st.integers(min_value=0, max_value=(1 << 36) - 1)


def test_empty_signature_has_no_members():
    signature = Signature(256, 2)
    assert not signature.member(1234)
    assert signature.is_empty
    assert signature.popcount == 0


def test_insert_then_member():
    signature = Signature(256, 2)
    signature.insert(77)
    assert signature.member(77)
    assert not signature.is_empty


@given(st.lists(addresses, max_size=200))
@settings(max_examples=50, deadline=None)
def test_no_false_negatives(inserted):
    """The defining Bloom property: every inserted address is a member."""
    signature = Signature(512, 4)
    for address in inserted:
        signature.insert(address)
    for address in inserted:
        assert signature.member(address)


@given(st.lists(addresses, min_size=1, max_size=50), st.lists(addresses, max_size=50))
@settings(max_examples=30, deadline=None)
def test_union_covers_both_operands(left_set, right_set):
    left = Signature(512, 4)
    right = Signature(512, 4)
    left.insert_all(left_set)
    right.insert_all(right_set)
    left.union(right)
    for address in left_set + right_set:
        assert left.member(address)


@given(st.lists(addresses, min_size=1, max_size=30))
@settings(max_examples=30, deadline=None)
def test_intersects_shared_membership(shared):
    one = Signature(512, 4)
    two = Signature(512, 4)
    one.insert_all(shared)
    two.insert_all(shared)
    assert one.intersects(two)


def test_intersects_false_for_disjoint_sparse_sets():
    one = Signature(2048, 4)
    two = Signature(2048, 4)
    one.insert(100)
    two.insert(2_000_000)
    # With two sparse entries in a 2K-bit filter a collision would be
    # astronomically unlucky under the fixed default seed.
    assert not one.intersects(two)


def test_clear_resets():
    signature = Signature(256, 2)
    signature.insert(5)
    signature.clear()
    assert signature.is_empty
    assert not signature.member(5)
    assert signature.inserted_count == 0


def test_copy_is_independent():
    signature = Signature(256, 2)
    signature.insert(5)
    clone = signature.copy()
    clone.insert(6)
    assert clone.member(5) and clone.member(6)
    # Original must share the hash family (same indices) but not bits.
    assert signature.member(5)


def test_copy_preserves_hash_family():
    signature = Signature(256, 2, seed=123)
    clone = signature.copy()
    clone.insert(42)
    signature.insert(42)
    assert signature._banks == clone._banks


def test_union_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        Signature(256, 2).union(Signature(512, 2))
    with pytest.raises(ValueError):
        Signature(256, 2).intersects(Signature(256, 4))


def test_occupancy_monotone():
    signature = Signature(256, 2)
    previous = 0.0
    for address in range(0, 4000, 67):
        signature.insert(address)
        assert signature.occupancy() >= previous
        previous = signature.occupancy()
    assert 0.0 < signature.occupancy() <= 1.0


def test_false_positive_rate_reasonable():
    """2048-bit 4-hash signatures keep FP rates low at small sets."""
    signature = Signature(2048, 4)
    signature.insert_all(range(0, 64))
    false_hits = sum(
        1 for probe in range(10_000, 20_000) if signature.member(probe)
    )
    assert false_hits < 200  # < 2% at 64 entries


def test_read_hash_is_deterministic_and_bounded():
    signature = Signature(2048, 4)
    value = signature.read_hash(777)
    assert value == signature.read_hash(777)
    assert 0 <= value < (1 << (4 * 9))
