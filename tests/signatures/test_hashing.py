"""Hash families for signatures."""

import pytest

from repro.signatures.hashing import (
    ADDRESS_BITS,
    BitSelectHash,
    H3Hash,
    make_hash_family,
)
from repro.sim.rng import DeterministicRng


def test_bit_select_extracts_expected_bits():
    hash_fn = BitSelectHash(index_bits=4, shift=2)
    assert hash_fn(0b110100) == 0b1101
    assert hash_fn(0) == 0


def test_bit_select_validates_args():
    with pytest.raises(ValueError):
        BitSelectHash(0)
    with pytest.raises(ValueError):
        BitSelectHash(4, shift=-1)


def test_h3_output_range():
    rng = DeterministicRng(1)
    hash_fn = H3Hash.random(9, rng)
    for address in range(0, 5000, 37):
        assert 0 <= hash_fn(address) < 512


def test_h3_deterministic():
    hash_fn = H3Hash([0b1010, 0b0110])
    assert hash_fn(0b1000) == hash_fn(0b1000)
    # bit0 = parity(0b1000 & 0b1010) = 1; bit1 = parity(0b1000 & 0b0110) = 0
    assert hash_fn(0b1000) == 0b01


def test_h3_rejects_empty_masks():
    with pytest.raises(ValueError):
        H3Hash([])


def test_h3_xor_linearity():
    """H3 is linear over GF(2): h(a ^ b) == h(a) ^ h(b)."""
    rng = DeterministicRng(2)
    hash_fn = H3Hash.random(8, rng)
    for a, b in [(3, 5), (100, 999), (2 ** 20, 7)]:
        assert hash_fn(a ^ b) == hash_fn(a) ^ hash_fn(b)


def test_family_shapes():
    family = make_hash_family(2048, 4)
    assert len(family) == 4
    assert family.index_bits == 9  # 2048 / 4 = 512-entry banks
    indices = family.indices(12345)
    assert len(indices) == 4
    assert all(0 <= index < 512 for index in indices)


def test_family_bit_select_variant():
    family = make_hash_family(256, 2, kind="bit-select")
    assert len(family) == 2


def test_family_rejects_bad_shapes():
    with pytest.raises(ValueError):
        make_hash_family(2048, 3)  # does not divide evenly
    with pytest.raises(ValueError):
        make_hash_family(96, 2)  # bank not a power of two
    with pytest.raises(ValueError):
        make_hash_family(2048, 4, kind="nope")


def test_families_with_same_seed_match():
    one = make_hash_family(1024, 4, seed=9)
    two = make_hash_family(1024, 4, seed=9)
    for address in (0, 17, 923441, (1 << ADDRESS_BITS) - 1):
        assert one.indices(address) == two.indices(address)
