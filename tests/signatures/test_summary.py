"""Summary signatures at the directory (Section 5)."""

import pytest

from repro.signatures.bloom import Signature
from repro.signatures.summary import SummarySignatures


def _sig(*lines, bits=256, hashes=2):
    signature = Signature(bits, hashes)
    signature.insert_all(lines)
    return signature


@pytest.fixture
def summaries():
    return SummarySignatures(signature_bits=256, num_hashes=2, num_processors=4)


def test_empty_summaries_never_conflict(summaries):
    assert summaries.is_empty
    assert not summaries.conflicts(123, is_write=True)
    assert not summaries.conflicts(123, is_write=False)


def test_install_reflects_read_and_write_sets(summaries):
    summaries.install(7, _sig(10), _sig(20), last_processor=1)
    assert summaries.hits_read_summary(10)
    assert summaries.hits_write_summary(20)
    # A read conflicts only with suspended writers.
    assert summaries.conflicts(20, is_write=False)
    assert not summaries.conflicts(10, is_write=False)
    # A write conflicts with suspended readers too.
    assert summaries.conflicts(10, is_write=True)


def test_remove_rebuilds_from_remaining(summaries):
    summaries.install(1, _sig(10), _sig(), last_processor=0)
    summaries.install(2, _sig(30), _sig(), last_processor=2)
    summaries.remove(1)
    assert not summaries.conflicts(10, is_write=True)
    assert summaries.conflicts(30, is_write=True)
    assert summaries.suspended_threads() == [2]


def test_cores_summary_tracks_processors(summaries):
    summaries.install(1, _sig(10), _sig(), last_processor=3)
    assert summaries.core_in_summary(3)
    assert not summaries.core_in_summary(0)
    summaries.remove(1)
    assert not summaries.core_in_summary(3)


def test_sticky_sharer_requires_core_and_line(summaries):
    summaries.install(1, _sig(10), _sig(11), last_processor=2)
    assert summaries.sticky_sharer(10, 2)
    assert summaries.sticky_sharer(11, 2)
    assert not summaries.sticky_sharer(10, 0)  # wrong core
    assert not summaries.sticky_sharer(999_999, 2)  # line not in summary


def test_threads_conflicting_refines_per_thread(summaries):
    summaries.install(1, _sig(10), _sig(), last_processor=0)
    summaries.install(2, _sig(), _sig(10), last_processor=1)
    # A write to line 10 conflicts with the reader (1) and writer (2).
    assert list(summaries.threads_conflicting(10, is_write=True)) == [1, 2]
    # A read conflicts only with the writer.
    assert list(summaries.threads_conflicting(10, is_write=False)) == [2]


def test_install_validates_processor(summaries):
    with pytest.raises(ValueError):
        summaries.install(1, _sig(), _sig(), last_processor=99)


def test_reinstall_same_thread_replaces(summaries):
    summaries.install(1, _sig(10), _sig(), last_processor=0)
    summaries.install(1, _sig(20), _sig(), last_processor=0)
    assert not summaries.conflicts(10, is_write=True)
    assert summaries.conflicts(20, is_write=True)
