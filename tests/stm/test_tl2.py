"""TL-2 mechanics: versions, validation, commit locking."""

import pytest

from repro.core.machine import FlexTMMachine
from repro.errors import TransactionAborted
from repro.params import small_test_params
from repro.runtime.txthread import TxThread
from repro.stm.base import encode_version, version_of, is_locked, encode_locked
from repro.stm.tl2 import Tl2Runtime
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _thread(runtime, thread_id, proc):
    thread = TxThread(thread_id, runtime, iter(()))
    thread.processor = proc
    return thread


def test_lock_word_encoding():
    assert version_of(encode_version(5)) == 5
    assert not is_locked(encode_version(5))
    assert is_locked(encode_locked(3))
    assert encode_locked(3) >> 1 == 3


def test_read_write_commit_roundtrip(m):
    runtime = Tl2Runtime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 9))
    assert drive(m, 0, runtime.read(thread, address)) == 9  # own redo log
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(address) == 9
    # Orec released with a new version.
    orec = runtime.orecs.orec_address(address)
    assert not is_locked(m.memory.read(orec))
    assert version_of(m.memory.read(orec)) > 0


def test_read_only_commit_is_trivial(m):
    runtime = Tl2Runtime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    m.store(0, address, 4)
    drive(m, 0, runtime.begin(thread))
    assert drive(m, 0, runtime.read(thread, address)) == 4
    clock_before = m.memory.read(runtime.clock_address)
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(runtime.clock_address) == clock_before  # no clock bump


def test_stale_read_aborts_at_read_time(m):
    runtime = Tl2Runtime(m)
    reader = _thread(runtime, 0, 0)
    writer = _thread(runtime, 1, 1)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(reader))
    # Writer commits, advancing the orec past the reader's read version.
    drive(m, 1, runtime.begin(writer))
    drive(m, 1, runtime.write(writer, address, 5))
    drive(m, 1, runtime.commit(writer))
    with pytest.raises(TransactionAborted):
        drive(m, 0, runtime.read(reader, address))


def test_upgrade_hazard_detected_at_commit(m):
    """Read X, someone commits X, then we write X: must abort."""
    runtime = Tl2Runtime(m)
    victim = _thread(runtime, 0, 0)
    other = _thread(runtime, 1, 1)
    address_x = m.allocate_words(1, line_aligned=True)
    address_y = m.allocate(m.params.line_bytes * 4, line_aligned=True)
    drive(m, 0, runtime.begin(victim))
    drive(m, 0, runtime.read(victim, address_x))
    drive(m, 1, runtime.begin(other))
    drive(m, 1, runtime.write(other, address_x, 5))
    drive(m, 1, runtime.commit(other))
    drive(m, 0, runtime.write(victim, address_x, 7))
    with pytest.raises(TransactionAborted):
        drive(m, 0, runtime.commit(victim))
    # Locks released after the failed commit.
    orec = runtime.orecs.orec_address(address_x)
    assert not is_locked(m.memory.read(orec))


def test_commit_validation_catches_concurrent_writer(m):
    runtime = Tl2Runtime(m)
    reader = _thread(runtime, 0, 0)
    writer = _thread(runtime, 1, 1)
    address_x = m.allocate(m.params.line_bytes, line_aligned=True)
    address_y = m.allocate(m.params.line_bytes, line_aligned=True)
    drive(m, 0, runtime.begin(reader))
    drive(m, 0, runtime.read(reader, address_x))
    drive(m, 0, runtime.write(reader, address_y, 1))
    drive(m, 1, runtime.begin(writer))
    drive(m, 1, runtime.write(writer, address_x, 5))
    drive(m, 1, runtime.commit(writer))
    with pytest.raises(TransactionAborted):
        drive(m, 0, runtime.commit(reader))
    assert m.memory.read(address_y) == 0  # redo log never applied


def test_locked_orec_aborts_reader(m):
    runtime = Tl2Runtime(m)
    reader = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    orec = runtime.orecs.orec_address(address)
    m.memory.write(orec, encode_locked(9))  # someone holds it
    drive(m, 0, runtime.begin(reader))
    with pytest.raises(TransactionAborted):
        drive(m, 0, runtime.read(reader, address))


def test_on_abort_resets_state(m):
    runtime = Tl2Runtime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 1))
    drive(m, 0, runtime.on_abort(thread))
    assert thread.stm_state.write_map == {}
    assert thread.stm_state.read_set == []
