"""Coarse-grain lock baseline."""

import pytest

from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem
from repro.stm.cgl import CglRuntime, LOCK_FREE, LOCK_HELD
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def test_begin_acquires_commit_releases(m):
    runtime = CglRuntime(m)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    drive(m, 0, runtime.begin(thread))
    assert m.memory.read(runtime.lock_address) == LOCK_HELD
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(runtime.lock_address) == LOCK_FREE


def test_reads_and_writes_are_plain(m):
    runtime = CglRuntime(m)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 5))
    assert m.memory.read(address) == 5  # visible immediately (no buffering)
    assert drive(m, 0, runtime.read(thread, address)) == 5
    drive(m, 0, runtime.commit(thread))


def test_mutual_exclusion_under_contention(m):
    runtime = CglRuntime(m)
    counter = m.allocate_words(1, line_aligned=True)

    def increment(ctx):
        value = yield from ctx.read(counter)
        yield from ctx.work(10)
        yield from ctx.write(counter, value + 1)

    def items(count):
        for _ in range(count):
            yield WorkItem(increment)

    threads = [TxThread(i, runtime, items(25)) for i in range(4)]
    result = Scheduler(m, threads).run(cycle_limit=10_000_000)
    assert result.commits == 100
    assert result.aborts == 0  # CGL never aborts
    assert m.memory.read(counter) == 100


def test_serializes_with_many_threads(m):
    """CGL throughput must not scale (the flat curves of Figure 4)."""
    def run(nthreads):
        machine = FlexTMMachine(small_test_params(4))
        runtime = CglRuntime(machine)
        counter = machine.allocate_words(1, line_aligned=True)

        def increment(ctx):
            value = yield from ctx.read(counter)
            yield from ctx.work(50)
            yield from ctx.write(counter, value + 1)

        def items():
            while True:
                yield WorkItem(increment)

        threads = [TxThread(i, runtime, items()) for i in range(nthreads)]
        return Scheduler(machine, threads).run(cycle_limit=100_000).commits

    single = run(1)
    quad = run(4)
    assert quad <= single * 1.3  # no speedup from extra threads
