"""RSTM model: ownership, validation, wounding."""

import pytest

from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.errors import TransactionAborted
from repro.params import small_test_params
from repro.runtime.txthread import TxThread
from repro.stm.base import is_locked
from repro.stm.rstm import RstmRuntime
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _thread(runtime, thread_id, proc):
    thread = TxThread(thread_id, runtime, iter(()))
    thread.processor = proc
    return thread


def test_write_acquires_header(m):
    runtime = RstmRuntime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 3))
    header = runtime.headers.orec_address(address)
    word = m.memory.read(header)
    assert is_locked(word) and word >> 1 == 0  # owned by thread 0


def test_commit_publishes_and_releases(m):
    runtime = RstmRuntime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 3))
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(address) == 3
    header = runtime.headers.orec_address(address)
    assert not is_locked(m.memory.read(header))


def test_buffered_read_after_write(m):
    runtime = RstmRuntime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 3))
    assert drive(m, 0, runtime.read(thread, address)) == 3
    assert m.memory.read(address) == 0  # not yet published


def test_commit_validation_detects_stale_read(m):
    runtime = RstmRuntime(m)
    reader = _thread(runtime, 0, 0)
    writer = _thread(runtime, 1, 1)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(reader))
    drive(m, 0, runtime.read(reader, address))
    drive(m, 1, runtime.begin(writer))
    drive(m, 1, runtime.write(writer, address, 5))
    drive(m, 1, runtime.commit(writer))
    with pytest.raises(TransactionAborted):
        drive(m, 0, runtime.commit(reader))


def test_upgrade_hazard_detected_at_acquire(m):
    runtime = RstmRuntime(m)
    victim = _thread(runtime, 0, 0)
    other = _thread(runtime, 1, 1)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(victim))
    drive(m, 0, runtime.read(victim, address))
    drive(m, 1, runtime.begin(other))
    drive(m, 1, runtime.write(other, address, 5))
    drive(m, 1, runtime.commit(other))
    with pytest.raises(TransactionAborted):
        drive(m, 0, runtime.write(victim, address, 7))


def test_writer_wounds_conflicting_owner(m):
    """Polka eventually aborts the enemy through its status word."""
    runtime = RstmRuntime(m)
    owner = _thread(runtime, 0, 0)
    challenger = _thread(runtime, 1, 1)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(owner))
    drive(m, 0, runtime.write(owner, address, 1))
    drive(m, 1, runtime.begin(challenger))
    owner_status = owner.stm_status_address

    # The challenger spins; the owner must eventually be wounded, at
    # which point its (simulated) cleanup releases the header.  We
    # interleave cleanup manually when the wound lands.
    generator = runtime.write(challenger, address, 2)
    result = None
    for _ in range(10_000):
        try:
            op = generator.send(result)
        except StopIteration:
            break
        from tests.helpers import execute_op

        result = execute_op(m, 1, op)
        if m.memory.read(owner_status) == TxStatus.ABORTED:
            drive(m, 0, runtime.on_abort(owner))  # victim cleanup path
    assert m.memory.read(owner_status) == TxStatus.ABORTED
    drive(m, 1, runtime.commit(challenger))
    assert m.memory.read(address) == 2


def test_check_aborted_polls_status(m):
    runtime = RstmRuntime(m)
    thread = _thread(runtime, 0, 0)
    drive(m, 0, runtime.begin(thread))
    thread.in_transaction = True
    assert not runtime.check_aborted(thread)
    m.memory.write(thread.stm_status_address, TxStatus.ABORTED)
    assert runtime.check_aborted(thread)


def test_on_abort_releases_owned_headers(m):
    runtime = RstmRuntime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 1))
    header = runtime.headers.orec_address(address)
    assert is_locked(m.memory.read(header))
    drive(m, 0, runtime.on_abort(thread))
    assert not is_locked(m.memory.read(header))
