"""RTM-F: FlexTM assists + software metadata bookkeeping."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.txthread import TxThread
from repro.stm.rtmf import RtmfRuntime
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _thread(runtime, thread_id, proc):
    thread = TxThread(thread_id, runtime, iter(()))
    thread.processor = proc
    return thread


def test_roundtrip_commits_values(m):
    runtime = RtmfRuntime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 7))
    assert drive(m, 0, runtime.read(thread, address)) == 7
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(address) == 7


def test_rtmf_slower_than_flextm_per_access(m):
    """The metadata bookkeeping must cost real cycles vs plain FlexTM."""
    address = m.allocate_words(1)

    def measure(runtime_cls):
        machine = FlexTMMachine(small_test_params(4))
        runtime = runtime_cls(machine)
        thread = _thread(runtime, 0, 0)
        target = machine.allocate_words(1)
        drive(machine, 0, runtime.begin(thread))
        for _ in range(20):
            drive(machine, 0, runtime.read(thread, target))
            drive(machine, 0, runtime.write(thread, target, 1))
        drive(machine, 0, runtime.commit(thread))
        return machine.processors[0].clock.now

    flextm_cycles = measure(FlexTMRuntime)
    rtmf_cycles = measure(RtmfRuntime)
    assert rtmf_cycles > flextm_cycles * 1.5


def test_header_version_bumped_at_commit(m):
    runtime = RtmfRuntime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    header = runtime.headers.orec_address(address)
    before = m.memory.read(header)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 7))
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(header) > before


def test_conflicts_still_handled_by_flextm_mechanisms(m):
    runtime = RtmfRuntime(m, mode=ConflictMode.LAZY)
    writer = _thread(runtime, 0, 0)
    reader = _thread(runtime, 1, 1)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(writer))
    drive(m, 1, runtime.begin(reader))
    drive(m, 0, runtime.write(writer, address, 5))
    drive(m, 1, runtime.read(reader, address))
    drive(m, 0, runtime.commit(writer))
    assert m.read_status(reader.descriptor) is TxStatus.ABORTED
