"""LogTM-SE model: stalls, self-aborts, undo cost, convoying."""

import pytest

from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem
from repro.stm.logtmse import LogTmSeRuntime
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _thread(runtime, thread_id, proc):
    thread = TxThread(thread_id, runtime, iter(()))
    thread.processor = proc
    return thread


def test_roundtrip(m):
    runtime = LogTmSeRuntime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 5))
    assert drive(m, 0, runtime.read(thread, address)) == 5
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(address) == 5


def test_reader_stalls_never_reads_threatened_value(m):
    """A read conflicting with a writer must not complete; after the
    writer commits, the reader gets the *new* value (no stale TI read)."""
    runtime = LogTmSeRuntime(m)
    writer = _thread(runtime, 0, 0)
    reader = _thread(runtime, 1, 1)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(writer))
    drive(m, 0, runtime.write(writer, address, 9))
    drive(m, 1, runtime.begin(reader))
    generator = runtime.read(reader, address)
    from tests.helpers import execute_op

    result = None
    committed = False
    for _ in range(200):
        try:
            op = generator.send(result)
        except StopIteration as stop:
            value = stop.value
            break
        result = execute_op(m, 1, op)
        # Let the writer commit partway through the reader's stalling.
        if not committed and m.processors[1].clock.now > m.processors[0].clock.now + 200:
            drive(m, 0, runtime.commit(writer))
            committed = True
    else:
        pytest.fail("reader never completed")
    assert committed
    assert value == 9  # saw the committed value, never the stale one


def test_self_abort_on_persistent_conflict(m):
    """With the enemy never finishing, the possible-deadlock trap fires
    and the requestor aborts *itself* (no remote aborts in LogTM-SE)."""
    from repro.errors import TransactionAborted

    runtime = LogTmSeRuntime(m)
    blocker = _thread(runtime, 0, 0)
    victim = _thread(runtime, 1, 1)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(blocker))
    drive(m, 0, runtime.write(blocker, address, 1))
    drive(m, 1, runtime.begin(victim))
    with pytest.raises(TransactionAborted):
        drive(m, 1, runtime.read(victim, address))
    # The blocker was never aborted.
    assert m.read_status(blocker.descriptor) is TxStatus.ACTIVE
    assert m.read_status(victim.descriptor) is TxStatus.ABORTED


def test_abort_cost_scales_with_write_set(m):
    runtime = LogTmSeRuntime(m)
    thread = _thread(runtime, 0, 0)
    base = m.allocate(64 * 32, line_aligned=True)
    drive(m, 0, runtime.begin(thread))
    for index in range(20):
        drive(m, 0, runtime.write(thread, base + index * 64, index))
    m.memory.write(thread.descriptor.tsw_address, TxStatus.ABORTED)
    before = m.processors[0].clock.now
    drive(m, 0, runtime.on_abort(thread))
    undo_cycles = m.processors[0].clock.now - before
    assert undo_cycles >= 20 * 20  # reverse log walk, per-line cost


def test_concurrent_counter_is_serializable(m):
    runtime = LogTmSeRuntime(m)
    counter = m.allocate_words(1, line_aligned=True)

    def increment(ctx):
        value = yield from ctx.read(counter)
        yield from ctx.work(10)
        yield from ctx.write(counter, value + 1)

    def items(count):
        for _ in range(count):
            yield WorkItem(increment)

    threads = [TxThread(i, runtime, items(20)) for i in range(4)]
    result = Scheduler(m, threads).run(cycle_limit=100_000_000)
    assert result.commits == 80
    assert m.memory.read(counter) == 80


def test_convoying_behind_descheduled_transaction():
    """Section 5's qualitative claim: with stall-only management, work
    queues behind a descheduled conflicting transaction; FlexTM's
    remote aborts break the convoy.  Compare commits while a writer
    sleeps mid-transaction."""

    def run(runtime_cls):
        machine = FlexTMMachine(small_test_params(4))
        runtime = runtime_cls(machine)
        hot = machine.allocate(64, line_aligned=True)

        def writer_then_sleep(ctx):
            yield from ctx.write(hot, 1)
            for _ in range(400):  # long transaction: gets descheduled
                yield from ctx.work(100)

        def reader(ctx):
            yield from ctx.read(hot)

        def reader_items():
            while True:
                yield WorkItem(reader)

        threads = [
            TxThread(0, runtime, iter([WorkItem(writer_then_sleep)])),
            TxThread(1, runtime, reader_items()),
            TxThread(2, runtime, reader_items()),
        ]
        # One core: the writer is descheduled mid-transaction.
        scheduler = Scheduler(machine, threads, quantum=2_000, processors=[0])
        result = scheduler.run(cycle_limit=120_000)
        return result

    logtm = run(LogTmSeRuntime)
    flextm = run(FlexTMRuntime)
    # FlexTM readers wound the suspended writer and stream through;
    # LogTM-SE readers can only stall/self-abort behind it.
    assert flextm.commits > logtm.commits * 1.5
