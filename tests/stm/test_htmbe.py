"""HTM-BE mechanics: capacity bounds, eager conflicts, the fallback ladder."""

import dataclasses

import pytest

from repro.core.machine import FlexTMMachine
from repro.errors import TransactionAborted
from repro.params import small_test_params
from repro.resilience.fallback import (
    HTM_PATH,
    IRREVOCABLE_PATH,
    SW_PATH,
    FallbackSpec,
)
from repro.runtime.txthread import TxThread
from repro.stm.htmbe import HtmBestEffortRuntime
from tests.helpers import drive


@pytest.fixture
def m():
    params = small_test_params(4)
    return FlexTMMachine(
        dataclasses.replace(params, htm_read_lines=4, htm_write_lines=2)
    )


def _thread(runtime, thread_id, proc):
    thread = TxThread(thread_id, runtime, iter(()))
    thread.processor = proc
    return thread


def _lines(m, count):
    """Distinct line-aligned cells, one per cache line."""
    return [
        m.allocate(m.params.line_bytes, line_aligned=True) for _ in range(count)
    ]


def test_read_write_commit_roundtrip(m):
    runtime = HtmBestEffortRuntime(m)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 9))
    assert drive(m, 0, runtime.read(thread, address)) == 9  # own redo log
    assert m.memory.read(address) == 0  # buffered until commit
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(address) == 9
    assert runtime.policy.escalation_counters() == {"fallback_commits_htm": 1}


def test_write_capacity_abort_at_bound(m):
    runtime = HtmBestEffortRuntime(m)
    thread = _thread(runtime, 0, 0)
    cells = _lines(m, 3)  # write bound is 2 lines
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, cells[0], 1))
    drive(m, 0, runtime.write(thread, cells[1], 1))
    with pytest.raises(TransactionAborted) as aborted:
        drive(m, 0, runtime.write(thread, cells[2], 1))
    assert aborted.value.conflict == "capacity"
    drive(m, 0, runtime.on_abort(thread))
    assert m.memory.read(cells[0]) == 0  # nothing leaked to memory
    # Capacity fast-forwards the ladder past the remaining HTM budget.
    assert runtime.policy.path_for(0) == SW_PATH


def test_read_capacity_abort_at_bound(m):
    runtime = HtmBestEffortRuntime(m)
    thread = _thread(runtime, 0, 0)
    cells = _lines(m, 5)  # read bound is 4 lines
    drive(m, 0, runtime.begin(thread))
    for cell in cells[:4]:
        drive(m, 0, runtime.read(thread, cell))
    with pytest.raises(TransactionAborted) as aborted:
        drive(m, 0, runtime.read(thread, cells[4]))
    assert aborted.value.conflict == "capacity"


def test_conflicting_requestor_self_aborts(m):
    runtime = HtmBestEffortRuntime(m)
    writer = _thread(runtime, 0, 0)
    reader = _thread(runtime, 1, 1)
    address = m.allocate_words(1, line_aligned=True)
    drive(m, 0, runtime.begin(writer))
    drive(m, 0, runtime.write(writer, address, 5))
    drive(m, 1, runtime.begin(reader))
    with pytest.raises(TransactionAborted) as aborted:
        drive(m, 1, runtime.read(reader, address))
    assert aborted.value.conflict == "htm-conflict"
    assert aborted.value.by == 0  # the attacker dies, the writer survives
    drive(m, 1, runtime.on_abort(reader))
    drive(m, 0, runtime.commit(writer))
    assert m.memory.read(address) == 5


def test_write_after_remote_read_conflicts(m):
    runtime = HtmBestEffortRuntime(m)
    reader = _thread(runtime, 0, 0)
    writer = _thread(runtime, 1, 1)
    address = m.allocate_words(1, line_aligned=True)
    drive(m, 0, runtime.begin(reader))
    drive(m, 0, runtime.read(reader, address))
    drive(m, 1, runtime.begin(writer))
    with pytest.raises(TransactionAborted) as aborted:
        drive(m, 1, runtime.write(writer, address, 7))
    assert aborted.value.conflict == "htm-conflict"


def test_suspend_dooms_hardware_attempt(m):
    runtime = HtmBestEffortRuntime(m)
    thread = _thread(runtime, 0, 0)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, m.allocate_words(1), 3))
    runtime.suspend(thread)
    assert runtime.check_aborted(thread)
    assert runtime.resume(thread, 1, None) == "aborted"
    assert runtime.abort_attribution(thread) == (-1, "explicit")
    with pytest.raises(TransactionAborted):
        drive(m, 0, runtime.commit(thread))


def test_software_path_survives_suspend_and_capacity(m):
    spec = FallbackSpec(htm_retries=1, sw_retries=8)
    runtime = HtmBestEffortRuntime(m, spec)
    runtime.policy.note_abort(0, "htm-conflict")  # streak 1 -> sw path
    thread = _thread(runtime, 0, 0)
    cells = _lines(m, 4)  # above the hardware write bound of 2
    drive(m, 0, runtime.begin(thread))
    assert runtime.active_attempts() == [(0, SW_PATH, False, False)]
    runtime.suspend(thread)  # software state survives a context switch
    assert not runtime.check_aborted(thread)
    for index, cell in enumerate(cells):
        drive(m, 0, runtime.write(thread, cell, index))
    drive(m, 0, runtime.commit(thread))
    assert [m.memory.read(cell) for cell in cells] == [0, 1, 2, 3]
    assert runtime.policy.escalation_counters()["fallback_commits_sw"] == 1


def test_irrevocable_grant_drains_peers(m):
    spec = FallbackSpec(htm_retries=1, sw_retries=1)
    runtime = HtmBestEffortRuntime(m, spec)
    victim = _thread(runtime, 0, 0)
    serial = _thread(runtime, 1, 1)
    drive(m, 0, runtime.begin(victim))
    runtime.policy.note_abort(1, "htm-conflict")
    runtime.policy.note_abort(1, "htm-conflict")  # streak 2 -> irrevocable
    assert runtime.policy.path_for(1) == IRREVOCABLE_PATH
    drive(m, 1, runtime.begin(serial))
    # The grant doomed the in-flight peer with the fallback wound kind.
    assert runtime.check_aborted(victim)
    assert runtime.abort_attribution(victim) == (1, "fallback")
    assert runtime.policy.serial_active
    assert runtime.policy.token_holders() == [1]
    with pytest.raises(TransactionAborted):
        drive(m, 0, runtime.commit(victim))
    drive(m, 0, runtime.on_abort(victim))
    # The serial commit releases the token and leaves serial mode.
    address = m.allocate_words(1)
    drive(m, 1, runtime.write(serial, address, 11))
    drive(m, 1, runtime.commit(serial))
    assert m.memory.read(address) == 11
    assert not runtime.policy.serial_active
    assert not runtime.policy.token.busy
    counters = runtime.policy.escalation_counters()
    assert counters["fallback_commits_irrevocable"] == 1
    assert counters["fallback_grants"] == 1
    assert counters["fallback_dooms"] == 1


def test_committing_peer_still_wins_conflicts(m):
    runtime = HtmBestEffortRuntime(m)
    committer = _thread(runtime, 0, 0)
    attacker = _thread(runtime, 1, 1)
    address = m.allocate_words(1, line_aligned=True)
    drive(m, 0, runtime.begin(committer))
    drive(m, 0, runtime.write(committer, address, 1))
    # Step the committer into its write-back window by hand.
    gen = runtime.commit(committer)
    op = next(gen)
    while op[0] == "work":
        op = gen.send(None)
    assert op[0] == "store"
    drive(m, 1, runtime.begin(attacker))
    with pytest.raises(TransactionAborted) as aborted:
        drive(m, 1, runtime.read(attacker, address))
    assert aborted.value.conflict == "htm-conflict"
    drive(m, 1, runtime.on_abort(attacker))
    with pytest.raises(StopIteration):
        gen.send(m.store(0, address, 1))


def test_retry_backoff_delegates_to_policy(m):
    runtime = HtmBestEffortRuntime(m)
    assert runtime.retry_backoff(0) == 0
    assert runtime.retry_backoff(1) == 32
    assert runtime.retry_backoff(2) == 64
    assert runtime.retry_backoff(99) == 2048  # capped


def test_machine_exposes_fallback_policy(m):
    runtime = HtmBestEffortRuntime(m)
    assert m.htm_fallback is runtime.policy
    assert runtime.policy.active_attempts() == []
