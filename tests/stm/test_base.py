"""Shared STM plumbing: lock tables and thread state."""

import pytest

from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.stm.base import (
    LockTable,
    StmThreadState,
    encode_locked,
    encode_version,
    is_locked,
    version_of,
)


@pytest.fixture
def machine():
    return FlexTMMachine(small_test_params(2))


def test_orec_addresses_are_in_table(machine):
    table = LockTable(machine, num_orecs=256)
    for address in (0, 64, 1 << 20, 12345678):
        orec = table.orec_address(address)
        assert table.base <= orec < table.base + 256 * 8
        assert orec % 8 == 0


def test_same_line_same_orec(machine):
    table = LockTable(machine, num_orecs=256)
    assert table.orec_address(0x1000) == table.orec_address(0x1008)
    assert table.orec_address(0x1000) == table.orec_address(0x103F)


def test_neighbouring_lines_spread(machine):
    table = LockTable(machine, num_orecs=1024)
    orecs = {table.orec_address(line * 64) for line in range(512)}
    # The multiplicative hash should spread lines widely.
    assert len(orecs) > 300


def test_shape_validation(machine):
    with pytest.raises(ValueError):
        LockTable(machine, num_orecs=100)


def test_lock_word_encoding_roundtrip():
    for version in (0, 1, 7, 123456):
        word = encode_version(version)
        assert not is_locked(word)
        assert version_of(word) == version
    locked = encode_locked(9)
    assert is_locked(locked)
    assert locked >> 1 == 9


def test_thread_state_write_orec_dedup():
    state = StmThreadState()
    orec = 4096
    assert state.note_write_orec(orec) is True
    assert state.note_write_orec(orec) is False
    assert state.write_orecs == [orec]


def test_thread_state_reset():
    state = StmThreadState()
    state.read_set.append((1, 2))
    state.write_map[8] = 9
    state.note_write_orec(16)
    state.reset()
    assert state.read_set == [] and state.write_map == {} and state.write_orecs == []
