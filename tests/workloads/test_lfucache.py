"""LFUCache workload: heap invariants and hot-page contention."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.api import TxContext
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads.base import word_address
from repro.workloads.lfucache import HEAP_ENTRIES, LFUCacheWorkload
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _consistent_slots(m, workload):
    """heap[] and slot[] must stay mutually consistent."""
    for slot in range(HEAP_ENTRIES):
        page_word = m.memory.read(word_address(workload.heap_base, slot))
        if page_word:
            back = m.memory.read(word_address(workload.slot_base, page_word - 1))
            assert back == slot + 1, f"slot map broken at heap slot {slot}"


def test_setup_heap_consistent(m):
    workload = LFUCacheWorkload(m, seed=1)
    _consistent_slots(m, workload)


def test_access_bumps_frequency(m):
    workload = LFUCacheWorkload(m, seed=1)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    before = m.memory.read(word_address(workload.freq_base, 3))
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, workload.access_page(ctx, 3))
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(word_address(workload.freq_base, 3)) == before + 1
    _consistent_slots(m, workload)


def test_cold_page_can_displace_root(m):
    workload = LFUCacheWorkload(m, seed=1)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    cold_page = 2000  # outside the warmed heap
    # Touch it until it beats the heap minimum (all warmed freqs are 1).
    for _ in range(3):
        drive(m, 0, runtime.begin(thread))
        drive(m, 0, workload.access_page(ctx, cold_page))
        drive(m, 0, runtime.commit(thread))
    assert m.memory.read(word_address(workload.slot_base, cold_page)) != 0
    _consistent_slots(m, workload)


def test_concurrent_access_preserves_consistency(m):
    workload = LFUCacheWorkload(m, seed=4)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(4)]
    result = Scheduler(m, threads).run(cycle_limit=120_000)
    assert result.commits > 0
    _consistent_slots(m, workload)


def test_zipf_stream_concentrates_conflicts(m):
    """The workload must show a high abort ratio — its defining trait."""
    workload = LFUCacheWorkload(m, seed=4)
    runtime = FlexTMRuntime(m, mode=ConflictMode.EAGER)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(4)]
    result = Scheduler(m, threads).run(cycle_limit=150_000)
    assert result.aborts > result.commits * 0.2
