"""KMeans extension workload."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.api import TxContext
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads.kmeans import COORD_RANGE, KMeansWorkload
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def test_rejects_bad_cluster_count(m):
    with pytest.raises(ValueError):
        KMeansWorkload(m, num_clusters=0)


def test_nearest_cluster_is_actually_nearest(m):
    workload = KMeansWorkload(m, seed=1, num_clusters=8)
    for point in [(0, 0), (500, 500), (COORD_RANGE - 1, 0)]:
        chosen = workload.nearest_cluster(point)
        chosen_distance = sum(
            (a - b) ** 2 for a, b in zip(point, workload.centers[chosen])
        )
        for center in workload.centers:
            assert chosen_distance <= sum((a - b) ** 2 for a, b in zip(point, center))


def test_assign_point_accumulates(m):
    workload = KMeansWorkload(m, seed=1, num_clusters=4)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, workload.assign_point(ctx, 2, (10, 20)))
    drive(m, 0, runtime.commit(thread))
    assigned, sums = workload.totals()
    assert assigned == 1
    assert sums[2] == (10, 20)


def test_concurrent_run_conserves_points(m):
    """Every committed assignment lands in exactly one centroid."""
    workload = KMeansWorkload(m, seed=2, num_clusters=4)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(4)]
    result = Scheduler(m, threads).run(cycle_limit=120_000)
    assigned, sums = workload.totals()
    assert result.commits > 0
    assert assigned == result.commits
    # Coordinate sums stay within the possible range.
    for per_cluster in sums:
        for total in per_cluster:
            assert 0 <= total


def test_cluster_count_controls_contention(m):
    """Few hot centroids conflict; many centroids scale cleanly."""

    def run(num_clusters):
        machine = FlexTMMachine(small_test_params(4))
        workload = KMeansWorkload(machine, seed=3, num_clusters=num_clusters)
        runtime = FlexTMRuntime(machine, mode=ConflictMode.LAZY)
        threads = [TxThread(i, runtime, workload.items(i)) for i in range(4)]
        result = Scheduler(machine, threads).run(cycle_limit=100_000)
        return result.aborts / max(1, result.commits)

    assert run(1) > run(64)
