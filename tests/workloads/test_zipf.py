"""Zipf sampler distribution properties."""

import pytest

from repro.sim.rng import DeterministicRng
from repro.workloads.zipf import ZipfSampler


def test_samples_in_range():
    sampler = ZipfSampler(100)
    rng = DeterministicRng(1)
    for _ in range(1000):
        assert 0 <= sampler.sample(rng) < 100


def test_head_dominates():
    """With exponent 2, item 0 carries the majority of the mass."""
    sampler = ZipfSampler(2048)
    rng = DeterministicRng(2)
    draws = [sampler.sample(rng) for _ in range(5000)]
    head_fraction = sum(1 for draw in draws if draw == 0) / len(draws)
    assert head_fraction > 0.5


def test_probability_masses_sum_to_one():
    sampler = ZipfSampler(50)
    total = sum(sampler.probability(index) for index in range(50))
    assert abs(total - 1.0) < 1e-9


def test_probability_monotone_decreasing():
    sampler = ZipfSampler(20)
    masses = [sampler.probability(index) for index in range(20)]
    assert all(a >= b for a, b in zip(masses, masses[1:]))


def test_probability_bounds_checked():
    sampler = ZipfSampler(5)
    with pytest.raises(IndexError):
        sampler.probability(5)


def test_rejects_empty():
    with pytest.raises(ValueError):
        ZipfSampler(0)
