"""Red-black tree workload: BST invariants under concurrency."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.api import TxContext
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads.base import word_address
from repro.workloads.rbtree import (
    DEAD,
    KEY,
    LEFT,
    NIL,
    RIGHT,
    RedBlackTree,
    RBTreeWorkload,
)
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _tx(m, runtime, thread, body):
    drive(m, 0, runtime.begin(thread))
    value = drive(m, 0, body)
    drive(m, 0, runtime.commit(thread))
    return value


def _collect(memory, node, out, lo=float("-inf"), hi=float("inf")):
    """In-order walk asserting the BST ordering invariant."""
    if node == NIL:
        return
    key = memory.read(word_address(node, KEY))
    assert lo < key < hi, f"BST violation: {key} outside ({lo}, {hi})"
    _collect(memory, memory.read(word_address(node, LEFT)), out, lo, key)
    if not memory.read(word_address(node, DEAD)):
        out.append(key)
    _collect(memory, memory.read(word_address(node, RIGHT)), out, key, hi)


def test_insert_lookup_delete_single_thread(m):
    tree = RedBlackTree(m)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    for key in (50, 20, 80, 10, 30, 70, 90, 25, 28):
        assert _tx(m, runtime, thread, tree.insert(ctx, key, key * 2)) is True
    for key in (50, 25, 90):
        assert _tx(m, runtime, thread, tree.lookup(ctx, key)) == key * 2
    assert _tx(m, runtime, thread, tree.lookup(ctx, 55)) is None
    assert _tx(m, runtime, thread, tree.delete(ctx, 20)) is True
    assert _tx(m, runtime, thread, tree.lookup(ctx, 20)) is None
    assert _tx(m, runtime, thread, tree.delete(ctx, 20)) is False  # already dead
    # Re-insert revives the tombstone in place (a successful insert).
    assert _tx(m, runtime, thread, tree.insert(ctx, 20, 999)) is True
    assert _tx(m, runtime, thread, tree.lookup(ctx, 20)) == 999
    # Inserting a live key is a read-only no-op.
    assert _tx(m, runtime, thread, tree.insert(ctx, 20, 555)) is False
    assert _tx(m, runtime, thread, tree.lookup(ctx, 20)) == 999


def test_bst_ordering_after_many_inserts(m):
    tree = RedBlackTree(m)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    import random

    keys = list(range(0, 200, 3))
    random.Random(5).shuffle(keys)
    for key in keys:
        _tx(m, runtime, thread, tree.insert(ctx, key, key))
    collected = []
    _collect(m.memory, m.memory.read(tree.root_address), collected)
    assert collected == sorted(keys)


def test_rotations_preserve_membership(m):
    """Ascending insertion maximizes rotations; all keys must survive."""
    tree = RedBlackTree(m)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    for key in range(40):
        _tx(m, runtime, thread, tree.insert(ctx, key, key))
    for key in range(40):
        assert _tx(m, runtime, thread, tree.lookup(ctx, key)) == key


def test_tree_depth_stays_logarithmic(m):
    """Red-black fixup must keep ascending inserts from degenerating."""
    tree = RedBlackTree(m)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    count = 128
    for key in range(count):
        _tx(m, runtime, thread, tree.insert(ctx, key, key))

    def depth(node):
        if node == NIL:
            return 0
        left = depth(m.memory.read(word_address(node, LEFT)))
        right = depth(m.memory.read(word_address(node, RIGHT)))
        return 1 + max(left, right)

    measured = depth(m.memory.read(tree.root_address))
    assert measured <= 2 * 8  # <= 2 log2(128) + slack, far below 128


def test_concurrent_rbtree_preserves_bst(m):
    workload = RBTreeWorkload(m, seed=2)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(4)]
    result = Scheduler(m, threads).run(cycle_limit=150_000)
    assert result.commits > 0
    collected = []
    _collect(m.memory, m.memory.read(workload.tree.root_address), collected)
    assert collected == sorted(set(collected))  # ordered, no duplicates
