"""Vacation workload: reservation-system invariants."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.api import TxContext
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads.base import word_address
from repro.workloads.rbtree import DEAD, KEY, LEFT, NIL, RIGHT, VALUE
from repro.workloads.vacation import (
    NUM_TABLES,
    R_AVAILABLE,
    R_PRICE,
    R_TOTAL,
    RELATIONS,
    VacationWorkload,
)
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def test_contention_modes_configure_ranges(m):
    low = VacationWorkload(m, seed=1, contention="low")
    assert low.query_range == int(RELATIONS * 0.9)
    assert low.read_only_percent == 90
    high = VacationWorkload(FlexTMMachine(small_test_params(4)), seed=1, contention="high")
    assert high.query_range == max(1, int(RELATIONS * 0.1))
    assert high.read_only_percent == 50


def test_bad_contention_rejected(m):
    with pytest.raises(ValueError):
        VacationWorkload(m, contention="medium")


def test_tables_seeded_with_all_rows(m):
    workload = VacationWorkload(m, seed=1)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    for row in (0, RELATIONS // 2, RELATIONS - 1):
        drive(m, 0, runtime.begin(thread))
        record = drive(m, 0, workload.tables[0].lookup(ctx, row))
        drive(m, 0, runtime.commit(thread))
        assert record is not None
        total = m.memory.read(word_address(record, R_TOTAL))
        available = m.memory.read(word_address(record, R_AVAILABLE))
        assert total == available > 0


def test_reserve_decrements_and_charges(m):
    workload = VacationWorkload(m, seed=1)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    queries = ((0, 5), (1, 6))
    drive(m, 0, runtime.begin(thread))
    booked = drive(m, 0, workload.reserve_task(ctx, customer=3, queries=queries))
    drive(m, 0, runtime.commit(thread))
    assert booked is True
    customer_spend = m.memory.read(workload.customer_base + 3 * m.params.line_bytes)
    assert customer_spend > 0


def test_browse_returns_cheapest_price(m):
    workload = VacationWorkload(m, seed=1)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    queries = tuple((table, row) for table in range(NUM_TABLES) for row in (1, 2))
    drive(m, 0, runtime.begin(thread))
    cheapest = drive(m, 0, workload.browse_task(ctx, queries))
    drive(m, 0, runtime.commit(thread))
    prices = []
    for table, row in queries:
        record = workload_record(m, workload, table, row)
        prices.append(m.memory.read(word_address(record, R_PRICE)))
    assert cheapest == min(prices)


def workload_record(m, workload, table, row):
    """Untimed tree search through the memory image."""
    node = m.memory.read(workload.tables[table].root_address)
    while node != NIL:
        key = m.memory.read(word_address(node, KEY))
        if key == row:
            assert not m.memory.read(word_address(node, DEAD))
            return m.memory.read(word_address(node, VALUE))
        node = m.memory.read(word_address(node, LEFT if row < key else RIGHT))
    raise AssertionError(f"row {row} missing from table {table}")


def test_concurrent_reservations_conserve_inventory(m):
    """available + (sum of bookings) == total for every resource."""
    workload = VacationWorkload(m, seed=2, contention="high")
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(4)]
    result = Scheduler(m, threads).run(cycle_limit=150_000)
    assert result.commits > 0
    total_booked = 0
    total_capacity_drop = 0
    for table in range(NUM_TABLES):
        for row in range(workload.query_range):
            record = workload_record(m, workload, table, row)
            total = m.memory.read(word_address(record, R_TOTAL))
            available = m.memory.read(word_address(record, R_AVAILABLE))
            assert 0 <= available <= total
            total_capacity_drop += total - available
    spend = sum(
        m.memory.read(workload.customer_base + c * m.params.line_bytes)
        for c in range(64)
    )
    # Every unit of lost capacity corresponds to a paid booking.
    assert (total_capacity_drop == 0) == (spend == 0)
