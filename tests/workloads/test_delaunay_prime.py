"""Delaunay and Prime workloads."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.api import TxContext
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads.delaunay import DelaunayWorkload
from repro.workloads.prime import PrimeWorkload
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def test_delaunay_items_alternate_phases(m):
    workload = DelaunayWorkload(m, seed=1)
    stream = workload.items(0)
    first, second = next(stream), next(stream)
    assert not first.transactional  # solver phase
    assert second.transactional  # stitch phase


def test_delaunay_mostly_nontransactional_time(m):
    """< 5% of execution is transactional (Table 3b)."""
    workload = DelaunayWorkload(m, seed=1)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(2)]
    result = Scheduler(m, threads).run(cycle_limit=100_000)
    assert result.nontx_items >= result.commits  # phases alternate
    assert result.commits > 0


def test_delaunay_stitch_accumulates_counts(m):
    workload = DelaunayWorkload(m, seed=1)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, workload.stitch_seam(ctx, segment=3, triangles=4))
    drive(m, 0, runtime.commit(thread))
    segment_address = workload.seam_base + 3 * m.params.line_bytes
    assert m.memory.read(segment_address) == 4
    neighbor_address = workload.seam_base + 4 * m.params.line_bytes
    assert m.memory.read(neighbor_address) == 1


def test_prime_factorization_correct(m):
    workload = PrimeWorkload(m, seed=1)
    runtime = FlexTMRuntime(m)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)
    # 360 = 2^3 * 3^2 * 5 -> 6 prime factors with multiplicity.
    factors = drive(m, 0, workload.factorize(ctx, 0, 360))
    assert factors == 6
    # A prime has exactly one factor.
    assert drive(m, 0, workload.factorize(ctx, 0, 104729)) == 1


def test_prime_items_are_nontransactional(m):
    workload = PrimeWorkload(m, seed=1)
    item = next(workload.items(0))
    assert not item.transactional


def test_prime_runs_standalone(m):
    workload = PrimeWorkload(m, seed=3)
    runtime = FlexTMRuntime(m)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(2)]
    result = Scheduler(m, threads).run(cycle_limit=100_000)
    assert result.nontx_items > 0
    assert result.commits == 0  # purely compute-bound
