"""Cross-cutting workload-stream properties."""

import pytest

from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.txthread import WorkItem
from repro.workloads import WORKLOADS


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_streams_produce_work_items(name):
    machine = FlexTMMachine(small_test_params(4))
    workload = WORKLOADS[name](machine, seed=3)
    stream = workload.items(0)
    items = [next(stream) for _ in range(8)]
    assert all(isinstance(item, WorkItem) for item in items)
    assert any(item.transactional for item in items) or name == "Prime"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_streams_are_seed_deterministic(name):
    """Two workloads with the same seed must drive identical runs."""
    from repro.harness.runner import ExperimentConfig, run_experiment

    def once():
        result = run_experiment(
            ExperimentConfig(
                workload=name,
                system="FlexTM",
                threads=2,
                cycle_limit=25_000,
                seed=9,
                params=small_test_params(4),
            )
        )
        return (result.commits, result.aborts)

    assert once() == once()


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_per_thread_streams_differ(name):
    """Different thread ids draw different operation sequences."""
    machine = FlexTMMachine(small_test_params(4))
    workload = WORKLOADS[name](machine, seed=3)

    def fingerprint(thread_id):
        # Work items capture their parameters either as closure cells or
        # as lambda default arguments; hash both.
        stream = workload.items(thread_id)
        cells = []
        for _ in range(6):
            item = next(stream)
            closure = getattr(item.body, "__closure__", None) or ()
            defaults = getattr(item.body, "__defaults__", None) or ()
            cells.append(
                (
                    tuple(repr(cell.cell_contents) for cell in closure),
                    tuple(repr(value) for value in defaults),
                )
            )
        return tuple(cells)

    # Not all workloads randomize every item (Delaunay alternates
    # deterministic phases), so only require *some* divergence.
    if name != "Delaunay":
        assert fingerprint(0) != fingerprint(1)


def test_workload_setup_does_not_consume_cycles():
    machine = FlexTMMachine(small_test_params(4))
    for name in sorted(WORKLOADS):
        WORKLOADS[name](machine, seed=1)
    assert machine.max_cycle() == 0  # warm-up is untimed
