"""HashTable workload semantics."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem
from repro.workloads.hashtable import KEY_RANGE, HashTableWorkload
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


@pytest.fixture
def setup(m):
    workload = HashTableWorkload(m, seed=1)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    return workload, runtime, thread


def _run_tx(m, runtime, thread, body):
    drive(m, 0, runtime.begin(thread))
    value = drive(m, 0, body)
    drive(m, 0, runtime.commit(thread))
    return value


def test_warmup_populates_even_keys(m, setup):
    workload, runtime, thread = setup
    from repro.runtime.api import TxContext

    ctx = TxContext(runtime, thread)
    assert _run_tx(m, runtime, thread, workload.lookup(ctx, 10)) == 100
    assert _run_tx(m, runtime, thread, workload.lookup(ctx, 11)) is None


def test_insert_then_lookup_and_delete(m, setup):
    workload, runtime, thread = setup
    from repro.runtime.api import TxContext

    ctx = TxContext(runtime, thread)
    assert _run_tx(m, runtime, thread, workload.insert(ctx, 11, 7)) is True
    assert _run_tx(m, runtime, thread, workload.lookup(ctx, 11)) == 7
    assert _run_tx(m, runtime, thread, workload.delete(ctx, 11)) is True
    assert _run_tx(m, runtime, thread, workload.lookup(ctx, 11)) is None


def test_insert_existing_updates_value(m, setup):
    workload, runtime, thread = setup
    from repro.runtime.api import TxContext

    ctx = TxContext(runtime, thread)
    assert _run_tx(m, runtime, thread, workload.insert(ctx, 10, 777)) is False
    assert _run_tx(m, runtime, thread, workload.lookup(ctx, 10)) == 777


def test_delete_missing_returns_false(m, setup):
    workload, runtime, thread = setup
    from repro.runtime.api import TxContext

    ctx = TxContext(runtime, thread)
    assert _run_tx(m, runtime, thread, workload.delete(ctx, 13)) is False


def test_items_stream_is_infinite_and_deterministic(m):
    workload = HashTableWorkload(m, seed=5)
    stream = workload.items(0)
    first = [next(stream) for _ in range(10)]
    assert all(isinstance(item, WorkItem) and item.transactional for item in first)
    other_machine = FlexTMMachine(small_test_params(4))
    other = HashTableWorkload(other_machine, seed=5)
    # Streams with the same seed and thread id draw the same ops.
    assert len(first) == len([next(other.items(0)) for _ in range(10)])


def test_concurrent_hashtable_run_is_consistent(m):
    """Invariant: every bucket's chain contains only keys that hash there."""
    workload = HashTableWorkload(m, seed=3)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(4)]
    Scheduler(m, threads).run(cycle_limit=120_000)
    from repro.workloads.hashtable import NODE_KEY, NODE_NEXT, NUM_BUCKETS
    from repro.workloads.base import word_address

    seen_keys = set()
    for bucket in range(NUM_BUCKETS):
        node = m.memory.read(workload._bucket_address(bucket))
        hops = 0
        while node and hops < 1000:
            key = m.memory.read(word_address(node, NODE_KEY))
            assert key % NUM_BUCKETS == bucket
            assert key not in seen_keys  # no duplicate live keys
            seen_keys.add(key)
            node = m.memory.read(word_address(node, NODE_NEXT))
            hops += 1
        assert hops < 1000  # no cycles
    assert seen_keys  # table is non-empty
    assert all(0 <= key < KEY_RANGE for key in seen_keys)
