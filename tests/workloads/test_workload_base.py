"""Workload base-class helpers."""

import pytest

from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.workloads.base import Workload, word_address


class _Trivial(Workload):
    name = "Trivial"

    def _setup(self):
        self.cell = self._alloc_record(2)
        self._poke(word_address(self.cell, 1), 42)

    def items(self, thread_id):
        return iter(())


def test_word_address_arithmetic():
    assert word_address(1000, 0) == 1000
    assert word_address(1000, 3) == 1024


def test_alloc_record_is_line_aligned():
    machine = FlexTMMachine(small_test_params(2))
    workload = _Trivial(machine)
    assert workload.cell % machine.params.line_bytes == 0


def test_poke_and_peek_roundtrip():
    machine = FlexTMMachine(small_test_params(2))
    workload = _Trivial(machine)
    assert workload._peek(word_address(workload.cell, 1)) == 42


def test_poke_warms_the_l2():
    machine = FlexTMMachine(small_test_params(2))
    workload = _Trivial(machine)
    cycles = machine.load(0, workload.cell).cycles
    assert cycles < machine.params.memory_cycles


def test_base_requires_setup_and_items():
    machine = FlexTMMachine(small_test_params(2))
    with pytest.raises(NotImplementedError):
        Workload(machine)
    workload = _Trivial(machine)
    with pytest.raises(NotImplementedError):
        Workload.items(workload, 0)  # base items is abstract


def test_rng_forked_from_seed():
    machine = FlexTMMachine(small_test_params(2))
    one = _Trivial(machine, seed=5)
    two = _Trivial(machine, seed=5)
    assert one.rng.fork(1).randint(0, 1 << 30) == two.rng.fork(1).randint(0, 1 << 30)
