"""RandomGraph workload: undirected-graph invariants."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.api import TxContext
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads.base import word_address
from repro.workloads.randomgraph import (
    E_NEXT,
    E_TARGET,
    KEY_RANGE,
    V_ADJ,
    V_ID,
    V_NEXT,
    RandomGraphWorkload,
)
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _vertices(m, workload):
    """vertex_id -> record address, via an untimed list walk."""
    out = {}
    record = m.memory.read(workload.head_address)
    hops = 0
    while record and hops < 10_000:
        vertex_id = m.memory.read(word_address(record, V_ID))
        assert vertex_id not in out, f"duplicate vertex {vertex_id}"
        out[vertex_id] = record
        record = m.memory.read(word_address(record, V_NEXT))
        hops += 1
    assert hops < 10_000, "cycle in vertex list"
    return out


def _adjacency(m, record):
    out = []
    edge = m.memory.read(word_address(record, V_ADJ))
    hops = 0
    while edge and hops < 10_000:
        out.append(m.memory.read(word_address(edge, E_TARGET)))
        edge = m.memory.read(word_address(edge, E_NEXT))
        hops += 1
    assert hops < 10_000, "cycle in adjacency list"
    return out


def _assert_undirected(m, workload):
    vertices = _vertices(m, workload)
    records = set(vertices.values())
    for vertex_id, record in vertices.items():
        neighbors = _adjacency(m, record)
        assert len(neighbors) == len(set(neighbors)), "duplicate edge"
        for neighbor in neighbors:
            assert neighbor in records, f"edge to a deleted vertex from {vertex_id}"
            assert record in _adjacency(m, neighbor), "missing back-edge"


def test_setup_is_undirected(m):
    workload = RandomGraphWorkload(m, seed=1)
    _assert_undirected(m, workload)
    assert len(_vertices(m, workload)) == KEY_RANGE // 2


def test_insert_and_delete_vertex(m):
    workload = RandomGraphWorkload(m, seed=1)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    ctx = TxContext(runtime, thread)

    def tx(body):
        drive(m, 0, runtime.begin(thread))
        value = drive(m, 0, body)
        drive(m, 0, runtime.commit(thread))
        return value

    # Odd ids are unseeded.
    assert tx(workload.insert_vertex(ctx, 1, (0, 2, 4, 6))) is True
    vertices = _vertices(m, workload)
    assert 1 in vertices
    assert vertices[0] in _adjacency(m, vertices[1])
    assert tx(workload.insert_vertex(ctx, 1, (8,))) is False  # already present
    assert tx(workload.delete_vertex(ctx, 1)) is True
    vertices = _vertices(m, workload)
    assert 1 not in vertices
    _assert_undirected(m, workload)
    assert tx(workload.delete_vertex(ctx, 1)) is False


def test_concurrent_graph_stays_undirected(m):
    workload = RandomGraphWorkload(m, seed=6)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(4)]
    result = Scheduler(m, threads).run(cycle_limit=150_000)
    assert result.commits > 0
    _assert_undirected(m, workload)


def test_transactions_have_large_read_sets(m):
    """The paper's profile: long list walks dominated by reads."""
    workload = RandomGraphWorkload(m, seed=2)
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    threads = [TxThread(0, runtime, workload.items(0))]
    Scheduler(m, threads).run(cycle_limit=60_000)
    accesses = m.stats.counter("l1.access.TLoad").value
    commits = threads[0].commits
    assert commits > 0
    assert accesses / max(1, commits + threads[0].aborts) > 20
