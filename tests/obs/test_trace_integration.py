"""End-to-end observability: tracing is observational, buckets add up.

The load-bearing guarantees:

* attaching an EventTracer never changes a single simulated number
  (same seed => bit-identical RunResult);
* the cycle-attribution buckets sum exactly to the total simulated
  cycles (each processor's final clock);
* the exported Chrome trace is schema-valid for a real run;
* the ``trace`` CLI runs and writes parseable JSON.
"""

import json

import pytest

from repro.core.descriptor import ConflictMode
from repro.harness.overflow import overflow_params
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.profiler import BUCKETS, CycleProfiler
from repro.obs.tracer import EventTracer

CYCLES = 30_000


def _pair(**kwargs):
    """Run the same config untraced and traced; return both results."""
    untraced = run_experiment(ExperimentConfig(**kwargs))
    tracer = EventTracer()
    traced = run_experiment(ExperimentConfig(tracer=tracer, **kwargs))
    return untraced, traced, tracer


@pytest.mark.parametrize("system", ["FlexTM", "CGL", "RSTM", "TL2", "RTM-F", "LogTM-SE"])
def test_traced_run_is_bit_identical(system):
    untraced, traced, tracer = _pair(
        workload="HashTable", system=system, threads=4, cycle_limit=CYCLES
    )
    # RunResult's == ignores the trace handle by design, so this compares
    # cycles, commits, aborts, per-thread numbers and the stats snapshot.
    assert untraced == traced
    assert traced.trace is tracer


def test_traced_run_identical_under_preemption():
    kwargs = dict(
        workload="HashTable", system="FlexTM", threads=8,
        cycle_limit=CYCLES, processors=2, quantum=3_000,
    )
    untraced, traced, tracer = _pair(**kwargs)
    assert untraced == traced
    assert tracer.by_kind("preempt"), "expected context switches"


def test_profile_buckets_sum_to_total_cycles():
    _, traced, tracer = _pair(
        workload="RBTree", system="FlexTM", threads=4, cycle_limit=CYCLES
    )
    profile = CycleProfiler(tracer).profile()
    assert profile.total_cycles == sum(tracer.proc_cycles)
    aggregate = profile.aggregate()
    assert sum(aggregate[bucket] for bucket in BUCKETS) == profile.total_cycles
    assert aggregate["useful_work"] > 0


def test_profile_invariant_with_overflow_traffic():
    tracer = EventTracer()
    run_experiment(
        ExperimentConfig(
            workload="RandomGraph", system="FlexTM", threads=2,
            mode=ConflictMode.LAZY, cycle_limit=CYCLES,
            params=overflow_params(), tracer=tracer,
        )
    )
    assert tracer.by_kind("overflow_spill"), "geometry should spill"
    profile = CycleProfiler(tracer).profile()
    assert profile.total_cycles == sum(tracer.proc_cycles)
    assert profile.aggregate()["overflow_walk"] > 0


def test_lifecycle_events_match_run_counts():
    _, traced, tracer = _pair(
        workload="HashTable", system="FlexTM", threads=4, cycle_limit=CYCLES
    )
    assert len(tracer.by_kind("tx_commit")) == traced.commits
    assert len(tracer.by_kind("tx_abort")) == traced.aborts
    begins = len(tracer.by_kind("tx_begin"))
    # Every begin resolves or is the attempt in flight at the limit.
    assert traced.commits + traced.aborts <= begins <= (
        traced.commits + traced.aborts + traced.per_thread.__len__()
    )


def test_conflict_events_name_cst_kinds():
    _, _, tracer = _pair(
        workload="RBTree", system="FlexTM", threads=8, cycle_limit=CYCLES
    )
    kinds = {event.data["cst"] for event in tracer.by_kind("conflict_detected")}
    assert kinds, "contended RBTree should produce conflicts"
    assert kinds <= {"R-W", "W-R", "W-W", "SI"}


def test_chrome_export_of_real_run_is_valid():
    _, _, tracer = _pair(
        workload="HashTable", system="FlexTM", threads=4, cycle_limit=CYCLES
    )
    document = to_chrome_trace(tracer, label="integration")
    assert validate_chrome_trace(document) is None


def test_trace_cli_end_to_end(tmp_path, capsys):
    from repro.harness.__main__ import main

    trace_path = tmp_path / "run.json"
    jsonl_path = tmp_path / "run.jsonl"
    code = main([
        "trace", "hashtable", "flextm", "--threads", "4",
        "--cycles", "20000",
        "--trace-out", str(trace_path), "--jsonl-out", str(jsonl_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Cycle attribution" in out and "100.0%" in out
    document = json.loads(trace_path.read_text())
    assert validate_chrome_trace(document) is None
    assert jsonl_path.read_text().strip()


def test_trace_cli_rejects_unknown_workload():
    from repro.harness.__main__ import main

    with pytest.raises(SystemExit):
        main(["trace", "nosuchworkload", "FlexTM"])
