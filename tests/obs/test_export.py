"""Exporter tests: Chrome trace schema validity, JSONL round-trip."""

import json

from repro.obs.export import (
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import EventTracer


def _lifecycle_tracer():
    tracer = EventTracer()
    tracer.tx_begin(0, 0, 10, "FlexTM", 1)
    tracer.conflict(0, 40, 1, "W-W", 256)
    tracer.stall(0, 70, 25, enemy=1)
    tracer.tx_abort(0, 0, 80, "wounded", by=1)
    tracer.tx_begin(0, 0, 90, "FlexTM", 2)
    tracer.tx_commit(0, 0, 150)
    tracer.tx_begin(1, 1, 0, "FlexTM", 1)  # never finishes
    tracer.overflow(1, 30, "spill", 512, dur=20)
    tracer.finalize([200, 180])
    return tracer


def test_chrome_trace_is_schema_valid():
    document = to_chrome_trace(_lifecycle_tracer(), label="unit")
    assert validate_chrome_trace(document) is None


def test_chrome_trace_names_processor_tracks():
    document = to_chrome_trace(_lifecycle_tracer())
    metadata = [event for event in document["traceEvents"] if event["ph"] == "M"]
    names = {event["args"]["name"] for event in metadata}
    assert "proc 0" in names and "proc 1" in names


def test_chrome_trace_pairs_attempts_into_slices():
    document = to_chrome_trace(_lifecycle_tracer())
    slices = [
        event for event in document["traceEvents"]
        if event["ph"] == "X" and event.get("cat") == "tx"
    ]
    outcomes = sorted(event["args"]["outcome"] for event in slices)
    assert outcomes == ["abort", "commit", "unfinished"]
    abort = next(e for e in slices if e["args"]["outcome"] == "abort")
    assert abort["ts"] == 10 and abort["dur"] == 70
    assert abort["args"]["cause"] == "wounded"
    unfinished = next(e for e in slices if e["args"]["outcome"] == "unfinished")
    # Drawn out to its processor's final cycle.
    assert unfinished["ts"] + unfinished["dur"] == 180


def test_chrome_trace_stall_slice_spans_backoff():
    document = to_chrome_trace(_lifecycle_tracer())
    stall = next(
        event for event in document["traceEvents"]
        if event["ph"] == "X" and event.get("cat") == "conflict"
    )
    # The stall event is emitted when the wait ends, so the slice is
    # drawn backwards from its stamp.
    assert stall["ts"] == 70 - 25 and stall["dur"] == 25


def test_chrome_trace_round_trips_through_json(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(_lifecycle_tracer(), str(path), label="roundtrip")
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) is None
    assert loaded["otherData"]["events_recorded"] == len(_lifecycle_tracer().events)


def test_jsonl_one_object_per_event(tmp_path):
    tracer = _lifecycle_tracer()
    lines = list(to_jsonl(tracer))
    assert len(lines) == len(tracer.events)
    first = json.loads(lines[0])
    assert first["kind"] == "tx_begin" and first["system"] == "FlexTM"
    path = tmp_path / "trace.jsonl"
    write_jsonl(tracer, str(path))
    assert len(path.read_text().splitlines()) == len(tracer.events)


def test_validator_rejects_malformed_documents():
    assert validate_chrome_trace([]) is not None
    assert validate_chrome_trace({}) is not None
    assert validate_chrome_trace({"traceEvents": [{}]}) is not None
    bad_phase = {"traceEvents": [
        {"name": "x", "ph": "Z", "pid": 0, "tid": 0, "ts": 0}
    ]}
    assert "phase" in validate_chrome_trace(bad_phase)
    missing_dur = {"traceEvents": [
        {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0}
    ]}
    assert "dur" in validate_chrome_trace(missing_dur)
