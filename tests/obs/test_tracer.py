"""Unit tests for the tracer layer: recording, sampling, classification."""

import pytest

from repro.coherence.messages import AccessKind, ResponseKind
from repro.obs.tracer import (
    CST_KINDS,
    EventTracer,
    NULL_TRACER,
    NullTracer,
    classify_conflict,
)


def test_null_tracer_is_disabled_and_silent():
    assert NULL_TRACER.enabled is False
    # Every hook is a no-op; none may raise.
    NULL_TRACER.tx_begin(0, 0, 0, "FlexTM", 1)
    NULL_TRACER.tx_commit(0, 0, 10)
    NULL_TRACER.tx_abort(0, 0, 10, "cause", by=1)
    NULL_TRACER.conflict(0, 5, 1, "R-W", 64)
    NULL_TRACER.stall(0, 5, 10)
    NULL_TRACER.overflow(0, 5, "spill", 64, dur=20)
    NULL_TRACER.sched(0, 5, "preempt", 0)
    NULL_TRACER.coherence(0, 5, "coh_request", 64)
    NULL_TRACER.finalize([100])


def test_event_tracer_records_in_emission_order():
    tracer = EventTracer()
    tracer.tx_begin(0, 0, 10, "FlexTM", 1)
    tracer.conflict(0, 20, 1, "W-W", 128)
    tracer.tx_commit(0, 0, 30)
    kinds = [event.kind for event in tracer.events]
    assert kinds == ["tx_begin", "conflict_detected", "tx_commit"]
    cycles = [event.cycle for event in tracer.events]
    assert cycles == sorted(cycles)


def test_tx_begin_carries_system_and_incarnation():
    tracer = EventTracer()
    tracer.tx_begin(2, 7, 100, "TL2", 3)
    event = tracer.events[0]
    assert event.proc == 2 and event.thread == 7
    assert event.data == {"system": "TL2", "incarnation": 3}


def test_abort_event_attributes_cause_and_wounder():
    tracer = EventTracer()
    tracer.tx_abort(1, 4, 500, "self-abort by conflict manager", by=3)
    event = tracer.events[0]
    assert event.kind == "tx_abort"
    assert event.cause == "self-abort by conflict manager"
    assert event.data["by"] == 3


def test_memory_access_sampling():
    tracer = EventTracer(sample_memory=4)
    for index in range(16):
        tracer.tx_access(0, 0, index, "read", 64 * index)
    assert len(tracer.by_kind("tx_read")) == 4


def test_sample_memory_one_records_everything():
    tracer = EventTracer(sample_memory=1)
    for index in range(5):
        tracer.tx_access(0, 0, index, "write", 64)
    assert len(tracer.by_kind("tx_write")) == 5


def test_sample_memory_validation():
    with pytest.raises(ValueError):
        EventTracer(sample_memory=0)


def test_coherence_gating():
    tracer = EventTracer(trace_coherence=False)
    tracer.coherence(0, 10, "coh_request", 64, detail="GETS->S")
    assert len(tracer) == 0
    tracer2 = EventTracer(trace_coherence=True)
    tracer2.coherence(0, 10, "coh_request", 64, detail="GETS->S")
    assert tracer2.events[0].cause == "GETS->S"


def test_max_events_counts_dropped():
    tracer = EventTracer(max_events=2)
    for cycle in range(5):
        tracer.tx_commit(0, 0, cycle)
    assert len(tracer) == 2
    assert tracer.dropped == 3


def test_finalize_stores_processor_clocks():
    tracer = EventTracer()
    tracer.finalize([100, 200, 0])
    assert tracer.proc_cycles == [100, 200, 0]


def test_per_processor_grouping():
    tracer = EventTracer()
    tracer.tx_commit(0, 0, 5)
    tracer.tx_commit(1, 1, 6)
    tracer.tx_commit(0, 2, 7)
    grouped = tracer.per_processor()
    assert [event.cycle for event in grouped[0]] == [5, 7]
    assert [event.cycle for event in grouped[1]] == [6]


def test_event_to_dict_drops_defaults():
    tracer = EventTracer()
    tracer.tx_commit(3, 1, 42)
    payload = tracer.events[0].to_dict()
    assert payload == {"kind": "tx_commit", "cycle": 42, "proc": 3, "thread": 1}


def test_classify_conflict_covers_cst_kinds():
    assert classify_conflict(AccessKind.TLOAD, ResponseKind.THREATENED) == "R-W"
    assert classify_conflict(AccessKind.TSTORE, ResponseKind.THREATENED) == "W-W"
    assert classify_conflict(AccessKind.TSTORE, ResponseKind.EXPOSED_READ) == "W-R"
    assert classify_conflict(AccessKind.TLOAD, ResponseKind.EXPOSED_READ) is None
    assert classify_conflict(AccessKind.TLOAD, ResponseKind.SHARED) is None
    # String forms work too (the module is dependency-free).
    assert classify_conflict("TLoad", "Threatened") == "R-W"
    for kind in ("R-W", "W-W", "W-R"):
        assert kind in CST_KINDS


def test_subclass_inherits_noop_interface():
    class Probe(NullTracer):
        pass

    probe = Probe()
    assert probe.enabled is False
