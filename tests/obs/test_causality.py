"""The wounded-by DAG: edges, chain extraction, pathology annotators.

All inputs are hand-built :class:`AbortRecord` lists — the module is
pure post-processing, so synthetic streams pin its behavior exactly.
"""

import pytest

from repro.obs.causality import (
    AbortRecord,
    annotate_pathologies,
    build_edges,
    extract_chains,
    longest_chain,
)


def _rec(cycle, thread=0, proc=0, by=-1, kind="W-W", wasted=10):
    return AbortRecord(cycle=cycle, thread=thread, proc=proc, by=by,
                       kind=kind, wasted_cycles=wasted)


# -- build_edges ---------------------------------------------------------------


def test_edge_follows_wounders_next_abort():
    records = [
        _rec(100, proc=0, by=1),   # wounded by proc 1 ...
        _rec(200, proc=1, by=2),   # ... which aborts next here
        _rec(300, proc=2, by=-1),  # ... whose wounder aborts here
    ]
    assert build_edges(records) == [1, 2, None]


def test_unattributed_abort_has_no_edge():
    records = [_rec(100, proc=0, by=-1)]
    assert build_edges(records) == [None]


def test_wounder_that_never_aborts_has_no_edge():
    records = [_rec(100, proc=0, by=7)]
    assert build_edges(records) == [None]


def test_edge_skips_self_at_equal_cycle():
    # Proc 0 is wounded by proc 0's *transaction* bookkeeping quirk:
    # the earliest candidate at the same cycle is the record itself and
    # must be skipped.
    records = [_rec(100, proc=0, by=0), _rec(100, proc=0, by=-1)]
    assert build_edges(records) == [1, None]


def test_edge_picks_earliest_abort_at_or_after_victim():
    records = [
        _rec(500, proc=1, by=-1),  # wounder aborted *before* the victim
        _rec(600, proc=0, by=1),
        _rec(700, proc=1, by=-1),  # earliest at-or-after 600
        _rec(800, proc=1, by=-1),
    ]
    assert build_edges(records)[1] == 2


# -- chains --------------------------------------------------------------------


def test_chains_are_maximal_and_sorted_longest_first():
    records = [
        _rec(100, proc=0, by=1, wasted=5),
        _rec(200, proc=1, by=2, wasted=6),
        _rec(300, proc=2, by=-1, wasted=7),
        _rec(50, proc=5, by=-1, wasted=99),  # isolated singleton
    ]
    chains = extract_chains(records)
    assert [c.length for c in chains] == [3, 1]
    top = chains[0]
    assert top.indices == (0, 1, 2)
    assert top.total_wasted == 18
    assert (top.start_cycle, top.end_cycle) == (100, 300)
    assert longest_chain(records) == top


def test_chain_ties_break_on_wasted_then_start_cycle():
    records = [
        _rec(100, proc=0, wasted=1),
        _rec(100, proc=1, wasted=9),
    ]
    chains = extract_chains(records)
    assert chains[0].indices == (1,)  # costlier singleton first


def test_mutual_same_cycle_wounds_are_loop_cut():
    # Procs 0 and 1 wound each other at the same cycle: the edge walk
    # must terminate at the first revisit, not spin.
    records = [
        _rec(100, proc=0, by=1),
        _rec(100, proc=1, by=0),
    ]
    chains = extract_chains(records)
    # Both records are targeted, so neither is a root — no chain at all
    # beats an infinite loop.
    assert all(chain.length <= 2 for chain in chains)


def test_chain_limit_caps_output():
    records = [_rec(100 * i, proc=i) for i in range(20)]
    assert len(extract_chains(records, limit=3)) == 3


def test_chain_to_dict_inlines_links():
    records = [_rec(100, proc=0, by=1), _rec(200, proc=1)]
    chain = longest_chain(records)
    doc = chain.to_dict(records)
    assert doc["length"] == 2
    assert [link["cycle"] for link in doc["links"]] == [100, 200]


def test_no_records_means_no_chain():
    assert extract_chains([]) == []
    assert longest_chain([]) is None


# -- pathology annotators ------------------------------------------------------


def _convoy_window(commits=None):
    # Six aborts in window 0 (cycles 0..999), all wounded by proc 9,
    # spread over distinct victim threads so starvation stays quiet.
    records = [
        _rec(cycle=100 * i, thread=i, proc=i, by=9) for i in range(6)
    ]
    return annotate_pathologies(records, window_cycles=1000,
                                commits_by_window=commits)


def test_convoy_flagged_when_one_wounder_dominates():
    annotations = _convoy_window()
    kinds = [a["kind"] for a in annotations]
    assert "convoy" in kinds
    convoy = next(a for a in annotations if a["kind"] == "convoy")
    assert convoy["window"] == 0
    assert convoy["aborts"] == 6
    assert "proc 9" in convoy["detail"]


def test_commits_suppress_convoy():
    # Same abort stream, but the window also committed plenty: churn,
    # not a convoy (aborts must exceed 2x commits).
    annotations = _convoy_window(commits={0: 3})
    assert all(a["kind"] != "convoy" for a in annotations)


def test_friendly_fire_flagged_when_wounders_also_abort():
    # Procs 0 and 1 wound each other repeatedly: every attributed abort
    # is inflicted by a proc that itself aborted in-window.
    records = []
    for i in range(3):
        records.append(_rec(100 * i, thread=0, proc=0, by=1))
        records.append(_rec(100 * i + 50, thread=1, proc=1, by=0))
    annotations = annotate_pathologies(records, window_cycles=1000)
    assert any(a["kind"] == "friendly-fire" for a in annotations)


def test_starvation_flagged_for_single_victim_thread():
    records = [_rec(100 * i, thread=3, proc=3, by=-1) for i in range(6)]
    annotations = annotate_pathologies(records, window_cycles=1000)
    assert [a["kind"] for a in annotations] == ["starvation"]
    assert "thread 3" in annotations[0]["detail"]


def test_noise_floor_suppresses_sparse_windows():
    records = [_rec(100 * i, thread=3, proc=3, by=9) for i in range(5)]
    assert annotate_pathologies(records, window_cycles=1000) == []


def test_windows_are_independent():
    # Six aborts split across two windows: neither crosses the floor.
    records = [_rec(400 * i, thread=3, proc=3, by=9) for i in range(6)]
    assert annotate_pathologies(records, window_cycles=1000) == []


def test_annotations_sorted_by_window_then_kind():
    records = []
    # Window 1: starvation only (thread 5, unattributed).
    records += [_rec(1000 + 10 * i, thread=5, proc=5) for i in range(6)]
    # Window 0: convoy + starvation (thread 2 wounded by proc 9).
    records += [_rec(10 * i, thread=2, proc=2, by=9) for i in range(6)]
    annotations = annotate_pathologies(records, window_cycles=1000)
    assert [(a["window"], a["kind"]) for a in annotations] == [
        (0, "convoy"), (0, "starvation"), (1, "starvation"),
    ]


def test_rejects_nonpositive_window():
    with pytest.raises(ValueError):
        annotate_pathologies([], window_cycles=0)
