"""Cycle-attribution profiler: bucket semantics and the sum invariant."""

import pytest

from repro.obs.profiler import BUCKETS, CycleProfiler, profile_run
from repro.obs.tracer import EventTracer


def _profiled(tracer):
    return CycleProfiler(tracer).profile()


def test_requires_finalized_tracer():
    with pytest.raises(ValueError):
        CycleProfiler(EventTracer())


def test_committed_attempt_counts_as_useful_work():
    tracer = EventTracer()
    tracer.tx_begin(0, 0, 100, "FlexTM", 1)
    tracer.tx_commit(0, 0, 400)
    tracer.finalize([500])
    profile = _profiled(tracer)
    proc = profile.processors[0]
    assert proc.useful_work == 300
    assert proc.non_tx == 200  # 0-100 before begin + 400-500 tail
    assert proc.total == 500


def test_aborted_attempt_counts_as_discarded():
    tracer = EventTracer()
    tracer.tx_begin(0, 0, 0, "FlexTM", 1)
    tracer.tx_abort(0, 0, 250, "wounded", by=1)
    tracer.finalize([250])
    profile = _profiled(tracer)
    assert profile.processors[0].aborted_discarded == 250
    assert profile.processors[0].useful_work == 0


def test_abort_then_commit_attributes_each_attempt():
    tracer = EventTracer()
    tracer.tx_begin(0, 0, 0, "FlexTM", 1)
    tracer.tx_abort(0, 0, 100, "wounded", by=1)
    tracer.tx_begin(0, 0, 100, "FlexTM", 2)
    tracer.tx_commit(0, 0, 350)
    tracer.finalize([350])
    proc = _profiled(tracer).processors[0]
    assert proc.aborted_discarded == 100
    assert proc.useful_work == 250


def test_settled_stall_moves_cycles_out_of_attempt():
    tracer = EventTracer()
    tracer.tx_begin(0, 0, 0, "FlexTM", 1)
    # 80 cycles elapsed inside the attempt; 50 of them were backoff.
    tracer.stall(0, 80, 50, enemy=1)
    tracer.tx_commit(0, 0, 100)
    tracer.finalize([100])
    proc = _profiled(tracer).processors[0]
    assert proc.stalled_on_conflict == 50
    assert proc.useful_work == 50
    assert proc.total == 100


def test_stall_outside_transaction_comes_from_non_tx():
    tracer = EventTracer()
    tracer.tx_begin(0, 0, 0, "FlexTM", 1)
    tracer.tx_abort(0, 0, 60, "wounded")
    tracer.stall(0, 100, 40)  # retry backoff after the abort
    tracer.finalize([100])
    proc = _profiled(tracer).processors[0]
    assert proc.stalled_on_conflict == 40
    assert proc.aborted_discarded == 60
    assert proc.non_tx == 0
    assert proc.total == 100


def test_deferred_overflow_satisfied_by_later_flush():
    tracer = EventTracer()
    tracer.tx_begin(0, 0, 0, "FlexTM", 1)
    # Spill announced mid-operation at cycle 50, 20 cycles of walk; the
    # clock lands them when the operation retires.
    tracer.overflow(0, 50, "spill", 64, dur=20)
    tracer.tx_commit(0, 0, 100)
    tracer.finalize([100])
    proc = _profiled(tracer).processors[0]
    assert proc.overflow_walk == 20
    assert proc.useful_work == 80
    assert proc.total == 100


def test_cut_off_attempt_is_discarded():
    tracer = EventTracer()
    tracer.tx_begin(0, 0, 10, "FlexTM", 1)
    tracer.finalize([300])  # run ended mid-attempt
    proc = _profiled(tracer).processors[0]
    assert proc.aborted_discarded == 290
    assert proc.non_tx == 10


def test_preempt_stashes_and_dispatch_restores():
    tracer = EventTracer()
    tracer.tx_begin(0, 3, 0, "FlexTM", 1)
    tracer.sched(0, 100, "preempt", 3)
    tracer.sched(0, 150, "dispatch", 3, status="ok")
    tracer.tx_commit(0, 3, 250)
    tracer.finalize([250])
    proc = _profiled(tracer).processors[0]
    # 100 pre-switch + 100 post-resume attempt cycles commit; the 50
    # switch cycles in between are non-transactional overhead.
    assert proc.useful_work == 200
    assert proc.non_tx == 50
    assert proc.total == 250


def test_aborted_while_descheduled_discards_stash():
    tracer = EventTracer()
    tracer.tx_begin(0, 3, 0, "FlexTM", 1)
    tracer.sched(0, 100, "preempt", 3)
    tracer.sched(0, 150, "dispatch", 3, status="aborted")
    tracer.tx_abort(0, 3, 160, "aborted while descheduled")
    tracer.finalize([160])
    proc = _profiled(tracer).processors[0]
    # Pre-switch work (100) was stashed and the resume came back
    # aborted: the attempt's work is discarded.  The post-resume unwind
    # (10 cycles) ran outside any attempt, so it is scheduler overhead.
    assert proc.aborted_discarded == 100
    assert proc.non_tx == 50 + 10
    assert proc.total == 160


def test_sum_invariant_synthetic_multiprocessor():
    tracer = EventTracer()
    tracer.tx_begin(0, 0, 5, "FlexTM", 1)
    tracer.stall(0, 60, 30, enemy=1)
    tracer.tx_commit(0, 0, 90)
    tracer.tx_begin(1, 1, 0, "FlexTM", 1)
    tracer.overflow(1, 40, "walk", 128, dur=20)
    tracer.tx_abort(1, 1, 80, "wounded", by=0)
    tracer.finalize([120, 95, 30])
    profile = _profiled(tracer)
    assert profile.total_cycles == 120 + 95 + 30
    aggregate = profile.aggregate()
    assert sum(aggregate[bucket] for bucket in BUCKETS) == profile.total_cycles
    # The idle third processor is pure non-tx.
    assert profile.processors[2].non_tx == 30


def test_profile_run_is_none_safe():
    assert profile_run(None) is None
    tracer = EventTracer()
    tracer.finalize([10])
    assert profile_run(tracer).total_cycles == 10
