"""The metrics subsystem: percentile rule, histograms, series, hub.

Three contracts are pinned here:

* **one percentile rule** — ``sim.stats.Histogram`` and
  ``LogBucketHistogram`` answer order-statistic queries through the
  same :func:`nearest_rank` helper (golden edge cases included);
* **bounded error** — log buckets are exact below ``linear_max`` and
  under-report by at most one sub-bucket width above it;
* **observational purity** — a metrics-armed run is bit-identical to
  an unarmed one on every backend, and the artifact itself is
  deterministic across repeated runs.
"""

import pytest

from repro.harness.metrics import build_artifact, validate_metrics_artifact
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.obs.metrics import (
    Gauge,
    LogBucketHistogram,
    MetricsHub,
    TimeSeries,
    nearest_rank,
    nearest_rank_index,
)
from repro.params import small_test_params
from repro.sim.stats import Histogram

SYSTEMS = ["CGL", "FlexTM", "RTM-F", "RSTM", "TL2", "LogTM-SE", "HTM-BE"]

CYCLES = 30_000


# -- the one percentile rule --------------------------------------------------


def test_nearest_rank_empty_population():
    assert nearest_rank_index(0, 0.5) == -1
    assert nearest_rank([], 0.5) == 0
    assert nearest_rank([], 0.0) == 0


def test_nearest_rank_single_sample():
    for fraction in (0.0, 0.5, 0.95, 1.0):
        assert nearest_rank([7], fraction) == 7


def test_nearest_rank_rejects_out_of_range_fractions():
    with pytest.raises(ValueError):
        nearest_rank_index(3, -0.01)
    with pytest.raises(ValueError):
        nearest_rank([1, 2, 3], 1.01)


def test_nearest_rank_golden_values():
    ordered = list(range(1, 11))  # 1..10
    assert nearest_rank(ordered, 0.0) == 1
    assert nearest_rank(ordered, 0.5) == 5  # round(0.5 * 9) = 4 -> value 5
    assert nearest_rank(ordered, 0.95) == 10
    assert nearest_rank(ordered, 1.0) == 10


def test_sim_stats_histogram_uses_the_shared_rule():
    """Satellite: sim.stats percentiles delegate to obs.metrics."""
    histogram = Histogram("x")
    assert histogram.percentile(0.5) == 0  # empty
    samples = [5, 1, 9, 3, 7]
    for sample in samples:
        histogram.record(sample)
    ordered = sorted(samples)
    for fraction in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
        assert histogram.percentile(fraction) == nearest_rank(ordered, fraction)
    with pytest.raises(ValueError):
        histogram.percentile(2.0)


# -- log-bucket histogram ------------------------------------------------------


def test_log_bucket_empty():
    histogram = LogBucketHistogram("h")
    assert histogram.count == 0
    assert histogram.mean == 0.0
    assert histogram.p50 == 0
    assert histogram.p99 == 0
    assert histogram.to_dict()["buckets"] == []


def test_log_bucket_single_sample_is_exact():
    histogram = LogBucketHistogram("h")
    histogram.record(37)
    assert (histogram.p50, histogram.p95, histogram.p99) == (37, 37, 37)
    assert histogram.minimum == histogram.maximum == 37


def test_log_bucket_exact_below_linear_max():
    histogram = LogBucketHistogram("h", linear_max=128)
    for value in range(128):
        assert histogram._bucket_of(value) == value


def test_log_bucket_boundary_octave():
    """At linear_max the octave splits into subbucket-width slices."""
    histogram = LogBucketHistogram("h", linear_max=128, subbuckets=8)
    # Octave [128, 256) has width 128/8 = 16 per sub-bucket.
    assert histogram._bucket_of(128) == 128
    assert histogram._bucket_of(143) == 128
    assert histogram._bucket_of(144) == 144
    assert histogram._bucket_of(255) == 240
    # Next octave [256, 512): width 32.
    assert histogram._bucket_of(256) == 256
    assert histogram._bucket_of(287) == 256
    assert histogram._bucket_of(288) == 288


def test_log_bucket_percentile_reports_bucket_lower_bound():
    histogram = LogBucketHistogram("h", linear_max=128, subbuckets=8)
    for _ in range(10):
        histogram.record(150)  # bucket 144
    assert histogram.p50 == 144
    assert histogram.maximum == 150
    # Relative error bounded by one sub-bucket width (16/150 < 1/8).
    assert 150 - histogram.p50 <= 150 / 8


def test_log_bucket_clamps_negative_samples():
    histogram = LogBucketHistogram("h")
    histogram.record(-5)
    assert histogram.minimum == 0
    assert histogram.p50 == 0


def test_log_bucket_rejects_non_power_of_two_geometry():
    with pytest.raises(ValueError):
        LogBucketHistogram("h", linear_max=100)
    with pytest.raises(ValueError):
        LogBucketHistogram("h", subbuckets=3)


# -- time series ---------------------------------------------------------------


def test_series_windows_sum_and_sort():
    series = TimeSeries("s", window_cycles=100)
    series.record(50)
    series.record(250)
    series.record(99)
    series.record(210, amount=3)
    assert series.points() == [[0, 2], [200, 4]]


def test_series_max_mode():
    series = TimeSeries("s", window_cycles=100, mode="max")
    series.record(10, 5)
    series.record(20, 9)
    series.record(30, 2)
    assert series.points() == [[0, 9]]


def test_series_accepts_out_of_order_cycles():
    series = TimeSeries("s", window_cycles=100)
    series.record(500)
    series.record(100)  # processors advance independently
    assert series.points() == [[100, 1], [500, 1]]


def test_series_evicts_oldest_window_past_capacity():
    series = TimeSeries("s", window_cycles=10, capacity=3)
    for cycle in (5, 15, 25, 35):
        series.record(cycle)
    assert series.evicted == 1
    assert series.points() == [[10, 1], [20, 1], [30, 1]]


def test_series_rejects_bad_geometry():
    with pytest.raises(ValueError):
        TimeSeries("s", window_cycles=0)
    with pytest.raises(ValueError):
        TimeSeries("s", window_cycles=10, capacity=0)
    with pytest.raises(ValueError):
        TimeSeries("s", window_cycles=10, mode="median")


def test_gauge_last_value_wins():
    gauge = Gauge("g")
    gauge.set(4)
    gauge.set(2)
    assert gauge.value == 2


# -- hub determinism -----------------------------------------------------------


def _config(system, **overrides):
    base = dict(
        workload="HashTable",
        system=system,
        threads=4,
        cycle_limit=CYCLES,
        seed=9,
        params=small_test_params(4),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.mark.parametrize("system", SYSTEMS)
def test_armed_run_is_bit_identical_to_unarmed(system):
    """The tentpole contract: metrics observe, never perturb."""
    plain = run_experiment(_config(system))
    armed = run_experiment(_config(system, metrics=MetricsHub()))
    assert plain == armed  # RunResult equality ignores trace/metrics


def test_hub_sees_the_run_it_rode():
    hub = MetricsHub()
    result = run_experiment(_config("FlexTM", metrics=hub))
    assert result.metrics is hub
    assert hub.counters["tx.commits"] == result.commits
    assert hub.counters.get("tx.aborts", 0) == result.aborts
    assert hub.samples_taken > 0
    assert hub.series_map["tx.commits"].points()
    assert max(hub.proc_cycles) == hub.gauges["cycles.total"].value


def test_unarmed_run_result_has_no_metrics():
    assert run_experiment(_config("FlexTM")).metrics is None


def test_artifact_is_deterministic_and_valid():
    documents = []
    for _ in range(2):
        hub = MetricsHub()
        result = run_experiment(_config("FlexTM", metrics=hub))
        documents.append(build_artifact(hub, result, run_info={"label": "t"}))
    assert documents[0] == documents[1]
    assert validate_metrics_artifact(documents[0]) is None


def test_hub_bounds_abort_records():
    hub = MetricsHub(max_abort_records=2)
    for cycle in (10, 20, 30, 40):
        hub.on_abort(0, 0, cycle, by=1, kind="W-W")
    assert len(hub.abort_records) == 2
    assert hub.abort_records_dropped == 2


def test_degrade_armed_hub_samples_rung_census():
    hub = MetricsHub(sample_interval=64)
    from repro.resilience import DegradeSpec

    run_experiment(
        _config(
            "FlexTM",
            metrics=hub,
            degrade=DegradeSpec(boost_after=1, eager_after=2,
                                irrevocable_after=3),
        )
    )
    assert "resilience.rung.healthy" in hub.gauges
