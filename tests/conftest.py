"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.core.machine import FlexTMMachine
from repro.params import SystemParams, small_test_params


@pytest.fixture
def small_params() -> SystemParams:
    return small_test_params(4)


@pytest.fixture
def machine(small_params) -> FlexTMMachine:
    """A 4-core machine with tiny caches (fast eviction paths)."""
    return FlexTMMachine(small_params)


@pytest.fixture
def machine16() -> FlexTMMachine:
    """A full 16-core machine with the paper's Table 3(a) geometry."""
    return FlexTMMachine(SystemParams())
