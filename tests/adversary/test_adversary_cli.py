"""The ``python -m repro.harness adversary`` CLI and its JSON report."""

import json

import pytest

from repro.adversary.conformance import run_adversary_matrix
from repro.adversary.schedules import SCHEDULES
from repro.harness.adversary import (
    REPORT_SCHEMA,
    build_report,
    list_schedules,
    render_matrix,
    resolve_schedules,
    run_adversary_command,
)

# A fast sub-matrix for CLI-level tests; the full matrix is covered by
# test_conformance.py and the CI adversary job.
FAST_BACKENDS = ["CGL", "FlexTM"]
FAST_SCHEDULES = ["prog-read-read", "prog-wr-conflict"]


def test_jobs_fanout_is_bit_identical():
    serial = run_adversary_matrix(FAST_BACKENDS, FAST_SCHEDULES, seed=1, jobs=1)
    fanned = run_adversary_matrix(FAST_BACKENDS, FAST_SCHEDULES, seed=1, jobs=2)
    assert [cell.to_json() for cell in serial] == [
        cell.to_json() for cell in fanned
    ]


def test_matrix_rows_are_in_input_order():
    rows = run_adversary_matrix(FAST_BACKENDS, FAST_SCHEDULES, seed=1, jobs=2)
    assert [(cell.backend, cell.schedule) for cell in rows] == [
        (backend, schedule)
        for backend in FAST_BACKENDS
        for schedule in FAST_SCHEDULES
    ]


def test_report_document_shape():
    rows = run_adversary_matrix(FAST_BACKENDS, FAST_SCHEDULES, seed=1)
    report = build_report(
        rows, seed=1, backends=FAST_BACKENDS, schedules=FAST_SCHEDULES,
        cycle_limit=10_000_000, strict=True,
    )
    assert report["schema"] == REPORT_SCHEMA == "repro.adversary/v1"
    assert report["ok"] is True
    assert report["backends"] == FAST_BACKENDS
    assert report["schedules"] == FAST_SCHEDULES
    assert sum(report["counts"].values()) == len(rows) == 4
    assert "violates" not in report["counts"]
    for cell in report["cells"]:
        for key in ("backend", "schedule", "verdict", "seed", "commits",
                    "aborts", "aborts_by_kind", "wasted_cycles", "probe",
                    "directives"):
            assert key in cell, f"report cell missing {key}"
        assert cell["probe"]["violations"] == 0
    # The report is valid, round-trippable JSON.
    assert json.loads(json.dumps(report)) == report


def test_command_end_to_end_with_report(tmp_path, capsys):
    out = tmp_path / "adversary.json"
    status = run_adversary_command([
        "--backend", "CGL", "--schedule", "prog-read-read",
        "--report", str(out), "--quiet",
    ])
    assert status == 0
    stdout = capsys.readouterr().out
    assert "every schedule conforms" in stdout
    document = json.loads(out.read_text())
    assert document["schema"] == REPORT_SCHEMA
    assert document["ok"] is True
    assert len(document["cells"]) == 1
    assert document["cells"][0]["verdict"] == "conforms"


def test_list_schedules_flag(capsys):
    assert run_adversary_command(["--list-schedules"]) == 0
    stdout = capsys.readouterr().out
    for name in SCHEDULES:
        assert name in stdout
    assert "arXiv:1502.04908" in stdout  # citations surface in discovery


def test_unknown_schedule_is_rejected():
    with pytest.raises(SystemExit, match="unknown schedule"):
        resolve_schedules(["prog-read-read", "warp-duel"])


def test_render_matrix_marks_failures():
    rows = run_adversary_matrix(["CGL"], ["prog-read-read"], seed=1)
    table = render_matrix(rows)
    assert "conforms" in table
    assert "FAIL" not in table
    rows[0].verdict = "violates"
    rows[0].detail = "synthetic"
    assert "<-- FAIL" in render_matrix(rows)


def test_listing_covers_the_whole_catalog():
    text = list_schedules()
    assert all(spec.name in text for spec in SCHEDULES.values())
    assert "forbid-aborts" in text and "conflict" in text
