"""Seeded smoke-fuzz for the ScheduleScript DSL.

Fixed-seed ``random.Random`` streams generate well-formed random
scripts; every script must validate, survive a lossless JSON
round-trip, and replay on the real simulator through the same oracle
stack as the named catalog without crashing (any *verdict* is legal —
a random interleaving may wedge or violate; a Python crash is not).
Failing scripts are delta-debugged down to a minimal step sequence
before the assertion fires, and the shrinker itself is tested against
a synthetic predicate.  No wall-clock anywhere: runs are bounded by
cycle budgets and the director's step budgets.
"""

from __future__ import annotations

import random
from typing import Callable, List

import pytest

from repro.adversary.conformance import run_schedule_cell
from repro.adversary.schedules import ScheduleSpec, _thread
from repro.adversary.script import ScheduleScript, Step

_FUZZ_SEEDS = list(range(30))
_REPLAY_SEEDS = list(range(12))
_UNTIL = ("ops", "begin", "commit", "abort", "cycle", "done")


def _random_step(rng: random.Random, threads: int) -> Step:
    thread = rng.randrange(threads)
    roll = rng.randrange(8)
    if roll <= 2:  # run steps dominate so scripts make progress
        return Step.run(
            thread,
            until=rng.choice(_UNTIL),
            count=rng.randint(1, 60),
            budget=rng.randint(50, 2_000),
        )
    if roll == 3:
        return Step.preempt(thread)
    if roll == 4:
        return Step.place(thread, processor=rng.randrange(threads))
    if roll == 5:
        return Step.wound(thread)
    if roll == 6:
        return Step.stall(thread, cycles=rng.randint(1, 400))
    return rng.choice([Step.pin, Step.unpin])(thread)


def _random_script(seed: int) -> ScheduleScript:
    rng = random.Random(seed)
    threads = rng.randint(1, 3)
    steps: List[Step] = [
        _random_step(rng, threads) for _ in range(rng.randint(1, 12))
    ]
    # A tail drive per thread so most scripts run to completion; the
    # budget still bounds the run if an earlier directive wedged it.
    steps.extend(
        Step.run(t, until="done", budget=5_000) for t in range(threads)
    )
    return ScheduleScript(
        name=f"fuzz-{seed}",
        description=f"random script, seed {seed}, {threads} thread(s)",
        seed=seed,
        steps=tuple(steps),
    )


def _spec_for(script: ScheduleScript, threads: int) -> ScheduleSpec:
    def build(cells, unique):
        bodies = [
            _thread(unique, [("r", cells[0]), ("w", cells[0]), ("spacer", 30)])
            for _ in range(threads)
        ]
        return bodies, script

    return ScheduleSpec(
        name=script.name,
        description=script.description,
        citation="fuzz",
        threads=threads,
        cells=1,
        forbid_aborts=False,
        build=build,
    )


def _threads_of(script: ScheduleScript) -> int:
    return max(step.thread for step in script.steps) + 1


def shrink(
    script: ScheduleScript, failing: Callable[[ScheduleScript], bool]
) -> ScheduleScript:
    """Greedy delta-debugging over steps: smallest still-failing script.

    Repeatedly drops step chunks (halves down to singletons) while the
    predicate keeps failing.  Deterministic, no randomness: the result
    depends only on the input script and predicate.
    """
    steps = list(script.steps)
    chunk = max(1, len(steps) // 2)
    while chunk >= 1:
        index = 0
        while index < len(steps) and len(steps) > 1:
            candidate = steps[:index] + steps[index + chunk:]
            if candidate:
                trimmed = ScheduleScript(
                    name=script.name,
                    description=script.description,
                    citation=script.citation,
                    seed=script.seed,
                    steps=tuple(candidate),
                )
                if failing(trimmed):
                    steps = candidate
                    continue
            index += chunk
        chunk //= 2
    return ScheduleScript(
        name=script.name,
        description=script.description,
        citation=script.citation,
        seed=script.seed,
        steps=tuple(steps),
    )


@pytest.mark.parametrize("seed", _FUZZ_SEEDS)
def test_generated_scripts_validate_and_round_trip(seed):
    script = _random_script(seed)
    assert ScheduleScript.from_json(script.to_json()) == script
    assert ScheduleScript.loads(script.dumps()) == script
    # Serialization is stable: a script archived in a bug report
    # replays from the identical wire text.
    assert script.dumps() == ScheduleScript.loads(script.dumps()).dumps()


@pytest.mark.parametrize("seed", _REPLAY_SEEDS)
def test_generated_scripts_never_crash_the_simulator(seed):
    script = _random_script(seed)
    threads = _threads_of(script)

    def crashes(candidate: ScheduleScript) -> bool:
        cell = run_schedule_cell(
            "FlexTM",
            candidate.name,
            seed=1,
            cycle_limit=200_000,
            spec=_spec_for(candidate, threads),
        )
        return cell.detail.startswith("crash")

    if crashes(script):
        minimal = shrink(script, crashes)
        pytest.fail(
            f"seed {seed} crashed; minimal script: "
            + "; ".join(
                f"{step.action}@{step.thread}" for step in minimal.steps
            )
        )


def test_corrupted_documents_are_rejected_not_crashed():
    rng = random.Random(99)
    for seed in range(10):
        document = _random_script(seed).to_json()
        victim = rng.randrange(len(document["steps"]))
        field, value = rng.choice(
            [("action", "warp"), ("until", "rapture"), ("thread", -1)]
        )
        document["steps"][victim] = dict(
            document["steps"][victim], **{field: value}
        )
        with pytest.raises(ValueError):
            ScheduleScript.from_json(document)


def test_shrinker_finds_the_minimal_failing_core():
    # Synthetic predicate: a script "fails" iff it both wounds thread 0
    # and stalls thread 1 (order-independent), regardless of noise.
    script = _random_script(3)
    noise = list(script.steps)
    planted = ScheduleScript(
        name="planted",
        steps=tuple(
            noise[: len(noise) // 2]
            + [Step.wound(0)]
            + noise[len(noise) // 2:]
            + [Step.stall(1, cycles=10)]
        ),
    )

    def failing(candidate: ScheduleScript) -> bool:
        actions = {(step.action, step.thread) for step in candidate.steps}
        return ("wound", 0) in actions and ("stall", 1) in actions

    minimal = shrink(planted, failing)
    assert failing(minimal)
    assert len(minimal.steps) == 2
    assert {(s.action, s.thread) for s in minimal.steps} == {
        ("wound", 0),
        ("stall", 1),
    }


def test_shrinker_keeps_a_singleton_failure():
    script = ScheduleScript(
        name="single", steps=(Step.run(0), Step.wound(0), Step.run(0))
    )

    def failing(candidate: ScheduleScript) -> bool:
        return any(step.action == "wound" for step in candidate.steps)

    minimal = shrink(script, failing)
    assert [step.action for step in minimal.steps] == ["wound"]
