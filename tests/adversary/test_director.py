"""ScheduleDirector: scripted interleaving control through the scheduler.

Each test runs a tiny workload under a hand-written ScheduleScript and
asserts on the two observable surfaces: the directive log (how the
script unfolded) and the run's results (what the forced interleaving
actually produced).
"""

from repro.adversary.director import ScheduleDirector
from repro.adversary.script import ScheduleScript, Step
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.harness.runner import SYSTEMS
from repro.params import small_test_params
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem

CYCLE_LIMIT = 2_000_000


def _txn(address, value, spacer=0):
    """One transaction: optional work spacer, then write address=value."""

    def body(ctx):
        for _ in range(spacer):
            yield from ctx.work(1)
        yield from ctx.write(address, value)

    return WorkItem(body)


def _run(steps, items_per_thread, backend_name="FlexTM", processors=2):
    machine = FlexTMMachine(small_test_params(processors))
    backend = SYSTEMS[backend_name](machine, ConflictMode.EAGER)
    threads = [
        TxThread(thread_id, backend, items)
        for thread_id, items in enumerate(items_per_thread)
    ]
    script = ScheduleScript(name="test", steps=tuple(steps))
    director = ScheduleDirector(script)
    result = Scheduler(machine, threads, director=director).run(
        cycle_limit=CYCLE_LIMIT
    )
    return machine, director, result


def _outcomes(director):
    return [entry["outcome"] for entry in director.log]


def _alloc(machine):
    line = machine.params.line_bytes
    return machine.allocate(line, line_aligned=True)


def test_run_until_commit_forces_the_scripted_commit_order():
    # Both threads write the same cell; the scripted order decides whose
    # value lands last.  Under the default policy T0 (lowest proc) would
    # win ties — the script forces the opposite serialization first.
    results = {}
    for order in ((1, 0), (0, 1)):
        machine = FlexTMMachine(small_test_params(2))
        backend = SYSTEMS["FlexTM"](machine, ConflictMode.EAGER)
        address = _alloc(machine)
        threads = [
            TxThread(0, backend, [_txn(address, 100)]),
            TxThread(1, backend, [_txn(address, 200)]),
        ]
        steps = tuple(Step.run(tid, until="commit") for tid in order)
        director = ScheduleDirector(ScheduleScript(name="order", steps=steps))
        result = Scheduler(machine, threads, director=director).run(
            cycle_limit=CYCLE_LIMIT
        )
        assert result.commits == 2
        assert _outcomes(director)[:2] == ["completed", "completed"]
        results[order] = machine.memory.read(address)
    assert results[(1, 0)] == 100  # T0 committed last
    assert results[(0, 1)] == 200  # T1 committed last


def test_preempt_parks_and_place_resumes():
    machine = FlexTMMachine(small_test_params(2))
    backend = SYSTEMS["FlexTM"](machine, ConflictMode.EAGER)
    a, b = _alloc(machine), _alloc(machine)
    threads = [
        TxThread(0, backend, [_txn(a, 100)]),
        TxThread(1, backend, [_txn(b, 200)]),
    ]
    script = ScheduleScript(
        name="park",
        steps=(
            Step.preempt(0),
            Step.run(1, until="done"),
            Step.place(0, processor=0),
            Step.run(0, until="done"),
        ),
    )
    director = ScheduleDirector(script)
    result = Scheduler(machine, threads, director=director).run(
        cycle_limit=CYCLE_LIMIT
    )
    assert result.commits == 2
    assert _outcomes(director) == [
        "parked", "completed", "placed", "completed", "released",
    ]
    # The parked thread truly sat out: T1 finished strictly before T0
    # committed anything (its commit happened after the place directive).
    place_entry = director.log[2]
    done_entry = director.log[1]
    assert place_entry["cycle"] >= done_entry["cycle"]


def test_wound_stages_the_adversary_kind():
    _, director, result = _run(
        [
            Step.run(0, until="begin"),
            Step.run(0, until="ops", count=10),
            Step.wound(0),
            Step.run(0, until="done"),
        ],
        # A long spacer keeps T0 inside its transaction through the
        # wound directive's window.
        [[_txn(0x1000, 100, spacer=300)]],
    )
    assert "wounded" in _outcomes(director)
    assert result.aborts_by_kind.get("adversary", 0) >= 1
    assert result.commits == 1  # the retry still completes


def test_wound_on_a_descriptorless_backend_is_a_logged_noop():
    # STM backends keep no hardware descriptor: the same catalog script
    # must run unchanged, with the directive resolving to a no-op.
    _, director, result = _run(
        [
            Step.run(0, until="begin"),
            Step.wound(0),
            Step.run(0, until="done"),
        ],
        [[_txn(0x1000, 100, spacer=50)]],
        backend_name="TL2",
    )
    assert "no-descriptor" in _outcomes(director)
    assert result.commits == 1
    assert result.aborts == 0


def test_directives_on_unknown_threads_are_diagnosed():
    _, director, result = _run(
        [
            Step.run(7, until="ops", count=3),
            Step.preempt(7),
            Step.run(0, until="done"),
        ],
        [[_txn(0x1000, 100)]],
    )
    assert _outcomes(director) == [
        "unknown-thread", "not-running", "completed", "released",
    ]
    assert result.commits == 1


def test_budget_exhaustion_cannot_wedge_the_script():
    # The until-condition (99 commits) is unreachable; the step budget
    # bounds the directive and the script moves on.
    _, director, result = _run(
        [
            Step.run(0, until="commit", count=99, budget=5),
            Step.run(0, until="done"),
        ],
        [[_txn(0x1000, 100, spacer=50)]],
    )
    assert _outcomes(director) == ["budget-exhausted", "completed", "released"]
    assert result.commits == 1


def test_end_of_script_releases_parked_threads():
    # The script parks T0 and then ends: the director must release it
    # back to the default policy so the run drains instead of wedging.
    machine = FlexTMMachine(small_test_params(2))
    backend = SYSTEMS["FlexTM"](machine, ConflictMode.EAGER)
    a, b = _alloc(machine), _alloc(machine)
    threads = [
        TxThread(0, backend, [_txn(a, 100)]),
        TxThread(1, backend, [_txn(b, 200)]),
    ]
    script = ScheduleScript(name="abandon", steps=(Step.preempt(0),))
    director = ScheduleDirector(script)
    result = Scheduler(machine, threads, director=director).run(
        cycle_limit=CYCLE_LIMIT
    )
    assert result.commits == 2
    assert director.finished
    assert director.log[-1]["action"] == "end-of-script"
    assert director.log[-1]["outcome"] == "released"


def test_run_target_evicts_a_bystander_when_cores_are_full():
    # Three threads, two cores: running T2 requires parking somebody.
    # The evicted bystander is re-queued, so everyone still commits.
    machine = FlexTMMachine(small_test_params(2))
    backend = SYSTEMS["FlexTM"](machine, ConflictMode.EAGER)
    cells = [_alloc(machine) for _ in range(3)]
    threads = [
        TxThread(tid, backend, [_txn(cells[tid], 100 + tid)])
        for tid in range(3)
    ]
    script = ScheduleScript(
        name="evict", steps=(Step.run(2, until="commit"),)
    )
    director = ScheduleDirector(script)
    result = Scheduler(machine, threads, director=director).run(
        cycle_limit=CYCLE_LIMIT
    )
    assert _outcomes(director)[0] == "completed"
    assert result.commits == 3
    assert result.per_thread[2]["commits"] == 1


def test_pin_directives_shield_threads_and_are_logged():
    _, director, result = _run(
        [
            Step.pin(1),
            Step.run(0, until="done"),
            Step.unpin(1),
            Step.run(1, until="done"),
        ],
        [[_txn(0x1000, 100)], [_txn(0x2000, 200)]],
    )
    assert _outcomes(director) == [
        "pinned", "completed", "unpinned", "completed", "released",
    ]
    assert result.commits == 2


def test_pins_hook_reflects_the_pinned_set():
    import types

    director = ScheduleDirector(
        ScheduleScript(name="pins", steps=(Step.pin(1),))
    )
    director._pinned = {1}
    assert director.pins(types.SimpleNamespace(thread_id=1))
    assert not director.pins(types.SimpleNamespace(thread_id=0))


def test_replay_is_bit_identical():
    def one_run():
        machine = FlexTMMachine(small_test_params(2))
        backend = SYSTEMS["FlexTM"](machine, ConflictMode.EAGER)
        address = _alloc(machine)
        threads = [
            TxThread(0, backend, [_txn(address, 100, spacer=40)]),
            TxThread(1, backend, [_txn(address, 200, spacer=40)]),
        ]
        script = ScheduleScript(
            name="replay",
            steps=(
                Step.run(0, until="begin"),
                Step.preempt(0),
                Step.run(1, until="commit"),
                Step.place(0),
                Step.run(0, until="done"),
            ),
        )
        director = ScheduleDirector(script)
        result = Scheduler(machine, threads, director=director).run(
            cycle_limit=CYCLE_LIMIT
        )
        return result, director.log, machine.memory.read(address)

    first, second = one_run(), one_run()
    assert first[0] == second[0]   # RunResult dataclass equality
    assert first[1] == second[1]   # directive log, entry by entry
    assert first[2] == second[2]   # final memory
