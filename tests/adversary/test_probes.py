"""OpacityProbe unit tests against synthetic shadow histories.

These drive the probe's hook surface directly — no machine, no
scheduler — so every oracle decision (consistent snapshot, torn
snapshot, zombie accounting, overlay atomicity) is pinned to a tiny,
readable event sequence.
"""

from repro.adversary.probes import OpacityProbe

A, B = 0x100, 0x140


def _probe():
    probe = OpacityProbe()
    probe.track(A, 0)
    probe.track(B, 0)
    return probe


def test_consistent_snapshot_passes():
    probe = _probe()
    probe.on_begin(0)
    probe.on_read(0, A, 0)
    probe.on_read(0, B, 0)
    probe.on_commit(0)
    assert probe.violations == []
    assert probe.summary() == {
        "reads_checked": 2,
        "snapshots_checked": 1,
        "zombie_attempts": 0,
        "stale_reads": 0,
        "violations": 0,
    }


def test_snapshot_at_a_later_version_passes():
    probe = _probe()
    probe.on_memory_write(A, 11)
    probe.on_memory_write(B, 22)
    probe.on_begin(0)
    probe.on_read(0, A, 11)
    probe.on_read(0, B, 22)
    probe.on_commit(0)
    assert probe.violations == []


def test_torn_snapshot_is_flagged():
    # T0 reads A before a writer updates both cells, then reads B after:
    # the classic zombie read — no single committed version has (A=0, B=22).
    probe = _probe()
    probe.on_begin(0)
    probe.on_read(0, A, 0)
    probe.on_memory_write(A, 11)
    probe.on_memory_write(B, 22)
    probe.on_read(0, B, 22)
    probe.on_abort(0)
    assert len(probe.violations) == 1
    violation = probe.violations[0]
    assert violation.thread == 0
    assert violation.outcome == "abort"
    assert violation.reads == ((A, 0), (B, 22))
    assert "no single committed version" in violation.detail
    assert probe.stale_reads == 1


def test_aborted_zombies_are_checked_and_counted():
    # An abort with a consistent view is fine (TL2 kills zombies at
    # validation); it still counts as a zombie attempt.
    probe = _probe()
    probe.on_begin(0)
    probe.on_read(0, A, 0)
    probe.on_abort(0)
    assert probe.zombie_attempts == 1
    assert probe.violations == []
    # A committed attempt is not a zombie.
    probe.on_begin(1)
    probe.on_read(1, A, 0)
    probe.on_commit(1)
    assert probe.zombie_attempts == 1


def test_commit_flash_is_one_atomic_version():
    # A cas_commit overlay flashes A and B at a single point: a reader
    # must see both updates or neither, and both orders are consistent.
    probe = _probe()
    probe.on_commit_flash({A: 11, B: 22})
    for thread, (va, vb) in enumerate([(11, 22), (0, 0)]):
        probe.on_begin(thread)
        probe.on_read(thread, A, va)
        probe.on_read(thread, B, vb)
        probe.on_commit(thread)
    assert probe.violations == []
    # Half the overlay is torn by construction — must be flagged.
    probe.on_begin(9)
    probe.on_read(9, A, 0)
    probe.on_read(9, B, 22)
    probe.on_commit(9)
    assert len(probe.violations) == 1
    assert probe.violations[0].outcome == "commit"


def test_read_own_write_is_not_an_observation():
    probe = _probe()
    probe.on_begin(0)
    probe.on_write(0, A, 999)
    probe.on_read(0, A, 999)  # private buffer, not committed state
    probe.on_commit(0)
    assert probe.reads_checked == 0
    assert probe.snapshots_checked == 0  # no first-reads -> nothing to check
    assert probe.violations == []


def test_only_first_read_per_address_is_recorded():
    # Later reads may legitimately see the transaction's own view; the
    # opacity obligation is on the first observation of committed state.
    probe = _probe()
    probe.on_begin(0)
    probe.on_read(0, A, 0)
    probe.on_memory_write(A, 11)
    probe.on_read(0, A, 11)  # not recorded: A was already observed
    probe.on_commit(0)
    assert probe.reads_checked == 1
    assert probe.violations == []


def test_untracked_addresses_are_ignored():
    probe = _probe()
    probe.on_begin(0)
    probe.on_read(0, 0xDEAD, 5)
    probe.on_memory_write(0xDEAD, 6)
    probe.on_commit(0)
    assert probe.reads_checked == 0
    assert probe.violations == []
