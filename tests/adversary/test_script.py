"""ScheduleScript DSL: validation, constructors, JSON round-trips."""

import dataclasses
import json

import pytest

from repro.adversary.script import (
    ACTIONS,
    DEFAULT_STEP_BUDGET,
    UNTIL_EVENTS,
    ScheduleScript,
    Step,
)


class TestStepValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown action"):
            Step(action="teleport", thread=0)

    def test_unknown_until_event_rejected(self):
        with pytest.raises(ValueError, match="unknown until-event"):
            Step(action="run", thread=0, until="rapture")

    def test_negative_thread_rejected(self):
        with pytest.raises(ValueError, match="thread"):
            Step(action="run", thread=-1)

    @pytest.mark.parametrize("field,value", [("count", 0), ("budget", 0)])
    def test_nonpositive_bounds_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            Step(action="run", thread=0, **{field: value})

    def test_steps_are_immutable(self):
        step = Step.run(0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            step.thread = 3

    def test_every_constructor_produces_a_legal_action(self):
        built = [
            Step.run(0),
            Step.preempt(0),
            Step.place(0, processor=1),
            Step.wound(0),
            Step.stall(0, cycles=500),
            Step.pin(0),
            Step.unpin(0),
        ]
        assert [step.action for step in built] == list(ACTIONS)
        assert built[4].count == 500

    def test_run_constructor_defaults(self):
        step = Step.run(2, until="commit", count=3)
        assert step.until in UNTIL_EVENTS
        assert (step.thread, step.count, step.budget) == (
            2, 3, DEFAULT_STEP_BUDGET,
        )


class TestScriptSerialization:
    def _script(self):
        return ScheduleScript(
            name="zombie-probe",
            description="T0 reads A, sleeps through T1's commit, reads B",
            citation="Guerraoui & Kapalka, PPoPP 2008",
            seed=7,
            steps=(
                Step.run(0, until="ops", count=12),
                Step.preempt(0),
                Step.run(1, until="commit"),
                Step.place(0, processor=0),
                Step.wound(0),
                Step.run(0, until="done"),
            ),
        )

    def test_nameless_script_rejected(self):
        with pytest.raises(ValueError, match="name"):
            ScheduleScript(name="", steps=(Step.run(0),))

    def test_steps_normalized_to_tuple(self):
        script = ScheduleScript(name="x", steps=[Step.run(0)])
        assert isinstance(script.steps, tuple)

    def test_json_round_trip_is_lossless(self):
        script = self._script()
        assert ScheduleScript.from_json(script.to_json()) == script

    def test_dumps_loads_round_trip_is_lossless(self):
        script = self._script()
        assert ScheduleScript.loads(script.dumps()) == script

    def test_dumps_text_is_stable(self):
        script = self._script()
        assert script.dumps() == script.dumps()
        # The wire format is plain JSON with sorted keys: a schedule can
        # be archived in a bug report and replayed bit-identically.
        document = json.loads(script.dumps())
        assert list(document) == sorted(document)
        assert document["name"] == "zombie-probe"
        assert len(document["steps"]) == 6

    def test_from_json_applies_defaults(self):
        script = ScheduleScript.from_json(
            {"name": "minimal", "steps": [{"action": "run", "thread": 0}]}
        )
        assert script.seed == 0
        assert script.steps[0].budget == DEFAULT_STEP_BUDGET

    def test_from_json_rejects_illegal_steps(self):
        with pytest.raises(ValueError, match="unknown action"):
            ScheduleScript.from_json(
                {"name": "bad", "steps": [{"action": "warp", "thread": 0}]}
            )
