"""The conformance matrix: verdicts, determinism, probe transparency.

The heavyweight guarantees of the adversary engine live here:

* zero ``violates`` verdicts anywhere in the 6-backend x 10-schedule
  matrix at the CI seed — including zero opacity violations;
* progressiveness schedules commit with zero aborts on every backend;
* a cell replays bit-identically (the whole ScheduleCell document);
* arming the OpacityProbe changes nothing — RunResult and final memory
  are bit-identical to an unarmed run on every backend;
* strict invariants turn wound-attribution loss into a diagnosable
  error instead of a silent ``kind=""`` row (the scheduler half of the
  attribution pipeline).
"""

import types

import pytest

from repro.adversary.conformance import cell_seed, run_schedule_cell
from repro.adversary.schedules import SCHEDULES
from repro.chaos.invariants import InvariantChecker, InvariantViolation
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.errors import TransactionAborted
from repro.harness.runner import SYSTEMS
from repro.params import small_test_params
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread

BACKENDS = list(SYSTEMS)
SEED = 1  # the CI seed: tests and the workflow gate the same matrix


# ---------------------------------------------------------------- the matrix


@pytest.mark.parametrize("backend", BACKENDS)
def test_no_backend_violates_any_schedule(backend):
    for schedule in SCHEDULES:
        cell = run_schedule_cell(backend, schedule, seed=SEED)
        assert cell.ok, (
            f"{backend}/{schedule}: {cell.verdict} — {cell.detail}\n"
            f"directives: {cell.directives}"
        )
        assert cell.probe["violations"] == 0
        if SCHEDULES[schedule].forbid_aborts:
            assert cell.verdict == "conforms"
            assert cell.aborts == 0, (
                f"{backend}/{schedule}: progressiveness schedule aborted"
            )


def test_catalog_meets_the_theory_floor():
    assert len(SCHEDULES) >= 8
    assert any(spec.forbid_aborts for spec in SCHEDULES.values())
    for spec in SCHEDULES.values():
        assert spec.citation, f"{spec.name} cites no theory source"


def test_conflict_schedules_actually_force_aborts_somewhere():
    # The catalog is not vacuous: its conflict schedules make at least
    # one backend abort (FlexTM's eager CSTs fire on every W-R duel).
    cell = run_schedule_cell("FlexTM", "prog-wr-conflict", seed=SEED)
    assert cell.verdict == "aborts-as-required"
    assert cell.aborts > 0


def test_zombie_probe_schedule_exercises_the_oracle():
    # The zombie schedule must make the probe actually check snapshots
    # of aborted attempts on at least one backend — otherwise the
    # opacity gate would be trivially green.
    checked = 0
    for backend in BACKENDS:
        cell = run_schedule_cell(backend, "zombie-probe", seed=SEED)
        assert cell.ok
        checked += cell.probe["snapshots_checked"]
    assert checked > 0


# -------------------------------------------------------------- determinism


@pytest.mark.parametrize(
    "backend,schedule",
    [("FlexTM", "zombie-probe"), ("TL2", "commit-duel"),
     ("LogTM-SE", "wound-convoy")],
)
def test_cells_replay_bit_identically(backend, schedule):
    first = run_schedule_cell(backend, schedule, seed=SEED)
    second = run_schedule_cell(backend, schedule, seed=SEED)
    assert first.to_json() == second.to_json()


def test_cell_seed_mixing_separates_cells():
    seeds = {
        cell_seed(SEED, backend, schedule)
        for backend in BACKENDS
        for schedule in SCHEDULES
    }
    assert len(seeds) == len(BACKENDS) * len(SCHEDULES)


# ------------------------------------------------------- probe transparency


def _bare_run(backend_name, armed):
    """One commit-duel workload with or without the probe armed."""
    from repro.adversary.director import ScheduleDirector
    from repro.adversary.probes import OpacityProbe
    import itertools

    spec = SCHEDULES["commit-duel"]
    machine = FlexTMMachine(small_test_params(max(spec.threads, 2)))
    if armed:
        probe = OpacityProbe()
        machine.set_probes(probe)
    line = machine.params.line_bytes
    cells = [machine.allocate(line, line_aligned=True) for _ in range(spec.cells)]
    for index, cell in enumerate(cells):
        machine.memory.write(cell, index)
        if armed:
            probe.track(cell, index)
    backend = SYSTEMS[backend_name](machine, ConflictMode.EAGER)
    unique = itertools.count(1000)
    bodies, script = spec.build(cells, unique)
    threads = [
        TxThread(thread_id, backend, items)
        for thread_id, items in enumerate(bodies)
    ]
    result = Scheduler(
        machine, threads, director=ScheduleDirector(script)
    ).run(cycle_limit=10_000_000)
    memory = [machine.memory.read(cell) for cell in cells]
    return result, memory


@pytest.mark.parametrize("backend", BACKENDS)
def test_probe_armed_run_is_bit_identical_to_unarmed(backend):
    armed_result, armed_memory = _bare_run(backend, armed=True)
    bare_result, bare_memory = _bare_run(backend, armed=False)
    assert armed_result == bare_result
    assert armed_memory == bare_memory


# ----------------------------------------- strict wound-attribution (scheduler)


def _scheduler(strict):
    machine = FlexTMMachine(small_test_params(2))
    machine.set_invariants(InvariantChecker(strict=strict))
    backend = SYSTEMS["FlexTM"](machine, ConflictMode.EAGER)
    return Scheduler(machine, [TxThread(0, backend, [])])


def _thread(descriptor):
    return types.SimpleNamespace(thread_id=0, descriptor=descriptor)


def test_attribution_loss_is_diagnosed_under_strict_invariants():
    scheduler = _scheduler(strict=True)
    bare = types.SimpleNamespace(wounded_by=-1, wound_kind="")
    with pytest.raises(InvariantViolation, match="wound-attribution"):
        scheduler._abort_exception(_thread(bare), "status word changed")


def test_attribution_loss_is_tolerated_without_strict():
    scheduler = _scheduler(strict=False)
    bare = types.SimpleNamespace(wounded_by=-1, wound_kind="")
    exc = scheduler._abort_exception(_thread(bare), "status word changed")
    assert isinstance(exc, TransactionAborted)
    assert exc.conflict == ""


def test_staged_attribution_flows_into_the_abort():
    scheduler = _scheduler(strict=True)
    wounded = types.SimpleNamespace(wounded_by=3, wound_kind="W-W")
    exc = scheduler._abort_exception(_thread(wounded), "status word changed")
    assert (exc.by, exc.conflict) == (3, "W-W")


def test_descriptorless_threads_are_exempt_from_strict_attribution():
    # STM backends raise their own aborts; the OS path has nothing to
    # attribute, so strict mode must not fire on a None descriptor.
    scheduler = _scheduler(strict=True)
    exc = scheduler._abort_exception(_thread(None), "status word changed")
    assert isinstance(exc, TransactionAborted)
    assert (exc.by, exc.conflict) == (-1, "")
