"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    IllegalOperation,
    OverflowTableError,
    ProtocolError,
    ReproError,
    SchedulerError,
    TransactionAborted,
    TransactionError,
    WatchpointError,
)


def test_everything_derives_from_repro_error():
    for error_type in (
        ConfigurationError,
        ProtocolError,
        TransactionError,
        TransactionAborted,
        IllegalOperation,
        OverflowTableError,
        SchedulerError,
        WatchpointError,
    ):
        assert issubclass(error_type, ReproError)


def test_transaction_aborted_carries_context():
    error = TransactionAborted("wounded", by=3)
    assert error.reason == "wounded"
    assert error.by == 3
    assert issubclass(TransactionAborted, TransactionError)


def test_transaction_aborted_defaults():
    error = TransactionAborted()
    assert error.by is None
    assert error.reason == "aborted"


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise TransactionAborted("x")
