"""The forward-progress guarantee, empirically: no cell ever wedges.

Runs the ladder-armed fault matrix — every TM backend under every
chaos profile — and asserts the acceptance criteria of the resilience
layer: no wedged / crashed / silently-corrupted cells, full commit
counts wherever the run wasn't cut short by a *diagnosed* fault, and a
bounded worst-case abort streak (the FIFO token turns unbounded retry
into bounded wait).
"""

import pytest

from repro.harness.chaos import FAULT_PROFILES
from repro.harness.degrade import FAILING, HARNESS_SPEC, run_degrade_matrix
from repro.harness.runner import SYSTEMS

THREADS = 4
TXNS = 4


@pytest.fixture(scope="module")
def matrix():
    return run_degrade_matrix(
        sorted(SYSTEMS), sorted(FAULT_PROFILES), seed=1,
        threads=THREADS, txns=TXNS,
    )


def test_no_cell_fails(matrix):
    assert len(matrix) == len(SYSTEMS) * len(FAULT_PROFILES)
    failures = [
        (cell.backend, cell.profile, cell.classification, cell.detail)
        for cell in matrix
        if cell.classification in FAILING
    ]
    assert not failures


def test_every_undiagnosed_cell_commits_everything(matrix):
    for cell in matrix:
        if cell.classification == "diagnosed":
            continue            # the checker stopped the run on purpose
        assert cell.commits == THREADS * TXNS, (cell.backend, cell.profile)


def test_abort_streaks_stay_bounded(matrix):
    # Once a streak reaches irrevocable_after the thread serializes and
    # commits; streaks far past that bound mean the token failed.
    bound = HARNESS_SPEC.irrevocable_after + 5
    for cell in matrix:
        peak = cell.escalations.get("peak_abort_streak", 0)
        assert peak <= bound, (cell.backend, cell.profile, peak)


def test_ladder_actually_fired_somewhere(matrix):
    # The matrix must exercise the machinery it certifies: at least one
    # cell recovered through the ladder (all-clean would mean the fault
    # profiles no longer bite and the guarantee is vacuous).
    assert any(cell.classification == "recovered" for cell in matrix)
    assert any(
        cell.escalations.get("irrevocable_grants", 0) > 0 for cell in matrix
    )


def test_matrix_is_deterministic():
    once = run_degrade_matrix(["FlexTM"], ["storm"], seed=1, threads=2, txns=3)
    twice = run_degrade_matrix(["FlexTM"], ["storm"], seed=1, threads=2, txns=3)
    assert once == twice
