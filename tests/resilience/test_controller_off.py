"""The controller-off determinism contract.

Two properties, for every TM backend:

* no controller -> bit-identical replays (the baseline the resilience
  layer must not move);
* a controller whose thresholds can never trip changes nothing but its
  own ``resilience.*`` sensor histograms and the (all-zero) escalation
  counters on the result — the hook sites are free until the ladder
  actually fires.

And one more: an *armed* controller is itself deterministic — same
spec, same seed, same run, bit for bit.
"""

import pytest

from repro.chaos import ChaosSpec
from repro.harness.runner import SYSTEMS, ExperimentConfig, run_experiment
from repro.params import small_test_params
from repro.resilience import DegradeSpec

#: Thresholds no finite run reaches: the controller observes, never acts.
INERT = DegradeSpec(
    boost_after=10**9, eager_after=10**9, irrevocable_after=10**9,
    sig_sustain=10**9,
)

#: A ladder tight enough to fire on any contended run.
TIGHT = DegradeSpec(boost_after=1, eager_after=2, irrevocable_after=3)


def _config(system, degrade=None, chaos=None):
    return ExperimentConfig(
        workload="HashTable",
        system=system,
        threads=2,
        cycle_limit=40_000,
        seed=9,
        params=small_test_params(4),
        degrade=degrade,
        chaos=chaos,
    )


def _observable(result):
    """Everything the controller must not perturb when inert."""
    stats = {
        key: value
        for key, value in result.stats.items()
        if not key.startswith("resilience.")
    }
    return (
        result.cycles, result.commits, result.aborts, result.per_thread,
        result.aborts_by_kind, stats,
    )


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_no_controller_is_deterministic(system):
    assert run_experiment(_config(system)) == run_experiment(_config(system))


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_inert_controller_changes_nothing(system):
    bare = run_experiment(_config(system))
    armed = run_experiment(_config(system, degrade=INERT))
    assert _observable(armed) == _observable(bare)
    # The inert ladder reports itself honestly: zero escalations.
    assert armed.escalations.get("boosts", 0) == 0
    assert armed.escalations.get("policy_flips", 0) == 0
    assert armed.escalations.get("irrevocable_grants", 0) == 0
    assert armed.escalations.get("sig_rotations", 0) == 0
    # Sensors did run (sampling is the only observable difference).
    assert any(key.startswith("resilience.") for key in armed.stats)
    assert not any(key.startswith("resilience.") for key in bare.stats)


def test_armed_controller_is_deterministic():
    chaos = ChaosSpec(seed=11, sched_preempt=0.002, sig_false_positive=0.05)
    first = run_experiment(_config("FlexTM", degrade=TIGHT, chaos=chaos))
    second = run_experiment(_config("FlexTM", degrade=TIGHT, chaos=chaos))
    assert first == second
    assert first.escalations == second.escalations
