"""FallbackPolicy ladder math: paths, backoff, fastfail, telemetry."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.fallback import (
    HTM_PATH,
    IRREVOCABLE_PATH,
    PATHS,
    SW_PATH,
    FallbackPolicy,
    FallbackSpec,
)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = FallbackSpec()
        assert spec.htm_retries == 3
        assert spec.sw_retries == 4

    @pytest.mark.parametrize(
        "field",
        ["htm_retries", "sw_retries", "backoff_base", "backoff_growth",
         "backoff_cap", "lock_poll_cycles"],
    )
    def test_every_knob_must_be_positive(self, field):
        with pytest.raises(ConfigurationError, match=field):
            FallbackSpec(**{field: 0})

    def test_cap_must_dominate_base(self):
        with pytest.raises(ConfigurationError, match="backoff_cap"):
            FallbackSpec(backoff_base=64, backoff_cap=32)


class TestLadder:
    def test_path_sequence_follows_streak(self):
        policy = FallbackPolicy(FallbackSpec(htm_retries=2, sw_retries=3))
        expected = [HTM_PATH] * 2 + [SW_PATH] * 3 + [IRREVOCABLE_PATH] * 2
        observed = []
        for _ in expected:
            observed.append(policy.path_for(7))
            policy.note_abort(7, "htm-conflict")
        assert observed == expected
        assert PATHS == (HTM_PATH, SW_PATH, IRREVOCABLE_PATH)

    def test_capacity_fastfail_skips_remaining_htm_budget(self):
        policy = FallbackPolicy(FallbackSpec(htm_retries=3, sw_retries=2))
        assert policy.path_for(0) == HTM_PATH
        policy.note_abort(0, "capacity")
        assert policy.streak(0) == 3  # jumped, not incremented
        assert policy.path_for(0) == SW_PATH
        assert policy.escalation_counters()["fallback_capacity_fastfails"] == 1
        # Once past the HTM budget, capacity aborts advance normally.
        policy.note_abort(0, "capacity")
        assert policy.streak(0) == 4

    def test_commit_resets_the_streak(self):
        policy = FallbackPolicy(FallbackSpec(htm_retries=1, sw_retries=1))
        policy.note_abort(3, "htm-conflict")
        assert policy.path_for(3) == SW_PATH
        policy.note_commit(3, SW_PATH)
        assert policy.streak(3) == 0
        assert policy.path_for(3) == HTM_PATH

    def test_irrevocable_commit_releases_the_token(self):
        policy = FallbackPolicy()
        policy.token.enqueue(5)
        assert policy.token.try_grant(5)
        policy.serial_active = True
        policy.note_commit(5, IRREVOCABLE_PATH)
        assert not policy.serial_active
        assert not policy.token.busy
        assert policy.escalation_counters()["fallback_commits_irrevocable"] == 1

    def test_streaks_are_per_thread(self):
        policy = FallbackPolicy(FallbackSpec(htm_retries=1, sw_retries=1))
        policy.note_abort(0, "htm-conflict")
        assert policy.path_for(0) == SW_PATH
        assert policy.path_for(1) == HTM_PATH


class TestBackoff:
    def test_bounded_exponential_sequence(self):
        policy = FallbackPolicy()
        assert [policy.backoff(n) for n in range(9)] == [
            0, 32, 64, 128, 256, 512, 1024, 2048, 2048,
        ]

    def test_negative_streak_is_zero(self):
        assert FallbackPolicy().backoff(-3) == 0


class TestTelemetry:
    def test_zero_counters_are_filtered(self):
        assert FallbackPolicy().escalation_counters() == {}

    def test_all_keys_are_prefixed(self):
        policy = FallbackPolicy()
        policy.note_abort(0, "htm-conflict")
        policy.note_grant()
        policy.note_doom()
        policy.note_commit(0, HTM_PATH)
        counters = policy.escalation_counters()
        assert counters  # something fired
        assert all(key.startswith("fallback_") for key in counters)

    def test_peak_streak_tracks_high_water_mark(self):
        policy = FallbackPolicy()
        for _ in range(5):
            policy.note_abort(0, "htm-conflict")
        policy.note_commit(0, SW_PATH)
        policy.note_abort(0, "htm-conflict")
        assert policy.escalation_counters()["fallback_peak_streak"] == 5

    def test_unbound_policy_reports_no_attempts(self):
        policy = FallbackPolicy()
        assert policy.active_attempts() == []
        assert policy.token_holders() == []
