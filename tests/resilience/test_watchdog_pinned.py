"""The watchdog never wounds the serial-irrevocable token holder.

The degradation ladder's forward-progress argument leans on the holder
being unkillable: its TSW deflects abort CASes.  If the livelock
watchdog *selected* it anyway, the escalation would burn on a victim
that cannot die — and keep re-selecting it while the real wounders run
free.  These tests lock the victim filter: a deflected descriptor is
never chosen, even when it is the most prolific wounder, and the
escalation falls through to the best killable candidate instead.
"""

import types

from repro.chaos import LivelockWatchdog, WatchdogSpec
from repro.core.descriptor import TransactionDescriptor
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.params import small_test_params
from repro.runtime.contention import ConflictManager


class _PinnedResilience:
    """The slice of the degradation controller the machine consults."""

    def __init__(self, protected_tsw):
        self.protected_tsw = protected_tsw
        self.deflected = 0

    def attach(self, machine):
        pass

    def deflects(self, tsw_address):
        return tsw_address == self.protected_tsw

    def note_deflected(self):
        self.deflected += 1


class _Thread:
    def __init__(self):
        self.commits = 0


class _Scheduler:
    def __init__(self, machine, nthreads=2):
        self.machine = machine
        self.slots = [
            types.SimpleNamespace(thread=_Thread()) for _ in range(nthreads)
        ]


def _watchdog(machine):
    spec = WatchdogSpec(window_cycles=1_000, force_abort_after=0)
    watchdog = LivelockWatchdog(spec)
    backend = types.SimpleNamespace(manager=ConflictManager(), machine=machine)
    watchdog.attach(machine, backend)
    return watchdog


def _active_descriptor(machine, thread_id, wounds=0):
    tsw = machine.allocate_words(1)
    machine.memory.write(tsw, TxStatus.ACTIVE)
    descriptor = TransactionDescriptor(thread_id=thread_id, tsw_address=tsw)
    descriptor.wounds_inflicted = wounds
    machine.register_descriptor(descriptor)
    return descriptor


def _escalate_to_forced_abort(machine, watchdog):
    scheduler = _Scheduler(machine)
    watchdog.observe(scheduler)  # primes the commit baseline
    machine.processors[0].clock.advance(1_000)
    watchdog.observe(scheduler)  # zero patience: straight to forced abort


def test_watchdog_skips_the_irrevocability_holder():
    machine = FlexTMMachine(small_test_params(4))
    # The holder is the *most* prolific wounder — exactly the profile
    # the watchdog's victim policy would otherwise select.
    holder = _active_descriptor(machine, thread_id=0, wounds=9)
    bystander = _active_descriptor(machine, thread_id=1, wounds=2)
    machine.set_resilience(_PinnedResilience(holder.tsw_address))
    watchdog = _watchdog(machine)
    _escalate_to_forced_abort(machine, watchdog)
    assert machine.read_status(holder) is TxStatus.ACTIVE
    assert machine.read_status(bystander) is TxStatus.ABORTED
    assert bystander.wound_kind == "watchdog"
    assert watchdog.forced_aborts == 1
    # The holder was filtered up front, not CASed-and-deflected: the
    # deflection counter never moved.
    assert machine.resilience.deflected == 0


def test_watchdog_holds_fire_when_only_the_holder_is_active():
    machine = FlexTMMachine(small_test_params(4))
    holder = _active_descriptor(machine, thread_id=0, wounds=5)
    machine.set_resilience(_PinnedResilience(holder.tsw_address))
    watchdog = _watchdog(machine)
    _escalate_to_forced_abort(machine, watchdog)
    # No killable candidate: the escalation is a no-op, not a wound on
    # (or a burned attempt against) the unkillable holder.
    assert machine.read_status(holder) is TxStatus.ACTIVE
    assert watchdog.forced_aborts == 0
    assert machine.resilience.deflected == 0


def test_watchdog_victim_policy_is_unchanged_without_a_controller():
    machine = FlexTMMachine(small_test_params(4))
    top = _active_descriptor(machine, thread_id=0, wounds=9)
    other = _active_descriptor(machine, thread_id=1, wounds=2)
    watchdog = _watchdog(machine)
    _escalate_to_forced_abort(machine, watchdog)
    assert machine.read_status(top) is TxStatus.ABORTED
    assert machine.read_status(other) is TxStatus.ACTIVE
