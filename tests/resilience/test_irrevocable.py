"""Irrevocability: token FIFO semantics and the serial-mode protocol.

The unit half locks the :class:`IrrevocabilityToken`'s bounded-wait
FIFO (the starvation-freedom argument's core).  The integration half
runs a contended FlexTM workload with a tight ladder and asserts the
whole protocol fired — grants, peer drains with ``irrevocable`` abort
attribution, tracer events, counters on the RunResult — under an armed
:class:`InvariantChecker` whose ``irrevocable-mutex`` rule sweeps the
run (at most one holder, no ACTIVE peers while serial).
"""

from repro.chaos import ChaosSpec
from repro.core.descriptor import ConflictMode
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.obs.tracer import EventTracer
from repro.params import small_test_params
from repro.resilience import DegradeSpec, IrrevocabilityToken

# -- unit: FIFO token ---------------------------------------------------------


def test_token_grants_in_fifo_order():
    token = IrrevocabilityToken()
    for tid in (3, 1, 2):
        token.enqueue(tid)
    assert token.waiting() == [3, 1, 2]
    assert not token.try_grant(1)       # not at the head
    assert not token.try_grant(2)
    assert token.try_grant(3)           # head of the queue
    assert token.holders() == [3]
    assert not token.try_grant(1)       # held: nobody else gets in
    token.release(3)
    assert token.try_grant(1)
    token.release(1)
    assert token.try_grant(2)
    token.release(2)
    assert token.holders() == []
    assert token.waiting() == []
    assert token.grants == 3
    assert token.releases == 3


def test_token_enqueue_is_idempotent():
    token = IrrevocabilityToken()
    token.enqueue(5)
    token.enqueue(5)
    token.enqueue(5)
    assert token.waiting() == [5]
    assert token.try_grant(5)
    token.release(5)
    assert not token.busy


def test_token_busy_while_held_or_queued():
    token = IrrevocabilityToken()
    assert not token.busy
    token.enqueue(1)
    assert token.busy                   # queued counts: new arrivals must wait
    assert token.try_grant(1)
    assert token.busy
    token.release(1)
    assert not token.busy


def test_token_release_by_non_holder_is_a_no_op():
    token = IrrevocabilityToken()
    token.enqueue(1)
    assert token.try_grant(1)
    token.release(2)
    assert token.holders() == [1]
    assert token.releases == 0


def test_token_regrant_to_current_holder():
    token = IrrevocabilityToken()
    token.enqueue(1)
    assert token.try_grant(1)
    assert token.try_grant(1)           # holder re-asking is satisfied
    assert token.grants == 1            # ...without a second grant


# -- integration: the full serial-mode protocol -------------------------------


def _contended_run():
    tracer = EventTracer(trace_coherence=False)
    config = ExperimentConfig(
        workload="HashTable",
        system="FlexTM",
        threads=4,
        cycle_limit=60_000,
        seed=9,
        params=small_test_params(4),
        mode=ConflictMode.LAZY,
        chaos=ChaosSpec(seed=11, sched_preempt=0.002, sig_false_positive=0.05),
        invariants=True,
        degrade=DegradeSpec(boost_after=1, eager_after=1, irrevocable_after=2),
        tracer=tracer,
    )
    return run_experiment(config), tracer


def test_serial_mode_fires_and_survives_the_invariant_checker():
    # invariants=True arms the irrevocable-mutex sweep: completing at
    # all proves <=1 holder and no ACTIVE peers while serial.
    result, tracer = _contended_run()
    assert result.commits > 0
    assert result.escalations["irrevocable_grants"] >= 1
    assert result.escalations["irrevocable_drains"] >= 1
    assert result.escalations["commits_irrevocable"] >= 1
    # Drained peers carry exact cause attribution.
    assert result.aborts_by_kind.get("irrevocable", 0) >= 1
    # The ladder's path to serial mode is visible in the trace.
    assert len(tracer.by_kind("degrade_escalate")) >= 1
    assert len(tracer.by_kind("degrade_irrevocable_grant")) >= 1
    assert len(tracer.by_kind("degrade_irrevocable_drain")) >= 1
    assert len(tracer.by_kind("degrade_irrevocable_release")) >= 1
    assert len(tracer.by_kind("degrade_recover")) >= 1


def test_lazy_transactions_flip_to_eager_under_pressure():
    result, tracer = _contended_run()
    assert result.escalations["policy_flips"] >= 1
    assert result.escalations["commits_eager"] >= 1
    assert len(tracer.by_kind("degrade_policy_flip")) >= 1


def test_escalation_counters_round_trip_the_run_result():
    result, _ = _contended_run()
    # Every rung's commit bucket is present (even when zero) so report
    # consumers can rely on the schema.
    for rung in ("healthy", "boosted", "eager", "irrevocable"):
        assert f"commits_{rung}" in result.escalations
    assert sum(
        result.escalations[f"commits_{rung}"]
        for rung in ("healthy", "boosted", "eager", "irrevocable")
    ) == result.commits
    assert result.escalations["peak_abort_streak"] >= 2


def test_hash_rotation_fires_on_sustained_pressure():
    # Force "hot" readings on every sample: threshold 0 makes any fill
    # hot, sustain 1 rotates immediately, capped at two rotations.
    config = ExperimentConfig(
        workload="HashTable",
        system="FlexTM",
        threads=2,
        cycle_limit=40_000,
        seed=9,
        params=small_test_params(4),
        invariants=True,
        degrade=DegradeSpec(
            sample_interval=1, sig_fill_threshold=0.0, sig_sustain=1,
            max_rotations=2,
        ),
    )
    result = run_experiment(config)
    assert result.escalations["sig_rotations"] == 2
    assert result.commits > 0
