"""Pressure sensors and the signature plumbing they rely on."""

import pytest

from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.resilience import PressureSample, record_samples, sample_machine
from repro.signatures.bloom import Signature
from repro.signatures.hashing import make_hash_family
from repro.sim.stats import StatsRegistry
from tests.helpers import begin_hardware_transaction

# -- signature sensor surface -------------------------------------------------


def test_bank_fills_and_fp_estimate_empty():
    sig = Signature(256, 4)
    assert sig.bank_fills() == [0.0, 0.0, 0.0, 0.0]
    assert sig.false_positive_estimate() == 0.0


def test_fp_estimate_grows_with_inserts():
    sig = Signature(256, 4)
    sig.insert(0x40)
    one = sig.false_positive_estimate()
    sig.insert_all(range(0x80, 0x80 + 64))
    many = sig.false_positive_estimate()
    assert 0.0 < one < many <= 1.0
    assert all(0.0 < fill <= 1.0 for fill in sig.bank_fills())


def test_rebind_family_requires_empty_register():
    sig = Signature(256, 4)
    rotated = make_hash_family(256, 4, seed=0xBEEF)
    sig.insert(0x40)
    with pytest.raises(ValueError):
        sig.rebind_family(rotated)
    sig.clear()
    sig.rebind_family(rotated)
    assert sig.family is rotated
    sig.insert(0x40)
    assert sig.member(0x40)


def test_cross_family_union_degrades_conservatively():
    # Rotation soundness: bits inserted under another family can never
    # produce a false negative — probes and intersections go fully
    # conservative instead.
    ours = Signature(256, 4)
    theirs = Signature(256, 4, family=make_hash_family(256, 4, seed=0xBEEF))
    theirs.insert(0x1000)
    ours.union(theirs)
    assert ours.member(0x1000)          # conservative: everything is a member
    assert ours.member(0xDEAD)
    probe = Signature(256, 4)
    probe.insert(0x9999)
    assert ours.intersects(probe)       # non-empty vs foreign: intersects
    ours.clear()                        # flash-clear resets foreignness
    ours.insert(0x40)
    assert ours.member(0x40)
    assert not ours.member(0xDEAD)      # exact probes are back


def test_cross_family_intersect_is_conservative_both_ways():
    a = Signature(256, 4)
    b = Signature(256, 4, family=make_hash_family(256, 4, seed=0xBEEF))
    a.insert(0x40)
    b.insert(0x5000)
    assert a.intersects(b)
    assert b.intersects(a)
    empty = Signature(256, 4, family=make_hash_family(256, 4, seed=0xBEEF))
    assert not a.intersects(empty)      # empty never intersects


# -- machine sampling ---------------------------------------------------------


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def test_sample_machine_reads_signature_fill(m):
    begin_hardware_transaction(m, 0)
    base = m.allocate(4 * m.params.line_bytes, line_aligned=True)
    m.tload(0, base)
    m.tstore(0, base + m.params.line_bytes, 7)
    samples = sample_machine(m)
    assert len(samples) == len(m.processors)
    busy = samples[0]
    assert busy.proc == 0
    assert busy.sig_fill > 0.0
    assert busy.sig_fp > 0.0
    assert busy.ot_occupancy == 0       # nothing spilled
    idle = samples[1]
    assert idle.sig_fill == 0.0
    assert idle.sig_fp == 0.0


def test_samples_are_observational(m):
    begin_hardware_transaction(m, 0)
    m.tstore(0, m.allocate(64, line_aligned=True), 1)
    clocks = [proc.clock.now for proc in m.processors]
    stats_before = m.stats.snapshot()
    sample_machine(m)
    assert [proc.clock.now for proc in m.processors] == clocks
    assert m.stats.snapshot() == stats_before


def test_record_samples_lands_in_histograms():
    stats = StatsRegistry()
    samples = [
        PressureSample(proc=0, sig_fill=0.5, sig_fp=0.25, ot_occupancy=3,
                       ot_failed_walks=1),
        PressureSample(proc=1, sig_fill=0.0, sig_fp=0.0, ot_occupancy=0,
                       ot_failed_walks=0),
    ]
    record_samples(stats, samples)
    assert stats.histogram("resilience.sig_fill_pct").maximum == 50
    assert stats.histogram("resilience.sig_fp_pct").maximum == 25
    assert stats.histogram("resilience.ot_occupancy").maximum == 3
    assert stats.histogram("resilience.sig_fill_pct").count == 2


def test_hot_thresholds():
    sample = PressureSample(proc=0, sig_fill=0.60, sig_fp=0.10,
                            ot_occupancy=0, ot_failed_walks=0)
    assert sample.hot(fill_threshold=0.55, fp_threshold=0.30)    # fill trips
    assert sample.hot(fill_threshold=0.90, fp_threshold=0.05)    # fp trips
    assert not sample.hot(fill_threshold=0.90, fp_threshold=0.30)
