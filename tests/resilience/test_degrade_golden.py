"""Golden tables for the degradation ladder's decision functions.

Like tests/runtime/test_contention_golden.py, these lock *decisions*,
not just types: the streak->rung mapping, the rotation predicate, and
the per-generation hash-family seeds are part of the determinism
contract (armed runs replay bit-identically), so any change here must
be deliberate and visible.
"""

from repro.resilience import DegradeSpec, Rung, family_seed, rung_for, should_rotate
from repro.signatures.bloom import Signature
from repro.signatures.hashing import make_hash_family

DEFAULT = DegradeSpec()

#: streak -> rung under the library-default thresholds (2 / 4 / 6).
RUNG_GOLDEN = [
    (0, Rung.HEALTHY),
    (1, Rung.HEALTHY),
    (2, Rung.BOOSTED),
    (3, Rung.BOOSTED),
    (4, Rung.EAGER),
    (5, Rung.EAGER),
    (6, Rung.IRREVOCABLE),
    (7, Rung.IRREVOCABLE),
    (100, Rung.IRREVOCABLE),
]

#: streak -> rung under the harness ladder (1 / 2 / 3).
HARNESS_RUNG_GOLDEN = [
    (0, Rung.HEALTHY),
    (1, Rung.BOOSTED),
    (2, Rung.EAGER),
    (3, Rung.IRREVOCABLE),
    (4, Rung.IRREVOCABLE),
]

#: (hot_streak, rotations) -> rotate? under the default spec
#: (sig_sustain=3, max_rotations=4).
ROTATE_GOLDEN = [
    ((0, 0), False),
    ((1, 0), False),
    ((2, 0), False),
    ((3, 0), True),
    ((4, 0), True),
    ((3, 3), True),
    ((3, 4), False),
    ((10, 4), False),
    ((10, 3), True),
]


def test_rung_golden_table():
    for streak, rung in RUNG_GOLDEN:
        assert rung_for(DEFAULT, streak) is rung, streak


def test_harness_rung_golden_table():
    from repro.harness.degrade import HARNESS_SPEC

    for streak, rung in HARNESS_RUNG_GOLDEN:
        assert rung_for(HARNESS_SPEC, streak) is rung, streak


def test_rung_is_monotonic_in_streak():
    rungs = [rung_for(DEFAULT, streak) for streak in range(20)]
    assert rungs == sorted(rungs)
    assert rungs[0] is Rung.HEALTHY
    assert rungs[-1] is Rung.IRREVOCABLE


def test_rotation_golden_table():
    for (hot_streak, rotations), expected in ROTATE_GOLDEN:
        assert should_rotate(DEFAULT, hot_streak, rotations) is expected, (
            hot_streak, rotations,
        )


def test_default_spec_pinned():
    # Threshold changes must be deliberate: they shift every armed run.
    assert (DEFAULT.boost_after, DEFAULT.eager_after, DEFAULT.irrevocable_after) == (2, 4, 6)
    assert (DEFAULT.boost_growth, DEFAULT.max_boost) == (2, 8)
    assert DEFAULT.sample_interval == 64
    assert (DEFAULT.sig_fill_threshold, DEFAULT.sig_fp_threshold) == (0.55, 0.30)
    assert (DEFAULT.sig_sustain, DEFAULT.max_rotations) == (3, 4)
    assert DEFAULT.token_poll_cycles == 40


def test_family_seed_generation_zero_is_the_default_family():
    # An installed-but-idle controller must never change a probe:
    # generation 0 resolves to the exact family every Signature wires
    # up by default (make_hash_family is cached, so identity holds).
    assert family_seed(0) == 0xF1E7
    default_family = Signature(256, 4).family
    assert make_hash_family(256, 4, seed=family_seed(0)) is default_family


def test_family_seeds_are_distinct_per_generation():
    seeds = [family_seed(generation) for generation in range(6)]
    assert len(set(seeds)) == len(seeds)
    # And deterministic (pure function).
    assert seeds == [family_seed(generation) for generation in range(6)]
