"""CLI surface of ``harness degrade`` plus the new ``harness chaos``
filters and report fields."""

import json

import pytest

from repro.harness.chaos import run_chaos_command
from repro.harness.degrade import run_degrade_command


def test_degrade_cli_smoke_and_report_schema(tmp_path, capsys):
    report = tmp_path / "degrade.json"
    status = run_degrade_command([
        "--backend", "FlexTM", "--profile", "sched", "--threads", "2",
        "--txns", "3", "--quiet", "--report", str(report),
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "FlexTM" in out and "sched" in out
    document = json.loads(report.read_text())
    assert document["ok"] is True
    assert document["backends"] == ["FlexTM"]
    assert document["profiles"] == ["sched"]
    assert document["mode"] == "lazy"
    assert document["spec"]["irrevocable_after"] == 3
    (cell,) = document["cells"]
    assert cell["backend"] == "FlexTM"
    assert cell["classification"] not in ("crash", "wedged", "silent-corruption")
    assert set(cell["commits_by_rung"]) == {
        "healthy", "boosted", "eager", "irrevocable",
    }
    assert set(cell["recovery"]) == {"count", "mean", "max"}
    assert "escalations" in cell


def test_degrade_cli_is_deterministic(tmp_path, capsys):
    reports = []
    for name in ("a.json", "b.json"):
        path = tmp_path / name
        assert run_degrade_command([
            "--backend", "FlexTM", "--profile", "storm", "--threads", "2",
            "--txns", "3", "--quiet", "--report", str(path),
        ]) == 0
        reports.append(json.loads(path.read_text()))
    capsys.readouterr()
    assert reports[0] == reports[1]


def test_degrade_cli_rejects_unknown_names():
    with pytest.raises(SystemExit):
        run_degrade_command(["--backend", "NoSuchTM", "--quiet"])
    with pytest.raises(SystemExit):
        run_degrade_command(["--profile", "earthquake", "--quiet"])


def test_degrade_cli_eager_mode(tmp_path, capsys):
    report = tmp_path / "eager.json"
    assert run_degrade_command([
        "--backend", "FlexTM", "--profile", "sched", "--threads", "2",
        "--txns", "3", "--mode", "eager", "--quiet", "--report", str(report),
    ]) == 0
    capsys.readouterr()
    document = json.loads(report.read_text())
    assert document["mode"] == "eager"
    # Already-eager transactions have nothing to flip to.
    assert document["cells"][0]["escalations"].get("policy_flips", 0) == 0


def test_chaos_cli_single_cell_filters(tmp_path, capsys):
    report = tmp_path / "chaos.json"
    status = run_chaos_command([
        "--backend", "flextm", "--profile", "sched", "--seed", "2",
        "--threads", "2", "--txns", "3", "--quiet", "--report", str(report),
    ])
    assert status == 0
    capsys.readouterr()
    document = json.loads(report.read_text())
    # Case-insensitive canonicalization, one backend x one profile.
    assert document["backends"] == ["FlexTM"]
    assert document["profiles"] == ["sched"]
    (cell,) = document["cells"]
    # Satellite: the chaos report now carries escalation counters.
    assert "escalations" in cell


def test_chaos_cli_filters_reject_unknown_names():
    with pytest.raises(SystemExit):
        run_chaos_command(["--backend", "NoSuchTM", "--quiet"])
    with pytest.raises(SystemExit):
        run_chaos_command(["--profile", "earthquake", "--quiet"])
