"""The ``repro.harness metrics`` CLI and per-point ``--metrics-out``."""

import json

from repro.harness.metrics import (
    METRICS_SCHEMA,
    compare_artifacts,
    run_metrics_command,
    validate_metrics_artifact,
)
from repro.harness.sweep import SweepSpec, run_sweep


def _run(tmp_path, seed, stem):
    json_path = tmp_path / f"{stem}.json"
    html_path = tmp_path / f"{stem}.html"
    code = run_metrics_command([
        "HashTable", "FlexTM", "--threads", "2", "--cycles", "20000",
        "--seed", str(seed),
        "--json-out", str(json_path), "--html-out", str(html_path),
    ])
    assert code == 0
    return json_path, html_path


def test_metrics_run_writes_valid_artifact_and_dashboard(tmp_path, capsys):
    json_path, html_path = _run(tmp_path, seed=42, stem="a")
    out = capsys.readouterr().out
    assert "commits" in out
    document = json.loads(json_path.read_text())
    assert document["schema"] == METRICS_SCHEMA
    assert validate_metrics_artifact(document) is None
    assert document["totals"]["commits"] > 0
    assert "tx.commits" in document["series"]
    html = html_path.read_text()
    assert html.lstrip().startswith("<!DOCTYPE html>")
    assert "<svg" in html


def test_compare_identical_artifacts_exits_clean(tmp_path, capsys):
    path_a, _ = _run(tmp_path, seed=42, stem="a")
    path_b, _ = _run(tmp_path, seed=42, stem="b")
    assert json.loads(path_a.read_text()) == json.loads(path_b.read_text())
    code = run_metrics_command(["compare", str(path_a), str(path_b)])
    assert code == 0


def test_compare_flags_divergent_windows(tmp_path, capsys):
    path_a, _ = _run(tmp_path, seed=42, stem="a")
    path_b, _ = _run(tmp_path, seed=7, stem="b")
    capsys.readouterr()
    report = tmp_path / "diff.json"
    code = run_metrics_command([
        "compare", str(path_a), str(path_b), "--json-out", str(report),
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "diverg" in out
    document = json.loads(report.read_text())
    assert document["schema"] == "repro.metrics_compare/v1"
    assert document["divergences"]
    kinds = {d["kind"] for d in document["divergences"]}
    assert kinds <= {"totals", "series"}


def test_compare_artifacts_reports_window_starts():
    base = {
        "totals": {"commits": 5, "aborts": 1},
        "series": {"tx.commits": {"points": [[0, 3], [100, 2]]}},
    }
    other = {
        "totals": {"commits": 5, "aborts": 2},
        "series": {"tx.commits": {"points": [[0, 3], [100, 7]]}},
    }
    divergences = compare_artifacts(base, other)
    assert {"kind": "totals", "name": "aborts", "a": 1, "b": 2} in [
        {k: d[k] for k in ("kind", "name", "a", "b")} for d in divergences
    ]
    series = [d for d in divergences if d["kind"] == "series"]
    assert series and series[0]["window_start"] == 100


def test_sweep_metrics_out_writes_one_artifact_per_point(tmp_path):
    out_dir = tmp_path / "metrics"
    spec = SweepSpec(
        workloads=["HashTable"], systems=["CGL", "FlexTM"],
        thread_counts=[2], seeds=[42], cycle_limit=20_000,
    )
    rows = run_sweep(spec, metrics_out=str(out_dir))
    assert len(rows) == 2
    artifacts = sorted(p.name for p in out_dir.iterdir())
    assert artifacts == [
        "sweep_HashTable_CGL_2t_eager_s42.json",
        "sweep_HashTable_FlexTM_2t_eager_s42.json",
    ]
    for name in artifacts:
        document = json.loads((out_dir / name).read_text())
        assert validate_metrics_artifact(document) is None
