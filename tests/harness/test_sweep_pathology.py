"""Opt-in pathology columns on sweep rows (``--pathology``)."""

import csv
import io

from repro.core.descriptor import ConflictMode
from repro.harness.sweep import (
    PATHOLOGY_FIELDS,
    ROW_FIELDS,
    SweepSpec,
    run_sweep,
    to_csv,
)
from repro.params import small_test_params


def _spec():
    return SweepSpec(
        workloads=["RandomGraph"],
        systems=["FlexTM"],
        thread_counts=(2,),
        modes=(ConflictMode.EAGER,),
        seeds=(3,),
        cycle_limit=30_000,
        params=small_test_params(4),
    )


def test_pathology_fields_are_appended_not_inserted():
    # The default schema is locked elsewhere; the pathology columns may
    # only ever extend it.
    assert not set(PATHOLOGY_FIELDS) & set(ROW_FIELDS)


def test_rows_without_flag_stay_on_locked_schema():
    rows = run_sweep(_spec())
    assert set(rows[0]) == set(ROW_FIELDS)


def test_rows_with_flag_carry_indicator_columns():
    rows = run_sweep(_spec(), pathology=True)
    row = rows[0]
    assert set(row) == set(ROW_FIELDS) | set(PATHOLOGY_FIELDS)
    assert row["status"] == "ok"
    assert row["aborts_per_commit"] >= 0.0
    assert row["worst_pathology"] != ""
    for grade_column in ("friendly_fire", "duelling_upgrade", "convoying"):
        assert row[grade_column] != ""


def test_pathology_csv_roundtrip():
    rows = run_sweep(_spec(), pathology=True)
    text = to_csv(rows, ROW_FIELDS + PATHOLOGY_FIELDS)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert list(parsed[0]) == ROW_FIELDS + PATHOLOGY_FIELDS
    # Default rendering is untouched by the extra keys in the row dicts.
    plain = run_sweep(_spec())
    assert to_csv(plain).splitlines()[0] == ",".join(ROW_FIELDS)
