"""Report formatting."""

from repro.harness.report import format_series, format_table


def test_format_table_aligns_columns():
    text = format_table(["Name", "Value"], [["alpha", 1], ["b", 22.5]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "Name" in lines[1] and "Value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "alpha" in lines[3]
    assert "22.50" in lines[4]


def test_format_table_handles_empty_rows():
    text = format_table(["A"], [])
    assert "A" in text


def test_format_series():
    line = format_series("FlexTM", [(1, 1.0), (2, 1.9)])
    assert line.startswith("FlexTM")
    assert "1=1.00" in line and "2=1.90" in line
