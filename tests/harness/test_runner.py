"""Experiment runner plumbing."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.harness.runner import (
    ExperimentConfig,
    SYSTEMS,
    cgl_baseline,
    normalized_throughput,
    run_experiment,
)
from repro.params import small_test_params
from repro.workloads import WORKLOADS


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        run_experiment(ExperimentConfig(workload="Nope", system="FlexTM", threads=1))


def test_unknown_system_rejected():
    with pytest.raises(KeyError):
        run_experiment(ExperimentConfig(workload="HashTable", system="Nope", threads=1))


def test_registry_completeness():
    assert set(SYSTEMS) == {"CGL", "FlexTM", "RTM-F", "RSTM", "TL2", "LogTM-SE"}
    assert set(WORKLOADS) == {
        "HashTable",
        "RBTree",
        "LFUCache",
        "RandomGraph",
        "Delaunay",
        "Vacation-Low",
        "Vacation-High",
        "KMeans",
    }


def test_basic_run_produces_commits():
    result = run_experiment(
        ExperimentConfig(
            workload="HashTable",
            system="FlexTM",
            threads=2,
            cycle_limit=60_000,
            params=small_test_params(4),
        )
    )
    assert result.commits > 0
    assert result.throughput > 0


def test_runs_are_deterministic():
    config = ExperimentConfig(
        workload="RBTree",
        system="FlexTM",
        threads=2,
        mode=ConflictMode.LAZY,
        cycle_limit=50_000,
        params=small_test_params(4),
    )
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.commits == second.commits
    assert first.aborts == second.aborts


def test_background_threads_run_prime():
    result = run_experiment(
        ExperimentConfig(
            workload="LFUCache",
            system="FlexTM",
            threads=2,
            background_threads=2,
            yield_on_abort=True,
            cycle_limit=60_000,
            params=small_test_params(4),
        )
    )
    assert result.nontx_items > 0  # Prime made progress


def test_normalized_throughput():
    baseline = cgl_baseline("HashTable", cycle_limit=60_000, params=small_test_params(4))
    result = run_experiment(
        ExperimentConfig(
            workload="HashTable",
            system="CGL",
            threads=1,
            cycle_limit=60_000,
            params=small_test_params(4),
        )
    )
    assert normalized_throughput(result, baseline) == pytest.approx(1.0, rel=0.05)
