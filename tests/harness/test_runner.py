"""Experiment runner plumbing."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.harness.runner import (
    ExperimentConfig,
    SYSTEMS,
    cgl_baseline,
    normalized_throughput,
    run_experiment,
)
from repro.params import small_test_params
from repro.workloads import WORKLOADS


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        run_experiment(ExperimentConfig(workload="Nope", system="FlexTM", threads=1))


def test_unknown_system_rejected():
    with pytest.raises(KeyError):
        run_experiment(ExperimentConfig(workload="HashTable", system="Nope", threads=1))


def test_registry_completeness():
    assert set(SYSTEMS) == {
        "CGL", "FlexTM", "RTM-F", "RSTM", "TL2", "LogTM-SE", "HTM-BE",
    }
    assert set(WORKLOADS) == {
        "HashTable",
        "RBTree",
        "LFUCache",
        "RandomGraph",
        "Delaunay",
        "Vacation-Low",
        "Vacation-High",
        "KMeans",
    }


def test_basic_run_produces_commits():
    result = run_experiment(
        ExperimentConfig(
            workload="HashTable",
            system="FlexTM",
            threads=2,
            cycle_limit=60_000,
            params=small_test_params(4),
        )
    )
    assert result.commits > 0
    assert result.throughput > 0


def test_runs_are_deterministic():
    config = ExperimentConfig(
        workload="RBTree",
        system="FlexTM",
        threads=2,
        mode=ConflictMode.LAZY,
        cycle_limit=50_000,
        params=small_test_params(4),
    )
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.commits == second.commits
    assert first.aborts == second.aborts


def test_background_threads_run_prime():
    result = run_experiment(
        ExperimentConfig(
            workload="LFUCache",
            system="FlexTM",
            threads=2,
            background_threads=2,
            yield_on_abort=True,
            cycle_limit=60_000,
            params=small_test_params(4),
        )
    )
    assert result.nontx_items > 0  # Prime made progress


def test_normalized_throughput():
    baseline = cgl_baseline("HashTable", cycle_limit=60_000, params=small_test_params(4))
    result = run_experiment(
        ExperimentConfig(
            workload="HashTable",
            system="CGL",
            threads=1,
            cycle_limit=60_000,
            params=small_test_params(4),
        )
    )
    assert normalized_throughput(result, baseline) == pytest.approx(1.0, rel=0.05)


def test_repro_cycles_read_at_resolve_time(monkeypatch):
    from repro.harness import runner

    config = ExperimentConfig(workload="HashTable", system="FlexTM", threads=1)
    monkeypatch.delenv("REPRO_CYCLES", raising=False)
    assert config.resolved_cycle_limit() == runner.DEFAULT_CYCLE_LIMIT
    # A post-import environment change takes effect immediately — the
    # old code froze the value at import time.
    monkeypatch.setenv("REPRO_CYCLES", "123456")
    assert config.resolved_cycle_limit() == 123456
    monkeypatch.delenv("REPRO_CYCLES")
    assert config.resolved_cycle_limit() == runner.DEFAULT_CYCLE_LIMIT


def test_repro_cycles_rejects_garbage(monkeypatch):
    config = ExperimentConfig(workload="HashTable", system="FlexTM", threads=1)
    monkeypatch.setenv("REPRO_CYCLES", "not-a-number")
    with pytest.raises(ValueError):
        config.resolved_cycle_limit()


def test_explicit_cycle_limit_beats_environment(monkeypatch):
    monkeypatch.setenv("REPRO_CYCLES", "123456")
    config = ExperimentConfig(
        workload="HashTable", system="FlexTM", threads=1, cycle_limit=777
    )
    assert config.resolved_cycle_limit() == 777
