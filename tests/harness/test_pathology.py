"""Pathology analysis over run results."""

from repro.core.descriptor import ConflictMode
from repro.harness.pathology import analyze, render
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.params import small_test_params
from repro.runtime.scheduler import RunResult


def _fake_result(commits, aborts, stats):
    return RunResult(
        cycles=100_000,
        commits=commits,
        aborts=aborts,
        nontx_items=0,
        per_thread=[],
        stats=stats,
        conflict_degrees=[],
    )


def test_healthy_run_reports_none():
    report = analyze(_fake_result(1000, 20, {}))
    assert report.friendly_fire_risk == "low"
    assert report.worst() == "none"


def test_friendly_fire_detected():
    report = analyze(_fake_result(100, 500, {}))
    assert report.friendly_fire_risk == "high"
    assert report.worst() == "FriendlyFire"


def test_duelling_upgrade_detected():
    stats = {"cst.threatened_responses": 10, "cst.exposed_read_responses": 40}
    report = analyze(_fake_result(1000, 10, stats))
    assert report.duelling_upgrade_risk == "high"
    assert report.worst() == "DuellingUpgrade"


def test_convoying_detected():
    report = analyze(_fake_result(100, 5, {"summary.traps": 500}))
    assert report.convoying_risk == "high"
    assert report.worst() == "Convoying"


def test_render_is_complete():
    text = render(analyze(_fake_result(100, 500, {})))
    assert "FriendlyFire" in text and "worst=" in text


def test_real_run_classification():
    """Eager RandomGraph must look pathological; HashTable healthy."""
    graph = run_experiment(
        ExperimentConfig(
            workload="RandomGraph",
            system="FlexTM",
            threads=4,
            mode=ConflictMode.EAGER,
            cycle_limit=80_000,
            params=small_test_params(4),
        )
    )
    table = run_experiment(
        ExperimentConfig(
            workload="HashTable",
            system="FlexTM",
            threads=4,
            mode=ConflictMode.EAGER,
            cycle_limit=80_000,
            params=small_test_params(4),
        )
    )
    graph_report = analyze(graph)
    table_report = analyze(table)
    assert graph_report.aborts_per_commit > table_report.aborts_per_commit
    assert table_report.friendly_fire_risk == "low"
