"""The `python -m repro.harness` command-line interface."""

import pytest

from repro.harness.__main__ import main


def test_table2_cli(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Merom" in out and "Niagara-2" in out


def test_table4_cli(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "BC-BO" in out and "Discover" in out


def test_figure4_cli_with_small_budget(capsys):
    assert main(["figure4", "--cycles", "20000", "--threads", "1,2"]) == 0
    out = capsys.readouterr().out
    assert "HashTable" in out and "Vacation-High" in out


def test_bad_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["figure9"])


def test_thread_list_parsing():
    from repro.harness.__main__ import _thread_list

    assert _thread_list("1,4,16") == (1, 4, 16)
