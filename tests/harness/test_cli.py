"""The `python -m repro.harness` command-line interface."""

import pytest

from repro.harness.__main__ import main


def test_table2_cli(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Merom" in out and "Niagara-2" in out


def test_table4_cli(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "BC-BO" in out and "Discover" in out


def test_figure4_cli_with_small_budget(capsys):
    assert main(["figure4", "--cycles", "20000", "--threads", "1,2"]) == 0
    out = capsys.readouterr().out
    assert "HashTable" in out and "Vacation-High" in out


def test_bad_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["figure9"])


def test_thread_list_parsing():
    from repro.harness.__main__ import _thread_list

    assert _thread_list("1,4,16") == (1, 4, 16)


def test_sweep_cli_parallel_csv_and_bench(tmp_path, capsys):
    import json

    from repro.harness.sweep import ROW_FIELDS
    from repro.harness.parallel import validate_bench_payload

    csv_path = tmp_path / "sweep.csv"
    bench_path = tmp_path / "BENCH_sweep.json"
    code = main(
        [
            "sweep",
            "--workloads", "hashtable",
            "--systems", "flextm,cgl",
            "--threads", "1,2",
            "--cycles", "10000",
            "--jobs", "2",
            "--quiet",
            "--csv-out", str(csv_path),
            "--bench-out", str(bench_path),
        ]
    )
    assert code == 0
    lines = csv_path.read_text().splitlines()
    assert lines[0] == ",".join(ROW_FIELDS)
    assert len(lines) == 5  # header + 4 points
    assert all(",ok," in line for line in lines[1:])
    document = json.loads(bench_path.read_text())
    assert validate_bench_payload(document) is None
    assert document["num_points"] == 4


def test_sweep_cli_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["sweep", "--workloads", "nope"])


def test_artifact_jobs_flag(capsys):
    assert main(["conflicts", "--cycles", "10000", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "Conflicting transactions" in out
