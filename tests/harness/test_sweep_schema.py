"""Regression locks for the sweep schema and fan-out ordering.

Parallel execution reorders *completion*; these tests pin everything
that must never reorder with it: the exact CSV column list, the header
line, and the cartesian order :meth:`SweepSpec.configs` yields points
in (which is also the row order every sweep — serial or parallel —
reports).  A change here is an intentional, reviewed schema break.
"""

from __future__ import annotations

import itertools

from repro.core.descriptor import ConflictMode
from repro.harness.sweep import ROW_FIELDS, SweepSpec, to_csv

#: The locked column contract.  Order matters: downstream spreadsheets
#: and the CI bench gate parse by position as well as by name.
EXPECTED_ROW_FIELDS = [
    "workload",
    "system",
    "threads",
    "mode",
    "seed",
    "cycles",
    "commits",
    "aborts",
    "throughput",
    "abort_ratio",
    "status",
    "error",
]


def test_row_fields_locked():
    assert ROW_FIELDS == EXPECTED_ROW_FIELDS


def test_csv_header_matches_row_fields():
    header = to_csv([]).splitlines()[0]
    assert header == ",".join(EXPECTED_ROW_FIELDS)


def test_configs_cartesian_order_locked():
    spec = SweepSpec(
        workloads=["HashTable", "RBTree"],
        systems=["FlexTM", "CGL"],
        thread_counts=(1, 2),
        modes=(ConflictMode.EAGER, ConflictMode.LAZY),
        seeds=(1, 2),
        cycle_limit=5_000,
    )
    observed = [
        (c.workload, c.system, c.threads, c.mode, c.seed) for c in spec.configs()
    ]
    expected = list(
        itertools.product(
            ["HashTable", "RBTree"],
            ["FlexTM", "CGL"],
            (1, 2),
            (ConflictMode.EAGER, ConflictMode.LAZY),
            (1, 2),
        )
    )
    assert observed == expected
    assert len(observed) == spec.size() == 32
    # Workload is the slowest-varying axis, seed the fastest.
    assert observed[0][0] == observed[15][0] == "HashTable"
    assert observed[16][0] == "RBTree"
    assert [entry[4] for entry in observed[:4]] == [1, 2, 1, 2]


def test_every_config_carries_spec_invariants():
    spec = SweepSpec(workloads=["HashTable"], cycle_limit=5_000)
    for config in spec.configs():
        assert config.cycle_limit == 5_000
        assert config.params is spec.params
