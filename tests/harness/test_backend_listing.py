"""Backend discovery and fail-fast selection across the matrix CLIs.

Every matrix CLI (chaos, degrade, adversary) exposes the same
``--list-backends`` discovery listing and rejects unknown or empty
backend selections up front instead of silently running an empty
matrix.
"""

import pytest

from repro.harness.adversary import run_adversary_command
from repro.harness.chaos import (
    render_backend_list,
    resolve_backends,
    run_chaos_command,
)
from repro.harness.degrade import run_degrade_command
from repro.harness.runner import BACKEND_SUMMARIES, SYSTEMS

ALL_BACKENDS = (
    "CGL", "FlexTM", "RTM-F", "RSTM", "TL2", "LogTM-SE", "HTM-BE",
)


def test_summaries_cover_every_backend():
    assert set(BACKEND_SUMMARIES) == set(SYSTEMS) == set(ALL_BACKENDS)


def test_listing_names_every_backend():
    text = render_backend_list()
    for name in ALL_BACKENDS:
        assert name in text
    assert "fallback" in text  # HTM-BE's summary mentions the ladder


@pytest.mark.parametrize(
    "command", [run_chaos_command, run_degrade_command, run_adversary_command]
)
def test_list_backends_flag(command, capsys):
    assert command(["--list-backends"]) == 0
    stdout = capsys.readouterr().out
    for name in ALL_BACKENDS:
        assert name in stdout


@pytest.mark.parametrize(
    "command", [run_chaos_command, run_degrade_command, run_adversary_command]
)
def test_unknown_backend_fails_fast(command):
    with pytest.raises(SystemExit, match="unknown backend"):
        command(["--backends", "HTM-BE,NoSuchTM", "--quiet"])


@pytest.mark.parametrize(
    "command", [run_chaos_command, run_degrade_command, run_adversary_command]
)
def test_empty_backend_selection_fails_fast(command):
    with pytest.raises(SystemExit, match="no backends selected"):
        command(["--backends", ",", "--quiet"])


def test_resolver_reports_the_valid_set():
    with pytest.raises(SystemExit, match="HTM-BE"):
        resolve_backends([])
