"""The capacity sweep: deterministic fallback-ladder engagement."""

import json

import pytest

from repro.harness.capacity import (
    REPORT_SCHEMA,
    check_ladder,
    render_capacity,
    run_capacity_command,
    run_capacity_sweep,
)

# A fast two-point sweep straddling a write bound of 4 lines.
FAST = dict(threads=2, txns=2, read_lines=8, write_lines=4)


def test_ladder_engages_exactly_at_the_bound():
    below, above = run_capacity_sweep((3, 6), **FAST)
    assert below["aborts"] == 0
    assert below["fallback_rate"] == 0.0
    assert below["commits_by_path"]["htm"] == below["commits"] == 4
    assert above["aborts_by_kind"] == {"capacity": 4}  # one fastfail each
    assert above["fallback_rate"] == 1.0
    assert above["commits_by_path"]["htm"] == 0
    assert above["commits_by_path"]["sw"] == above["commits"] == 4
    assert check_ladder([below, above]) == []


def test_sweep_is_bit_identical_across_runs():
    first = run_capacity_sweep((3, 6), **FAST)
    second = run_capacity_sweep((3, 6), **FAST)
    assert first == second


def test_check_ladder_flags_misbehavior():
    rows = run_capacity_sweep((3, 6), **FAST)
    good = [dict(row) for row in rows]
    assert check_ladder(good) == []
    # A hardware commit above the bound is a ladder failure.
    bad = [dict(row) for row in rows]
    bad[1]["commits_by_path"] = dict(bad[1]["commits_by_path"], htm=1)
    assert any("hardware commit" in p for p in check_ladder(bad))
    # A capacity abort below the bound is one too.
    bad = [dict(row) for row in rows]
    bad[0]["aborts"] = 1
    assert any("below the capacity bound" in p for p in check_ladder(bad))
    # Non-capacity aborts never belong on disjoint working sets.
    bad = [dict(row) for row in rows]
    bad[1]["aborts_by_kind"] = {"htm-conflict": 2}
    assert any("non-capacity" in p for p in check_ladder(bad))


def test_render_mentions_every_path():
    table = render_capacity(run_capacity_sweep((3,), **FAST))
    assert "fb_rate" in table and "htm" in table and "irrev" in table


def test_command_end_to_end_with_report(tmp_path, capsys):
    out = tmp_path / "capacity.json"
    status = run_capacity_command([
        "--sizes", "3,6", "--threads", "2", "--txns", "2",
        "--read-lines", "8", "--write-lines", "4",
        "--json-out", str(out),
    ])
    assert status == 0
    assert "FAIL" not in capsys.readouterr().out
    document = json.loads(out.read_text())
    assert document["schema"] == REPORT_SCHEMA == "repro.capacity/v1"
    assert document["ok"] is True
    assert document["problems"] == []
    assert [row["set_size"] for row in document["rows"]] == [3, 6]
    assert json.loads(json.dumps(document)) == document


def test_command_rejects_empty_sizes(capsys):
    with pytest.raises(SystemExit, match="no sizes"):
        run_capacity_command(["--sizes", ","])


def test_legacy_backend_reports_no_fallback_keys():
    # The escalations merge is additive: a backend without the
    # fallback ladder must not grow new keys (bit-identity for the six
    # pre-existing backends).
    from repro.harness.capacity import run_capacity_point

    row = run_capacity_point(3, backend_name="FlexTM", **FAST)
    assert not any(k.startswith("fallback_") for k in row["escalations"])
    assert row["commits_by_path"] == {"htm": 0, "sw": 0, "irrevocable": 0}
    assert row["fallback_rate"] == 0.0
