"""Sweep utility."""

import csv
import io

import pytest

from repro.core.descriptor import ConflictMode
from repro.harness.sweep import ROW_FIELDS, SweepSpec, run_sweep, to_csv, write_csv
from repro.params import small_test_params


@pytest.fixture
def spec():
    return SweepSpec(
        workloads=["HashTable"],
        systems=["FlexTM", "CGL"],
        thread_counts=(1, 2),
        modes=(ConflictMode.LAZY,),
        seeds=(1,),
        cycle_limit=20_000,
        params=small_test_params(4),
    )


def test_size_and_config_generation(spec):
    assert spec.size() == 4
    configs = list(spec.configs())
    assert len(configs) == 4
    assert {c.system for c in configs} == {"FlexTM", "CGL"}


def test_run_sweep_rows_complete(spec):
    seen = []
    rows = run_sweep(spec, progress=lambda done, total: seen.append((done, total)))
    assert len(rows) == 4
    for row in rows:
        assert set(row) == set(ROW_FIELDS)
        assert row["commits"] >= 0
    assert seen[-1] == (4, 4)


def test_csv_roundtrip(spec, tmp_path):
    rows = run_sweep(spec)
    text = to_csv(rows)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == 4
    assert parsed[0]["workload"] == "HashTable"
    target = tmp_path / "sweep.csv"
    write_csv(rows, str(target))
    assert target.read_text() == text
