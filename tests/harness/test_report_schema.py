"""Every harness report carries the same cause-fidelity keys.

PR 6's schema unification: chaos cells, degrade cells, and metrics
artifacts all expose ``aborts_by_kind`` *and* ``escalations`` (plus
the windowed ``series``) uniformly, so downstream tooling never
special-cases which harness produced a report.
"""

from repro.harness.chaos import run_backend_matrix
from repro.harness.degrade import run_degrade_matrix
from repro.harness.metrics import (
    METRICS_REQUIRED_KEYS,
    TOTALS_REQUIRED_KEYS,
    build_artifact,
)
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.obs.metrics import MetricsHub
from repro.params import small_test_params

#: The keys every harness cell report must carry, regardless of which
#: harness (chaos or degrade) produced it.
UNIFORM_CELL_KEYS = {
    "backend", "profile", "classification", "injected",
    "commits", "aborts", "cycles",
    "aborts_by_kind", "escalations", "series",
    "detail",
}


def test_chaos_cell_schema_is_uniform():
    cells = run_backend_matrix(
        "FlexTM", ["storm"], seed=2, threads=2, txns=3,
        cycle_limit=50_000_000,
    )
    doc = cells[0].to_json()
    assert UNIFORM_CELL_KEYS <= set(doc)
    assert isinstance(doc["aborts_by_kind"], dict)
    assert isinstance(doc["escalations"], dict)
    assert isinstance(doc["series"], dict)
    assert set(doc["series"]) == {"tx.commits", "tx.aborts"}
    for series in doc["series"].values():
        assert set(series) >= {"window_cycles", "mode", "points"}


def test_degrade_cell_schema_is_uniform():
    cells = run_degrade_matrix(
        ["FlexTM"], ["storm"], seed=2, threads=2, txns=3,
        cycle_limit=50_000_000,
    )
    doc = cells[0].to_json()
    assert UNIFORM_CELL_KEYS <= set(doc)
    assert isinstance(doc["aborts_by_kind"], dict)
    assert isinstance(doc["escalations"], dict)
    assert set(doc["series"]) == {"tx.commits", "tx.aborts"}


def test_metrics_artifact_totals_schema():
    hub = MetricsHub()
    result = run_experiment(ExperimentConfig(
        workload="HashTable", system="FlexTM", threads=2,
        cycle_limit=20_000, params=small_test_params(2), metrics=hub,
    ))
    document = build_artifact(hub, result, run_info={"label": "schema"})
    assert set(METRICS_REQUIRED_KEYS) <= set(document)
    assert set(TOTALS_REQUIRED_KEYS) <= set(document["totals"])
    assert isinstance(document["totals"]["aborts_by_kind"], dict)
    assert isinstance(document["totals"]["escalations"], dict)
    # PR 9's hybrid-HTM keys exist on every artifact; for a backend
    # without the fallback ladder they are identically zero.
    assert document["totals"]["commits_by_path"] == {
        "htm": 0, "sw": 0, "irrevocable": 0,
    }
    assert document["totals"]["fallback_rate"] == 0.0


def test_htmbe_cell_carries_fallback_telemetry():
    cells = run_backend_matrix(
        "HTM-BE", ["overflow"], seed=2, threads=2, txns=3,
        cycle_limit=50_000_000,
    )
    doc = cells[0].to_json()
    assert UNIFORM_CELL_KEYS <= set(doc)
    escalations = doc["escalations"]
    fallback_keys = {k for k in escalations if k.startswith("fallback_")}
    assert fallback_keys  # the ladder's telemetry reached the report
    # The ladder's keys are namespaced under ``fallback_`` so they can
    # never collide with the resilience controller's bare ladder keys.
    assert fallback_keys <= {
        "fallback_commits_htm", "fallback_commits_sw",
        "fallback_commits_irrevocable", "fallback_grants",
        "fallback_dooms", "fallback_capacity_fastfails",
        "fallback_peak_streak",
    }
    # Capacity aborts surface under the uniform aborts_by_kind taxonomy.
    assert set(doc["aborts_by_kind"]) <= {
        "capacity", "htm-conflict", "explicit", "fallback", "unattributed",
    }


def test_htmbe_metrics_totals_report_the_commit_paths():
    hub = MetricsHub()
    result = run_experiment(ExperimentConfig(
        workload="HashTable", system="HTM-BE", threads=2,
        cycle_limit=20_000, params=small_test_params(2), metrics=hub,
    ))
    document = build_artifact(hub, result, run_info={"label": "htmbe"})
    totals = document["totals"]
    paths = totals["commits_by_path"]
    assert set(paths) == {"htm", "sw", "irrevocable"}
    assert sum(paths.values()) == totals["commits"] == result.commits
    assert 0.0 <= totals["fallback_rate"] <= 1.0
