"""Fast smoke tests for the figure harnesses (tiny budgets)."""


from repro.harness.figure4 import (
    render_conflict_table,
    render_figure4,
    run_conflict_table,
    run_figure4,
    systems_for,
)
from repro.harness.figure5 import (
    render_multiprogramming,
    render_policy,
    run_multiprogramming,
    run_policy_comparison,
)
from repro.harness.overflow import overflow_params, run_overflow_study, render_overflow

SMOKE_CYCLES = 25_000


def test_systems_for_selects_baselines():
    assert systems_for("RBTree") == ["CGL", "FlexTM", "RTM-F", "RSTM"]
    assert systems_for("Vacation-High") == ["CGL", "FlexTM", "TL2"]


def test_figure4_harness_structure():
    results = run_figure4(
        workloads=["HashTable"], thread_points=(1, 2), cycle_limit=SMOKE_CYCLES
    )
    points = results["HashTable"]
    assert {p.system for p in points} == {"CGL", "FlexTM", "RTM-F", "RSTM"}
    assert {p.threads for p in points} == {1, 2}
    for point in points:
        assert point.normalized >= 0
        assert point.commits >= 0
    text = render_figure4(results)
    assert "HashTable" in text and "FlexTM" in text


def test_conflict_table_harness():
    table = run_conflict_table(
        workloads=["HashTable"], thread_points=(2,), cycle_limit=SMOKE_CYCLES
    )
    stats = table["HashTable"][2]
    assert set(stats) == {"median", "max"}
    assert 0 <= stats["median"] <= stats["max"] <= 2
    assert "HashTable" in render_conflict_table(table)


def test_figure5_policy_harness():
    results = run_policy_comparison(
        workloads=["LFUCache"], thread_points=(1, 2), cycle_limit=SMOKE_CYCLES
    )
    points = results["LFUCache"]
    assert {p.mode for p in points} == {"eager", "lazy"}
    assert "LFUCache" in render_policy(results)


def test_figure5_multiprogramming_harness():
    results = run_multiprogramming(
        workloads=["LFUCache"], thread_points=(2,), cycle_limit=SMOKE_CYCLES
    )
    points = results["LFUCache"]
    assert all(point.prime_items >= 0 for point in points)
    assert "Prime" in render_multiprogramming(results)


def test_overflow_harness():
    results = run_overflow_study(
        workloads=("HashTable",), threads=2, cycle_limit=SMOKE_CYCLES
    )
    point = results["HashTable"]
    assert point.ot_throughput >= 0 and point.ideal_throughput >= 0
    assert "HashTable" in render_overflow(results)


def test_overflow_params_are_tiny():
    params = overflow_params()
    assert params.l1.size_bytes < 32 * 1024
    assert params.victim_buffer_entries == 0
