"""The parallel experiment executor.

The load-bearing invariant (same one PR 1 established for tracing):
fanning points out across worker processes changes *when* they run,
never *what* they compute — ``--jobs N`` rows are bit-identical to
``--jobs 1`` for every TM backend.  Worker failure modes (exception,
crash, timeout) must surface as structured outcomes, not dead sweeps.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.core.descriptor import ConflictMode
from repro.harness import parallel
from repro.harness.parallel import (
    PointOutcome,
    PointSpec,
    bench_payload,
    effective_jobs,
    run_points,
    unwrap,
    validate_bench_payload,
)
from repro.harness.runner import SYSTEMS, ExperimentConfig
from repro.harness.sweep import ROW_FIELDS, SweepSpec, run_sweep
from repro.params import small_test_params

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault-injection via module patching needs fork start method",
)


def _config(workload="HashTable", system="FlexTM", threads=2, seed=7):
    return ExperimentConfig(
        workload=workload,
        system=system,
        threads=threads,
        mode=ConflictMode.EAGER,
        cycle_limit=10_000,
        seed=seed,
        params=small_test_params(4),
    )


@pytest.fixture
def all_backend_spec():
    return SweepSpec(
        workloads=["HashTable"],
        systems=sorted(SYSTEMS),
        thread_counts=(1, 2),
        modes=(ConflictMode.EAGER,),
        seeds=(7,),
        cycle_limit=10_000,
        params=small_test_params(4),
    )


def test_parallel_rows_bit_identical_to_serial(all_backend_spec):
    serial = run_sweep(all_backend_spec, jobs=1)
    fanned = run_sweep(all_backend_spec, jobs=3)
    assert serial == fanned
    assert len(serial) == all_backend_spec.size()
    assert {row["system"] for row in serial} == set(SYSTEMS)
    assert all(row["status"] == "ok" for row in serial)


def test_outcomes_ordered_by_submission_index():
    specs = [
        PointSpec(config=_config(threads=threads), label=f"p{threads}")
        for threads in (4, 1, 3, 2)
    ]
    outcomes = run_points(specs, jobs=2)
    assert [outcome.index for outcome in outcomes] == [0, 1, 2, 3]
    assert [outcome.label for outcome in outcomes] == ["p4", "p1", "p3", "p2"]
    assert all(outcome.ok for outcome in outcomes)


@pytest.mark.parametrize("jobs", [1, 2])
def test_exception_becomes_error_row_not_dead_sweep(jobs):
    spec = SweepSpec(
        workloads=["HashTable", "NoSuchWorkload"],
        systems=["FlexTM"],
        thread_counts=(1,),
        modes=(ConflictMode.EAGER,),
        seeds=(7,),
        cycle_limit=10_000,
        params=small_test_params(4),
    )
    rows = run_sweep(spec, jobs=jobs)
    assert len(rows) == 2
    good, bad = rows
    assert good["status"] == "ok" and good["commits"] > 0
    assert bad["workload"] == "NoSuchWorkload"
    assert bad["status"] == "exception"
    assert "NoSuchWorkload" in bad["error"]
    assert bad["commits"] == 0 and bad["throughput"] == 0.0
    assert set(bad) == set(ROW_FIELDS)


@needs_fork
def test_crashed_worker_is_isolated_and_retried(monkeypatch):
    real = parallel._execute_point

    def crashy(config):
        if config.system == "CGL":
            os._exit(3)
        return real(config)

    monkeypatch.setattr(parallel, "_execute_point", crashy)
    specs = [
        PointSpec(config=_config(system="FlexTM"), label="ok-point"),
        PointSpec(config=_config(system="CGL"), label="crash-point"),
    ]
    outcomes = run_points(specs, jobs=2, retries=1)
    assert outcomes[0].ok and outcomes[0].status == "ok"
    crashed = outcomes[1]
    assert not crashed.ok
    assert crashed.status == "crash"
    assert "exit code 3" in crashed.error
    assert crashed.attempts == 2  # initial launch + one retry
    with pytest.raises(RuntimeError, match="crash-point"):
        unwrap(crashed)


@needs_fork
def test_hung_worker_times_out_without_killing_the_sweep(monkeypatch):
    real = parallel._execute_point

    def sleepy(config):
        if config.system == "TL2":
            time.sleep(60)
        return real(config)

    monkeypatch.setattr(parallel, "_execute_point", sleepy)
    specs = [
        PointSpec(config=_config(system="TL2"), label="hung-point"),
        PointSpec(config=_config(system="FlexTM"), label="ok-point"),
    ]
    started = time.perf_counter()
    outcomes = run_points(specs, jobs=2, timeout=0.5, retries=0)
    assert time.perf_counter() - started < 30
    hung, fine = outcomes
    assert hung.status == "timeout" and not hung.ok
    assert hung.attempts == 1
    assert "0.5s budget" in hung.error
    assert fine.ok


def test_serial_path_never_forks(monkeypatch):
    def boom(*args, **kwargs):  # pragma: no cover — would fail the test
        raise AssertionError("jobs=1 must not spawn workers")

    monkeypatch.setattr(parallel, "_run_pool", boom)
    outcomes = run_points([PointSpec(config=_config())], jobs=1)
    assert outcomes[0].ok


def test_parallel_figures_match_serial():
    from repro.harness.figure4 import run_figure4
    from repro.harness.figure5 import run_multiprogramming, run_policy_comparison

    assert run_figure4(
        workloads=["HashTable"], thread_points=(1, 2), cycle_limit=10_000, jobs=2
    ) == run_figure4(
        workloads=["HashTable"], thread_points=(1, 2), cycle_limit=10_000, jobs=1
    )
    assert run_policy_comparison(
        workloads=["RBTree"], thread_points=(1, 2), cycle_limit=10_000, jobs=2
    ) == run_policy_comparison(
        workloads=["RBTree"], thread_points=(1, 2), cycle_limit=10_000, jobs=1
    )
    assert run_multiprogramming(
        workloads=["LFUCache"], thread_points=(2,), cycle_limit=10_000, jobs=2
    ) == run_multiprogramming(
        workloads=["LFUCache"], thread_points=(2,), cycle_limit=10_000, jobs=1
    )


def test_parallel_traces_written_by_workers(tmp_path):
    specs = [
        PointSpec(
            config=_config(threads=threads),
            label=f"t{threads}",
            trace_dir=str(tmp_path),
            trace_name=f"point_{threads}t",
        )
        for threads in (1, 2)
    ]
    outcomes = run_points(specs, jobs=2)
    for outcome, threads in zip(outcomes, (1, 2)):
        assert outcome.ok
        assert outcome.result.trace is None  # tracer stays in the worker
        path = tmp_path / f"point_{threads}t.json"
        assert outcome.trace_path == str(path)
        document = json.loads(path.read_text())
        assert document["traceEvents"]


def test_bench_json_written_and_valid(all_backend_spec, tmp_path):
    bench_path = tmp_path / "BENCH_sweep.json"
    run_sweep(all_backend_spec, jobs=2, bench_out=str(bench_path))
    document = json.loads(bench_path.read_text())
    assert validate_bench_payload(document) is None
    assert document["jobs"] == 2
    assert document["num_points"] == all_backend_spec.size()
    assert document["num_errors"] == 0
    assert document["total_wall_time_s"] > 0
    assert document["serial_estimate_s"] > 0
    assert document["sweep"]["systems"] == sorted(SYSTEMS)
    assert document["host"]["cpu_count"] == os.cpu_count()


def test_validate_bench_payload_rejects_junk():
    assert validate_bench_payload([]) is not None
    assert validate_bench_payload({"schema": "nope"}) is not None
    good = bench_payload(
        [PointOutcome(index=0, label="p", ok=True, status="ok", wall_time=0.1)],
        jobs=2,
        total_wall_time=0.1,
    )
    assert validate_bench_payload(good) is None
    broken = dict(good, num_errors=5)
    assert validate_bench_payload(broken) is not None


def test_benchgate_cli(all_backend_spec, tmp_path, capsys):
    from repro.harness.benchgate import main as benchgate

    bench_path = tmp_path / "BENCH_sweep.json"
    run_sweep(all_backend_spec, jobs=2, bench_out=str(bench_path))
    assert benchgate([str(bench_path), "--baseline", str(bench_path)]) == 0
    assert "benchgate: OK" in capsys.readouterr().out

    # A 1000x-faster fake baseline must trip the regression gate.
    fast = json.loads(bench_path.read_text())
    fast["total_wall_time_s"] = fast["total_wall_time_s"] / 1000.0
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(fast))
    assert (
        benchgate([str(bench_path), "--baseline", str(baseline_path)]) == 1
    )
    assert "FAIL" in capsys.readouterr().out


def test_effective_jobs():
    assert effective_jobs(None) == (os.cpu_count() or 1)
    assert effective_jobs(0) == (os.cpu_count() or 1)
    assert effective_jobs(1) == 1
    assert effective_jobs(7) == 7
