"""ASCII chart rendering."""

import pytest

from repro.harness.charts import chart_figure4, chart_figure5, render_chart
from repro.harness.figure4 import Figure4Point
from repro.harness.figure5 import PolicyPoint


def test_render_chart_basic_shape():
    text = render_chart(
        {"A": [(1, 1.0), (4, 2.0), (8, 4.0)], "B": [(1, 1.0), (4, 1.0), (8, 1.0)]},
        title="T",
        width=40,
        height=10,
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "o=A" in lines[-1] and "*=B" in lines[-1]
    assert "4.00" in text  # y-axis max label
    assert any("o" in line for line in lines)
    # Tick labels on the x axis.
    assert "8" in lines[-2]


def test_render_chart_rejects_empty():
    with pytest.raises(ValueError):
        render_chart({})


def test_monotone_series_plots_monotone_rows():
    """Higher y must land on an earlier (higher) row."""
    text = render_chart({"A": [(1, 1.0), (2, 3.0)]}, width=20, height=8)
    lines = [line for line in text.splitlines() if "|" in line]
    first = next(i for i, line in enumerate(lines) if "o" in line)
    last = max(i for i, line in enumerate(lines) if "o" in line)
    assert first < last  # the y=3 point is drawn above the y=1 point


def test_chart_figure4_adapter():
    points = [
        Figure4Point("HashTable", "CGL", t, 0.0, n, 0, 0)
        for t, n in [(1, 1.0), (8, 0.5)]
    ] + [
        Figure4Point("HashTable", "FlexTM", t, 0.0, n, 0, 0)
        for t, n in [(1, 0.9), (8, 4.0)]
    ]
    text = chart_figure4(points, "HashTable")
    assert "Figure 4" in text and "FlexTM" in text


def test_chart_figure5_adapter():
    points = [
        PolicyPoint("LFUCache", mode, t, 0.0, n, 0, 0)
        for mode, t, n in [("eager", 1, 1.0), ("eager", 8, 0.3), ("lazy", 1, 1.0), ("lazy", 8, 0.8)]
    ]
    text = chart_figure5(points, "LFUCache")
    assert "lazy" in text and "eager" in text
