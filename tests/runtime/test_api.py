"""TxContext / TMBackend programming-model contracts."""

import pytest

from repro.errors import IllegalOperation
from repro.runtime.api import TMBackend, TxContext, work


class RecordingBackend(TMBackend):
    """Minimal backend that logs calls and echoes values."""

    def __init__(self):
        self.calls = []
        self.store = {}

    def begin(self, thread):
        self.calls.append("begin")
        return
        yield

    def read(self, thread, address):
        self.calls.append(("read", address))
        yield ("work", 1)
        return self.store.get(address, 0)

    def write(self, thread, address, value):
        self.calls.append(("write", address, value))
        self.store[address] = value
        yield ("work", 1)

    def commit(self, thread):
        self.calls.append("commit")
        return
        yield


def _drain(generator):
    results = []
    try:
        while True:
            results.append(generator.send(None))
    except StopIteration as stop:
        return results, stop.value


def test_context_routes_to_backend():
    backend = RecordingBackend()
    ctx = TxContext(backend, thread=object())
    ops, _ = _drain(ctx.write(8, 42))
    assert ops == [("work", 1)]
    ops, value = _drain(ctx.read(8))
    assert value == 42
    assert ("read", 8) in backend.calls


def test_context_work_emits_op():
    ctx = TxContext(RecordingBackend(), thread=None)
    ops, _ = _drain(ctx.work(10))
    assert ops == [("work", 10)]


def test_context_zero_work_is_silent():
    ctx = TxContext(RecordingBackend(), thread=None)
    ops, _ = _drain(ctx.work(0))
    assert ops == []


def test_context_negative_work_rejected():
    ctx = TxContext(RecordingBackend(), thread=None)
    with pytest.raises(IllegalOperation):
        _drain(ctx.work(-1))


def test_module_level_work_helper():
    ops, _ = _drain(work(7))
    assert ops == [("work", 7)]


def test_backend_defaults():
    backend = TMBackend()
    assert backend.check_aborted(None) is False
    assert backend.suspend(None) is None
    assert backend.resume(None, 0, None) is None
    assert _drain(backend.on_abort(None))[0] == []
    for method in (backend.begin, backend.commit):
        with pytest.raises(NotImplementedError):
            _drain(method(None))
    with pytest.raises(NotImplementedError):
        _drain(backend.read(None, 0))
    with pytest.raises(NotImplementedError):
        _drain(backend.write(None, 0, 0))
