"""Subsumption nesting and transactional pause (Section 3.5)."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.errors import TransactionAborted
from repro.params import small_test_params
from repro.runtime.api import TxContext
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.txthread import TxThread
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _thread(runtime, thread_id, proc):
    thread = TxThread(thread_id, runtime, iter(()))
    thread.processor = proc
    return thread


def test_inner_commit_does_not_publish(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))  # outer
    drive(m, 0, runtime.begin(thread))  # inner (subsumed)
    drive(m, 0, runtime.write(thread, address, 7))
    drive(m, 0, runtime.commit(thread))  # inner commit: flattened, no-op
    assert m.memory.read(address) == 0  # still speculative
    assert m.read_status(thread.descriptor) is TxStatus.ACTIVE
    drive(m, 0, runtime.commit(thread))  # outer commit publishes
    assert m.memory.read(address) == 7
    assert thread.nest_depth == 0


def test_nested_begin_reuses_outer_descriptor(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    drive(m, 0, runtime.begin(thread))
    outer_incarnation = thread.descriptor.incarnation
    drive(m, 0, runtime.begin(thread))
    assert thread.descriptor.incarnation == outer_incarnation
    assert thread.nest_depth == 2
    drive(m, 0, runtime.commit(thread))
    drive(m, 0, runtime.commit(thread))


def test_abort_unwinds_whole_nest(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 7))
    m.memory.write(thread.descriptor.tsw_address, TxStatus.ABORTED)
    with pytest.raises(TransactionAborted):
        drive(m, 0, runtime.commit(thread))  # inner commit ok, outer raises?
        drive(m, 0, runtime.commit(thread))
    drive(m, 0, runtime.on_abort(thread))
    assert thread.nest_depth == 0
    assert m.memory.read(address) == 0


def test_deep_nesting(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    for _ in range(5):
        drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 3))
    for _ in range(4):
        drive(m, 0, runtime.commit(thread))
    assert m.memory.read(address) == 0
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(address) == 3


def test_paused_write_is_immediate_and_survives_abort(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    ctx = TxContext(runtime, thread)
    tx_address = m.allocate_words(1, line_aligned=True)
    meta_address = m.allocate_words(1, line_aligned=True)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, tx_address, 9))
    drive(m, 0, ctx.paused_write(meta_address, 42))
    assert m.memory.read(meta_address) == 42  # visible immediately
    m.memory.write(thread.descriptor.tsw_address, TxStatus.ABORTED)
    drive(m, 0, runtime.on_abort(thread))
    assert m.memory.read(tx_address) == 0  # transactional write rolled back
    assert m.memory.read(meta_address) == 42  # paused write persists


def test_paused_read_sees_committed_not_speculative(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    ctx = TxContext(runtime, thread)
    address = m.allocate_words(1, line_aligned=True)
    m.memory.write(address, 5)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 9))
    # A paused read bypasses the overlay: it sees the committed value.
    assert drive(m, 0, ctx.paused_read(address)) == 5
    drive(m, 0, runtime.commit(thread))
    assert drive(m, 0, ctx.paused_read(address)) == 9


def test_paused_ops_do_not_touch_signatures(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    ctx = TxContext(runtime, thread)
    address = m.allocate_words(1, line_aligned=True)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, ctx.paused_read(address))
    line = m.amap.line_of(address)
    assert not m.processors[0].rsig.member(line)
    drive(m, 0, runtime.commit(thread))
