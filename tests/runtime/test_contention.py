"""Contention managers."""

from repro.runtime.contention import (
    AggressiveManager,
    Decision,
    PolkaManager,
    TimidManager,
    TimestampManager,
)
from repro.sim.rng import DeterministicRng


def test_polka_waits_then_aborts_enemy():
    manager = PolkaManager(DeterministicRng(1), max_attempts=4)
    # Enemy much richer: budget capped at max_attempts.
    rulings = [manager.decide(attempt, my_karma=0, enemy_karma=100) for attempt in range(6)]
    assert all(r.decision is Decision.WAIT for r in rulings[:4])
    assert rulings[4].decision is Decision.ABORT_ENEMY


def test_polka_aborts_sooner_with_higher_karma():
    manager = PolkaManager(DeterministicRng(1))
    # My karma dominates: only the single mandatory wait.
    assert manager.decide(0, my_karma=50, enemy_karma=1).decision is Decision.WAIT
    assert manager.decide(1, my_karma=50, enemy_karma=1).decision is Decision.ABORT_ENEMY


def test_polka_backoff_grows_exponentially():
    manager = PolkaManager(DeterministicRng(1), base_backoff=16)
    early = [manager.decide(0, 0, 100).backoff_cycles for _ in range(50)]
    late = [manager.decide(5, 0, 100).backoff_cycles for _ in range(50)]
    assert max(late) > max(early)
    assert all(b >= 1 for b in early + late)


def test_aggressive_always_wounds():
    manager = AggressiveManager()
    assert manager.decide(0, 0, 100).decision is Decision.ABORT_ENEMY


def test_timid_always_self_aborts():
    manager = TimidManager()
    assert manager.decide(0, 100, 0).decision is Decision.ABORT_SELF


def test_timestamp_priority():
    manager = TimestampManager(DeterministicRng(1), max_attempts=2)
    assert manager.decide(0, my_karma=10, enemy_karma=5).decision is Decision.ABORT_ENEMY
    assert manager.decide(0, my_karma=1, enemy_karma=5).decision is Decision.WAIT
    assert manager.decide(2, my_karma=1, enemy_karma=5).decision is Decision.ABORT_SELF


def test_retry_backoff_bounded_and_growing():
    manager = PolkaManager(DeterministicRng(2))
    small = max(manager.retry_backoff(1) for _ in range(50))
    large = max(manager.retry_backoff(8) for _ in range(50))
    assert small <= 32
    assert large <= (1 << 8) * 16
    assert large > small
