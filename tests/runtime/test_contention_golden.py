"""Golden tables for the contention managers' RNG streams.

The Polka rulings and retry back-offs below were captured from the
default ``DeterministicRng(0xC0)`` stream.  They lock the decision
logic *and* the draw order: consuming one extra (or one fewer) random
number anywhere in ``decide`` / ``retry_backoff`` shifts every
subsequent value and fails this test.  The livelock watchdog's boost
multiplies the back-off window, so ``boost == 1`` (the default) must
reproduce the exact historical stream.
"""

from repro.runtime.contention import (
    ConflictManager,
    Decision,
    PolkaManager,
)

#: (attempt, my_karma, enemy_karma) -> (decision, backoff) drawn in
#: order from one fresh PolkaManager.
POLKA_GOLDEN = [
    ((0, 1, 5), ("wait", 12)),
    ((1, 1, 5), ("wait", 20)),
    ((2, 1, 5), ("wait", 12)),
    ((3, 1, 5), ("wait", 120)),
    ((4, 1, 5), ("abort-enemy", 0)),
    ((0, 5, 1), ("wait", 10)),
    ((0, 3, 3), ("wait", 14)),
    ((1, 3, 3), ("abort-enemy", 0)),
    ((0, 0, 10), ("wait", 11)),
    ((5, 0, 10), ("wait", 437)),
    ((6, 0, 10), ("abort-enemy", 0)),
    ((2, 2, 8), ("wait", 36)),
    ((7, 1, 9), ("abort-enemy", 0)),
]

#: aborts_in_a_row inputs -> retry_backoff outputs, drawn in order from
#: one fresh (unboosted) ConflictManager.
RETRY_GOLDEN = [
    (1, 23), (1, 19), (2, 11), (3, 119), (4, 157),
    (5, 434), (8, 2736), (12, 3491), (1, 17),
]


def test_polka_golden_stream():
    manager = PolkaManager()
    for call, (decision, backoff) in POLKA_GOLDEN:
        ruling = manager.decide(*call)
        assert (ruling.decision.value, ruling.backoff_cycles) == (decision, backoff), call


def test_retry_backoff_golden_stream():
    manager = ConflictManager()
    for aborts, expected in RETRY_GOLDEN:
        assert manager.retry_backoff(aborts) == expected, aborts


def test_escalation_scales_the_window_not_the_stream():
    # Boosted values come from the same stream positions with a 4x
    # window; resetting restores the historical stream scale.
    manager = ConflictManager()
    manager.escalate()
    manager.escalate()
    assert manager.boost == 4
    boosted = [manager.retry_backoff(n) for n in (1, 2, 3)]
    assert boosted == [95, 153, 89]
    manager.reset_escalation()
    assert manager.boost == 1


def test_polka_aborts_enemy_once_budget_exhausted():
    manager = PolkaManager()
    ruling = manager.decide(attempt=manager.max_attempts, my_karma=0, enemy_karma=100)
    assert ruling.decision is Decision.ABORT_ENEMY
    assert ruling.backoff_cycles == 0
