"""Scheduler: timing-driven stepping, retries, quantum switches."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.errors import SchedulerError
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import RunResult, Scheduler
from repro.runtime.txthread import TxThread, WorkItem


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _counter_items(counter_address, count=None, work_cycles=0):
    def increment(ctx):
        value = yield from ctx.read(counter_address)
        if work_cycles:
            yield from ctx.work(work_cycles)
        yield from ctx.write(counter_address, value + 1)

    def stream():
        produced = 0
        while count is None or produced < count:
            produced += 1
            yield WorkItem(increment)

    return stream()


def test_finite_workload_completes(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    counter = m.allocate_words(1, line_aligned=True)
    threads = [TxThread(0, runtime, _counter_items(counter, count=10))]
    result = Scheduler(m, threads).run(cycle_limit=10_000_000)
    assert result.commits == 10
    assert m.memory.read(counter) == 10


def test_cycle_limit_stops_infinite_streams(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    counter = m.allocate_words(1, line_aligned=True)
    threads = [TxThread(i, runtime, _counter_items(counter)) for i in range(2)]
    result = Scheduler(m, threads).run(cycle_limit=30_000)
    assert result.cycles <= 30_000
    assert result.commits > 0
    assert m.memory.read(counter) == result.commits


def test_throughput_metric(m):
    result = RunResult(
        cycles=1_000_000, commits=500, aborts=10, nontx_items=0,
        per_thread=[], stats={}, conflict_degrees=[],
    )
    assert result.throughput == 500.0
    assert 0 < result.abort_ratio < 0.05


def test_more_threads_than_processors_context_switches(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    counter = m.allocate_words(1, line_aligned=True)
    # 8 threads on a 4-core machine with a small quantum; each
    # transaction is long enough that quanta expire mid-stream.
    threads = [
        TxThread(i, runtime, _counter_items(counter, count=5, work_cycles=400))
        for i in range(8)
    ]
    scheduler = Scheduler(m, threads, quantum=1_000)
    result = scheduler.run(cycle_limit=50_000_000)
    assert result.commits == 40
    assert m.memory.read(counter) == 40
    assert result.stats.get("ctxsw.switches", 0) > 0


def test_transaction_survives_descheduling_on_same_core(m):
    """A mid-transaction thread switched out and back in (same core,
    nothing conflicting meanwhile) must commit successfully."""
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    data = m.allocate_words(1, line_aligned=True)

    def long_transaction(ctx):
        value = yield from ctx.read(data)
        for _ in range(50):
            yield from ctx.work(100)
        yield from ctx.write(data, value + 1)

    def one(body):
        yield WorkItem(body)

    threads = [
        TxThread(0, runtime, one(long_transaction)),
        TxThread(1, runtime, one(long_transaction)),
    ]
    # One core only: forces suspends mid-transaction.
    scheduler = Scheduler(m, threads, quantum=1_500, processors=[0])
    result = scheduler.run(cycle_limit=10_000_000)
    assert result.commits == 2
    assert m.memory.read(data) == 2


def test_empty_thread_list_rejected(m):
    with pytest.raises(SchedulerError):
        Scheduler(m, [])


def test_bad_cycle_limit_rejected(m):
    runtime = FlexTMRuntime(m)
    threads = [TxThread(0, runtime, iter(()))]
    with pytest.raises(SchedulerError):
        Scheduler(m, threads).run(cycle_limit=0)


def test_per_thread_stats_reported(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    counter = m.allocate_words(1, line_aligned=True)
    threads = [TxThread(i, runtime, _counter_items(counter, count=3)) for i in range(2)]
    result = Scheduler(m, threads).run(cycle_limit=10_000_000)
    assert sorted(entry["thread_id"] for entry in result.per_thread) == [0, 1]
    assert sum(entry["commits"] for entry in result.per_thread) == 6


def test_determinism_same_seed_same_outcome(m):
    def run_once():
        machine = FlexTMMachine(small_test_params(4))
        runtime = FlexTMRuntime(machine, mode=ConflictMode.LAZY)
        counter = machine.allocate_words(1, line_aligned=True)
        threads = [TxThread(i, runtime, _counter_items(counter)) for i in range(4)]
        result = Scheduler(machine, threads).run(cycle_limit=40_000)
        return result.commits, result.aborts, machine.memory.read(counter)

    assert run_once() == run_once()
