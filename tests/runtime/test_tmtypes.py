"""Transactional data types."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import small_test_params
from repro.runtime.api import TxContext
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.tmtypes import TArray, TCounter, TQueue, TStack, TVar
from repro.runtime.txthread import TxThread, WorkItem
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


@pytest.fixture
def rig(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = TxThread(0, runtime, iter(()))
    thread.processor = 0
    return runtime, thread, TxContext(runtime, thread)


def _tx(m, runtime, thread, body):
    drive(m, 0, runtime.begin(thread))
    value = drive(m, 0, body)
    drive(m, 0, runtime.commit(thread))
    return value


def test_tvar_roundtrip(m, rig):
    runtime, thread, ctx = rig
    var = TVar(m, initial=5)
    assert _tx(m, runtime, thread, var.read(ctx)) == 5
    _tx(m, runtime, thread, var.write(ctx, 9))
    assert var.peek() == 9


def test_tcounter_increment_decrement(m, rig):
    runtime, thread, ctx = rig
    counter = TCounter(m)
    assert _tx(m, runtime, thread, counter.increment(ctx)) == 1
    assert _tx(m, runtime, thread, counter.increment(ctx, 4)) == 5
    assert _tx(m, runtime, thread, counter.decrement(ctx, 2)) == 3


def test_tarray_bounds_and_access(m, rig):
    runtime, thread, ctx = rig
    array = TArray(m, length=4)
    _tx(m, runtime, thread, array.set(ctx, 2, 77))
    assert _tx(m, runtime, thread, array.get(ctx, 2)) == 77
    assert array.peek(2) == 77
    with pytest.raises(IndexError):
        array.address_of(4)
    with pytest.raises(ValueError):
        TArray(m, length=0)


def test_tarray_padding_controls_line_sharing(m):
    padded = TArray(m, length=4, padded=True)
    packed = TArray(m, length=4, padded=False)
    line = m.params.line_bytes
    assert padded.address_of(1) - padded.address_of(0) == line
    assert packed.address_of(1) - packed.address_of(0) == 8


def test_tqueue_fifo(m, rig):
    runtime, thread, ctx = rig
    queue = TQueue(m, capacity=3)
    for value in (10, 20, 30):
        assert _tx(m, runtime, thread, queue.enqueue(ctx, value)) is True
    assert _tx(m, runtime, thread, queue.enqueue(ctx, 40)) is False  # full
    assert _tx(m, runtime, thread, queue.dequeue(ctx)) == 10
    assert _tx(m, runtime, thread, queue.dequeue(ctx)) == 20
    assert _tx(m, runtime, thread, queue.size(ctx)) == 1
    assert _tx(m, runtime, thread, queue.dequeue(ctx)) == 30
    assert _tx(m, runtime, thread, queue.dequeue(ctx)) is None  # empty


def test_tstack_lifo(m, rig):
    runtime, thread, ctx = rig
    stack = TStack(m)
    for value in (1, 2, 3):
        _tx(m, runtime, thread, stack.push(ctx, value))
    assert stack.peek_depth() == 3
    assert _tx(m, runtime, thread, stack.pop(ctx)) == 3
    assert _tx(m, runtime, thread, stack.pop(ctx)) == 2
    assert _tx(m, runtime, thread, stack.pop(ctx)) == 1
    assert _tx(m, runtime, thread, stack.pop(ctx)) is None


def test_aborted_queue_op_rolls_back(m, rig):
    runtime, thread, ctx = rig
    queue = TQueue(m, capacity=4)
    _tx(m, runtime, thread, queue.enqueue(ctx, 1))
    from repro.core.tsw import TxStatus

    drive(m, 0, runtime.begin(thread))
    drive(m, 0, queue.enqueue(ctx, 2))
    m.memory.write(thread.descriptor.tsw_address, TxStatus.ABORTED)
    drive(m, 0, runtime.on_abort(thread))
    assert queue.peek_size() == 1  # the second enqueue rolled back


def test_concurrent_producers_consumers(m):
    """MPMC queue under contention: nothing lost, nothing duplicated."""
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    queue = TQueue(m, capacity=16)
    produced_per_thread = 25
    # Consumers log transactionally so aborted dequeues leave no trace.
    logs = {2: TArray(m, 200), 3: TArray(m, 200)}
    cursors = {2: TCounter(m), 3: TCounter(m)}

    def producer_items(offset):
        def make(value):
            def body(ctx):
                yield from queue.enqueue(ctx, value)

            return body

        sent = 0
        while sent < produced_per_thread:
            yield WorkItem(make(offset + sent))
            sent += 1

    def consumer_items(thread_id, count):
        def body(ctx):
            value = yield from queue.dequeue(ctx)
            if value is not None:
                slot = yield from cursors[thread_id].increment(ctx)
                yield from logs[thread_id].set(ctx, slot - 1, value)

        for _ in range(count):
            yield WorkItem(body)

    threads = [
        TxThread(0, runtime, producer_items(1000)),
        TxThread(1, runtime, producer_items(2000)),
        TxThread(2, runtime, consumer_items(2, 120)),
        TxThread(3, runtime, consumer_items(3, 120)),
    ]
    Scheduler(m, threads).run(cycle_limit=100_000_000)
    consumed = [
        logs[tid].peek(i) for tid in (2, 3) for i in range(cursors[tid].peek())
    ]
    drained = consumed + [
        m.memory.read(queue._slots.address_of((queue._head.peek() + i) % queue.capacity))
        for i in range(queue.peek_size())
    ]
    assert len(drained) == len(set(drained))  # no duplicates
    # Some enqueues bounced off a full queue (returned False); everything
    # that entered came out exactly once or is still queued.
    assert set(drained) <= set(range(1000, 1000 + produced_per_thread)) | set(
        range(2000, 2000 + produced_per_thread)
    )
    assert len(drained) > 0
