"""TxThread retry loop behaviour."""


from repro.errors import TransactionAborted
from repro.runtime.api import TMBackend
from repro.runtime.txthread import TxThread, WorkItem


class ScriptedBackend(TMBackend):
    """Commits succeed only after a scripted number of aborts."""

    def __init__(self, aborts_before_success=0):
        self.aborts_remaining = aborts_before_success
        self.events = []

    def begin(self, thread):
        self.events.append("begin")
        yield ("work", 1)

    def read(self, thread, address):
        yield ("work", 1)
        return 0

    def write(self, thread, address, value):
        yield ("work", 1)

    def commit(self, thread):
        yield ("work", 1)
        if self.aborts_remaining > 0:
            self.aborts_remaining -= 1
            raise TransactionAborted("scripted")
        self.events.append("commit")

    def on_abort(self, thread):
        self.events.append("on_abort")
        yield ("work", 1)

    def retry_backoff(self, aborts_in_a_row):
        return 0


def _drain(generator):
    ops = []
    try:
        while True:
            ops.append(generator.send(None))
    except StopIteration:
        return ops


def _body(ctx):
    yield from ctx.read(0)
    yield from ctx.write(0, 1)


def test_clean_run_commits_once():
    backend = ScriptedBackend()
    thread = TxThread(0, backend, iter([WorkItem(_body)]))
    _drain(thread.run())
    assert thread.commits == 1
    assert thread.aborts == 0
    assert backend.events == ["begin", "commit"]


def test_retries_until_commit():
    backend = ScriptedBackend(aborts_before_success=3)
    thread = TxThread(0, backend, iter([WorkItem(_body)]))
    _drain(thread.run())
    assert thread.commits == 1
    assert thread.aborts == 3
    assert backend.events.count("begin") == 4
    assert backend.events.count("on_abort") == 3
    assert backend.events[-1] == "commit"


def test_in_transaction_flag_tracks_lifecycle():
    backend = ScriptedBackend()
    thread = TxThread(0, backend, iter([WorkItem(_body)]))
    generator = thread.run()
    next(generator)  # inside begin
    assert thread.in_transaction
    _drain(generator)
    assert not thread.in_transaction


def test_nontransactional_items_bypass_begin_commit():
    backend = ScriptedBackend()

    def nontx(ctx):
        yield ("work", 5)

    thread = TxThread(0, backend, iter([WorkItem(nontx, transactional=False)]))
    ops = _drain(thread.run())
    assert ops == [("work", 5)]
    assert thread.nontx_items == 1
    assert backend.events == []


def test_yield_on_abort_emits_yield_cpu():
    backend = ScriptedBackend(aborts_before_success=1)
    thread = TxThread(0, backend, iter([WorkItem(_body)]), yield_on_abort=True)
    ops = _drain(thread.run())
    assert ("yield_cpu",) in ops
    assert thread.commits == 1


def test_abort_thrown_mid_body_is_caught():
    class WoundingBackend(ScriptedBackend):
        def read(self, thread, address):
            yield ("work", 1)
            if not self.events.count("on_abort"):
                raise TransactionAborted("mid-body wound")
            return 0

    backend = WoundingBackend()
    thread = TxThread(0, backend, iter([WorkItem(_body)]))
    _drain(thread.run())
    assert thread.aborts == 1
    assert thread.commits == 1
