"""Scheduler edge cases not covered by the main scheduler tests."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.errors import SchedulerError
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _one_tx(counter):
    def body(ctx):
        value = yield from ctx.read(counter)
        yield from ctx.write(counter, value + 1)

    yield WorkItem(body)


def test_yield_cpu_with_empty_ready_queue_is_cheap(m):
    """yield_cpu with nobody waiting must not context-switch."""
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)

    def body(ctx):
        yield ("yield_cpu",)
        yield ("work", 5)

    threads = [TxThread(0, runtime, iter([WorkItem(body, transactional=False)]))]
    result = Scheduler(m, threads).run(cycle_limit=100_000)
    assert result.stats.get("ctxsw.yields", 0) == 0
    assert result.nontx_items == 1


def test_yield_cpu_hands_core_to_waiting_thread(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    order = []

    def yielder(ctx):
        order.append("yielder-start")
        yield ("yield_cpu",)
        order.append("yielder-resumed")
        yield ("work", 1)

    def waiter(ctx):
        order.append("waiter-ran")
        yield ("work", 1)

    threads = [
        TxThread(0, runtime, iter([WorkItem(yielder, transactional=False)])),
        TxThread(1, runtime, iter([WorkItem(waiter, transactional=False)])),
    ]
    scheduler = Scheduler(m, threads, processors=[0])  # single core
    scheduler.run(cycle_limit=10_000_000)
    assert order.index("waiter-ran") < order.index("yielder-resumed")


def test_explicit_processor_subset(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    counter = m.allocate(64, line_aligned=True)
    threads = [TxThread(i, runtime, _one_tx(counter)) for i in range(3)]
    scheduler = Scheduler(m, threads, processors=[1, 2])
    result = scheduler.run(cycle_limit=10_000_000)
    assert result.commits == 3
    # Processor 0 never executed anything.
    assert m.processors[0].clock.now == 0
    assert m.processors[3].clock.now == 0


def test_empty_processor_list_rejected(m):
    runtime = FlexTMRuntime(m)
    with pytest.raises(SchedulerError):
        Scheduler(m, [TxThread(0, runtime, iter(()))], processors=[])


def test_finished_thread_frees_core_for_queued_thread(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    counter = m.allocate(64, line_aligned=True)
    # Three threads, one core, no quantum: strictly sequential hand-off.
    threads = [TxThread(i, runtime, _one_tx(counter)) for i in range(3)]
    scheduler = Scheduler(m, threads, quantum=None, processors=[0])
    result = scheduler.run(cycle_limit=10_000_000)
    assert result.commits == 3
    assert m.memory.read(counter) == 3


def test_run_result_abort_ratio_zero_when_idle():
    from repro.runtime.scheduler import RunResult

    result = RunResult(
        cycles=100, commits=0, aborts=0, nontx_items=0,
        per_thread=[], stats={}, conflict_degrees=[],
    )
    assert result.abort_ratio == 0.0
    assert result.throughput == 0.0
