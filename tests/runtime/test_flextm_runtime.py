"""FlexTM runtime: begin / Figure 3 Commit() / abort / eager manager."""

import pytest

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.errors import TransactionAborted
from repro.params import small_test_params
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.txthread import TxThread
from tests.helpers import drive


@pytest.fixture
def m():
    return FlexTMMachine(small_test_params(4))


def _thread(runtime, thread_id, proc):
    thread = TxThread(thread_id, runtime, items=iter(()))
    thread.processor = proc
    return thread


def test_begin_sets_up_descriptor_and_hardware(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    drive(m, 0, runtime.begin(thread))
    descriptor = thread.descriptor
    assert descriptor is not None
    assert m.read_status(descriptor) is TxStatus.ACTIVE
    assert m.processors[0].current is descriptor
    assert descriptor in runtime.cmt.active_on(0)
    tsw_line = m.amap.line_of(descriptor.tsw_address)
    assert m.processors[0].alerts.is_marked(tsw_line)


def test_begin_reuses_tsw_across_attempts(m):
    runtime = FlexTMRuntime(m)
    thread = _thread(runtime, 0, 0)
    drive(m, 0, runtime.begin(thread))
    first_tsw = thread.descriptor.tsw_address
    drive(m, 0, runtime.on_abort(thread))
    drive(m, 0, runtime.begin(thread))
    assert thread.descriptor.tsw_address == first_tsw
    assert thread.descriptor.incarnation == 2


def test_read_write_commit_roundtrip(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 7))
    assert drive(m, 0, runtime.read(thread, address)) == 7
    drive(m, 0, runtime.commit(thread))
    assert m.memory.read(address) == 7
    assert thread.descriptor.commits == 1
    assert m.processors[0].current is None


def test_lazy_commit_aborts_enemies(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    writer = _thread(runtime, 0, 0)
    reader = _thread(runtime, 1, 1)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(writer))
    drive(m, 1, runtime.begin(reader))
    drive(m, 0, runtime.write(writer, address, 5))
    drive(m, 1, runtime.read(reader, address))
    writer.in_transaction = True
    reader.in_transaction = True
    drive(m, 0, runtime.commit(writer))
    assert m.read_status(reader.descriptor) is TxStatus.ABORTED
    assert runtime.check_aborted(reader)
    assert m.memory.read(address) == 5


def test_commit_raises_when_aborted_first(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 5))
    m.memory.write(thread.descriptor.tsw_address, TxStatus.ABORTED)
    with pytest.raises(TransactionAborted):
        drive(m, 0, runtime.commit(thread))
    assert m.memory.read(address) == 0


def test_eager_manager_aborts_enemy_on_conflict(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.EAGER)
    attacker = _thread(runtime, 0, 0)
    victim = _thread(runtime, 1, 1)
    address = m.allocate_words(1)
    drive(m, 1, runtime.begin(victim))
    drive(m, 1, runtime.write(victim, address, 9))
    drive(m, 0, runtime.begin(attacker))
    # Attacker writes the same line; Polka eventually wounds the victim.
    drive(m, 0, runtime.write(attacker, address, 3))
    assert m.read_status(victim.descriptor) is TxStatus.ABORTED
    # Conflict resolved: attacker's CSTs are clean again.
    assert m.processors[0].csts.is_empty
    drive(m, 0, runtime.commit(attacker))
    assert m.memory.read(address) == 3


def test_eager_commit_with_no_conflicts_is_one_cas(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.EAGER)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 1))
    drive(m, 0, runtime.commit(thread))
    assert m.read_status(thread.descriptor) is TxStatus.COMMITTED


def test_on_abort_cleans_hardware_and_cmt(m):
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY)
    thread = _thread(runtime, 0, 0)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(thread))
    drive(m, 0, runtime.write(thread, address, 5))
    m.memory.write(thread.descriptor.tsw_address, TxStatus.ABORTED)
    drive(m, 0, runtime.on_abort(thread))
    assert m.processors[0].current is None
    assert thread.descriptor not in runtime.cmt.active_on(0)
    assert m.memory.read(address) == 0


def test_check_aborted_only_in_transaction(m):
    runtime = FlexTMRuntime(m)
    thread = _thread(runtime, 0, 0)
    assert not runtime.check_aborted(thread)
    drive(m, 0, runtime.begin(thread))
    thread.in_transaction = True
    assert not runtime.check_aborted(thread)
    m.memory.write(thread.descriptor.tsw_address, TxStatus.ABORTED)
    assert runtime.check_aborted(thread)


def test_clean_r_w_prevents_spurious_enemy_cas(m):
    """Figure 3's hygiene: a committing reader clears itself out of the
    writer's W-R so the writer does not CAS a dead transaction."""
    runtime = FlexTMRuntime(m, mode=ConflictMode.LAZY, clean_r_w=True)
    writer = _thread(runtime, 0, 0)
    reader = _thread(runtime, 1, 1)
    address = m.allocate_words(1)
    drive(m, 0, runtime.begin(writer))
    drive(m, 1, runtime.begin(reader))
    drive(m, 0, runtime.write(writer, address, 5))
    drive(m, 1, runtime.read(reader, address))
    assert m.processors[0].csts.w_r.test(1)
    drive(m, 1, runtime.commit(reader))  # reader commits first
    assert not m.processors[0].csts.w_r.test(1)
    drive(m, 0, runtime.commit(writer))
    assert m.read_status(writer.descriptor) is TxStatus.COMMITTED
