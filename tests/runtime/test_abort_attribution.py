"""Abort cause fidelity: who wounded whom, and why.

Every abort surfaced to the runtime carries the wounding processor and
the conflict kind (R-W / W-R / W-W / SI / migration / watchdog),
recorded by the machine at TSW-write time.  These tests lock the whole
pipeline: descriptor staging -> TransactionAborted -> per-thread
``abort_kinds`` -> RunResult.aborts_by_kind -> tracer events.
"""

import pytest

from repro.core.descriptor import ConflictMode
from repro.harness.runner import SYSTEMS, ExperimentConfig, run_experiment
from repro.obs.tracer import EventTracer
from repro.params import small_test_params
from repro.runtime.tmtypes import UNATTRIBUTED_KIND, WOUND_KINDS

#: The full cause vocabulary (the central registry) plus the bucket for
#: legacy backends that raise without attribution.
KNOWN_KINDS = WOUND_KINDS | {UNATTRIBUTED_KIND}


def _contended(system, mode=ConflictMode.EAGER, tracer=None, threads=4):
    return ExperimentConfig(
        workload="RandomGraph",
        system=system,
        threads=threads,
        mode=mode,
        cycle_limit=80_000,
        seed=3,
        params=small_test_params(4),
        tracer=tracer,
    )


def test_aborts_by_kind_accounts_for_every_abort():
    result = run_experiment(_contended("FlexTM"))
    assert result.aborts > 0, "need contention for this test to bite"
    assert sum(result.aborts_by_kind.values()) == result.aborts
    assert set(result.aborts_by_kind) <= KNOWN_KINDS


def test_eager_flextm_attributes_conflict_kinds():
    result = run_experiment(_contended("FlexTM"))
    attributed = {
        kind for kind in result.aborts_by_kind if kind in ("R-W", "W-R", "W-W")
    }
    assert attributed, f"no CST-kind attribution in {result.aborts_by_kind}"


def test_lazy_flextm_commit_wounds_are_attributed():
    result = run_experiment(_contended("FlexTM", mode=ConflictMode.LAZY))
    assert result.aborts > 0
    # Lazy conflicts resolve at commit: the winner wounds via W-W/W-R.
    assert set(result.aborts_by_kind) & {"W-W", "W-R"}, result.aborts_by_kind


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_every_backend_accounts_for_aborts(system):
    result = run_experiment(_contended(system))
    assert sum(result.aborts_by_kind.values()) == result.aborts
    assert set(result.aborts_by_kind) <= KNOWN_KINDS


def test_tracer_abort_events_carry_attribution():
    tracer = EventTracer(trace_coherence=False)
    result = run_experiment(_contended("FlexTM", tracer=tracer))
    abort_events = tracer.by_kind("tx_abort")
    assert len(abort_events) == result.aborts
    attributed = [event for event in abort_events if "conflict" in event.data]
    assert attributed, "no tx_abort event carried a conflict kind"
    for event in attributed:
        assert event.data["conflict"] in KNOWN_KINDS
        # The wounding processor rides along (or -1 when external).
        assert event.data["by"] >= -1
