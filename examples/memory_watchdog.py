#!/usr/bin/env python
"""FlexWatcher: catching memory bugs with TM hardware (Section 8).

Uses FlexTM's signatures and alert-on-update for something entirely
non-transactional: a memory watchdog.  The example pads a set of heap
buffers, watches the pads, runs a buggy program that eventually writes
one byte past a buffer, and shows the overflow being caught at a
fraction of the cost of binary instrumentation.

Run:  python examples/memory_watchdog.py
"""

from repro.tools.bugbench import BUGBENCH, run_program
from repro.tools.discover import DiscoverInstrumenter
from repro.tools.flexwatcher import FlexWatcher, WatchMode


def hand_rolled_demo() -> None:
    """Watch three buffers by hand and overflow one of them."""
    watcher = FlexWatcher(WatchMode.BUFFER_OVERFLOW)
    buffers = []
    cursor = 0x10_000
    for _ in range(3):
        buffers.append(cursor)
        cursor += 256  # buffer body
        watcher.watch(cursor, 64)  # 64-byte pad after the buffer
        cursor += 64
    watcher.activate()

    # Normal traffic: in-bounds writes are completely free.
    for offset in range(0, 256, 8):
        assert watcher.access(buffers[0] + offset, is_write=True) is None

    # The bug: a write 4 bytes past the end of buffer 1.
    label = watcher.access(buffers[1] + 256 + 4, is_write=True)
    print(f"  overflow write flagged as: {label}")
    print(f"  alerts={watcher.alerts}  handler-confirmed={watcher.true_alerts}")
    assert label == "buffer-overflow"


def bugbench_sweep() -> None:
    """The Table 4(b) experiment: five buggy programs, two tools."""
    discover = DiscoverInstrumenter()
    print(f"  {'program':9s} {'FlexWatcher':>12s} {'Discover':>9s} {'bugs':>5s}")
    for name, program in BUGBENCH.items():
        report = run_program(program)
        slowdown = discover.slowdown(program)
        discover_text = f"{slowdown:.0f}x" if slowdown else "N/A"
        print(
            f"  {name:9s} {report.slowdown:11.2f}x {discover_text:>9s} "
            f"{report.bugs_detected:5d}"
        )


def main() -> None:
    print("1. Hand-rolled buffer-overflow watchdog")
    hand_rolled_demo()
    print("\n2. BugBench sweep (Table 4b)")
    bugbench_sweep()
    print(
        "\nSignatures give unbounded watchpoints at hardware speed; the"
        "\nonly cost is the occasional handler trap — versus a fixed"
        "\nper-access penalty for whole-binary instrumentation."
    )


if __name__ == "__main__":
    main()
