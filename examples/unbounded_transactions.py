#!/usr/bin/env python
"""Unbounded transactions: overflow tables and context switches.

Demonstrates the two virtualization stories of Sections 4 and 5:

1. **Space** — a transaction whose write set overflows a (deliberately
   tiny) L1 spills TMI lines into the per-thread overflow table and
   still commits atomically.
2. **Time** — more threads than cores with a small scheduling quantum:
   transactions are descheduled mid-flight, their signatures fold into
   the directory's summary signatures, and conflicts against suspended
   transactions are still caught.

Run:  python examples/unbounded_transactions.py
"""

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import CacheGeometry, SystemParams
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem


def overflow_demo() -> None:
    # A 1KB direct-mapped L1: a 40-line write set cannot fit.
    params = SystemParams(
        num_processors=4,
        l1=CacheGeometry(size_bytes=1024, associativity=1, line_bytes=64),
        l2=CacheGeometry(size_bytes=64 * 1024, associativity=8, line_bytes=64),
        victim_buffer_entries=0,
    )
    machine = FlexTMMachine(params)
    runtime = FlexTMRuntime(machine, mode=ConflictMode.LAZY)
    lines = 40
    base = machine.allocate(lines * 64, line_aligned=True)

    def big_write_set(ctx):
        for index in range(lines):
            yield from ctx.write(base + index * 64, index + 1)

    threads = [TxThread(0, runtime, iter([WorkItem(big_write_set)]))]
    result = Scheduler(machine, threads).run(cycle_limit=10_000_000)
    spills = result.stats.get("ot.spills", 0)
    committed_values = sum(machine.memory.read(base + i * 64) for i in range(lines))
    print(f"  write set        : {lines} lines into a 16-line L1")
    print(f"  OT spills        : {spills}")
    print(f"  commits          : {result.commits}")
    print(f"  values published : {committed_values == lines * (lines + 1) // 2}")
    assert result.commits == 1 and spills > 0


def context_switch_demo() -> None:
    machine = FlexTMMachine(SystemParams(num_processors=2))
    runtime = FlexTMRuntime(machine, mode=ConflictMode.LAZY)
    counter = machine.allocate(64, line_aligned=True)

    def slow_increment(ctx):
        value = yield from ctx.read(counter)
        for _ in range(20):
            yield from ctx.work(200)  # long enough to get preempted
        yield from ctx.write(counter, value + 1)

    def items(count):
        for _ in range(count):
            yield WorkItem(slow_increment)

    # 6 threads on 2 cores, 1500-cycle quantum: constant descheduling.
    threads = [TxThread(i, runtime, items(4)) for i in range(6)]
    scheduler = Scheduler(machine, threads, quantum=1_500)
    result = scheduler.run(cycle_limit=100_000_000)
    print(f"  context switches : {result.stats.get('ctxsw.switches', 0)}")
    print(f"  summary traps    : {result.stats.get('summary.traps', 0)}")
    print(f"  commits          : {result.commits}  aborts: {result.aborts}")
    print(f"  final counter    : {machine.memory.read(counter)} (== commits)")
    assert machine.memory.read(counter) == result.commits == 24


def main() -> None:
    print("1. Space virtualization (overflow table)")
    overflow_demo()
    print("\n2. Time virtualization (context switches + summary signatures)")
    context_switch_demo()


if __name__ == "__main__":
    main()
