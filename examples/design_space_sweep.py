#!/usr/bin/env python
"""Design-space exploration: sweep, export, diagnose.

Shows the library as a research tool rather than a fixed benchmark:
run a cartesian sweep over systems and thread counts — fanned out
across every CPU core; rows are bit-identical to a serial run — export
the rows as CSV, and run the pathology analyzer over the interesting
corners to *explain* the curves (FriendlyFire / DuellingUpgrade /
Convoying, per the Bobba et al. taxonomy the paper uses).

Run:  python examples/design_space_sweep.py
"""

import os

from repro.core.descriptor import ConflictMode
from repro.harness.pathology import analyze, render
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.harness.sweep import SweepSpec, run_sweep, to_csv

CYCLES = 120_000


def main() -> None:
    spec = SweepSpec(
        workloads=["RBTree", "LFUCache"],
        systems=["CGL", "FlexTM"],
        thread_counts=(1, 4, 8),
        modes=(ConflictMode.EAGER, ConflictMode.LAZY),
        seeds=(42,),
        cycle_limit=CYCLES,
    )
    jobs = os.cpu_count() or 1
    print(f"sweeping {spec.size()} configurations "
          f"({CYCLES} simulated cycles each, {jobs} worker(s))...\n")
    rows = run_sweep(spec, jobs=jobs)
    print(to_csv(rows))

    print("pathology analysis of the contended corners:")
    for workload in ("RBTree", "LFUCache"):
        for mode in (ConflictMode.EAGER, ConflictMode.LAZY):
            result = run_experiment(
                ExperimentConfig(
                    workload=workload,
                    system="FlexTM",
                    threads=8,
                    mode=mode,
                    cycle_limit=CYCLES,
                )
            )
            report = analyze(result)
            print(f"  {workload:9s} {mode.value:5s}: {render(report)}")
    print(
        "\nEager LFUCache should grade worst (futile-stall cascades on the"
        "\nZipf-hot lines); lazy modes defer arbitration to commit time."
    )


if __name__ == "__main__":
    main()
