#!/usr/bin/env python
"""Vacation: a travel-reservation service on FlexTM vs TL-2.

Runs the paper's WS2 workload — client threads booking resources out of
red-black-tree database tables — on FlexTM and on the TL-2 software TM,
at both contention levels, and reports throughput plus the inventory
invariant (no resource oversold, every booking paid for).

Run:  python examples/vacation_reservations.py
"""

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import SystemParams
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.stm.tl2 import Tl2Runtime
from repro.workloads.base import word_address
from repro.workloads.rbtree import DEAD, KEY, LEFT, NIL, RIGHT, VALUE
from repro.workloads.vacation import (
    NUM_CUSTOMERS,
    NUM_TABLES,
    R_AVAILABLE,
    R_TOTAL,
    VacationWorkload,
)

THREADS = 8
CYCLES = 250_000


def _walk_records(machine, table):
    """Untimed in-order walk of one database table."""
    stack = [machine.memory.read(table.root_address)]
    while stack:
        node = stack.pop()
        if node == NIL:
            continue
        stack.append(machine.memory.read(word_address(node, LEFT)))
        stack.append(machine.memory.read(word_address(node, RIGHT)))
        if not machine.memory.read(word_address(node, DEAD)):
            yield machine.memory.read(word_address(node, VALUE))


def check_inventory(machine, workload) -> tuple:
    """(units booked, customer spend) with the no-overselling assert."""
    booked = 0
    for table in workload.tables:
        for record in _walk_records(machine, table):
            total = machine.memory.read(word_address(record, R_TOTAL))
            available = machine.memory.read(word_address(record, R_AVAILABLE))
            assert 0 <= available <= total, "resource oversold!"
            booked += total - available
    spend = sum(
        machine.memory.read(workload.customer_base + c * machine.params.line_bytes)
        for c in range(NUM_CUSTOMERS)
    )
    return booked, spend


def run(system: str, contention: str) -> None:
    machine = FlexTMMachine(SystemParams())
    if system == "FlexTM":
        backend = FlexTMRuntime(machine, mode=ConflictMode.EAGER)
    else:
        backend = Tl2Runtime(machine)
    workload = VacationWorkload(machine, seed=11, contention=contention)
    threads = [TxThread(i, backend, workload.items(i)) for i in range(THREADS)]
    result = Scheduler(machine, threads).run(cycle_limit=CYCLES)
    booked, spend = check_inventory(machine, workload)
    print(
        f"{system:7s} {contention:5s}  commits={result.commits:5d}  "
        f"aborts={result.aborts:4d}  tput={result.throughput:8.1f}  "
        f"booked={booked:4d}  revenue={spend}"
    )


def main() -> None:
    print(f"Vacation reservation system, {THREADS} client threads ({NUM_TABLES} tables)\n")
    for contention in ("low", "high"):
        for system in ("FlexTM", "TL2"):
            run(system, contention)
    print("\nInventory invariant held on every run (no overselling).")


if __name__ == "__main__":
    main()
