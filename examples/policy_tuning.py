#!/usr/bin/env python
"""Policy tuning: eager vs lazy conflict management, in software.

FlexTM's headline claim is that conflict-management *policy* lives in
software while the hardware only provides mechanisms.  This example
runs the same contended workload (LFUCache, whose Zipf page stream
admits almost no concurrency) under both policies and two different
contention managers, showing how a two-line change flips the machine's
behaviour — no "hardware" change involved.

Run:  python examples/policy_tuning.py
"""

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import SystemParams
from repro.runtime.contention import AggressiveManager, PolkaManager
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads.lfucache import LFUCacheWorkload

THREADS = 8
CYCLES = 300_000


def run(mode: ConflictMode, manager) -> tuple:
    machine = FlexTMMachine(SystemParams())
    runtime = FlexTMRuntime(machine, mode=mode, manager=manager)
    workload = LFUCacheWorkload(machine, seed=42)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(THREADS)]
    result = Scheduler(machine, threads).run(cycle_limit=CYCLES)
    return result.commits, result.aborts, result.throughput


def main() -> None:
    print(f"LFUCache, {THREADS} threads, {CYCLES} cycles per run\n")
    print(f"{'policy':28s} {'commits':>8s} {'aborts':>8s} {'txn/Mcyc':>10s}")
    for label, mode, manager in [
        ("eager + Polka", ConflictMode.EAGER, PolkaManager()),
        ("eager + Aggressive", ConflictMode.EAGER, AggressiveManager()),
        ("lazy  + Polka", ConflictMode.LAZY, PolkaManager()),
        ("lazy  + Aggressive", ConflictMode.LAZY, AggressiveManager()),
    ]:
        commits, aborts, throughput = run(mode, manager)
        print(f"{label:28s} {commits:8d} {aborts:8d} {throughput:10.1f}")
    print(
        "\nLazy management defers arbitration to commit time, when the"
        "\ncommitting transaction is almost certain to win — so doomed"
        "\nwork shrinks and throughput rises on this conflict-heavy mix"
        "\n(Section 7.4 of the paper)."
    )


if __name__ == "__main__":
    main()
