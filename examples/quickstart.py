#!/usr/bin/env python
"""Quickstart: run concurrent transactions on simulated FlexTM hardware.

Builds a 16-core FlexTM machine, spawns four threads that transfer
money between shared accounts transactionally, and prints throughput,
abort counts, and the conserved total balance.

Run:  python examples/quickstart.py
"""

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import SystemParams
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem
from repro.sim.rng import DeterministicRng

NUM_ACCOUNTS = 16
INITIAL_BALANCE = 1_000
TRANSFERS_PER_THREAD = 200
NUM_THREADS = 4


def main() -> None:
    machine = FlexTMMachine(SystemParams())
    runtime = FlexTMRuntime(machine, mode=ConflictMode.LAZY)

    # Shared state lives in *simulated* memory: allocate padded accounts.
    line = machine.params.line_bytes
    base = machine.allocate(NUM_ACCOUNTS * line, line_aligned=True)
    accounts = [base + index * line for index in range(NUM_ACCOUNTS)]
    for account in accounts:
        machine.memory.write(account, INITIAL_BALANCE)

    # A transaction body is a generator over the TxContext: every read
    # and write is a `yield from`, which is how the scheduler interleaves
    # simulated threads at memory-operation granularity.
    def make_transfer(src, dst, amount):
        def transfer(ctx):
            src_balance = yield from ctx.read(src)
            dst_balance = yield from ctx.read(dst)
            yield from ctx.write(src, src_balance - amount)
            yield from ctx.write(dst, dst_balance + amount)

        return transfer

    def items(seed):
        rng = DeterministicRng(seed)
        for _ in range(TRANSFERS_PER_THREAD):
            src, dst = rng.sample(accounts, 2)
            yield WorkItem(make_transfer(src, dst, rng.randint(1, 100)))

    threads = [TxThread(i, runtime, items(seed=i)) for i in range(NUM_THREADS)]
    result = Scheduler(machine, threads).run(cycle_limit=50_000_000)

    total = sum(machine.memory.read(account) for account in accounts)
    print(f"committed transactions : {result.commits}")
    print(f"aborted attempts       : {result.aborts}")
    print(f"simulated cycles       : {result.cycles}")
    print(f"throughput             : {result.throughput:.1f} txn / M cycles")
    print(f"total balance          : {total} (expected {NUM_ACCOUNTS * INITIAL_BALANCE})")
    assert total == NUM_ACCOUNTS * INITIAL_BALANCE, "atomicity violated!"
    print("atomicity check        : PASSED")


if __name__ == "__main__":
    main()
