#!/usr/bin/env python
"""Producer/consumer pipeline on transactional data types.

Uses the typed TM library (`repro.runtime.tmtypes`) instead of raw
addresses: a bounded TQueue moves work items from two producers to two
consumers, with TCounters tracking totals — everything atomic, no
locks, running on simulated FlexTM hardware.

Run:  python examples/producer_consumer.py
"""

from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import SystemParams
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.tmtypes import TCounter, TQueue
from repro.runtime.txthread import TxThread, WorkItem

ITEMS_PER_PRODUCER = 60
QUEUE_CAPACITY = 8


def main() -> None:
    machine = FlexTMMachine(SystemParams())
    runtime = FlexTMRuntime(machine, mode=ConflictMode.LAZY)
    queue = TQueue(machine, capacity=QUEUE_CAPACITY)
    produced = TCounter(machine)
    consumed_sum = TCounter(machine)
    consumed_count = TCounter(machine)

    def producer_items(base, my_count):
        def make(value):
            def body(ctx):
                ok = yield from queue.enqueue(ctx, value)
                if ok:
                    yield from produced.increment(ctx)
                    yield from my_count.increment(ctx)

            return body

        # A full queue makes enqueue a committed no-op; re-offer the
        # same value in a fresh transaction until it lands (the item
        # stream peeks at the committed per-producer count to advance).
        while my_count.peek() < ITEMS_PER_PRODUCER:
            yield WorkItem(make(base + my_count.peek()))

    def consumer_items():
        def body(ctx):
            value = yield from queue.dequeue(ctx)
            if value is not None:
                yield from consumed_sum.increment(ctx, value)
                yield from consumed_count.increment(ctx)

        while consumed_count.peek() < 2 * ITEMS_PER_PRODUCER:
            yield WorkItem(body)

    counts = [TCounter(machine), TCounter(machine)]
    threads = [
        TxThread(0, runtime, producer_items(10_000, counts[0])),
        TxThread(1, runtime, producer_items(20_000, counts[1])),
        TxThread(2, runtime, consumer_items()),
        TxThread(3, runtime, consumer_items()),
    ]
    result = Scheduler(machine, threads).run(cycle_limit=200_000_000)

    expected_sum = sum(range(10_000, 10_000 + ITEMS_PER_PRODUCER)) + sum(
        range(20_000, 20_000 + ITEMS_PER_PRODUCER)
    )
    print(f"produced       : {produced.peek()}")
    print(f"consumed       : {consumed_count.peek()}")
    print(f"sum check      : {consumed_sum.peek()} (expected {expected_sum})")
    print(f"commits/aborts : {result.commits}/{result.aborts}")
    assert consumed_count.peek() == 2 * ITEMS_PER_PRODUCER
    assert consumed_sum.peek() == expected_sum
    print("pipeline integrity: PASSED")


if __name__ == "__main__":
    main()
