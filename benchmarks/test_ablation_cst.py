"""Ablation — what CSTs buy (DESIGN.md).

FlexTM's CSTs let a committing transaction abort exactly the
processors it conflicted with.  The strawman alternative this bench
compares against is 'abort everybody active' (the effect of global
arbitration / write-set broadcast in token- or bus-based lazy schemes,
which serialize or over-kill).  We emulate the strawman by running the
lazy commit with an Aggressive manager that wounds every active
transaction, and measure the wasted aborts.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.core.tsw import TxStatus
from repro.params import SystemParams
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads import WORKLOADS


class BroadcastAbortRuntime(FlexTMRuntime):
    """Strawman: commit aborts *every* active transaction (no CSTs)."""

    name = "FlexTM-broadcast"

    def commit(self, thread):
        thread.nest_depth = 0  # flat transactions only in this strawman
        proc_id = thread.processor
        descriptor = thread.descriptor
        # Wound everyone else who is active, conflicting or not.
        for processor in range(self.machine.params.num_processors):
            if processor == proc_id:
                continue
            for enemy in self.cmt.active_on(processor):
                if enemy is descriptor:
                    continue
                yield ("cas", enemy.tsw_address, TxStatus.ACTIVE, TxStatus.ABORTED)
        # Clear our own CSTs (we 'resolved' everything) and CAS-Commit.
        proc = self.machine.processors[proc_id]
        proc.csts.clear()
        result = yield ("cas_commit",)
        if result.success:
            descriptor.commits += 1
            self._finish(thread)
            return
        from repro.errors import TransactionAborted

        raise TransactionAborted("lost the commit race")


def _run(runtime_cls, cycles):
    machine = FlexTMMachine(SystemParams())
    runtime = runtime_cls(machine, mode=ConflictMode.LAZY)
    workload = WORKLOADS["RBTree"](machine, seed=42)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(8)]
    return Scheduler(machine, threads).run(cycle_limit=cycles)


def test_cst_targeted_aborts_beat_broadcast(benchmark, bench_cycles):
    def sweep():
        return {
            "CST-targeted": _run(FlexTMRuntime, bench_cycles),
            "broadcast": _run(BroadcastAbortRuntime, bench_cycles),
        }

    results = run_once(benchmark, sweep)
    print()
    for name, result in results.items():
        print(
            f"  {name:13s} commits={result.commits:6d} aborts={result.aborts:6d} "
            f"tput={result.throughput:9.1f}"
        )
    targeted = results["CST-targeted"]
    broadcast = results["broadcast"]
    # Broadcasting wounds innocents: many more aborts per commit...
    assert broadcast.aborts / max(1, broadcast.commits) > (
        targeted.aborts / max(1, targeted.commits)
    )
    # ...and lower throughput.
    assert targeted.throughput > broadcast.throughput
