"""Ablation — convoying behind descheduled transactions (Section 5).

The paper argues LogTM-SE's lack of remote aborts lets running
transactions "convoy" behind a suspended one; FlexTM's CSTs + AOU let
them wound it and proceed.  This bench oversubscribes a single hot-line
workload so writers are regularly descheduled mid-transaction and
compares committed throughput.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import SystemParams
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread, WorkItem
from repro.stm.logtmse import LogTmSeRuntime


def _run(runtime_cls, cycles):
    machine = FlexTMMachine(SystemParams(num_processors=4))
    if runtime_cls is FlexTMRuntime:
        runtime = FlexTMRuntime(machine, mode=ConflictMode.LAZY)
    else:
        runtime = runtime_cls(machine)
    hot = machine.allocate(machine.params.line_bytes, line_aligned=True)

    def mixed(ctx):
        value = yield from ctx.read(hot)
        for _ in range(10):
            yield from ctx.work(80)  # long enough to straddle quanta
        yield from ctx.write(hot, value + 1)

    def items():
        while True:
            yield WorkItem(mixed)

    # 8 threads on 4 cores with a short quantum: transactions are
    # routinely suspended mid-flight while holding conflicts.
    threads = [TxThread(i, runtime, items()) for i in range(8)]
    scheduler = Scheduler(machine, threads, quantum=1_500)
    return scheduler.run(cycle_limit=cycles)


def test_flextm_breaks_the_convoy(benchmark, bench_cycles):
    def sweep():
        return {
            "FlexTM": _run(FlexTMRuntime, bench_cycles),
            "LogTM-SE": _run(LogTmSeRuntime, bench_cycles),
        }

    results = run_once(benchmark, sweep)
    print()
    for name, result in results.items():
        print(
            f"  {name:9s} commits={result.commits:6d} aborts={result.aborts:6d} "
            f"switches={result.stats.get('ctxsw.switches', 0):5d} "
            f"tput={result.throughput:9.1f}"
        )
    flextm = results["FlexTM"]
    logtm = results["LogTM-SE"]
    # Both actually context-switched mid-transaction.
    assert flextm.stats.get("ctxsw.switches", 0) > 0
    assert logtm.stats.get("ctxsw.switches", 0) > 0
    # FlexTM's remote aborts break the convoy: clearly higher commits.
    assert flextm.commits > logtm.commits * 1.3
