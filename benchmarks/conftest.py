"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (figure series or table
rows), prints it, and asserts the paper's *qualitative shape* — who
wins, by roughly what factor, where the crossovers fall.  Absolute
numbers differ from the paper's Simics/GEMS testbed by design.

Environment knobs:

``REPRO_BENCH_CYCLES``  — simulated cycles per measurement point
    (default 150_000; raise for lower-variance, slower runs).
``REPRO_BENCH_FULL``    — set to 1 to sweep the paper's full thread
    grid (1, 2, 4, 8, 16) instead of the fast default (1, 4, 8).
"""

from __future__ import annotations

import os

import pytest

BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", 150_000))
FULL_SWEEP = os.environ.get("REPRO_BENCH_FULL", "") == "1"
THREAD_POINTS = (1, 2, 4, 8, 16) if FULL_SWEEP else (1, 4, 8)
POLICY_THREAD_POINTS = (1, 2, 4, 8, 16) if FULL_SWEEP else (2, 8, 16)


@pytest.fixture(scope="session")
def bench_cycles() -> int:
    return BENCH_CYCLES


@pytest.fixture(scope="session")
def thread_points():
    return THREAD_POINTS


@pytest.fixture(scope="session")
def policy_thread_points():
    return POLICY_THREAD_POINTS


def run_once(benchmark, fn):
    """Run a harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
