"""E5 — Table 2: FlexTM area across Merom, Power6, Niagara-2."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.area.model import PROCESSORS
from repro.harness.table2 import render_table2, run_table2


def test_table2(benchmark):
    results = run_once(benchmark, run_table2)
    print()
    print(render_table2(results))

    for spec in PROCESSORS:
        estimate = results[spec.name]["estimate"]
        published = results[spec.name]["published"]
        assert estimate.signature_mm2 == pytest.approx(
            published["signature_mm2"], rel=0.05
        ), spec.name
        assert estimate.cst_registers == published["cst_registers"]
        assert estimate.extra_state_bits == published["extra_state_bits"]
        assert estimate.core_increase_percent == pytest.approx(
            published["core_increase_percent"], rel=0.25
        ), spec.name

    # Section 6's headline: add-ons noticeable (~2.6%) only on the
    # 8-way SMT with small lines; well under 1% on the OoO cores.
    assert results["Niagara-2"]["estimate"].core_increase_percent > 2.0
    assert results["Merom"]["estimate"].core_increase_percent < 1.0
    assert results["Power6"]["estimate"].core_increase_percent < 1.0


def test_signature_sizing_sweep(benchmark):
    """Area scales linearly in signature bits — the knob Sanchez et al.
    studied; confirms our model is usable for design exploration."""
    from repro.area.model import FlexTMAreaModel, NIAGARA2

    def sweep():
        return {
            bits: FlexTMAreaModel(signature_bits=bits).signature_area(NIAGARA2)
            for bits in (512, 1024, 2048, 4096)
        }

    areas = run_once(benchmark, sweep)
    print()
    for bits, area in areas.items():
        print(f"  {bits:5d} bits -> {area:.3f} mm^2")
    assert areas[4096] == pytest.approx(8 * areas[512], rel=0.01)
