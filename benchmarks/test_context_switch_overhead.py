"""E8 ablation — context-switch virtualization overhead (Section 5).

No figure in the paper, but a headline functional claim: transactions
extend across context switches, with summary signatures checked only on
L1 misses (not on the hit path like LogTM-SE).  This bench measures the
throughput retained when a workload is 2x oversubscribed with a small
quantum versus running undisturbed.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import SystemParams
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads import WORKLOADS


def _run(threads, processors, quantum, cycles):
    machine = FlexTMMachine(SystemParams())
    runtime = FlexTMRuntime(machine, mode=ConflictMode.LAZY)
    workload = WORKLOADS["HashTable"](machine, seed=42)
    tx_threads = [TxThread(i, runtime, workload.items(i)) for i in range(threads)]
    scheduler = Scheduler(
        machine, tx_threads, quantum=quantum, processors=list(range(processors))
    )
    return scheduler.run(cycle_limit=cycles)


def test_context_switch_overhead(benchmark, bench_cycles):
    def sweep():
        return {
            "dedicated (8 on 8)": _run(8, 8, None, bench_cycles),
            "oversubscribed (16 on 8)": _run(16, 8, 10_000, bench_cycles),
        }

    results = run_once(benchmark, sweep)
    print()
    for name, result in results.items():
        switches = result.stats.get("ctxsw.switches", 0)
        traps = result.stats.get("summary.traps", 0)
        print(
            f"  {name:26s} commits={result.commits:6d} tput={result.throughput:9.1f} "
            f"switches={switches:5d} summary-traps={traps:4d}"
        )
    dedicated = results["dedicated (8 on 8)"]
    oversubscribed = results["oversubscribed (16 on 8)"]
    # Switching actually happened and transactions survived it.
    assert oversubscribed.stats.get("ctxsw.switches", 0) > 0
    assert oversubscribed.commits > 0
    # The virtualization machinery keeps most of the throughput: the
    # same 8 cores should not lose more than half to switching.
    assert oversubscribed.throughput > dedicated.throughput * 0.5
