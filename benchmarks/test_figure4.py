"""E1 — Figure 4(a)-(g): throughput and scalability.

Regenerates the normalized-throughput series for every workload and
checks the paper's qualitative claims:

* FlexTM tracks CGL at one thread (within ~2x) and scales on the
  scalable workloads;
* FlexTM beats RTM-F (~2x), RSTM (~5.5x) and TL2 (~4.5x) once threads
  and working sets grow;
* LFUCache and RandomGraph do not scale;
* Delaunay (data-parallel) keeps FlexTM near CGL.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.figure4 import render_figure4, run_figure4, systems_for

_RESULTS = {}


def _series(points, system):
    return {p.threads: p.normalized for p in points if p.system == system}


@pytest.mark.parametrize(
    "workload",
    ["HashTable", "RBTree", "LFUCache", "RandomGraph", "Delaunay", "Vacation-Low", "Vacation-High"],
)
def test_figure4_workload(benchmark, workload, thread_points, bench_cycles):
    result = run_once(
        benchmark,
        lambda: run_figure4(
            workloads=[workload], thread_points=thread_points, cycle_limit=bench_cycles
        ),
    )
    points = result[workload]
    _RESULTS[workload] = points
    print()
    print(render_figure4(result))

    flextm = _series(points, "FlexTM")
    cgl = _series(points, "CGL")
    top = max(thread_points)

    if workload == "Delaunay":
        # Delaunay is data-parallel outside its tiny transactions, so
        # *everything* scales; the paper's claim is that FlexTM and CGL
        # track closely while the STMs halve (metadata cache misses).
        assert max(cgl.values()) > 1.5  # CGL does scale here
        assert flextm[top] > cgl[top] * 0.6
    else:
        # A single lock serializes every other workload: CGL's best
        # point stays within noise of one thread.
        assert max(cgl.values()) <= cgl[1] * 1.6

    # FlexTM at one thread is in CGL's neighbourhood (no bookkeeping).
    assert flextm[1] > 0.4

    if workload in ("HashTable", "RBTree", "Vacation-Low", "Vacation-High"):
        # Scalable workloads: FlexTM beats 1-thread CGL clearly.
        assert flextm[top] > 1.5
        assert flextm[top] > cgl[top] * 1.5
    if workload in ("LFUCache", "RandomGraph"):
        # No concurrency to exploit under eager management: throughput
        # stays flat or collapses (Figure 4c/4d).
        assert flextm[top] < flextm[1] * 2.5

    if workload in ("Vacation-Low", "Vacation-High"):
        tl2 = _series(points, "TL2")
        # FlexTM ~4x TL2 at one thread (Section 7.3).
        assert flextm[1] / max(tl2[1], 1e-9) > 2.0
    else:
        rstm = _series(points, "RSTM")
        rtmf = _series(points, "RTM-F")
        # Bookkeeping hierarchy at the top thread count:
        # FlexTM > RTM-F > RSTM on contended/scalable structures.
        if workload in ("HashTable", "RBTree"):
            assert flextm[top] > rtmf[top] > rstm[top]
            assert flextm[top] / max(rstm[top], 1e-9) > 2.0
