"""E6 — Table 4(b): FlexWatcher vs Discover on BugBench."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.table4 import PUBLISHED_TABLE4, render_table4, run_table4


def test_table4(benchmark):
    results = run_once(benchmark, run_table4)
    print()
    print(render_table4(results))

    for name, data in results.items():
        published = PUBLISHED_TABLE4[name]
        # FlexWatcher overheads stay in the paper's 5%-2.5x band...
        assert 1.0 <= data["flexwatcher"] <= 3.2, name
        # ...and near each published value.
        assert data["flexwatcher"] == pytest.approx(
            published["flexwatcher"], rel=0.4
        ), name
        # Every program's bug is actually caught.
        assert data["bugs_detected"] > 0, name
        # Discover is an order of magnitude (or two) worse.
        if data["discover"] is not None:
            assert data["discover"] > 10 * data["flexwatcher"], name
            assert data["discover"] == pytest.approx(
                published["discover"], rel=0.3
            ), name
        else:
            assert published["discover"] is None

    # The ordering of overheads follows the published table:
    # Gzip-IV < Gzip-BO < BC-BO < Man < Squid.
    order = ["Gzip-IV", "Gzip-BO", "BC-BO", "Man", "Squid"]
    slowdowns = [results[name]["flexwatcher"] for name in order]
    assert slowdowns == sorted(slowdowns)
