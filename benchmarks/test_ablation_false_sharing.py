"""Ablation — line-granularity conflict detection and false sharing.

FlexTM detects conflicts at cache-line granularity (signatures insert
line addresses), so logically independent words that share a line
conflict anyway.  This bench runs independent per-thread counters in
two layouts — padded (one counter per line) and packed (eight counters
per line) — and measures the false-sharing tax, a design consequence
the paper's choice of line-granularity signatures accepts.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import SystemParams
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.tmtypes import TArray
from repro.runtime.txthread import TxThread, WorkItem

THREADS = 8


def _run(padded: bool, cycles: int):
    machine = FlexTMMachine(SystemParams())
    runtime = FlexTMRuntime(machine, mode=ConflictMode.LAZY)
    counters = TArray(machine, THREADS, padded=padded)

    def items(index):
        def body(ctx):
            value = yield from counters.get(ctx, index)
            yield from ctx.work(20)
            yield from counters.set(ctx, index, value + 1)

        while True:
            yield WorkItem(body)

    threads = [TxThread(i, runtime, items(i)) for i in range(THREADS)]
    result = Scheduler(machine, threads).run(cycle_limit=cycles)
    # Sanity: per-thread counters must equal per-thread commits even
    # under false sharing (conflicts cost time, never correctness).
    for entry in result.per_thread:
        assert counters.peek(entry["thread_id"]) == entry["commits"]
    return result


def test_false_sharing_tax(benchmark, bench_cycles):
    def sweep():
        return {
            "padded": _run(True, bench_cycles),
            "packed": _run(False, bench_cycles),
        }

    results = run_once(benchmark, sweep)
    print()
    for name, result in results.items():
        print(
            f"  {name:7s} commits={result.commits:6d} aborts={result.aborts:6d} "
            f"tput={result.throughput:9.1f}"
        )
    padded = results["padded"]
    packed = results["packed"]
    # Independent counters: padded layout has (almost) no aborts.
    assert padded.aborts <= padded.commits * 0.02
    # Packing eight counters into one line manufactures conflicts...
    assert packed.aborts > padded.aborts * 5
    # ...and costs real throughput.
    assert padded.throughput > packed.throughput * 1.3
