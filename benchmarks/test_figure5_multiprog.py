"""E4 — Figure 5(e)/(f): multiprogramming with Prime factorization.

Prime threads share the machine with a non-scalable transactional
workload (RandomGraph or LFUCache); transactional threads yield the
CPU on abort.  The paper's finding: Eager detects doomed transactions
earlier and frees cores sooner, so Prime completes more work under
Eager than under Lazy — without hurting the transactional side, which
had no concurrency to lose anyway.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.figure5 import render_multiprogramming, run_multiprogramming


@pytest.mark.parametrize("workload", ["RandomGraph", "LFUCache"])
def test_figure5_multiprogramming(benchmark, workload, bench_cycles):
    thread_points = (4, 8)
    results = run_once(
        benchmark,
        lambda: run_multiprogramming(
            workloads=[workload], thread_points=thread_points, cycle_limit=bench_cycles
        ),
    )
    points = results[workload]
    print()
    print(render_multiprogramming(results))

    prime = {
        mode: {p.threads: p.prime_items for p in points if p.mode == mode}
        for mode in ("eager", "lazy")
    }
    commits = {
        mode: {p.threads: p.tx_commits for p in points if p.mode == mode}
        for mode in ("eager", "lazy")
    }
    top = max(thread_points)

    # Prime makes progress in both modes...
    assert prime["eager"][top] > 0 and prime["lazy"][top] > 0
    # ...but Eager frees cores earlier (paper: ~20% better on
    # RandomGraph); allow equality within noise for LFUCache.
    assert prime["eager"][top] >= prime["lazy"][top] * 0.9
    # Yield-on-abort does not kill the transactional workload.
    assert commits["eager"][top] > 0 and commits["lazy"][top] > 0
