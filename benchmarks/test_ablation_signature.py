"""Ablation — signature sizing (DESIGN.md).

Sweeps the Bloom-filter width.  Undersized signatures alias wildly:
false-positive Threatened/Exposed-Read responses manufacture conflicts
that abort innocent transactions.  The paper's 2048-bit choice sits on
the flat part of the curve; this bench regenerates that curve.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.params import CacheGeometry, SystemParams


def _params(signature_bits: int) -> SystemParams:
    return SystemParams(num_processors=16, signature_bits=signature_bits)


def test_signature_size_sweep(benchmark, bench_cycles):
    """RBTree under lazy management: every thread shares the tree top,
    so forwarded requests constantly sample the signatures; an
    undersized filter aliases, manufacturing commit-time wounds."""
    from repro.core.descriptor import ConflictMode

    sizes = (16, 64, 2048)

    def sweep():
        out = {}
        for bits in sizes:
            result = run_experiment(
                ExperimentConfig(
                    workload="RBTree",
                    system="FlexTM",
                    threads=8,
                    mode=ConflictMode.LAZY,
                    cycle_limit=bench_cycles,
                    params=_params(bits),
                )
            )
            out[bits] = result
        return out

    results = run_once(benchmark, sweep)
    print()
    print("  bits  throughput  commits  aborts")
    for bits, result in results.items():
        print(
            f"  {bits:5d} {result.throughput:10.1f} {result.commits:8d} {result.aborts:7d}"
        )

    tiny, paper = results[16], results[2048]
    # Aliasing manufactures wounds: abort counts fall with filter size.
    assert tiny.aborts > 3 * max(1, results[64].aborts) or tiny.aborts > 5 * max(
        1, paper.aborts
    )
    assert results[64].aborts >= paper.aborts
    # And the false conflicts cost throughput.
    assert paper.throughput > tiny.throughput
