"""Ablation — contention-manager policy (DESIGN.md).

FlexTM's pitch is policy-in-software: swapping the conflict manager is
a two-line change.  This bench compares Polka against Aggressive
(always wound), Timid (always self-abort — the only policy LogTM-SE or
SigTM hardware permits, per Section 6) and Timestamp, on a contended
workload, under eager management where the manager actually runs.

Expected shape: Polka and Timestamp sustain throughput; Aggressive
wastes work in mutual wounding; Timid limits wounds but forfeits the
requester's progress on every conflict.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import SystemParams
from repro.runtime.contention import (
    AggressiveManager,
    PolkaManager,
    TimestampManager,
    TimidManager,
)
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads import WORKLOADS

MANAGERS = {
    "Polka": PolkaManager,
    "Aggressive": AggressiveManager,
    "Timid": TimidManager,
    "Timestamp": TimestampManager,
}


def _run(manager_cls, cycles):
    machine = FlexTMMachine(SystemParams())
    runtime = FlexTMRuntime(machine, mode=ConflictMode.EAGER, manager=manager_cls())
    workload = WORKLOADS["Vacation-High"](machine, seed=42)
    threads = [TxThread(i, runtime, workload.items(i)) for i in range(8)]
    return Scheduler(machine, threads).run(cycle_limit=cycles)


def test_manager_comparison(benchmark, bench_cycles):
    def sweep():
        return {name: _run(cls, bench_cycles) for name, cls in MANAGERS.items()}

    results = run_once(benchmark, sweep)
    print()
    print(f"  {'manager':10s} {'commits':>8s} {'aborts':>8s} {'tput':>10s}")
    for name, result in results.items():
        print(
            f"  {name:10s} {result.commits:8d} {result.aborts:8d} "
            f"{result.throughput:10.1f}"
        )

    # Every policy makes progress (no manager deadlocks the machine).
    for name, result in results.items():
        assert result.commits > 0, name

    polka = results["Polka"]
    aggressive = results["Aggressive"]
    timid = results["Timid"]
    # Polka's bounded patience beats always-wounding on aborts-per-commit.
    assert (polka.aborts / max(1, polka.commits)) <= (
        aggressive.aborts / max(1, aggressive.commits)
    ) * 1.2
    # Self-abort-only hardware (Timid) costs throughput vs Polka — the
    # paper's argument for FlexTM's remote-abort capability (Section 6).
    assert polka.throughput >= timid.throughput * 0.9
