"""E3 — Figure 5(a)-(d): FlexTM eager vs lazy conflict management.

Shapes asserted (Section 7.4):

* RBTree / Vacation-High: the two coincide at low threads; Lazy pulls
  ahead once contention appears (reader-writer concurrency).
* LFUCache: no concurrency either way; Lazy modestly better, Eager
  degrades with threads (futile-stall cascades).
* RandomGraph: Eager collapses toward livelock at high thread counts;
  Lazy stays flat.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.figure5 import render_policy, run_policy_comparison

_by_mode = lambda points, mode: {p.threads: p.normalized for p in points if p.mode == mode}


@pytest.mark.parametrize("workload", ["RBTree", "Vacation-High", "LFUCache", "RandomGraph"])
def test_figure5_policy(benchmark, workload, policy_thread_points, bench_cycles):
    results = run_once(
        benchmark,
        lambda: run_policy_comparison(
            workloads=[workload],
            thread_points=policy_thread_points,
            cycle_limit=bench_cycles,
        ),
    )
    points = results[workload]
    print()
    print(render_policy(results))

    eager = _by_mode(points, "eager")
    lazy = _by_mode(points, "lazy")
    top = max(policy_thread_points)

    if workload == "Vacation-High":
        # Lazy pulls ahead at scale (paper: +27%; we measure ~+20%).
        assert lazy[top] >= eager[top] * 1.05
    if workload == "RBTree":
        # Documented deviation (EXPERIMENTS.md): our RBTree variant's
        # in-place interior revives make commit-time wounds costlier
        # than the paper's, so Lazy lands at parity-to-slightly-below
        # rather than +16%.  Assert the qualitative floor: no collapse.
        assert lazy[top] >= eager[top] * 0.75
    if workload == "LFUCache":
        assert lazy[top] >= eager[top]
    if workload == "RandomGraph":
        # Eager's dueling aborts: lazy clearly ahead at the top point.
        assert lazy[top] > eager[top] * 1.1
        # Lazy stays useful (flat-ish, not collapsing).
        low = min(policy_thread_points)
        assert lazy[top] > 0.3 * lazy[low]
