"""Microbenchmark: per-address bank-index caching on the signature hot path.

``Signature.insert`` / ``Signature.member`` are the hottest operations
in the simulator — every transactional access inserts into Rsig/Wsig,
and every incoming coherence request probes them.  Both funnel through
``HashFamily.indices``, whose H3 parity reduction used to be recomputed
on every probe.  The family now memoizes the per-address index tuple;
this benchmark shows the win on a repeated-probe stream (the realistic
shape: transactions re-touch hot lines, directories re-probe them).

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/test_signature_microbench.py -q -s
"""

from __future__ import annotations

import time

from repro.signatures.bloom import Signature
from repro.signatures.hashing import HashFamily, make_hash_family

#: Distinct line addresses in the working set (fits the index cache).
ADDRESSES = [0x1000 + 64 * i for i in range(512)]
#: Membership probes per address.
ROUNDS = 40


def _probe_seconds(family: HashFamily) -> tuple:
    signature = Signature(2048, 4, family=family)
    signature.insert_all(ADDRESSES)  # also warms the cache, as on real runs
    hits = 0
    started = time.perf_counter()
    for _ in range(ROUNDS):
        for address in ADDRESSES:
            hits += signature.member(address)
    return time.perf_counter() - started, hits


def test_index_cache_speeds_up_membership():
    cached = make_hash_family(2048, 4)
    uncached = HashFamily(list(cached._hashes), cache_entries=0)

    # Correctness first: the cache must not change a single index.
    for address in ADDRESSES:
        assert tuple(cached.indices(address)) == tuple(uncached.indices(address))

    cold_seconds, cold_hits = _probe_seconds(uncached)
    warm_seconds, warm_hits = _probe_seconds(cached)
    assert cold_hits == warm_hits == ROUNDS * len(ADDRESSES)

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    print(
        f"\nsignature membership: uncached {cold_seconds * 1e3:.1f}ms, "
        f"cached {warm_seconds * 1e3:.1f}ms, speedup {speedup:.1f}x "
        f"({ROUNDS * len(ADDRESSES)} probes)"
    )
    # The H3 parity reduction costs far more than a dict hit; demand a
    # conservative margin so the assertion is robust on noisy CI hosts.
    assert speedup > 1.3, f"expected cached probes to win, got {speedup:.2f}x"


def test_cache_stays_bounded():
    family = HashFamily(list(make_hash_family(256, 2)._hashes), cache_entries=64)
    for address in range(1000):
        family.indices(address)
    assert len(family._cache) <= 64
