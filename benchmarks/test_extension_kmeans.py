"""Extension — KMeans scaling (beyond Table 3b).

A STAMP-style workload added on top of the paper's seven: contention is
a single knob (number of clusters), so the bench shows both regimes on
one workload — near-linear scaling with many centroids, and
Vacation-High-like conflict behaviour with few.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.params import SystemParams
from repro.runtime.flextm import FlexTMRuntime
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.workloads.kmeans import KMeansWorkload


def _run(threads: int, num_clusters: int, cycles: int):
    machine = FlexTMMachine(SystemParams())
    workload = KMeansWorkload(machine, seed=42, num_clusters=num_clusters)
    runtime = FlexTMRuntime(machine, mode=ConflictMode.LAZY)
    tx_threads = [TxThread(i, runtime, workload.items(i)) for i in range(threads)]
    result = Scheduler(machine, tx_threads).run(cycle_limit=cycles)
    assigned, _ = workload.totals()
    assert assigned == result.commits  # conservation under contention
    return result


def test_kmeans_scaling(benchmark, bench_cycles):
    def sweep():
        out = {}
        for clusters in (2, 64):
            for threads in (1, 8):
                out[(clusters, threads)] = _run(threads, clusters, bench_cycles)
        return out

    results = run_once(benchmark, sweep)
    print()
    print("  clusters threads  commits  aborts      tput")
    for (clusters, threads), result in results.items():
        print(
            f"  {clusters:8d} {threads:7d} {result.commits:8d} "
            f"{result.aborts:7d} {result.throughput:9.1f}"
        )
    spread = results[(64, 8)].throughput / max(1e-9, results[(64, 1)].throughput)
    hot = results[(2, 8)].throughput / max(1e-9, results[(2, 1)].throughput)
    # Many centroids scale well; two hot centroids scale poorly.
    assert spread > 3.0
    assert hot < spread
    # Hot centroids conflict measurably.
    assert results[(2, 8)].aborts > results[(64, 8)].aborts