"""E7 — Section 7.3 overflow study: OT redo-logging vs ideal buffering.

The paper: with an unbounded victim buffer as the ideal, OT-based
redo-logging costs ~7% on average and up to ~13% (RandomGraph), because
restarted transactions queue behind the committed transaction's
copy-back; workloads that never overflow lose nothing.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.overflow import render_overflow, run_overflow_study


def test_overflow_study(benchmark, bench_cycles):
    results = run_once(
        benchmark,
        lambda: run_overflow_study(
            workloads=("HashTable", "RBTree", "RandomGraph"),
            threads=2,
            cycle_limit=bench_cycles,
        ),
    )
    print()
    print(render_overflow(results))

    # The constrained L1 actually makes write sets spill.
    assert results["RandomGraph"].spills > 0

    # OT cost is modest: single-digit-to-teens percent, never a cliff
    # (the paper reports ~7% average, 13% max).
    for workload, point in results.items():
        assert point.slowdown_percent < 25.0, workload
        assert point.ot_throughput > 0

    # RandomGraph — the biggest write sets — pays the most; the small
    # write sets of HashTable pay essentially nothing.
    assert results["RandomGraph"].slowdown_percent > 3.0
    assert results["HashTable"].slowdown_percent < 8.0
    assert (
        results["RandomGraph"].slowdown_percent
        >= results["HashTable"].slowdown_percent
    )
