"""Benchmark suite for the FlexTM reproduction (see conftest.py)."""
