"""E2 — Figure 4's conflict table: CST degree per committed transaction.

The paper's point: even in conflict-heavy workloads, a transaction
conflicts with only a fraction of the other transactions in the system
— which is why per-processor CSTs (local arbitration, parallel commits)
beat global arbitration and serialized commits.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.harness.figure4 import render_conflict_table, run_conflict_table


def test_conflict_table(benchmark, bench_cycles):
    threads = 8
    table = run_once(
        benchmark,
        lambda: run_conflict_table(
            thread_points=(threads,), cycle_limit=bench_cycles
        ),
    )
    print()
    print(render_conflict_table(table))

    degrees = {workload: table[workload][threads] for workload in table}

    # Scalable workloads encounter essentially no conflict.
    for workload in ("HashTable", "Delaunay"):
        assert degrees[workload]["median"] == 0, workload

    # Conflict-heavy workloads still touch only a minority of the
    # system's transactions (median well below thread count).
    for workload in ("LFUCache", "RandomGraph"):
        assert degrees[workload]["median"] <= threads * 0.75, workload
        assert degrees[workload]["max"] >= 1, workload

    # Nobody's median reaches the full population.
    for workload, stats in degrees.items():
        assert stats["median"] < threads, workload
        assert stats["max"] <= threads, workload
