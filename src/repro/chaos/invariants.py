"""Runtime invariant checking for the FlexTM protocol.

FlexTM's correctness argument rests on distributed state staying
mutually consistent; this module actively asserts it.  The checker is
opt-in and wired like the tracer — ``machine.invariants`` is ``None``
by default and every hook site guards on that, so a run without a
checker pays one attribute read.

Checked invariants:

**CST set-time symmetry** (inline, on every conflicting response):
when a transactional access receives a Threatened / Exposed-Read
response, the requestor-side and responder-side CST bits must name each
other — Figure 1's symmetric update.  Checked at set time because the
steady state is legitimately asymmetric (eager management clears
requestor bits after resolution; commit clears responder bits).
Summary-signature conflicts are excluded: a suspended enemy's CSTs live
in its saved descriptor, not in any core's registers.

**TSW state-machine legality** (inline, on every TSW write): a status
word only moves along INVALID/COMMITTED/ABORTED -> ACTIVE ->
COMMITTED/ABORTED (COMMITTING is a transient of CAS-Commit).

**Coherence single-writer rule** (periodic sweep): at most one
processor holds a line in a plain exclusive state (M/E), and plain
exclusivity excludes remote S copies.  TMI/TI are exempt — multiple TMI
owners are exactly the FlexTM extension — and M+TMI / S+TMI mixes are
reachable by design (TMI owners retain their speculative copies across
remote GETX/GETS).

**Owner listing** (periodic sweep): any processor caching M/E/TMI must
be listed as an owner at the directory.  (The converse is not an
invariant: directory lists are conservative over-approximations.)

**Idle hygiene** (periodic sweep): a processor with no running
transaction has clean signatures, CSTs, and overlay.

**Irrevocable mutex** (periodic sweep, only when a degradation
controller is installed): at most one thread holds the irrevocability
token, and while serial mode is active no other registered transaction
is ACTIVE — the mutual-exclusion half of the forward-progress
guarantee (docs/RESILIENCE.md).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.coherence.messages import AccessKind, ResponseKind
from repro.coherence.states import LineState
from repro.core.tsw import TxStatus
from repro.errors import InvariantViolation

#: Legal TSW transitions (old, new).  Same-value rewrites are tolerated
#: (CAS semantics make them no-ops).
_LEGAL_TSW = {
    (TxStatus.INVALID, TxStatus.ACTIVE),
    (TxStatus.COMMITTED, TxStatus.ACTIVE),
    (TxStatus.ABORTED, TxStatus.ACTIVE),
    (TxStatus.ACTIVE, TxStatus.COMMITTED),
    (TxStatus.ACTIVE, TxStatus.ABORTED),
    (TxStatus.ACTIVE, TxStatus.COMMITTING),
    (TxStatus.COMMITTING, TxStatus.COMMITTED),
    (TxStatus.COMMITTING, TxStatus.ABORTED),
}

#: Plain-state severity for per-(line, processor) reduction when a line
#: appears both in the array and a victim buffer.
_SEVERITY = {LineState.M: 3, LineState.E: 2, LineState.S: 1}


class InvariantChecker:
    """Opt-in runtime assertion layer; raises :class:`InvariantViolation`."""

    def __init__(self, check_interval: int = 64, strict: bool = False):
        #: Scheduler steps between periodic machine sweeps.
        self.check_interval = max(1, check_interval)
        #: Strict mode: consumers of descriptor state (the scheduler's
        #: abort delivery) raise a ``wound-attribution`` violation when
        #: a descriptor-carrying thread unwinds with no wound kind,
        #: instead of silently aggregating under ``kind=""``.
        self.strict = strict
        #: Number of periodic sweeps performed (for reports).
        self.sweeps = 0
        #: Number of inline checks performed.
        self.inline_checks = 0

    # -- inline hooks (called from FlexTMMachine) ------------------------------

    def on_access_conflicts(
        self,
        machine,
        requestor: int,
        kind: AccessKind,
        conflicts: List[Tuple[int, ResponseKind]],
    ) -> None:
        """CST symmetry at set time, right after note_request_conflicts."""
        me = machine.processors[requestor].csts
        for responder, response in conflicts:
            self.inline_checks += 1
            other = machine.processors[responder].csts
            if response is ResponseKind.THREATENED and kind is AccessKind.TLOAD:
                ok = me.r_w.test(responder) and other.w_r.test(requestor)
                pair = ("R-W", "W-R")
            elif response is ResponseKind.THREATENED and kind is AccessKind.TSTORE:
                ok = me.w_w.test(responder) and other.w_w.test(requestor)
                pair = ("W-W", "W-W")
            elif response is ResponseKind.EXPOSED_READ and kind is AccessKind.TSTORE:
                ok = me.w_r.test(responder) and other.r_w.test(requestor)
                pair = ("W-R", "R-W")
            else:
                continue
            if not ok:
                raise InvariantViolation(
                    "cst-symmetry",
                    f"proc {requestor} {kind.value} got {response.value} from "
                    f"proc {responder} but the {pair[0]}/{pair[1]} CST pair is "
                    f"not set symmetrically",
                )

    def on_tsw_write(self, address: int, old: int, new: int) -> None:
        """TSW state-machine legality for one registered status word."""
        self.inline_checks += 1
        if old == new:
            return
        try:
            transition = (TxStatus(old), TxStatus(new))
        except ValueError:
            raise InvariantViolation(
                "tsw-legality",
                f"TSW 0x{address:x} written with non-status value "
                f"({old} -> {new})",
            ) from None
        if transition not in _LEGAL_TSW:
            raise InvariantViolation(
                "tsw-legality",
                f"illegal TSW transition {transition[0].name} -> "
                f"{transition[1].name} at 0x{address:x}",
            )

    # -- periodic sweep (called from the scheduler loop) -----------------------

    def check_machine(self, machine) -> None:
        """Full-machine consistency sweep."""
        self.sweeps += 1
        self._check_plain_exclusivity(machine)
        self._check_owner_listing(machine)
        self._check_idle_hygiene(machine)
        self._check_irrevocable_mutex(machine)
        self._check_htm_sw_mutex(machine)

    def _plain_states(self, machine):
        """(line -> proc -> strongest plain state) over arrays + victims."""
        lines = {}
        for proc in machine.processors:
            for cache_line in proc.l1.array.valid_lines():
                if cache_line.state in _SEVERITY:
                    holders = lines.setdefault(cache_line.line_address, {})
                    prev = holders.get(proc.proc_id)
                    if prev is None or _SEVERITY[cache_line.state] > _SEVERITY[prev]:
                        holders[proc.proc_id] = cache_line.state
            for address, state in proc.l1.victims._entries.items():
                if state in _SEVERITY:
                    holders = lines.setdefault(address, {})
                    prev = holders.get(proc.proc_id)
                    if prev is None or _SEVERITY[state] > _SEVERITY[prev]:
                        holders[proc.proc_id] = state
        return lines

    def _check_plain_exclusivity(self, machine) -> None:
        for line_address, holders in self._plain_states(machine).items():
            exclusive = [p for p, s in holders.items() if s in (LineState.M, LineState.E)]
            sharers = [p for p, s in holders.items() if s is LineState.S]
            if len(exclusive) > 1:
                raise InvariantViolation(
                    "single-writer",
                    f"line 0x{line_address:x} held exclusively (M/E) by "
                    f"processors {sorted(exclusive)}",
                )
            if exclusive and sharers:
                raise InvariantViolation(
                    "single-writer",
                    f"line 0x{line_address:x} held M/E by proc {exclusive[0]} "
                    f"while shared (S) by processors {sorted(sharers)}",
                )

    def _check_owner_listing(self, machine) -> None:
        directory = machine.directory
        for proc in machine.processors:
            for cache_line in proc.l1.array.valid_lines():
                if cache_line.state not in (LineState.M, LineState.E, LineState.TMI):
                    continue
                entry = directory.peek_entry(cache_line.line_address)
                if entry is None or not entry.is_owner(proc.proc_id):
                    raise InvariantViolation(
                        "owner-listing",
                        f"proc {proc.proc_id} caches 0x{cache_line.line_address:x} "
                        f"in {cache_line.state.name} but is not a directory owner",
                    )

    def _check_idle_hygiene(self, machine) -> None:
        for proc in machine.processors:
            if proc.current is not None:
                continue
            if not proc.csts.is_empty:
                raise InvariantViolation(
                    "idle-hygiene",
                    f"idle proc {proc.proc_id} has CST bits set "
                    f"(r_w={proc.csts.r_w.value:#x}, "
                    f"w_r={proc.csts.w_r.value:#x}, "
                    f"w_w={proc.csts.w_w.value:#x})",
                )
            if proc.overlay:
                raise InvariantViolation(
                    "idle-hygiene",
                    f"idle proc {proc.proc_id} holds {len(proc.overlay)} "
                    f"speculative overlay values",
                )

    def _check_irrevocable_mutex(self, machine) -> None:
        resilience = getattr(machine, "resilience", None)
        if resilience is None:
            return
        holders = resilience.token_holders()
        if len(holders) > 1:
            raise InvariantViolation(
                "irrevocable-mutex",
                f"multiple irrevocability-token holders: {sorted(holders)}",
            )
        if not resilience.serial_active:
            return
        if not holders:
            raise InvariantViolation(
                "irrevocable-mutex",
                "serial-irrevocable mode active with no token holder",
            )
        holder = holders[0]
        for descriptor in machine._descriptors_by_tsw.values():
            if descriptor.thread_id == holder:
                continue
            if machine.read_status(descriptor) is TxStatus.ACTIVE:
                raise InvariantViolation(
                    "irrevocable-mutex",
                    f"thread {descriptor.thread_id} is ACTIVE while thread "
                    f"{holder} runs serial-irrevocably",
                )

    def _check_htm_sw_mutex(self, machine) -> None:
        """HTM/SW mutual exclusion for the best-effort-HTM backend.

        While the fallback lock is held (serial mode), no other attempt
        may be live or committing: the token grant drained every peer,
        so any survivor would be an HTM commit racing the software
        fallback — the torn-write-back hazard the hybrid design exists
        to prevent.
        """
        fallback = getattr(machine, "htm_fallback", None)
        if fallback is None:
            return
        holders = fallback.token_holders()
        if len(holders) > 1:
            raise InvariantViolation(
                "htm-sw-mutex",
                f"multiple fallback-lock holders: {sorted(holders)}",
            )
        if not fallback.serial_active:
            return
        if not holders:
            raise InvariantViolation(
                "htm-sw-mutex",
                "serial fallback mode active with no lock holder",
            )
        holder = holders[0]
        for thread_id, path, committing, doomed in fallback.active_attempts():
            if thread_id == holder:
                continue
            if committing:
                raise InvariantViolation(
                    "htm-sw-mutex",
                    f"thread {thread_id} ({path}) is committing while "
                    f"thread {holder} holds the fallback lock",
                )
            if not doomed:
                raise InvariantViolation(
                    "htm-sw-mutex",
                    f"thread {thread_id} ({path}) is live while thread "
                    f"{holder} holds the fallback lock",
                )
