"""Deterministic fault injection (the robustness tentpole).

A :class:`ChaosEngine` is threaded through the coherence, core, and
runtime layers the same way the tracer is: every layer holds a ``chaos``
attribute (``None`` by default, so the hot path pays one attribute read)
and consults it at its injection site.  Faults are drawn from per-site
:class:`~repro.sim.rng.DeterministicRng` streams forked from the spec's
seed, so a failing run replays bit-identically from ``(seed, spec)``.

Fault sites and their graceful-degradation story:

==================  ========================================================
``coherence.drop``    a directory request message is lost; the protocol
                      NACKs and the requestor re-issues after a bounded
                      retry window (latency only, never lost state)
``coherence.delay``   a request is delayed in the interconnect
``coherence.dup``     a forwarded snoop is delivered twice (CST updates
                      are idempotent, so duplicates must be masked)
``aou.drop``          an alert-on-update delivery is lost (the runtime's
                      TSW status poll still detects the abort, later)
``aou.spurious``      a spurious alert fires with no marked-line cause
``signature.false_positive``  a signature check reports a hit that is not
                      there (conservative: extra conflicts, never unsafe)
``signature.false_negative``  a signature check misses a real hit (unsafe:
                      the serializability oracle must diagnose the damage)
``overflow.walk_fail``  an OT walk FSM pass fails and is retried (latency)
``l1.evict``          cache pressure: a random unpinned line is evicted
``sched.preempt``     adversarial context-switch storm (forced preempt)
==================  ========================================================

Probabilities of zero draw nothing from the stream, so an engine whose
spec is all-zero behaves bit-identically to no engine at all — the
property the chaos-off determinism tests lock.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Tuple

from repro.sim.rng import DeterministicRng

#: Protocol-level NACK + re-issue latency charged per dropped message.
CHAOS_RETRY_CYCLES = 40

#: Stable integer stream ids per fault site.  Integers, not names:
#: ``DeterministicRng.fork`` hashes ``(seed, stream)`` and string hashes
#: are salted per-process, which would break cross-process replay.
_SITE_STREAMS = {
    "coherence": 11,
    "aou": 12,
    "signature": 13,
    "overflow": 14,
    "l1": 15,
    "sched": 16,
}


@dataclasses.dataclass(frozen=True)
class ChaosSpec:
    """One replayable fault schedule: a seed plus per-site probabilities.

    All probabilities default to zero; a default spec injects nothing.
    The spec is immutable and picklable so it can ride inside an
    :class:`~repro.harness.runner.ExperimentConfig` across process
    boundaries.
    """

    seed: int = 0
    #: Coherence-message faults (directory request path).
    coh_drop: float = 0.0
    coh_delay: float = 0.0
    coh_delay_cycles: int = 48
    coh_dup: float = 0.0
    #: Bound on back-to-back drops of one request, so a run can never
    #: wedge inside the retry loop.
    max_consecutive_drops: int = 3
    #: Alert-on-update faults.
    alert_drop: float = 0.0
    alert_spurious: float = 0.0
    #: Signature bit corruption (forced false positives / negatives).
    sig_false_positive: float = 0.0
    sig_false_negative: float = 0.0
    #: Overflow-table walk failures (retried; latency only).
    ot_walk_fail: float = 0.0
    #: Forced L1 evictions (cache-pressure adversary).
    l1_evict: float = 0.0
    #: Forced preemptions per scheduler step (context-switch storm).
    sched_preempt: float = 0.0

    @property
    def any_faults(self) -> bool:
        return any(
            prob > 0.0
            for prob in (
                self.coh_drop, self.coh_delay, self.coh_dup,
                self.alert_drop, self.alert_spurious,
                self.sig_false_positive, self.sig_false_negative,
                self.ot_walk_fail, self.l1_evict, self.sched_preempt,
            )
        )


class ChaosEngine:
    """Draws faults from per-site deterministic streams and logs them.

    ``enabled`` mirrors the tracer contract; call sites guard with
    ``chaos is not None and chaos.enabled``.  Every injected fault is
    appended to :attr:`log` as ``(site, kind, detail)`` — two engines
    built from equal specs must produce equal logs for equal runs, which
    is what the determinism tests compare.
    """

    enabled = True

    def __init__(self, spec: ChaosSpec, stats=None):
        self.spec = spec
        root = DeterministicRng(spec.seed)
        self._rng: Dict[str, DeterministicRng] = {
            site: root.fork(stream) for site, stream in _SITE_STREAMS.items()
        }
        #: ``site.kind`` -> injection count.
        self.injected: collections.Counter = collections.Counter()
        #: Ordered injection record for bit-identical replay comparison.
        self.log: List[Tuple[str, str, int]] = []
        #: Optional StatsRegistry mirror (installed by set_chaos).
        self.stats = stats

    def _roll(self, site: str, prob: float) -> bool:
        """One Bernoulli draw; zero probability consumes no stream state."""
        return prob > 0.0 and self._rng[site].random() < prob

    def _note(self, site: str, kind: str, detail: int = -1) -> None:
        self.injected[f"{site}.{kind}"] += 1
        self.log.append((site, kind, detail))
        if self.stats is not None:
            self.stats.counter(f"chaos.{site}.{kind}").increment()

    # -- coherence (directory request path) -----------------------------------

    def coherence_extra_cycles(self, line_address: int) -> int:
        """Drop/delay faults for one directory request; returns latency.

        Drops degrade into bounded NACK/retry latency: the request is
        re-issued after :data:`CHAOS_RETRY_CYCLES` and the consecutive-
        drop bound guarantees it eventually goes through.
        """
        spec = self.spec
        extra = 0
        drops = 0
        while drops < spec.max_consecutive_drops and self._roll("coherence", spec.coh_drop):
            drops += 1
            extra += CHAOS_RETRY_CYCLES
            self._note("coherence", "drop", line_address)
        if self._roll("coherence", spec.coh_delay):
            extra += spec.coh_delay_cycles
            self._note("coherence", "delay", line_address)
        return extra

    def duplicate_response(self, line_address: int) -> bool:
        """Should one forwarded snoop be delivered a second time?"""
        if self._roll("coherence", self.spec.coh_dup):
            self._note("coherence", "dup", line_address)
            return True
        return False

    # -- alert-on-update --------------------------------------------------------

    def alert_lost(self, line_address: int) -> bool:
        if self._roll("aou", self.spec.alert_drop):
            self._note("aou", "drop", line_address)
            return True
        return False

    def spurious_alert(self) -> bool:
        if self._roll("aou", self.spec.alert_spurious):
            self._note("aou", "spurious")
            return True
        return False

    # -- signatures -------------------------------------------------------------

    def sig_member(self, which: str, line_address: int, actual: bool) -> bool:
        """Corrupt one signature membership test (bit-flip model)."""
        if actual:
            if self._roll("signature", self.spec.sig_false_negative):
                self._note("signature", f"false_negative.{which}", line_address)
                return False
        else:
            if self._roll("signature", self.spec.sig_false_positive):
                self._note("signature", f"false_positive.{which}", line_address)
                return True
        return actual

    # -- overflow table ---------------------------------------------------------

    def ot_walk_failed(self, line_address: int) -> bool:
        if self._roll("overflow", self.spec.ot_walk_fail):
            self._note("overflow", "walk_fail", line_address)
            return True
        return False

    # -- L1 pressure ------------------------------------------------------------

    def l1_pressure(self) -> bool:
        if self._roll("l1", self.spec.l1_evict):
            self._note("l1", "evict")
            return True
        return False

    def pick(self, n: int) -> int:
        """Deterministic index choice for the L1 pressure victim."""
        return self._rng["l1"].randint(0, n - 1)

    # -- scheduler --------------------------------------------------------------

    def forced_preempt(self) -> bool:
        if self._roll("sched", self.spec.sched_preempt):
            self._note("sched", "preempt")
            return True
        return False

    # -- inspection -------------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def __repr__(self) -> str:
        return f"ChaosEngine(seed={self.spec.seed}, injected={self.total_injected})"
