"""Deterministic fault injection, invariant checking, and liveness.

Public surface of the robustness layer::

    from repro.chaos import ChaosSpec, ChaosEngine, InvariantChecker
    from repro.chaos import LivelockWatchdog, WatchdogSpec

See docs/ROBUSTNESS.md for the fault taxonomy, the invariant list, the
watchdog escalation ladder, and how to replay a failure from a seed.
"""

from repro.chaos.engine import CHAOS_RETRY_CYCLES, ChaosEngine, ChaosSpec
from repro.chaos.invariants import InvariantChecker
from repro.chaos.watchdog import LivelockWatchdog, WatchdogSpec

__all__ = [
    "CHAOS_RETRY_CYCLES",
    "ChaosEngine",
    "ChaosSpec",
    "InvariantChecker",
    "LivelockWatchdog",
    "WatchdogSpec",
]
