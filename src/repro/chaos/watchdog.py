"""Livelock detection and escalation (the liveness half of robustness).

The paper's Polka manager resolves most conflicts, but hostile
schedules (RandomGraph eager mode, chaos-injected signature false
positives) can leave transactions wounding each other with no global
progress.  The :class:`LivelockWatchdog` observes commit progress from
the scheduler loop and escalates through a bounded ladder when a
no-commit window is exceeded:

1..``force_abort_after`` — grow the contention manager's back-off
   (bounded multiplicative boost through
   :meth:`~repro.runtime.contention.ConflictManager.escalate`), spacing
   the duellists out;
``force_abort_after``+1.. — forced-abort of the *oldest wounder*: the
   ACTIVE transaction that has inflicted the most wounds (ties to the
   lowest thread id), CASed to ABORTED through the machine so the
   normal AOU/flash-abort path unwinds it.

Each escalation widens the next no-progress window, so the ladder is
itself bounded.  Any commit de-escalates: the boost resets and the
ladder restarts from level zero.  Every action emits a structured
``watchdog_*`` event through the tracer and counts in the stats
registry, so escalations are attributable post-run.
"""

from __future__ import annotations

import dataclasses

from repro.core.tsw import TxStatus


@dataclasses.dataclass(frozen=True)
class WatchdogSpec:
    """Escalation-ladder parameters (immutable, picklable)."""

    #: Cycles without a commit before the first escalation.
    window_cycles: int = 50_000
    #: Multiplicative back-off boost applied per manager escalation.
    backoff_growth: int = 2
    #: Cap on the cumulative boost (bounded growth).
    max_boost: int = 8
    #: Manager escalations tried before forced aborts begin.
    force_abort_after: int = 2


class LivelockWatchdog:
    """Observes scheduler progress; escalates on no-commit windows."""

    def __init__(self, spec: WatchdogSpec = WatchdogSpec()):
        self.spec = spec
        self.machine = None
        self.manager = None
        #: Telemetry.
        self.escalations = 0
        self.forced_aborts = 0
        self.recoveries = 0
        self._level = 0
        self._last_commits = -1
        self._window_start = 0

    def attach(self, machine, backend=None) -> None:
        """Bind to a machine and (when the backend has one) its manager."""
        self.machine = machine
        self.manager = getattr(backend, "manager", None)

    # -- scheduler hook ---------------------------------------------------------

    def observe(self, scheduler) -> None:
        """Called once per scheduler step (only when a watchdog is wired)."""
        machine = scheduler.machine
        commits = sum(slot.thread.commits for slot in scheduler.slots)
        now = machine.max_cycle()
        if commits != self._last_commits:
            if self._level > 0:
                self.recoveries += 1
                self._deescalate(machine, now)
            self._last_commits = commits
            self._window_start = now
            return
        # Each level widens the window, bounding the ladder's rate.
        window = self.spec.window_cycles * (self._level + 1)
        if now - self._window_start < window:
            return
        self._window_start = now
        self._level += 1
        self.escalations += 1
        machine.stats.counter("watchdog.escalations").increment()
        if machine.tracer.enabled:
            machine.tracer.watchdog(now, "escalate", level=self._level)
        if self._level <= self.spec.force_abort_after and self.manager is not None:
            boost = self.manager.escalate(
                growth=self.spec.backoff_growth, max_boost=self.spec.max_boost
            )
            machine.stats.counter("watchdog.backoff_boosts").increment()
            if machine.tracer.enabled:
                machine.tracer.watchdog(now, "backoff_boost", boost=boost)
        else:
            self._force_abort_oldest_wounder(machine, now)

    # -- actions ---------------------------------------------------------------

    def _deescalate(self, machine, now: int) -> None:
        self._level = 0
        if self.manager is not None:
            self.manager.reset_escalation()
        machine.stats.counter("watchdog.recoveries").increment()
        if machine.tracer.enabled:
            machine.tracer.watchdog(now, "recover")

    def _force_abort_oldest_wounder(self, machine, now: int) -> None:
        """Wound the ACTIVE transaction that has wounded the most.

        The serial-irrevocable token holder is never a candidate: its
        TSW deflects abort CASes anyway (forward-progress guarantee),
        so selecting it would burn the escalation on a victim that
        cannot die — and keep re-selecting it while real wounders run
        free.  Deflected descriptors are filtered out up front.
        """
        resilience = machine.resilience
        victims = [
            descriptor
            for descriptor in machine._descriptors_by_tsw.values()
            if machine.read_status(descriptor) is TxStatus.ACTIVE
            and not (
                resilience is not None
                and resilience.deflects(descriptor.tsw_address)
            )
        ]
        if not victims:
            return
        victim = max(
            victims, key=lambda d: (d.wounds_inflicted, -d.thread_id)
        )
        if machine.force_abort(victim, by=-1, kind="watchdog"):
            self.forced_aborts += 1
            machine.stats.counter("watchdog.forced_aborts").increment()
            if machine.tracer.enabled:
                machine.tracer.watchdog(
                    now, "forced_abort",
                    thread=victim.thread_id,
                    wounds=victim.wounds_inflicted,
                )
