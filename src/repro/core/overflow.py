"""Per-thread overflow tables and the OT controller (Section 4.1).

TMI lines evicted from the L1 cannot merge into the shared cache (their
values are speculative), so they spill into a thread-private, set-
associative **overflow table** organized in virtual memory.  A small
hardware controller performs fast lookups on L1 misses (software stays
oblivious to overflowed lines), tracks an overflow signature ``Osig``
and a count, and at commit time drains the table back to the lines'
natural locations — in any order, unlike time-ordered undo logs — while
NACKing remote requests that hit the committed ``Osig``.

On aborts the table is simply returned to the OS.  Way overflow traps to
the OS, which expands the table.  Tags carry both the physical address
(associative lookup) and the logical address (paging support: copy-back
can fault in a non-resident page, Section 4.1 "Virtual Memory Paging").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import OverflowTableError
from repro.signatures.bloom import Signature


@dataclasses.dataclass
class OverflowEntry:
    """One spilled TMI line."""

    physical_line: int
    logical_line: int


class OverflowTable:
    """The in-memory, set-associative spill structure."""

    def __init__(self, num_sets: int, associativity: int, base_address: int = 0):
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise OverflowTableError("OT num_sets must be a positive power of two")
        if associativity < 1:
            raise OverflowTableError("OT associativity must be >= 1")
        self.num_sets = num_sets
        self.associativity = associativity
        self.base_address = base_address
        self._sets: List[Dict[int, OverflowEntry]] = [{} for _ in range(num_sets)]
        self.expansions = 0

    def _set_index(self, physical_line: int) -> int:
        return physical_line & (self.num_sets - 1)

    def insert(self, physical_line: int, logical_line: Optional[int] = None) -> bool:
        """Add a line; returns False when the set is full (OS must expand)."""
        target = self._sets[self._set_index(physical_line)]
        if physical_line in target:
            return True
        if len(target) >= self.associativity:
            return False
        target[physical_line] = OverflowEntry(
            physical_line=physical_line,
            logical_line=physical_line if logical_line is None else logical_line,
        )
        return True

    def lookup(self, physical_line: int) -> Optional[OverflowEntry]:
        return self._sets[self._set_index(physical_line)].get(physical_line)

    def extract(self, physical_line: int) -> Optional[OverflowEntry]:
        """Remove and return an entry (L1 refill invalidates the OT copy)."""
        return self._sets[self._set_index(physical_line)].pop(physical_line, None)

    def expand(self) -> "OverflowTable":
        """Grow to 2x the sets, rehashing entries (OS trap path)."""
        grown = OverflowTable(self.num_sets * 2, self.associativity, self.base_address)
        grown.expansions = self.expansions + 1
        for entry in self.entries():
            if not grown.insert(entry.physical_line, entry.logical_line):
                raise OverflowTableError("expansion failed to place an entry")
        return grown

    def entries(self) -> List[OverflowEntry]:
        out: List[OverflowEntry] = []
        for table_set in self._sets:
            out.extend(table_set.values())
        return out

    def retag(self, old_physical: int, new_physical: int) -> bool:
        """Update an entry's physical tag after an OS page re-mapping."""
        entry = self.extract(old_physical)
        if entry is None:
            return False
        entry.physical_line = new_physical
        if not self.insert(new_physical, entry.logical_line):
            raise OverflowTableError("retag target set is full")
        return True

    def __len__(self) -> int:
        return sum(len(table_set) for table_set in self._sets)


class OverflowController:
    """The L1-side OT registers and FSM (Figure 2).

    Registers: thread id, ``Osig``, overflow count, committed/speculative
    flag, and the table base/shape parameters.  The controller is filled
    by a software trap on the first overflow of a transaction and
    cleared when the OT is torn down.
    """

    def __init__(
        self,
        signature_bits: int = 2048,
        num_hashes: int = 4,
        default_sets: int = 64,
        associativity: int = 8,
    ):
        self._signature_bits = signature_bits
        self._num_hashes = num_hashes
        self._default_sets = default_sets
        self._associativity = associativity
        self.thread_id: Optional[int] = None
        self.table: Optional[OverflowTable] = None
        self.osig = Signature(signature_bits, num_hashes)
        self.count = 0
        self.committed = False
        #: absolute cycle at which an in-flight copy-back finishes; the
        #: directory NACKs remote requests that hit the committed Osig
        #: before this time.
        self.copyback_until = 0
        self.mapped = True  # False when the OS swapped the OT out
        #: Fault injection (installed by FlexTMMachine.set_chaos).
        self.chaos = None
        self.failed_walks = 0

    @property
    def active(self) -> bool:
        return self.table is not None

    def walk_penalty(self, physical_line: int, cycles_per_walk: int) -> int:
        """Extra latency when chaos fails OT walk passes (FSM retries).

        A failed walk is re-issued by the controller, so the fault is
        pure latency — the entry is never lost.
        """
        if self.chaos is None or not self.chaos.enabled:
            return 0
        extra = 0
        retries = 0
        while retries < 3 and self.chaos.ot_walk_failed(physical_line):
            retries += 1
            self.failed_walks += 1
            extra += cycles_per_walk
        return extra

    def allocate(self, thread_id: int) -> None:
        """First-overflow trap: the OS allocates an OT and fills registers."""
        if self.active:
            raise OverflowTableError("controller already has a table")
        self.thread_id = thread_id
        self.table = OverflowTable(self._default_sets, self._associativity)
        self.osig = Signature(self._signature_bits, self._num_hashes)
        self.count = 0
        self.committed = False
        self.mapped = True

    def spill(self, physical_line: int) -> None:
        """Evicted TMI line -> OT (expanding on way overflow)."""
        if not self.active:
            raise OverflowTableError("spill with no allocated table")
        if not self.mapped:
            # Hardware trap: OS re-establishes the mapping (Section 4.1).
            self.mapped = True
        assert self.table is not None
        while not self.table.insert(physical_line):
            self.table = self.table.expand()
        self.osig.insert(physical_line)
        self.count += 1

    def lookup(self, physical_line: int) -> bool:
        """Osig-filtered membership check used on every L1 miss."""
        if not self.active or self.count == 0:
            return False
        if not self.osig.member(physical_line):
            return False
        return self.table.lookup(physical_line) is not None

    def extract(self, physical_line: int) -> bool:
        """Refill path: pull the line back into the L1, invalidate OT copy."""
        if not self.active:
            return False
        entry = self.table.extract(physical_line)
        if entry is not None:
            self.count -= 1
            return True
        return False

    def begin_copyback(self, now: int, cycles_per_line: int) -> int:
        """CAS-Commit sets the Committed bit and starts the drain.

        Returns the cycle at which copy-back completes.  The drain runs
        on the controller, overlapping the processor's subsequent work.
        """
        if not self.active:
            return now
        self.committed = True
        self.copyback_until = now + len(self.table) * cycles_per_line
        return self.copyback_until

    def nacks(self, physical_line: int, now: int) -> bool:
        """Should a remote request for this line be NACKed right now?"""
        if not self.committed or now >= self.copyback_until:
            return False
        return self.osig.member(physical_line)

    def committed_lines(self) -> List[Tuple[int, int]]:
        """(physical, logical) pairs to drain at commit."""
        if not self.active:
            return []
        return [(e.physical_line, e.logical_line) for e in self.table.entries()]

    def release(self) -> None:
        """Return the OT to the OS (abort, or copy-back complete)."""
        self.thread_id = None
        self.table = None
        self.osig = Signature(self._signature_bits, self._num_hashes)
        self.count = 0
        self.committed = False
        self.copyback_until = 0
        self.mapped = True

    def save(self) -> dict:
        """Context-switch spill of the controller registers."""
        return {
            "thread_id": self.thread_id,
            "table": self.table,
            "osig": self.osig.copy(),
            "count": self.count,
            "committed": self.committed,
            "copyback_until": self.copyback_until,
        }

    def restore(self, saved: dict) -> None:
        self.thread_id = saved["thread_id"]
        self.table = saved["table"]
        self.osig = saved["osig"].copy()
        self.count = saved["count"]
        self.committed = saved["committed"]
        self.copyback_until = saved["copyback_until"]
        self.mapped = True
