"""Transaction status words.

The TSW is an ordinary word in (simulated) memory whose value encodes a
transaction's fate.  Everything interesting about it is protocol, not
data structure: it is ALoaded by its owner so any remote write delivers
an immediate alert, it is the target of the CAS that enemies use to
abort a transaction, and it is the target of the owner's CAS-Commit.
Conventional cache coherence on the TSW line serializes the commit/abort
race (Section 3.6).
"""

from __future__ import annotations

import enum


class TxStatus(enum.IntEnum):
    """Values stored in a transaction status word."""

    INVALID = 0
    ACTIVE = 1
    COMMITTED = 2
    ABORTED = 3
    COMMITTING = 4

    @property
    def is_terminal(self) -> bool:
        return self in (TxStatus.COMMITTED, TxStatus.ABORTED)


def decode_status(word: int) -> TxStatus:
    """Interpret a raw memory word as a status (unknown -> INVALID)."""
    try:
        return TxStatus(word)
    except ValueError:
        return TxStatus.INVALID
