"""FlexTM's primary contribution (Section 3).

The decoupled trio:

* :mod:`repro.core.cst` — conflict summary tables (R-W, W-R, W-W);
* :mod:`repro.signatures` — read/write signatures (access tracking);
* the PDI/TMI versioning support woven through :mod:`repro.coherence`
  and :mod:`repro.core.overflow`;

plus alert-on-update (:mod:`repro.core.aou`), transaction descriptors
and status words (:mod:`repro.core.descriptor`, :mod:`repro.core.tsw`),
the OS-level conflict management table (:mod:`repro.core.cmt`) and the
full machine that wires everything together
(:mod:`repro.core.machine`).
"""

from repro.core.cst import ConflictSummaryTables, CstRegister
from repro.core.tsw import TxStatus
from repro.core.descriptor import ConflictMode, TransactionDescriptor
from repro.core.aou import AlertUnit, PendingAlert
from repro.core.overflow import OverflowTable, OverflowController
from repro.core.cmt import ConflictManagementTable
from repro.core.paging import PAGE_BYTES, page_lines, remap_page, unmap_page
from repro.core.processor import FlexTMProcessor
from repro.core.machine import FlexTMMachine

__all__ = [
    "ConflictSummaryTables",
    "CstRegister",
    "TxStatus",
    "ConflictMode",
    "TransactionDescriptor",
    "AlertUnit",
    "PendingAlert",
    "OverflowTable",
    "OverflowController",
    "ConflictManagementTable",
    "PAGE_BYTES",
    "page_lines",
    "remap_page",
    "unmap_page",
    "FlexTMProcessor",
    "FlexTMMachine",
]
