"""Software transaction descriptors (Table 1).

Every FlexTM transaction is represented by a descriptor holding the
transaction status word (TSW) address, the eager/lazy mode flag, the
handler entry points, and — when the transaction is suspended — the
saved hardware state (signatures, CSTs, OT registers, buffered TMI
values).  Descriptors live in ordinary (simulated) virtual memory and
are reachable through the OS's Conflict Management Table.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional

from repro.core.cst import ConflictSummaryTables
from repro.core.tsw import TxStatus
from repro.signatures.bloom import Signature


class ConflictMode(enum.Enum):
    """The E/L bit of Table 1."""

    EAGER = "eager"
    LAZY = "lazy"


class RunState(enum.Enum):
    """The State field of Table 1."""

    RUNNING = "running"
    SUSPENDED = "suspended"


@dataclasses.dataclass
class SavedHardwareState:
    """Hardware context spilled to memory on a context switch (§5).

    Saved in the order the paper prescribes: TMI lines (the speculative
    value overlay), OT registers, signatures, then CSTs.
    """

    overlay: Dict[int, int]
    ot_registers: Optional[dict]
    rsig: Signature
    wsig: Signature
    csts: dict
    last_processor: int


@dataclasses.dataclass
class TransactionDescriptor:
    """One transaction's software-visible identity and state."""

    thread_id: int
    tsw_address: int
    mode: ConflictMode = ConflictMode.LAZY
    run_state: RunState = RunState.RUNNING
    #: AbortPC / CMPC analogues: the runtime stores callables rather
    #: than code addresses.
    abort_handler: Optional[object] = None
    conflict_manager: Optional[object] = None
    #: Saved hardware state while suspended (None when running).
    saved: Optional[SavedHardwareState] = None
    #: Processor the transaction last ran on (CMT indexing invariant).
    last_processor: int = -1
    #: Monotonic incarnation number (bumped on every restart); lets the
    #: runtime discard alerts that raced with a restart.
    incarnation: int = 0
    #: Accesses performed by the current attempt (Polka's "karma").
    accesses: int = 0
    #: Statistics for the harnesses.
    commits: int = 0
    aborts: int = 0
    #: Abort attribution: who wounded this attempt and why.  Set by the
    #: machine at TSW-write time, consumed (and reset) by the runtime
    #: when it raises/handles TransactionAborted.
    wounded_by: int = -1
    wound_kind: str = ""
    #: Wounds this transaction has inflicted on others (watchdog input).
    wounds_inflicted: int = 0

    def conflicts_with(self, line_address: int, is_write: bool) -> bool:
        """Software signature test against *saved* state (suspended txns)."""
        if self.saved is None:
            return False
        if self.saved.wsig.member(line_address):
            return True
        return is_write and self.saved.rsig.member(line_address)

    def record_suspended_conflict(
        self, remote_processor: int, local_was_write: bool, remote_is_write: bool
    ) -> None:
        """Software handler mimicking the hardware CST update (§5)."""
        if self.saved is None:
            raise ValueError("cannot record a conflict without saved state")
        csts = ConflictSummaryTables(_width_of(self.saved.csts))
        csts.restore(self.saved.csts)
        if local_was_write and remote_is_write:
            csts.w_w.set(remote_processor)
        elif local_was_write:
            csts.w_r.set(remote_processor)
        else:
            csts.r_w.set(remote_processor)
        self.saved.csts = csts.save()


def _width_of(saved_csts: dict) -> int:
    """Smallest register width able to hold the saved bitmasks."""
    needed = max(saved_csts.values()).bit_length() if saved_csts else 0
    return max(needed, 16)


def make_status(value: int) -> TxStatus:
    """Convenience re-export used by runtime code."""
    return TxStatus(value)
