"""The OS-level Conflict Management Table (Section 5).

Indexed by processor id, the CMT maintains the invariant: *if
transaction T is active and executed on processor P while in the
transaction, T's descriptor appears in P's active list, whether T's
thread is running or suspended.*  Software handlers (and lazy
committers) use the processor ids in their CSTs to find the actual
descriptors to test and abort.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.core.descriptor import TransactionDescriptor


class ConflictManagementTable:
    """Per-processor lists of active transaction descriptors."""

    def __init__(self, num_processors: int):
        if num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        self.num_processors = num_processors
        self._lists: List[List[TransactionDescriptor]] = [[] for _ in range(num_processors)]

    def register(self, processor: int, descriptor: TransactionDescriptor) -> None:
        """Add a descriptor to a processor's active list (idempotent)."""
        self._check(processor)
        active = self._lists[processor]
        if descriptor not in active:
            active.append(descriptor)
        descriptor.last_processor = processor

    def unregister(self, descriptor: TransactionDescriptor) -> None:
        """Remove a descriptor from every list (commit/final abort)."""
        for active in self._lists:
            if descriptor in active:
                active.remove(descriptor)

    def move(self, descriptor: TransactionDescriptor, new_processor: int) -> None:
        """Re-home a descriptor (reschedule on a different processor)."""
        self.unregister(descriptor)
        self.register(new_processor, descriptor)

    def active_on(self, processor: int) -> List[TransactionDescriptor]:
        self._check(processor)
        return list(self._lists[processor])

    def all_descriptors(self) -> Iterator[TransactionDescriptor]:
        seen = set()
        for active in self._lists:
            for descriptor in active:
                if id(descriptor) not in seen:
                    seen.add(id(descriptor))
                    yield descriptor

    def _check(self, processor: int) -> None:
        if not 0 <= processor < self.num_processors:
            raise ValueError(f"processor {processor} out of range")

    def __len__(self) -> int:
        return sum(1 for _ in self.all_descriptors())
