"""Alert-On-Update (Section 3.4).

A program ALoads one or more cache lines; if a marked line is
invalidated (or evicted, losing tracking), the cache controller effects
a call to a user-registered handler.  FlexTM itself needs AOU for a
single line — the transaction status word — which admits the simplified
one-line hardware of Spear et al.; we nevertheless support marking any
number of lines because FlexWatcher (Section 8) and other
non-transactional clients use the general mechanism.

In the simulator the "subroutine call" becomes a pending-alert queue
drained by the runtime at instruction boundaries, which is how a real
in-order core would observe the trap.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional


@dataclasses.dataclass(frozen=True)
class PendingAlert:
    """One undelivered alert: the line that fired and why."""

    line_address: int
    reason: str  # "invalidated" | "evicted" | "signature"


class AlertUnit:
    """Per-processor alert state: marked lines, handler, pending queue."""

    def __init__(self):
        self._handler: Optional[Callable[[PendingAlert], None]] = None
        self._pending: List[PendingAlert] = []
        self._marked: Dict[int, bool] = {}
        self.alerts_raised = 0
        self.alerts_delivered = 0
        self.alerts_lost = 0
        #: Fault injection (installed by FlexTMMachine.set_chaos).
        self.chaos = None

    # -- configuration ---------------------------------------------------------

    def set_handler(self, handler: Optional[Callable[[PendingAlert], None]]) -> None:
        """Register the user-level handler (the AbortPC of Table 1)."""
        self._handler = handler

    def mark(self, line_address: int) -> None:
        """Record that a line is ALoaded (the L1 also sets its A bit)."""
        self._marked[line_address] = True

    def unmark(self, line_address: int) -> None:
        self._marked.pop(line_address, None)

    def is_marked(self, line_address: int) -> bool:
        return line_address in self._marked

    def clear(self) -> None:
        """Drop marks and pending alerts (transaction boundary)."""
        self._marked.clear()
        self._pending.clear()

    # -- raising / draining ------------------------------------------------------

    def raise_alert(self, line_address: int, reason: str) -> None:
        """Called by the L1 controller when a marked line fires."""
        if line_address not in self._marked and reason not in ("signature", "spurious"):
            return
        if (
            self.chaos is not None
            and self.chaos.enabled
            and reason != "spurious"
            and self.chaos.alert_lost(line_address)
        ):
            # Lost delivery: the trap never reaches the pending queue.
            # The runtime's TSW status poll still notices the abort, so
            # the fault degrades into detection latency.
            self.alerts_lost += 1
            return
        self.alerts_raised += 1
        self._pending.append(PendingAlert(line_address, reason))

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    def drain(self) -> List[PendingAlert]:
        """Deliver all pending alerts through the handler, FIFO."""
        delivered: List[PendingAlert] = []
        while self._pending:
            alert = self._pending.pop(0)
            self.alerts_delivered += 1
            delivered.append(alert)
            if self._handler is not None:
                self._handler(alert)
        return delivered

    def peek_pending(self) -> List[PendingAlert]:
        return list(self._pending)
