"""One FlexTM core: signatures, CSTs, AOU, OT controller, private L1.

The processor object implements the L1 hook interface, which is where
the decoupled mechanisms meet the coherence protocol:

* forwarded requests are classified against ``Rsig``/``Wsig`` and the
  responder-side CST bits are set (Figure 1's response table);
* evicted TMI lines are spilled through the overflow controller;
* invalidations of A-marked lines raise alerts.

Requestor-side CST updates happen in :meth:`note_request_conflicts`
when the response arrives, mirroring the hardware's symmetric update.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.coherence.directory import Directory
from repro.coherence.l1 import L1Controller
from repro.coherence.messages import AccessKind, RequestType, ResponseKind
from repro.core.aou import AlertUnit
from repro.core.cst import ConflictSummaryTables
from repro.core.descriptor import SavedHardwareState, TransactionDescriptor
from repro.core.overflow import OverflowController
from repro.obs.tracer import NULL_TRACER
from repro.params import SystemParams
from repro.sim.clock import CycleClock
from repro.sim.stats import StatsRegistry
from repro.signatures.bloom import Signature

#: Cycles for the first-overflow software trap that allocates an OT.
OT_ALLOCATE_TRAP_CYCLES = 200
#: Controller cycles to write one evicted TMI line into the OT.
OT_SPILL_CYCLES = 20
#: Controller cycles to pull an overflowed line back on an L1 miss.
OT_REFILL_CYCLES = 20
#: Per-line copy-back cost at commit (runs on the controller, but
#: defines the NACK window seen by other processors).
OT_COPYBACK_CYCLES_PER_LINE = 20


class FlexTMProcessor:
    """Per-core FlexTM state and hook logic."""

    def __init__(
        self,
        proc_id: int,
        params: SystemParams,
        directory: Directory,
        stats: Optional[StatsRegistry] = None,
        tmi_to_victim: bool = False,
    ):
        self.proc_id = proc_id
        self.params = params
        self.stats = stats or StatsRegistry()
        #: Observability hook (replaced by FlexTMMachine.set_tracer).
        self.tracer = NULL_TRACER
        #: Fault injection (installed by FlexTMMachine.set_chaos).
        self.chaos = None
        #: Degradation controller (installed by set_resilience).
        self.resilience = None
        #: Metrics hub (installed by FlexTMMachine.set_metrics).
        self.metrics = None
        self.clock = CycleClock()
        self.rsig = Signature(params.signature_bits, params.signature_hashes)
        self.wsig = Signature(params.signature_bits, params.signature_hashes)
        self.csts = ConflictSummaryTables(params.num_processors)
        self.alerts = AlertUnit()
        self.ot = OverflowController(
            signature_bits=params.signature_bits,
            num_hashes=params.signature_hashes,
            default_sets=params.ot_initial_sets,
            associativity=params.ot_associativity,
        )
        self.l1 = L1Controller(
            proc_id, params, directory, hooks=self, stats=self.stats, tmi_to_victim=tmi_to_victim
        )
        #: Descriptor of the transaction currently running here (if any).
        self.current: Optional[TransactionDescriptor] = None
        #: Speculative word values of the current transaction (PDI/OT
        #: content, value view).
        self.overlay: Dict[int, int] = {}
        #: FlexWatcher support: when True, *local* accesses that hit the
        #: activated signature raise an alert (Table 4a 'activate').
        self.local_monitoring = False
        #: Processors this transaction's W-R/W-W registers have named —
        #: the per-transaction statistic of the Figure 4 conflict table.
        self.conflict_partners = set()

    # -- L1 hook interface -------------------------------------------------------

    def _sig_member(self, which: str, line_address: int) -> bool:
        """Signature membership test, optionally corrupted by chaos.

        Corruption is gated on a running transaction: an idle core's
        signatures are architecturally clean, so flipping them would
        manufacture states the hardware cannot reach (and trip the
        idle-hygiene invariant on a healthy protocol).
        """
        sig = self.wsig if which == "wsig" else self.rsig
        actual = sig.member(line_address)
        if self.chaos is not None and self.chaos.enabled and self.current is not None:
            if self.resilience is not None and self.resilience.quiesced(self.proc_id):
                # Serial-irrevocable holder: signatures are quiesced, so
                # chaos corruption cannot touch its conflict answers.
                return actual
            return self.chaos.sig_member(which, line_address, actual)
        return actual

    def classify_remote(
        self, requestor: int, req_type: RequestType, line_address: int
    ) -> Optional[ResponseKind]:
        """Signature checks for a forwarded request; sets responder CSTs."""
        if self._sig_member("wsig", line_address):
            if req_type is RequestType.GETS:
                self.csts.w_r.set(requestor)
                self.conflict_partners.add(requestor)
            elif req_type is RequestType.TGETX:
                self.csts.w_w.set(requestor)
                self.conflict_partners.add(requestor)
            # Non-transactional GETX: strong isolation — no CST bit, the
            # requestor aborts this transaction outright (Section 3.5).
            self.stats.counter("cst.threatened_responses").increment()
            return ResponseKind.THREATENED
        if self._sig_member("rsig", line_address):
            if req_type is RequestType.TGETX:
                self.csts.r_w.set(requestor)
                self.stats.counter("cst.exposed_read_responses").increment()
                return ResponseKind.EXPOSED_READ
            if req_type is RequestType.GETX:
                return ResponseKind.INVALIDATED
            return ResponseKind.SHARED
        return None

    def holds_overflow(self, line_address: int) -> bool:
        return self.ot.lookup(line_address)

    def spill_tmi(self, line_address: int) -> int:
        """Evicted TMI line -> overflow table; returns trap+spill cycles."""
        cycles = OT_SPILL_CYCLES
        if not self.ot.active:
            self.ot.allocate(self.current.thread_id if self.current else self.proc_id)
            cycles += OT_ALLOCATE_TRAP_CYCLES
            self.stats.counter("ot.allocations").increment()
        self.ot.spill(line_address)
        self.stats.counter("ot.spills").increment()
        if self.tracer.enabled:
            self.tracer.overflow(
                self.proc_id, self.clock.now, "spill", line_address, dur=cycles
            )
        if self.metrics is not None:
            self.metrics.on_overflow(self.proc_id, self.clock.now, "spill", cycles)
        return cycles

    def on_alert(self, line_address: int, reason: str) -> None:
        self.alerts.raise_alert(line_address, reason)
        if self.tracer.enabled:
            self.tracer.aou_alert(self.proc_id, self.clock.now, line_address, reason)
        if self.metrics is not None:
            self.metrics.on_alert(self.proc_id, self.clock.now)

    # -- transactional access helpers ---------------------------------------------

    def ot_refill(self, line_address: int) -> int:
        """Pull an overflowed line back into the L1 before an access.

        Returns the cycles spent (0 when the line is not in the OT).
        """
        if not self.ot.lookup(line_address):
            return 0
        walk_cycles = OT_REFILL_CYCLES + self.ot.walk_penalty(line_address, OT_REFILL_CYCLES)
        self.ot.extract(line_address)
        # Reinstall as TMI; this may evict another line (possibly
        # spilling it right back — the pathological ping-pong a sane OT
        # geometry avoids).
        from repro.coherence.states import LineState  # local to avoid cycle

        victim = self.l1.array.choose_victim(line_address)
        if victim is not None:
            self.l1.evict(victim)
        line = self.l1.array.install(line_address, LineState.TMI)
        line.t_bit = True
        self.stats.counter("ot.refills").increment()
        if self.tracer.enabled:
            self.tracer.overflow(
                self.proc_id, self.clock.now, "walk", line_address, dur=walk_cycles
            )
        if self.metrics is not None:
            self.metrics.on_overflow(self.proc_id, self.clock.now, "walk", walk_cycles)
        return walk_cycles

    def note_request_conflicts(
        self, kind: AccessKind, conflicts: List[Tuple[int, ResponseKind]]
    ) -> None:
        """Requestor-side CST updates on conflicting responses."""
        for responder, response in conflicts:
            if response is ResponseKind.THREATENED:
                if kind is AccessKind.TLOAD:
                    self.csts.r_w.set(responder)
                elif kind is AccessKind.TSTORE:
                    self.csts.w_w.set(responder)
                    self.conflict_partners.add(responder)
            elif response is ResponseKind.EXPOSED_READ and kind is AccessKind.TSTORE:
                self.csts.w_r.set(responder)
                self.conflict_partners.add(responder)

    # -- transaction lifecycle -------------------------------------------------

    def begin_transaction(self, descriptor: TransactionDescriptor) -> None:
        """Install a descriptor; hardware registers start clean."""
        self.current = descriptor
        self.overlay = {}
        self.rsig.clear()
        self.wsig.clear()
        self.csts.clear()
        self.conflict_partners = set()
        if self.resilience is not None:
            # Signatures are provably clean here — the only legal point
            # to rotate the hash family (see DegradeSpec.sig_sustain).
            self.resilience.maybe_rotate(self)
        if self.ot.active:
            self.ot.release()

    def flash_commit(self, now: int) -> int:
        """CAS-Commit success: TMI->M, TI->I, start OT copy-back.

        Returns the cycle at which the OT drain completes (== ``now``
        when nothing overflowed).
        """
        self.l1.flash_commit()
        copyback_done = self.ot.begin_copyback(now, OT_COPYBACK_CYCLES_PER_LINE)
        if copyback_done > now and self.tracer.enabled:
            # Controller-overlapped drain: informational (the profiler
            # does not charge it to the processor's cycle buckets).
            self.tracer.overflow(
                self.proc_id, self.clock.now, "copyback", dur=copyback_done - now
            )
        if copyback_done > now and self.metrics is not None:
            self.metrics.on_overflow(
                self.proc_id, self.clock.now, "copyback", copyback_done - now
            )
        self.rsig.clear()
        self.wsig.clear()
        self.csts.clear()
        self.overlay = {}
        return copyback_done

    def flash_abort(self) -> None:
        """Abort: discard TMI/TI lines, clear registers, return the OT."""
        self.l1.flash_abort()
        self.rsig.clear()
        self.wsig.clear()
        self.csts.clear()
        self.overlay = {}
        if self.ot.active:
            self.ot.release()
            self.stats.counter("ot.abort_releases").increment()

    def end_transaction(self) -> None:
        self.current = None
        self.overlay = {}
        self.alerts.clear()

    # -- context-switch virtualization (Section 5) -------------------------------

    def save_transactional_state(self) -> SavedHardwareState:
        """Spill hardware state to memory (suspend path).

        Order follows the paper: TMI values (overlay), OT registers,
        signatures, CSTs — then the abort instruction clears the cache.
        """
        saved = SavedHardwareState(
            overlay=dict(self.overlay),
            ot_registers=self.ot.save() if self.ot.active else None,
            rsig=self.rsig.copy(),
            wsig=self.wsig.copy(),
            csts=self.csts.save(),
            last_processor=self.proc_id,
        )
        # "The OS issues an abort instruction": revert TMI/TI to I and
        # clear the registers so the next thread starts clean.  The
        # speculative values live on in ``saved``.
        self.l1.flash_abort()
        self.rsig.clear()
        self.wsig.clear()
        self.csts.clear()
        self.overlay = {}
        if self.ot.active:
            self.ot.release()
        self.current = None
        return saved

    def restore_transactional_state(
        self, descriptor: TransactionDescriptor, saved: SavedHardwareState
    ) -> None:
        """Reinstall a suspended transaction's registers (resume path)."""
        self.current = descriptor
        self.overlay = dict(saved.overlay)
        self.rsig = saved.rsig.copy()
        self.wsig = saved.wsig.copy()
        self.csts.restore(saved.csts)
        if saved.ot_registers is not None:
            self.ot.restore(saved.ot_registers)

    @property
    def in_transaction(self) -> bool:
        return self.current is not None
