"""Conflict Summary Tables (Section 3.2).

Each processor has three CSTs — **R-W**, **W-R** and **W-W** — each one
bit per *other* processor.  A set bit says a local read (R) or write (W)
has conflicted with a remote read/write on that processor.  Because
conflicts are summarized per-processor rather than per-line, a lazy
transaction can find everyone it must abort by reading two registers —
no global arbitration, token, or write-set broadcast.

The registers support the ``copy-and-clear`` atomic used at line 1 of
the Commit() routine (Figure 3), similar to SPARC's ``clruw``.
"""

from __future__ import annotations

from typing import Iterator, List


class CstRegister:
    """One full-map bit-vector conflict register."""

    __slots__ = ("name", "width", "_bits")

    def __init__(self, name: str, width: int):
        if width < 1:
            raise ValueError("CST width must be >= 1")
        self.name = name
        self.width = width
        self._bits = 0

    def set(self, processor: int) -> None:
        self._check(processor)
        self._bits |= 1 << processor

    def clear_bit(self, processor: int) -> None:
        self._check(processor)
        self._bits &= ~(1 << processor)

    def test(self, processor: int) -> bool:
        self._check(processor)
        return bool((self._bits >> processor) & 1)

    def copy_and_clear(self) -> int:
        """Atomically read the register and zero it (``clruw`` analogue)."""
        value, self._bits = self._bits, 0
        return value

    def clear(self) -> None:
        self._bits = 0

    @property
    def value(self) -> int:
        return self._bits

    @value.setter
    def value(self, bits: int) -> None:
        if bits < 0 or bits >= (1 << self.width):
            raise ValueError(f"bitmask out of range for width {self.width}")
        self._bits = bits

    @property
    def is_empty(self) -> bool:
        return self._bits == 0

    @property
    def popcount(self) -> int:
        return bin(self._bits).count("1")

    def processors(self) -> Iterator[int]:
        """Indices of set bits, ascending."""
        bits, index = self._bits, 0
        while bits:
            if bits & 1:
                yield index
            bits >>= 1
            index += 1

    def _check(self, processor: int) -> None:
        if not 0 <= processor < self.width:
            raise ValueError(f"processor {processor} out of range [0, {self.width})")

    def __repr__(self) -> str:
        return f"CstRegister({self.name}={self._bits:0{self.width}b})"


class ConflictSummaryTables:
    """The per-processor trio of CST registers."""

    def __init__(self, num_processors: int):
        self.num_processors = num_processors
        self.r_w = CstRegister("R-W", num_processors)
        self.w_r = CstRegister("W-R", num_processors)
        self.w_w = CstRegister("W-W", num_processors)

    def clear(self) -> None:
        self.r_w.clear()
        self.w_r.clear()
        self.w_w.clear()

    @property
    def is_empty(self) -> bool:
        return self.r_w.is_empty and self.w_r.is_empty and self.w_w.is_empty

    @property
    def must_abort_mask(self) -> int:
        """W-R | W-W — processors a committer must abort (Figure 3)."""
        return self.w_r.value | self.w_w.value

    def enemies(self) -> List[int]:
        """Processors in W-R | W-W, ascending."""
        mask, out, index = self.must_abort_mask, [], 0
        while mask:
            if mask & 1:
                out.append(index)
            mask >>= 1
            index += 1
        return out

    def conflict_degree(self) -> int:
        """Distinct conflicting processors across all three tables.

        This is the statistic reported in the Figure 4 conflict table.
        """
        union = self.r_w.value | self.w_r.value | self.w_w.value
        return bin(union).count("1")

    def save(self) -> dict:
        """Snapshot for context-switch spill (Section 5)."""
        return {"r_w": self.r_w.value, "w_r": self.w_r.value, "w_w": self.w_w.value}

    def restore(self, saved: dict) -> None:
        self.r_w.value = saved["r_w"]
        self.w_r.value = saved["w_r"]
        self.w_w.value = saved["w_w"]

    def __repr__(self) -> str:
        return (
            f"CSTs(R-W={self.r_w.value:b}, W-R={self.w_r.value:b}, "
            f"W-W={self.w_w.value:b})"
        )
