"""Virtual-memory paging support (Section 4.1, "Virtual Memory Paging").

Signatures are built from *physical* addresses, so the OS must
intervene when logical-to-physical mappings change mid-transaction:

* **Unmap** — the OS's invalidations are forwarded to the L1s, which
  move invalidated TMI lines into the overflow table, where the OS can
  see them.
* **Re-map** (logical page assigned to a new frame) — the OS interrupts
  every thread that mapped the page, tests each thread's Rsig/Wsig/Osig
  for each old line address and, where present, inserts the new
  address; it also re-tags matching OT entries with the new physical
  address (their *logical* tags are what keep copy-back correct).
* **Frame reuse** (old frame given to a different page) — needs no
  action: stale signature bits can only cause false positives, hence
  spurious (conservative) aborts.

The machine model keeps a single flat address space, so these routines
operate directly on line addresses; ``PAGE_BYTES`` fixes the page
geometry.
"""

from __future__ import annotations

from typing import List

from repro.core.machine import FlexTMMachine

PAGE_BYTES = 4096


def page_lines(machine: FlexTMMachine, page_base: int) -> List[int]:
    """Line addresses covered by the page starting at ``page_base``."""
    if page_base % PAGE_BYTES:
        raise ValueError("page_base must be page-aligned")
    return list(machine.amap.lines_spanning(page_base, PAGE_BYTES))


def unmap_page(machine: FlexTMMachine, page_base: int) -> int:
    """OS unmap: flush the page's TMI lines into overflow tables.

    Returns the number of speculative lines moved.  Non-speculative
    copies are simply invalidated (they can be refetched); TMI lines
    hold the only copy of speculative data and must reach the OT, where
    the OS instance that initiated the unmap can see them.
    """
    moved = 0
    lines = set(page_lines(machine, page_base))
    for proc in machine.processors:
        for line_address in list(proc.l1.speculative_lines()):
            if line_address in lines:
                proc.spill_tmi(line_address)
                proc.l1.array.remove(line_address)
                moved += 1
        # Plain copies of the unmapped page are dropped.
        for line_address in sorted(lines):
            cached = proc.l1.array.peek(line_address)
            if cached is not None and not cached.state.is_transactional:
                proc.l1.array.remove(line_address)
            proc.l1.victims.invalidate(line_address)
    return moved


def remap_page(machine: FlexTMMachine, old_base: int, new_base: int) -> int:
    """OS re-map: a logical page moves to a new physical frame.

    For every processor with transactional state, each old line address
    present in Rsig/Wsig/Osig gets its new address inserted, and OT
    entries are re-tagged.  Returns the number of signature/OT updates
    performed.
    """
    if new_base % PAGE_BYTES:
        raise ValueError("new_base must be page-aligned")
    old_lines = page_lines(machine, old_base)
    delta = (new_base - old_base) >> machine.params.offset_bits
    updates = 0
    for proc in machine.processors:
        for old_line in old_lines:
            new_line = old_line + delta
            if proc.rsig.member(old_line):
                proc.rsig.insert(new_line)
                updates += 1
            if proc.wsig.member(old_line):
                proc.wsig.insert(new_line)
                updates += 1
            if proc.ot.active and proc.ot.osig.member(old_line):
                if proc.ot.table.retag(old_line, new_line):
                    proc.ot.osig.insert(new_line)
                    updates += 1
        # Speculative values move with the page in the overlay.
        for address in list(proc.overlay):
            if old_base <= address < old_base + PAGE_BYTES:
                proc.overlay[address - old_base + new_base] = proc.overlay.pop(address)
    # Suspended transactions' saved signatures get the same treatment.
    for descriptor in machine._suspended.values():
        saved = descriptor.saved
        if saved is None:
            continue
        for old_line in old_lines:
            new_line = old_line + delta
            if saved.rsig.member(old_line):
                saved.rsig.insert(new_line)
                updates += 1
            if saved.wsig.member(old_line):
                saved.wsig.insert(new_line)
                updates += 1
    return updates
