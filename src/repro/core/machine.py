"""The FlexTM chip multiprocessor.

Wires the per-core :class:`FlexTMProcessor` objects to the shared
:class:`Directory`, owns the functional memory image and the word-level
speculative overlays, and exposes the instruction-level interface the
runtime drives: ``load``/``store``/``tload``/``tstore``/``cas``/
``cas_commit``/``aload``.

Every operation resolves atomically (see DESIGN.md §4) and returns the
cycle cost for the issuing processor; the runtime's executor advances
that processor's clock, which is what interleaves the simulated threads.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.coherence.directory import Directory
from repro.coherence.messages import AccessKind, RequestType, ResponseKind
from repro.core.descriptor import RunState, TransactionDescriptor
from repro.core.processor import FlexTMProcessor
from repro.core.tsw import TxStatus
from repro.errors import ProtocolError
from repro.memory.address import AddressMap
from repro.memory.main_memory import MainMemory
from repro.obs.tracer import NULL_TRACER, Tracer, classify_conflict
from repro.params import DEFAULT_PARAMS, SystemParams
from repro.signatures.summary import SummarySignatures
from repro.sim.stats import StatsRegistry

#: Software-handler trap cost when a summary signature hits (Section 5).
SUMMARY_TRAP_CYCLES = 60
#: Cost per suspended descriptor tested by the software handler.
SUMMARY_DESC_CHECK_CYCLES = 30
#: Word size of the simulated machine (bytes).
WORD_BYTES = 8


@dataclasses.dataclass
class MemoryOpResult:
    """Value + cycle cost + conflict report for one machine operation."""

    value: int = 0
    cycles: int = 0
    conflicts: List[Tuple[int, ResponseKind]] = dataclasses.field(default_factory=list)
    nacked: bool = False
    success: bool = False  # CAS outcomes


class FlexTMMachine:
    """A complete simulated CMP with FlexTM extensions."""

    def __init__(
        self,
        params: SystemParams = DEFAULT_PARAMS,
        tmi_to_victim: bool = False,
    ):
        self.params = params
        self.stats = StatsRegistry()
        self.tracer: Tracer = NULL_TRACER
        self.memory = MainMemory()
        self.amap = AddressMap(params.line_bytes)
        self.directory = Directory(params, self.stats)
        self.processors = [
            FlexTMProcessor(p, params, self.directory, stats=self.stats, tmi_to_victim=tmi_to_victim)
            for p in range(params.num_processors)
        ]
        self.summary = SummarySignatures(
            params.signature_bits, params.signature_hashes, params.num_processors
        )
        self.directory.forward = self._forward
        self.directory.nack_check = self._nack_check
        self.directory.sticky_check = self.summary.sticky_sharer
        self.directory.summary_conflict_check = self._summary_conflict_check
        #: TSW address -> descriptor, for abort routing.
        self._descriptors_by_tsw: Dict[int, TransactionDescriptor] = {}
        #: thread id -> suspended descriptor (summary-handler registry).
        self._suspended: Dict[int, TransactionDescriptor] = {}
        self._pending_summary_conflicts: List[Tuple[int, ResponseKind]] = []
        #: Fault injection / invariant checking (opt-in, tracer-style).
        self.chaos = None
        self.invariants = None
        #: Adaptive-degradation controller (opt-in, tracer-style).
        self.resilience = None
        #: Best-effort-HTM fallback policy (opt-in; installed by the
        #: htmbe backend so the invariant checker can see the fallback
        #: lock and serial mode through the machine alone).
        self.htm_fallback = None
        #: Metrics hub (opt-in, tracer-style; None = no metrics).
        self.metrics = None
        #: Opacity/zombie probe layer (opt-in, tracer-style; None = no
        #: probes).  Purely observational: armed runs are bit-identical
        #: to unarmed runs.
        self.probes = None
        #: TSW address -> (wounder proc, conflict kind), staged by the
        #: runtime just before an abort CAS so the hardware-level TSW
        #: write can attribute the wound.
        self._staged_wounds: Dict[int, Tuple[int, str]] = {}
        # Bump-pointer allocator over the simulated address space; start
        # past page zero so 0 can serve as a null pointer.
        self._brk = 1 << 16

    # --------------------------------------------------------------- plumbing

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Install (or remove, with None) an observability tracer.

        The tracer is fanned out to every layer that emits events: the
        processors (AOU, overflow controller), their L1s (evictions) and
        the directory (coherence messages).  Tracing is observational
        only — it never changes a simulated cycle.
        """
        # Explicit None test: an EventTracer with no events yet is falsy
        # (it defines __len__), and must still install.
        tracer = NULL_TRACER if tracer is None else tracer
        self.tracer = tracer
        for proc in self.processors:
            proc.tracer = tracer
            proc.l1.tracer = tracer
        self.directory.tracer = tracer
        self.directory.clock_of = lambda p: self.processors[p].clock.now

    def set_chaos(self, chaos) -> None:
        """Install (or remove, with None) a fault-injection engine.

        Fanned out exactly like the tracer: the directory, every
        processor, its L1, alert unit, and overflow controller each hold
        the same engine, so all fault sites draw from one set of seeded
        streams.
        """
        self.chaos = chaos
        if chaos is not None and getattr(chaos, "stats", None) is None:
            chaos.stats = self.stats
        for proc in self.processors:
            proc.chaos = chaos
            proc.l1.chaos = chaos
            proc.alerts.chaos = chaos
            proc.ot.chaos = chaos
        self.directory.chaos = chaos

    def set_invariants(self, checker) -> None:
        """Install (or remove, with None) a runtime invariant checker."""
        self.invariants = checker

    def set_resilience(self, controller) -> None:
        """Install (or remove, with None) a degradation controller.

        Fanned out tracer-style: the processors need it for signature
        quiescing and hash-family rotation at transaction begin.
        """
        self.resilience = controller
        for proc in self.processors:
            proc.resilience = controller
        if controller is not None:
            controller.attach(self)

    def set_htm_fallback(self, policy) -> None:
        """Install (or remove, with None) a best-effort-HTM fallback policy.

        Registered by :class:`repro.stm.htmbe.HtmBestEffortRuntime` at
        construction so the ``htm-sw-mutex`` invariant (no HTM commit
        while the fallback lock is held) is checkable from the machine.
        """
        self.htm_fallback = policy

    def set_metrics(self, hub) -> None:
        """Install (or remove, with None) a metrics hub.

        Fanned out tracer-style to the processors, their L1s, and the
        directory; every hook site guards on ``metrics is None``, so a
        metrics-armed run is bit-identical to an unarmed one.
        """
        self.metrics = hub
        for proc in self.processors:
            proc.metrics = hub
            proc.l1.metrics = hub
        self.directory.metrics = hub
        if hub is not None:
            self.directory.clock_of = lambda p: self.processors[p].clock.now
            hub.attach(self)

    def set_probes(self, probes) -> None:
        """Install (or remove, with None) an opacity/zombie probe layer.

        Probes observe committed memory mutations (at the exact
        instruction that makes them globally visible) and transactional
        reads; they never touch simulated state, so an armed run is
        bit-identical to an unarmed one — the same contract as the
        tracer and metrics hub.
        """
        self.probes = probes
        if probes is not None:
            probes.attach(self)

    def _forward(
        self, responder: int, requestor: int, req_type: RequestType, line_address: int
    ):
        return self.processors[responder].l1.handle_forwarded(requestor, req_type, line_address)

    def _nack_check(self, line_address: int, requestor: int) -> bool:
        now = self.processors[requestor].clock.now
        for proc in self.processors:
            if proc.proc_id != requestor and proc.ot.nacks(line_address, now):
                self.stats.counter("ot.nacks").increment()
                return True
        return False

    def _summary_conflict_check(self, requestor: int, line_address: int, is_write: bool) -> int:
        """L2-side summary test + software handler (Section 5)."""
        if self.summary.is_empty or not self.summary.conflicts(line_address, is_write):
            return 0
        cycles = SUMMARY_TRAP_CYCLES
        self.stats.counter("summary.traps").increment()
        for thread_id in self.summary.threads_conflicting(line_address, is_write):
            descriptor = self._suspended.get(thread_id)
            if descriptor is None or descriptor.saved is None:
                continue
            cycles += SUMMARY_DESC_CHECK_CYCLES
            if descriptor.saved.wsig.member(line_address):
                kind = ResponseKind.THREATENED
                descriptor.record_suspended_conflict(
                    requestor, local_was_write=True, remote_is_write=is_write
                )
            elif is_write and descriptor.saved.rsig.member(line_address):
                kind = ResponseKind.EXPOSED_READ
                descriptor.record_suspended_conflict(
                    requestor, local_was_write=False, remote_is_write=True
                )
            else:
                continue  # summary false positive
            self._pending_summary_conflicts.append((descriptor.last_processor, kind))
        return cycles

    def _take_summary_conflicts(self) -> List[Tuple[int, ResponseKind]]:
        taken, self._pending_summary_conflicts = self._pending_summary_conflicts, []
        return taken

    def _trace_access(
        self,
        proc: FlexTMProcessor,
        kind: AccessKind,
        address: int,
        conflicts: List[Tuple[int, ResponseKind]],
    ) -> None:
        """Emit the (sampled) access and any CST-setting conflicts."""
        if not self.tracer.enabled:
            return
        now = proc.clock.now
        thread = proc.current.thread_id if proc.current is not None else -1
        rw = "read" if kind is AccessKind.TLOAD else "write"
        self.tracer.tx_access(proc.proc_id, thread, now, rw, address)
        line = self.amap.line_of(address)
        for responder, response in conflicts:
            cst = classify_conflict(kind, response)
            if cst is not None:
                self.tracer.conflict(proc.proc_id, now, responder, cst, line)

    def _metric_conflicts(
        self,
        proc: FlexTMProcessor,
        kind: AccessKind,
        conflicts: List[Tuple[int, ResponseKind]],
    ) -> None:
        """Feed CST-setting conflicts to the hub (independent of tracing)."""
        metrics = self.metrics
        if metrics is None:
            return
        now = proc.clock.now
        for responder, response in conflicts:
            cst = classify_conflict(kind, response)
            if cst is not None:
                metrics.on_conflict(proc.proc_id, now, responder, cst)

    # -------------------------------------------------------------- allocator

    def allocate(self, nbytes: int, line_aligned: bool = False) -> int:
        """Carve out simulated memory; returns the base byte address."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        align = self.params.line_bytes if line_aligned else WORD_BYTES
        self._brk = (self._brk + align - 1) & ~(align - 1)
        base = self._brk
        self._brk += nbytes
        return base

    def allocate_words(self, nwords: int, line_aligned: bool = False) -> int:
        return self.allocate(nwords * WORD_BYTES, line_aligned)

    def warm_region(self, base: int, nbytes: int) -> None:
        """Pre-fill L2 tags for a region (untimed warm-up, no cycles).

        Used by workload setup and metadata-table construction so that
        measured runs don't charge cold-memory misses the paper's
        untimed warm-up phase would have absorbed.
        """
        for line in self.amap.lines_spanning(base, max(1, nbytes)):
            self.directory.warm_line(line)

    # ------------------------------------------------------------- operations

    def load(self, proc_id: int, address: int) -> MemoryOpResult:
        """Non-transactional load.

        Strong isolation: if the line is threatened, the value read is
        the committed one and the line is left uncached, so the read
        serializes before the writing transaction.
        """
        proc = self.processors[proc_id]
        line = self.amap.line_of(address)
        result = proc.l1.access(AccessKind.LOAD, line)
        self._take_summary_conflicts()  # plain reads don't act on them
        if result.nacked:
            return MemoryOpResult(cycles=result.cycles, nacked=True)
        value = self._read_value(proc, address, transactional=False)
        return MemoryOpResult(value=value, cycles=result.cycles)

    def store(self, proc_id: int, address: int, value: int) -> MemoryOpResult:
        """Non-transactional store; aborts conflicting transactions.

        Section 3.5: a GETX that hits a responder's Rsig or Wsig aborts
        the responder, so the write serializes before the (retried)
        transaction.
        """
        proc = self.processors[proc_id]
        line = self.amap.line_of(address)
        result = proc.l1.access(AccessKind.STORE, line)
        conflicts = result.conflicts + self._take_summary_conflicts()
        if result.nacked:
            return MemoryOpResult(cycles=result.cycles, nacked=True)
        aborted = self._strong_isolation_aborts(proc_id, line, conflicts)
        if self.invariants is not None and address in self._descriptors_by_tsw:
            self.invariants.on_tsw_write(address, self.memory.read(address), value)
        self.memory.write(address, value)
        if self.probes is not None:
            self.probes.on_memory_write(address, value)
        out = MemoryOpResult(cycles=result.cycles, conflicts=conflicts)
        out.value = value
        if aborted:
            self.stats.counter("strong_isolation.aborts").increment(len(aborted))
            if self.tracer.enabled:
                now = proc.clock.now
                for victim in aborted:
                    self.tracer.conflict(proc_id, now, victim, "SI", line)
            metrics = self.metrics
            if metrics is not None:
                now = proc.clock.now
                for victim in aborted:
                    metrics.on_conflict(proc_id, now, victim, "SI")
        return out

    def tload(self, proc_id: int, address: int) -> MemoryOpResult:
        """Transactional load: updates Rsig, may install TI, sets CSTs."""
        proc = self.processors[proc_id]
        if not proc.in_transaction:
            raise ProtocolError("TLoad outside a transaction")
        line = self.amap.line_of(address)
        refill_cycles = proc.ot_refill(line)
        result = proc.l1.access(AccessKind.TLOAD, line)
        conflicts = result.conflicts + self._take_summary_conflicts()
        if result.nacked:
            return MemoryOpResult(cycles=result.cycles + refill_cycles, nacked=True)
        proc.rsig.insert(line)
        proc.note_request_conflicts(AccessKind.TLOAD, conflicts)
        if self.invariants is not None:
            self.invariants.on_access_conflicts(
                self, proc_id, AccessKind.TLOAD, result.conflicts
            )
        if proc.current is not None:
            proc.current.accesses += 1
        if self.tracer.enabled:
            self._trace_access(proc, AccessKind.TLOAD, address, conflicts)
        self._metric_conflicts(proc, AccessKind.TLOAD, conflicts)
        value = self._read_value(proc, address, transactional=True)
        return MemoryOpResult(value=value, cycles=result.cycles + refill_cycles, conflicts=conflicts)

    def tstore(self, proc_id: int, address: int, value: int) -> MemoryOpResult:
        """Transactional store: buffers the value (PDI), updates Wsig."""
        proc = self.processors[proc_id]
        if not proc.in_transaction:
            raise ProtocolError("TStore outside a transaction")
        line = self.amap.line_of(address)
        refill_cycles = proc.ot_refill(line)
        result = proc.l1.access(AccessKind.TSTORE, line)
        conflicts = result.conflicts + self._take_summary_conflicts()
        if result.nacked:
            return MemoryOpResult(cycles=result.cycles + refill_cycles, nacked=True)
        proc.wsig.insert(line)
        proc.note_request_conflicts(AccessKind.TSTORE, conflicts)
        if self.invariants is not None:
            self.invariants.on_access_conflicts(
                self, proc_id, AccessKind.TSTORE, result.conflicts
            )
        proc.overlay[address] = value
        if proc.current is not None:
            proc.current.accesses += 1
        if self.tracer.enabled:
            self._trace_access(proc, AccessKind.TSTORE, address, conflicts)
        self._metric_conflicts(proc, AccessKind.TSTORE, conflicts)
        return MemoryOpResult(value=value, cycles=result.cycles + refill_cycles, conflicts=conflicts)

    def cas(self, proc_id: int, address: int, expected: int, new: int) -> MemoryOpResult:
        """Non-transactional compare-and-swap (abort/arbitration tool)."""
        proc = self.processors[proc_id]
        line = self.amap.line_of(address)
        result = proc.l1.access(AccessKind.STORE, line)
        conflicts = result.conflicts + self._take_summary_conflicts()
        if result.nacked:
            return MemoryOpResult(cycles=result.cycles, nacked=True)
        self._strong_isolation_aborts(proc_id, line, conflicts)
        old = self.memory.read(address)
        out = MemoryOpResult(value=old, cycles=result.cycles, conflicts=conflicts)
        if old == expected:
            if (
                self.resilience is not None
                and new == TxStatus.ABORTED
                and self.resilience.deflects(address)
            ):
                # Serial-irrevocable holder: abort writes bounce off its
                # TSW (forward-progress guarantee).  success stays False.
                self._staged_wounds.pop(address, None)
                self.resilience.note_deflected()
                return out
            if self.invariants is not None and address in self._descriptors_by_tsw:
                self.invariants.on_tsw_write(address, old, new)
            self.memory.write(address, new)
            if self.probes is not None:
                self.probes.on_memory_write(address, new)
            out.success = True
            self._on_tsw_write(address, new, by=proc_id)
        else:
            # A wound staged for this CAS is stale once the CAS fails.
            self._staged_wounds.pop(address, None)
        return out

    def cas_commit(self, proc_id: int) -> MemoryOpResult:
        """The CAS-Commit instruction on the local transaction's TSW.

        Success requires the TSW to still read ACTIVE *and* W-R | W-W to
        be zero.  On success the controller flash-commits TMI/TI state,
        makes the speculative values visible, and kicks off the OT
        copy-back.  On a value mismatch (we were aborted) the controller
        flash-aborts.  On a CST mismatch nothing changes — the Commit()
        routine loops (Figure 3, line 5).
        """
        proc = self.processors[proc_id]
        descriptor = proc.current
        if descriptor is None:
            raise ProtocolError("CAS-Commit with no running transaction")
        line = self.amap.line_of(descriptor.tsw_address)
        access = proc.l1.access(AccessKind.STORE, line)
        out = MemoryOpResult(cycles=access.cycles)
        old = self.memory.read(descriptor.tsw_address)
        out.value = old
        if old != TxStatus.ACTIVE:
            proc.flash_abort()
            self.stats.counter("commit.cas_lost_race").increment()
            return out
        if proc.csts.must_abort_mask != 0:
            self.stats.counter("commit.cas_cst_fail").increment()
            return out
        if self.invariants is not None:
            self.invariants.on_tsw_write(descriptor.tsw_address, old, int(TxStatus.COMMITTED))
        self.memory.write(descriptor.tsw_address, TxStatus.COMMITTED)
        # Flash commit: speculative values become globally visible in
        # the same atomic step the TSW changes.
        self.memory.bulk_write(proc.overlay.items())
        if self.probes is not None:
            self.probes.on_commit_flash(proc.overlay)
        proc.flash_commit(proc.clock.now + out.cycles)
        out.success = True
        return out

    def aload(self, proc_id: int, address: int) -> MemoryOpResult:
        """ALoad: read a line and mark it for alert-on-update."""
        proc = self.processors[proc_id]
        line = self.amap.line_of(address)
        result = proc.l1.aload(line)
        self._take_summary_conflicts()
        proc.alerts.mark(line)
        value = self._read_value(proc, address, transactional=False)
        return MemoryOpResult(value=value, cycles=result.cycles)

    # ----------------------------------------------------------- abort routing

    def register_descriptor(self, descriptor: TransactionDescriptor) -> None:
        self._descriptors_by_tsw[descriptor.tsw_address] = descriptor

    def unregister_descriptor(self, descriptor: TransactionDescriptor) -> None:
        self._descriptors_by_tsw.pop(descriptor.tsw_address, None)

    def register_suspended(self, descriptor: TransactionDescriptor) -> None:
        self._suspended[descriptor.thread_id] = descriptor

    def unregister_suspended(self, thread_id: int) -> None:
        self._suspended.pop(thread_id, None)

    def stage_wound(self, tsw_address: int, by: int, kind: str) -> None:
        """Pre-register who/why for an imminent abort CAS on a TSW.

        The runtime knows the conflict kind; the hardware TSW write is
        where the abort actually lands.  Staging bridges the two so
        :class:`~repro.errors.TransactionAborted` can carry full cause
        fidelity.  A stale stage (failed CAS) is discarded.
        """
        self._staged_wounds[tsw_address] = (by, kind)

    def force_abort(self, descriptor: TransactionDescriptor, by: int = -1, kind: str = "") -> bool:
        """OS-initiated abort (watchdog, migration): CAS ACTIVE->ABORTED.

        Returns True when the abort landed; False when the transaction
        already resolved (committed or aborted) first.
        """
        if self.memory.read(descriptor.tsw_address) != TxStatus.ACTIVE:
            return False
        if self.resilience is not None and self.resilience.deflects(descriptor.tsw_address):
            self.resilience.note_deflected()
            return False
        if self.invariants is not None:
            self.invariants.on_tsw_write(
                descriptor.tsw_address, int(TxStatus.ACTIVE), int(TxStatus.ABORTED)
            )
        self.stage_wound(descriptor.tsw_address, by, kind)
        self.memory.write(descriptor.tsw_address, TxStatus.ABORTED)
        self._on_tsw_write(descriptor.tsw_address, TxStatus.ABORTED)
        return True

    def _on_tsw_write(self, address: int, new_value: int, by: int = -1) -> None:
        """Hardware side-effects of a successful write to some TSW."""
        staged = self._staged_wounds.pop(address, None)
        if new_value != TxStatus.ABORTED:
            return
        descriptor = self._descriptors_by_tsw.get(address)
        if descriptor is None:
            return
        kind = ""
        if staged is not None:
            by, kind = staged
        descriptor.aborts += 1
        descriptor.wounded_by = by
        descriptor.wound_kind = kind
        if 0 <= by < len(self.processors):
            wounder = self.processors[by].current
            if wounder is not None and wounder is not descriptor:
                wounder.wounds_inflicted += 1
        if descriptor.run_state is RunState.RUNNING and descriptor.last_processor >= 0:
            victim = self.processors[descriptor.last_processor]
            if victim.current is descriptor:
                # The victim's hardware reverts its speculative lines;
                # the AOU alert (raised by the TSW-line invalidation the
                # GETX already performed) tells the software to unwind.
                victim.flash_abort()

    def _strong_isolation_aborts(
        self, requestor: int, line_address: int, conflicts: List[Tuple[int, ResponseKind]]
    ) -> List[int]:
        """Abort every transaction conflicting with a non-tx write."""
        issuer = self.processors[requestor]
        if issuer.in_transaction:
            # The Commit()/manager CAS traffic of a transaction is not a
            # 'non-transactional writer' in the Section 3.5 sense; those
            # conflicts are CST-managed instead.
            return []
        aborted = []
        for responder, _kind in conflicts:
            victim_proc = self.processors[responder]
            descriptor = victim_proc.current
            if descriptor is None:
                # Could be a suspended transaction found via summaries.
                descriptor = self._descriptor_suspended_on(responder, line_address)
                if descriptor is None:
                    continue
            if self.memory.read(descriptor.tsw_address) == TxStatus.ACTIVE:
                if self.resilience is not None and self.resilience.deflects(
                    descriptor.tsw_address
                ):
                    self.resilience.note_deflected()
                    continue
                if self.invariants is not None:
                    self.invariants.on_tsw_write(
                        descriptor.tsw_address, int(TxStatus.ACTIVE), int(TxStatus.ABORTED)
                    )
                self.stage_wound(descriptor.tsw_address, requestor, "SI")
                self.memory.write(descriptor.tsw_address, TxStatus.ABORTED)
                self._on_tsw_write(descriptor.tsw_address, TxStatus.ABORTED)
                aborted.append(responder)
        return aborted

    def _descriptor_suspended_on(self, processor: int, line_address: int):
        for descriptor in self._suspended.values():
            if descriptor.last_processor == processor and descriptor.conflicts_with(
                line_address, is_write=True
            ):
                return descriptor
        return None

    # ------------------------------------------------------------------ values

    def _read_value(self, proc: FlexTMProcessor, address: int, transactional: bool) -> int:
        if transactional and address in proc.overlay:
            return proc.overlay[address]
        return self.memory.read(address)

    def read_status(self, descriptor: TransactionDescriptor) -> TxStatus:
        """Debug/OS view of a TSW (no cache traffic)."""
        from repro.core.tsw import decode_status

        return decode_status(self.memory.read(descriptor.tsw_address))

    def max_cycle(self) -> int:
        return max(proc.clock.now for proc in self.processors)
