"""Simulation kernel: deterministic RNG, statistics, cycle accounting."""

from repro.sim.rng import DeterministicRng
from repro.sim.stats import Counter, Histogram, StatsRegistry
from repro.sim.clock import CycleClock

__all__ = ["DeterministicRng", "Counter", "Histogram", "StatsRegistry", "CycleClock"]
