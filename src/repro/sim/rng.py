"""Deterministic random number generation.

All stochastic choices in the simulator (workload keys, Zipf draws,
back-off jitter) flow through :class:`DeterministicRng` so that a given
experiment seed replays bit-identically.  The implementation is a thin
wrapper over :class:`random.Random` with a few distribution helpers used
by the workloads.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """Seeded random source with workload-oriented helpers."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """Seed this generator was created with."""
        return self._seed

    def fork(self, stream: int) -> "DeterministicRng":
        """Derive an independent generator for a numbered stream.

        Used to give each simulated thread its own stream so that the
        outcome of one thread's draws never perturbs another's.
        """
        return DeterministicRng(hash((self._seed, stream)) & 0x7FFF_FFFF_FFFF_FFFF)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """k distinct items chosen uniformly."""
        return self._random.sample(items, k)

    def geometric(self, p: float) -> int:
        """Geometric variate (number of trials until first success)."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        count = 1
        while self._random.random() >= p:
            count += 1
        return count
