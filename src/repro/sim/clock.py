"""Per-processor cycle accounting.

The simulator is timing-driven rather than event-driven: every processor
owns a :class:`CycleClock`, each operation advances it by the operation's
latency, and the scheduler always steps the processor whose clock is
furthest behind.  This yields interleavings consistent with the relative
speeds of the simulated cores, which is what makes contention pathologies
(convoying, dueling aborts) reproducible.
"""

from __future__ import annotations


class CycleClock:
    """Monotonic cycle counter for one processor."""

    __slots__ = ("_now",)

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError("clock cannot start negative")
        self._now = start

    @property
    def now(self) -> int:
        """Current cycle count."""
        return self._now

    def advance(self, cycles: int) -> int:
        """Move time forward by ``cycles`` (must be non-negative)."""
        if cycles < 0:
            raise ValueError(f"cannot advance by negative cycles: {cycles}")
        self._now += cycles
        return self._now

    def advance_to(self, cycle: int) -> int:
        """Jump forward to an absolute cycle (no-op if already past it)."""
        if cycle > self._now:
            self._now = cycle
        return self._now

    def __repr__(self) -> str:
        return f"CycleClock(now={self._now})"
