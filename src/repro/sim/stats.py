"""Lightweight statistics collection.

Components register named :class:`Counter` and :class:`Histogram`
instances with a :class:`StatsRegistry`; harnesses snapshot the registry
to produce the paper's tables.

Percentiles delegate to :func:`repro.obs.metrics.nearest_rank` so the
whole repo answers order-statistic queries with one rule.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.obs.metrics import nearest_rank


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self._value += amount

    def reset(self) -> None:
        self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Histogram:
    """Collects integer samples and reports order statistics."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str):
        self.name = name
        self._samples: List[int] = []

    def record(self, sample: int) -> None:
        self._samples.append(sample)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> int:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        return self.total / len(self._samples) if self._samples else 0.0

    @property
    def maximum(self) -> int:
        return max(self._samples) if self._samples else 0

    @property
    def minimum(self) -> int:
        return min(self._samples) if self._samples else 0

    def percentile(self, fraction: float) -> int:
        """Nearest-rank percentile; ``fraction`` in [0, 1]."""
        return nearest_rank(sorted(self._samples), fraction)

    @property
    def median(self) -> int:
        return self.percentile(0.5)

    def reset(self) -> None:
        self._samples.clear()

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.2f})"


class StatsRegistry:
    """Namespace of counters and histograms for one simulated machine."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter called ``name``, creating it on first use."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        """Return the histogram called ``name``, creating it on first use."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counters(self) -> Iterator[Tuple[str, int]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def histograms(self) -> Iterator[Tuple[str, Histogram]]:
        for name in sorted(self._histograms):
            yield name, self._histograms[name]

    def snapshot(self) -> Dict[str, float]:
        """Copy of all counter values plus histogram summaries.

        Each histogram contributes ``.count``, ``.mean``, ``.max`` and
        ``.p95`` entries so snapshots capture distribution shape, not
        just sample volume.
        """
        data: Dict[str, float] = {
            name: counter.value for name, counter in self._counters.items()
        }
        for name, histogram in self._histograms.items():
            data[f"{name}.count"] = histogram.count
            data[f"{name}.mean"] = histogram.mean
            data[f"{name}.max"] = histogram.maximum
            data[f"{name}.p95"] = histogram.percentile(0.95)
        return data

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
