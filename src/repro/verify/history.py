"""History recording and conflict-serializability checking.

The :class:`RecordingBackend` wraps any TM backend and logs, for every
*committed* transaction, the values it read and wrote (keyed by
address) plus a commit ticket.  :func:`check_serializable` then builds
the version order from the recorded writes and verifies that the
history is view-equivalent to a serial order:

* every read must return either the initial value or the value written
  by some committed transaction (no reads out of thin air);
* the reads-from / version-order graph must be acyclic
  (conflict-serializability), checked with networkx.

Aborted attempts never reach the log — the TM's job is precisely to
make them invisible.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterator, List, Optional, Tuple

import networkx

from repro.errors import ReproError
from repro.runtime.api import TMBackend


class SerializabilityViolation(ReproError):
    """The recorded history is not conflict-serializable."""


@dataclasses.dataclass
class CommittedTransaction:
    """One committed transaction's externally visible behaviour."""

    ticket: int
    thread_id: int
    reads: Dict[int, int]
    writes: Dict[int, int]

    @property
    def name(self) -> str:
        return f"T{self.ticket}(thr{self.thread_id})"


class HistoryRecorder:
    """Accumulates committed transactions in commit order."""

    def __init__(self):
        self._ticket = itertools.count(1)
        self.committed: List[CommittedTransaction] = []
        #: Values present before any transaction ran (address -> value).
        self.initial_values: Dict[int, int] = {}

    def note_initial(self, address: int, value: int) -> None:
        self.initial_values.setdefault(address, value)

    def commit(self, thread_id: int, reads: Dict[int, int], writes: Dict[int, int]) -> None:
        self.committed.append(
            CommittedTransaction(
                ticket=next(self._ticket),
                thread_id=thread_id,
                reads=dict(reads),
                writes=dict(writes),
            )
        )


class RecordingBackend(TMBackend):
    """Decorator backend: logs committed read/write sets.

    Wraps the inner backend's generator methods verbatim, shadowing the
    per-attempt read/write observations and flushing them to the
    recorder only when the inner commit returns (i.e., succeeded).
    """

    def __init__(self, inner: TMBackend, recorder: Optional[HistoryRecorder] = None):
        self.inner = inner
        self.recorder = recorder or HistoryRecorder()
        self._attempts: Dict[int, Tuple[Dict[int, int], Dict[int, int]]] = {}

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"Recorded({self.inner.name})"

    @property
    def machine(self):
        """The inner backend's machine (threads discover the tracer,
        chaos, and resilience layers through ``backend.machine``)."""
        return getattr(self.inner, "machine", None)

    def begin(self, thread) -> Iterator[Tuple]:
        self._attempts[thread.thread_id] = ({}, {})
        result = yield from self.inner.begin(thread)
        return result

    def read(self, thread, address: int) -> Iterator[Tuple]:
        value = yield from self.inner.read(thread, address)
        reads, writes = self._attempts[thread.thread_id]
        # Record only the first read of each address (later reads may
        # legitimately see the transaction's own buffered writes).
        if address not in reads and address not in writes:
            reads[address] = value
        return value

    def write(self, thread, address: int, value: int) -> Iterator[Tuple]:
        yield from self.inner.write(thread, address, value)
        _, writes = self._attempts[thread.thread_id]
        writes[address] = value

    def commit(self, thread) -> Iterator[Tuple]:
        yield from self.inner.commit(thread)
        reads, writes = self._attempts.pop(thread.thread_id, ({}, {}))
        self.recorder.commit(thread.thread_id, reads, writes)

    def on_abort(self, thread) -> Iterator[Tuple]:
        self._attempts.pop(thread.thread_id, None)
        yield from self.inner.on_abort(thread)

    # Delegate the runtime plumbing.
    def check_aborted(self, thread) -> bool:
        return self.inner.check_aborted(thread)

    def retry_backoff(self, aborts_in_a_row: int) -> int:
        fallback = getattr(self.inner, "retry_backoff", None)
        if fallback is None:
            return min(1 << min(aborts_in_a_row, 8), 256)
        return fallback(aborts_in_a_row)

    def suspend(self, thread):
        return self.inner.suspend(thread)

    def resume(self, thread, processor: int, saved):
        return self.inner.resume(thread, processor, saved)

    def abort_attribution(self, thread):
        hook = getattr(self.inner, "abort_attribution", None)
        return None if hook is None else hook(thread)

    def escalation_counters(self):
        hook = getattr(self.inner, "escalation_counters", None)
        return {} if hook is None else hook()


def check_serializable(recorder: HistoryRecorder) -> List[CommittedTransaction]:
    """Verify the recorded history; returns a witness serial order.

    Raises :class:`SerializabilityViolation` with a diagnostic when the
    history cannot be serialized.
    """
    transactions = recorder.committed
    # Map: address -> list of writers in commit-ticket order.
    writers: Dict[int, List[CommittedTransaction]] = {}
    for txn in transactions:
        for address in txn.writes:
            writers.setdefault(address, []).append(txn)

    graph = networkx.DiGraph()
    for txn in transactions:
        graph.add_node(txn.ticket)

    for reader in transactions:
        for address, seen in reader.reads.items():
            source = _find_source(recorder, reader, address, seen, writers)
            if source == "initial":
                # Reader precedes every writer of this address.
                for writer in writers.get(address, []):
                    if writer.ticket != reader.ticket:
                        graph.add_edge(reader.ticket, writer.ticket)
            else:
                graph.add_edge(source.ticket, reader.ticket)
                # Reader precedes the *next* writer after its source.
                chain = writers[address]
                index = chain.index(source)
                if index + 1 < len(chain):
                    nxt = chain[index + 1]
                    if nxt.ticket != reader.ticket:
                        graph.add_edge(reader.ticket, nxt.ticket)
    # Version order follows commit tickets.
    for chain in writers.values():
        for earlier, later in zip(chain, chain[1:]):
            graph.add_edge(earlier.ticket, later.ticket)

    try:
        order = list(networkx.topological_sort(graph))
    except networkx.NetworkXUnfeasible:
        cycle = networkx.find_cycle(graph)
        raise SerializabilityViolation(f"dependency cycle: {cycle}")
    by_ticket = {txn.ticket: txn for txn in transactions}
    return [by_ticket[ticket] for ticket in order if ticket in by_ticket]


def _find_source(recorder, reader, address, seen, writers):
    """Which committed write produced the value this read observed?"""
    candidates = [
        txn
        for txn in writers.get(address, [])
        if txn.writes[address] == seen and txn.ticket != reader.ticket
    ]
    if candidates:
        # Prefer the latest matching writer that committed before the
        # reader; fall back to any matching writer (commit tickets are
        # only an approximation of the true serialization order).
        before = [txn for txn in candidates if txn.ticket < reader.ticket]
        return (before or candidates)[-1]
    if recorder.initial_values.get(address, 0) == seen:
        return "initial"
    raise SerializabilityViolation(
        f"{reader.name} read {seen} at 0x{address:x}, which no committed "
        f"transaction wrote and which is not the initial value"
    )
