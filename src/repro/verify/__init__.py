"""Offline correctness verification for TM executions.

:mod:`repro.verify.history` records committed transactions' read/write
sets and checks conflict-serializability of the recorded history — the
ground-truth oracle behind the integration tests that every TM system
in this repository must pass.
"""

from repro.verify.history import (
    CommittedTransaction,
    HistoryRecorder,
    RecordingBackend,
    SerializabilityViolation,
    check_serializable,
)

__all__ = [
    "CommittedTransaction",
    "HistoryRecorder",
    "RecordingBackend",
    "SerializabilityViolation",
    "check_serializable",
]
