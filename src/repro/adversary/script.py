"""The ScheduleScript DSL: replayable, serializable interleavings.

A script is an ordered list of :class:`Step` directives interpreted by
the :class:`~repro.adversary.director.ScheduleDirector`.  Directives
are deliberately tiny — one action, one target thread, one bound — so
a script reads like the schedule diagrams in the TM-theory papers it
encodes::

    ScheduleScript(
        name="zombie-probe",
        steps=(
            Step.run(0, until="ops", count=12),   # T0 reads A
            Step.preempt(0),                      # ... and is descheduled
            Step.run(1, until="commit"),          # T1 commits A and B
            Step.place(0, processor=0),           # resume T0 where it was
            Step.run(0, until="ops", count=12),   # zombie T0 reads B
            Step.wound(0),                        # adversary aborts T0
            Step.run(0, until="done"),
            Step.run(1, until="done"),
        ),
    )

Scripts contain no randomness: the interpreter consumes no RNG stream,
so one script replays bit-identically — the property the determinism
tests lock.  The ``seed`` field parameterizes the *workload* a harness
builds around the script (write values, body RNG), not the schedule
itself.  ``to_json``/``from_json`` round-trip losslessly.

Directive semantics (interpreted by the director):

``run``
    step the target thread until the ``until`` condition holds:
    ``ops`` (``count`` scheduler steps), ``begin`` (inside a
    transaction), ``commit`` / ``abort`` (``count`` new ones),
    ``cycle`` (global cycle >= ``count``) or ``done`` (thread
    retired).  Every run directive carries a ``budget`` of scheduler
    steps so a blocked thread (a lock spinner, a NACK loop) cannot
    wedge the script: on exhaustion the directive is logged and the
    script advances.
``preempt``
    deschedule the thread into the parked set (it will not run again
    until placed).
``place``
    install a parked thread on ``processor`` (or the lowest free one);
    resuming on a different core follows the backend's migration
    policy.
``wound``
    force-abort the thread's in-flight transaction through the OS path
    with wound kind ``"adversary"``.
``stall``
    advance the thread's processor clock by ``count`` cycles.
``pin`` / ``unpin``
    make the thread immune to (or again eligible for) chaos-storm and
    quantum preemption, like the serial-irrevocable holder.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional, Tuple

#: Legal directive actions.
ACTIONS = ("run", "preempt", "place", "wound", "stall", "pin", "unpin")

#: Legal ``until`` conditions for run directives.
UNTIL_EVENTS = ("ops", "begin", "commit", "abort", "cycle", "done")

#: Default scheduler-step budget per run directive.
DEFAULT_STEP_BUDGET = 20_000


@dataclasses.dataclass(frozen=True)
class Step:
    """One schedule directive (immutable, picklable)."""

    action: str
    thread: int
    #: run only: the condition that completes the directive.
    until: str = "ops"
    #: ops/commit/abort: how many; cycle: the absolute target cycle;
    #: stall: cycles to advance.
    count: int = 1
    #: run only: scheduler-step budget (wedge guard).
    budget: int = DEFAULT_STEP_BUDGET
    #: place only: target processor (None = lowest free).
    processor: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown action {self.action!r}; have {ACTIONS}")
        if self.until not in UNTIL_EVENTS:
            raise ValueError(
                f"unknown until-event {self.until!r}; have {UNTIL_EVENTS}"
            )
        if self.thread < 0:
            raise ValueError(f"thread must be >= 0, got {self.thread}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")

    # -- constructors (the DSL surface) ---------------------------------------

    @classmethod
    def run(cls, thread: int, until: str = "ops", count: int = 1,
            budget: int = DEFAULT_STEP_BUDGET) -> "Step":
        return cls(action="run", thread=thread, until=until, count=count,
                   budget=budget)

    @classmethod
    def preempt(cls, thread: int) -> "Step":
        return cls(action="preempt", thread=thread)

    @classmethod
    def place(cls, thread: int, processor: Optional[int] = None) -> "Step":
        return cls(action="place", thread=thread, processor=processor)

    @classmethod
    def wound(cls, thread: int) -> "Step":
        return cls(action="wound", thread=thread)

    @classmethod
    def stall(cls, thread: int, cycles: int) -> "Step":
        return cls(action="stall", thread=thread, count=cycles)

    @classmethod
    def pin(cls, thread: int) -> "Step":
        return cls(action="pin", thread=thread)

    @classmethod
    def unpin(cls, thread: int) -> "Step":
        return cls(action="unpin", thread=thread)

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "Step":
        return cls(**doc)  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class ScheduleScript:
    """A named, seeded, serializable schedule."""

    name: str
    steps: Tuple[Step, ...]
    #: Workload parameterization (write values, body RNG) — the script
    #: itself is RNG-free.
    seed: int = 0
    description: str = ""
    citation: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a schedule script needs a name")
        object.__setattr__(self, "steps", tuple(self.steps))

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "description": self.description,
            "citation": self.citation,
            "steps": [step.to_json() for step in self.steps],
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "ScheduleScript":
        return cls(
            name=str(doc["name"]),
            seed=int(doc.get("seed", 0)),  # type: ignore[arg-type]
            description=str(doc.get("description", "")),
            citation=str(doc.get("citation", "")),
            steps=tuple(
                Step.from_json(step)  # type: ignore[arg-type]
                for step in doc.get("steps", ())
            ),
        )

    def dumps(self) -> str:
        """Stable JSON text (round-trips through :meth:`loads`)."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "ScheduleScript":
        return cls.from_json(json.loads(text))
