"""Adversarial schedule engine (the robustness conformance tentpole).

Random fault schedules (``repro.chaos``) show the simulator survives
*likely* trouble; this package drives it through the *specific*
worst-case interleavings TM theory names.  Three layers:

* :mod:`repro.adversary.script` — the :class:`ScheduleScript` DSL:
  seeded, JSON-serializable, replay-bit-identical scripts of per-thread
  ``run`` / ``preempt`` / ``place`` / ``pin`` / ``wound`` / ``stall``
  directives;
* :mod:`repro.adversary.director` — the :class:`ScheduleDirector` that
  executes a script through the scheduler's first-class control
  primitives (:meth:`~repro.runtime.scheduler.Scheduler.park` and
  friends), then hands control back to the default clock policy;
* :mod:`repro.adversary.probes` — the :class:`OpacityProbe` shadow-state
  oracle: observes every transactional read against the exact committed
  history and flags any zombie that saw an inconsistent snapshot;
* :mod:`repro.adversary.schedules` / :mod:`repro.adversary.conformance`
  — the named-schedule catalog from the Kuznetsov/Ravi theory papers
  and the per-(backend, schedule) verdict machinery behind
  ``python -m repro.harness adversary``.

See docs/ADVERSARY.md.
"""

from __future__ import annotations

from repro.adversary.conformance import (
    DEFAULT_CYCLE_LIMIT,
    ScheduleCell,
    run_adversary_matrix,
    run_schedule_cell,
)
from repro.adversary.director import ScheduleDirector
from repro.adversary.probes import OpacityProbe, OpacityViolation
from repro.adversary.schedules import SCHEDULES, ScheduleSpec
from repro.adversary.script import ScheduleScript, Step

__all__ = [
    "DEFAULT_CYCLE_LIMIT",
    "OpacityProbe",
    "OpacityViolation",
    "SCHEDULES",
    "ScheduleCell",
    "ScheduleDirector",
    "ScheduleScript",
    "ScheduleSpec",
    "Step",
    "run_adversary_matrix",
    "run_schedule_cell",
]
