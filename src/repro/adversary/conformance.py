"""Per-(backend, schedule) conformance cells and the adversary matrix.

Every named schedule from :mod:`repro.adversary.schedules` runs against
every TM backend with the full oracle stack armed: strict invariants,
the :class:`~repro.adversary.probes.OpacityProbe`, the recording
serializability checker, and the metrics hub (for wasted-cycle
accounting).  Each cell gets one of three verdicts:

``conforms``
    every transaction committed, the history is serializable, every
    attempt (committed or aborted) saw a consistent snapshot, and — for
    ``forbid_aborts`` schedules — no transaction aborted;
``aborts-as-required``
    same, except the conflict schedule made the TM abort someone, which
    is the *correct* response to the interleaving;
``violates``
    anything else: a crash, a wedge (missing commits at the cycle
    budget), a serializability or snapshot-consistency (opacity)
    violation, memory diverging from the serial witness, or an abort on
    a progressiveness schedule.

Cells are fully deterministic: the schedule script consumes no RNG and
the per-cell seed only offsets the unique write values, so the same
(seed, backend, schedule) triple replays bit-identically — including
across ``--jobs`` fan-out, which partitions by backend exactly like
the chaos harness.
"""

from __future__ import annotations

import dataclasses
import itertools
import zlib
from typing import Dict, List, Optional, Sequence

from repro.adversary.director import ScheduleDirector
from repro.adversary.probes import OpacityProbe
from repro.adversary.schedules import SCHEDULES, ScheduleSpec
from repro.chaos.invariants import InvariantChecker
from repro.core.descriptor import ConflictMode
from repro.core.machine import FlexTMMachine
from repro.errors import ReproError
from repro.params import small_test_params
from repro.runtime.scheduler import Scheduler
from repro.runtime.txthread import TxThread
from repro.verify.history import (
    RecordingBackend,
    SerializabilityViolation,
    check_serializable,
)

DEFAULT_CYCLE_LIMIT = 10_000_000

#: The verdict that fails the harness.
VIOLATES = "violates"


@dataclasses.dataclass
class ScheduleCell:
    """One (backend, schedule) cell of the conformance matrix."""

    backend: str
    schedule: str
    verdict: str
    seed: int = 0
    commits: int = 0
    aborts: int = 0
    cycles: int = 0
    aborts_by_kind: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: tx.wasted_cycles histogram snapshot (count/total/mean/p95).
    wasted_cycles: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: OpacityProbe.summary() — reads/snapshots checked, zombies, stale.
    probe: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: How the script actually unfolded (ScheduleDirector.log).
    directives: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.verdict != VIOLATES

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def cell_seed(seed: int, backend: str, schedule: str) -> int:
    """The replay seed for one cell (same mixing as the chaos harness)."""
    return seed ^ zlib.crc32(f"{backend}:{schedule}".encode())


def run_schedule_cell(
    backend_name: str,
    schedule: str,
    seed: int = 1,
    cycle_limit: int = DEFAULT_CYCLE_LIMIT,
    strict: bool = True,
    spec: Optional[ScheduleSpec] = None,
) -> ScheduleCell:
    """Run one schedule on one backend with all oracles armed.

    ``spec`` overrides the catalog lookup so synthesized schedules —
    the model-checker's counterexample bridge, the DSL fuzzer — replay
    through exactly the same oracle stack as the named catalog;
    ``schedule`` then only names the cell (and salts its seed).
    """
    from repro.harness.runner import SYSTEMS
    from repro.obs.metrics import MetricsHub

    if spec is None:
        spec = SCHEDULES[schedule]
    mixed = cell_seed(seed, backend_name, schedule)
    machine = FlexTMMachine(small_test_params(max(spec.threads, 2)))
    hub = MetricsHub()
    machine.set_metrics(hub)
    machine.set_invariants(InvariantChecker(strict=strict))
    probe = OpacityProbe()
    machine.set_probes(probe)
    backend = RecordingBackend(SYSTEMS[backend_name](machine, ConflictMode.EAGER))
    line = machine.params.line_bytes
    cells = [machine.allocate(line, line_aligned=True) for _ in range(spec.cells)]
    for index, cell in enumerate(cells):
        machine.memory.write(cell, index)
        backend.recorder.note_initial(cell, index)
        probe.track(cell, index)
    # Unique write values, offset per cell so reads-from attribution is
    # exact and distinct across the matrix.
    unique = itertools.count(1000 + (mixed % 1000) * 10_000)
    bodies, script = spec.build(cells, unique)
    script = dataclasses.replace(script, seed=mixed)
    director = ScheduleDirector(script)
    tx_threads = [
        TxThread(thread_id, backend, items)
        for thread_id, items in enumerate(bodies)
    ]
    # Only transactional items produce commits; plain items (bridged
    # schedules) are tallied separately by the threads.
    expected = sum(
        1 for items in bodies for item in items if item.transactional
    )
    out = ScheduleCell(
        backend=backend_name, schedule=schedule, verdict="conforms", seed=mixed
    )
    error = ""
    try:
        result = Scheduler(machine, tx_threads, director=director).run(
            cycle_limit=cycle_limit
        )
        out.commits = result.commits
        out.aborts = result.aborts
        out.cycles = result.cycles
        out.aborts_by_kind = dict(result.aborts_by_kind)
        wasted = hub.histogram("tx.wasted_cycles")
        out.wasted_cycles = {
            "count": wasted.count,
            "total": wasted.total,
            "mean": wasted.mean,
            "p95": wasted.p95,
        }
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        error = f"crash {type(exc).__name__}: {exc}"
    out.probe = probe.summary()
    out.directives = list(director.log)
    if error:
        out.verdict, out.detail = VIOLATES, error
        return out
    if out.commits < expected:
        out.verdict = VIOLATES
        out.detail = f"wedged: {out.commits}/{expected} commits at cycle budget"
        return out
    if not spec.plain_ops:
        try:
            witness = check_serializable(backend.recorder)
        except SerializabilityViolation as exc:
            out.verdict, out.detail = (
                VIOLATES,
                f"SerializabilityViolation: {exc}",
            )
            return out
    if probe.violations:
        out.verdict = VIOLATES
        out.detail = "opacity: " + probe.violations[0].detail
        return out
    if not spec.plain_ops:
        replay = dict(backend.recorder.initial_values)
        for txn in witness:
            replay.update(txn.writes)
        if any(machine.memory.read(cell) != replay[cell] for cell in cells):
            out.verdict = VIOLATES
            out.detail = "final memory diverges from serial witness replay"
            return out
    if out.aborts > 0:
        if spec.forbid_aborts:
            out.verdict = VIOLATES
            out.detail = (
                f"progressiveness: {out.aborts} abort(s) on a "
                "no-conflict schedule"
            )
        else:
            out.verdict = "aborts-as-required"
    return out


# ------------------------------------------------------------------ the matrix


def run_backend_schedules(
    backend_name: str,
    schedules: Sequence[str],
    seed: int,
    cycle_limit: int = DEFAULT_CYCLE_LIMIT,
    strict: bool = True,
) -> List[ScheduleCell]:
    """Every requested schedule on one backend, in catalog order."""
    return [
        run_schedule_cell(backend_name, schedule, seed, cycle_limit, strict)
        for schedule in schedules
    ]


def _worker(payload) -> List[ScheduleCell]:
    backend_name, schedules, seed, cycle_limit, strict = payload
    return run_backend_schedules(backend_name, schedules, seed, cycle_limit, strict)


def run_adversary_matrix(
    backends: Sequence[str],
    schedules: Sequence[str],
    seed: int,
    jobs: int = 1,
    cycle_limit: int = DEFAULT_CYCLE_LIMIT,
    strict: bool = True,
    progress=None,
) -> List[ScheduleCell]:
    """The full matrix; one worker unit per backend, rows in input order.

    Partitioning by backend (not by cell) keeps the row order — and
    every cell's seed and workload — identical at any ``--jobs`` value,
    which the determinism tests lock.
    """
    payloads = [
        (name, tuple(schedules), seed, cycle_limit, strict)
        for name in backends
    ]
    jobs = min(max(1, jobs), len(payloads))
    if jobs == 1:
        groups = []
        for payload in payloads:
            groups.append(_worker(payload))
            if progress is not None:
                progress(len(groups), len(payloads))
    else:
        import concurrent.futures
        import multiprocessing

        context = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=context
        ) as pool:
            groups = []
            for group in pool.map(_worker, payloads):
                groups.append(group)
                if progress is not None:
                    progress(len(groups), len(payloads))
    return [cell for group in groups for cell in group]
