"""Abstract model-checker traces -> concrete ScheduleScripts.

The model checker (:mod:`repro.analysis.modelcheck`) minimizes every
invariant violation to a shortest event trace over abstract caches.
This module lowers such a trace onto the real simulator: each abstract
cache becomes a thread, transactional episodes (the span where the
cache holds a live signature footprint) become transactional
:class:`~repro.runtime.txthread.WorkItem` bodies, isolated plain
accesses become non-transactional items, and the global event order
becomes a :class:`~repro.adversary.script.ScheduleScript` replayed
through the adversary conformance harness with every oracle armed.

The replay *classifies* the finding rather than re-proving it:

``confirmed``
    the concrete run crashed, wedged, or tripped a runtime oracle —
    the spec hole is observable on the implementation;
``spec-only``
    the implementation survives the interleaving (it does not share
    the spec's hole, or hardware-level effects the script cannot
    reproduce — e.g. a mid-protocol message loss — mask it).

Lowering is deliberately conservative and its gaps are explicit:

* model events *after* a thread's abort event are dropped (the real
  thread immediately retries its body; the count is recorded in the
  spec description);
* a plain access that the model leaves in flight (issued, never
  delivered) never executes;
* op ordering is enforced with run-until windows between 400-step
  spacers, the same geometry as the named catalog — accesses separated
  by fewer scheduler steps than a window may reorder, which at worst
  downgrades a ``confirmed`` into a ``spec-only``.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.adversary.script import ScheduleScript, Step
from repro.adversary.schedules import ScheduleSpec
from repro.runtime.txthread import WorkItem

#: First window after a realignment point (thread start, begin, a
#: commit): long enough to cover begin + the first access on FlexTM.
_FIRST_WINDOW = 40
#: Steady-state window and the spacer each access trails: every window
#: must complete exactly one access and die inside the next spacer.
_SPACER = 400
_WINDOW = _SPACER + 40

#: Transactional / plain access kinds, and whether each op writes.
_TX_OPS: Dict[str, str] = {"TLoad": "r", "TStore": "w"}
_PLAIN_OPS: Dict[str, str] = {"Load": "lr", "Store": "lw"}


def _bridge_body(
    ops: Sequence[Tuple[str, int]], cells: Sequence[int], unique: Iterator[int]
) -> Callable:
    """A body generator mixing transactional and raw plain ops."""

    def body(ctx) -> Iterator[Tuple]:
        for kind, index in ops:
            if kind == "r":
                yield from ctx.read(cells[index])
            elif kind == "w":
                yield from ctx.write(cells[index], next(unique))
            elif kind == "lr":
                yield ("load", cells[index])
            elif kind == "lw":
                yield ("store", cells[index], next(unique))
            elif kind == "spacer":
                for _ in range(index):
                    yield from ctx.work(1)
            else:  # pragma: no cover - lowering bugs should fail loudly
                raise ValueError(f"unknown bridge op {kind!r}")

    return body


def schedule_from_trace(
    trace: Sequence[Tuple[str, int, str]],
    caches: int,
    name: str,
    description: str = "",
    citation: str = "model checker counterexample",
) -> ScheduleSpec:
    """Lower an annotated model trace to a replayable ScheduleSpec.

    ``trace`` is a sequence of ``(op, cache, kind)`` events as produced
    by :func:`repro.analysis.modelcheck.annotate_trace` — ``op`` one of
    ``local``/``issue``/``deliver``/``commit``/``abort``.
    """
    # Per-thread episodes: ("tx" | "plain", [(op, cell-index), ...]).
    episodes: List[List[Tuple[str, List[Tuple[str, int]]]]] = [
        [] for _ in range(caches)
    ]
    in_tx = [False] * caches
    wounded = [False] * caches
    dropped = 0
    steps: List[Step] = []

    def open_ops(thread: int, kind: str) -> List[Tuple[str, int]]:
        if not episodes[thread] or episodes[thread][-1][0] != kind:
            episodes[thread].append((kind, []))
        return episodes[thread][-1][1]

    for op, thread, access in trace:
        if wounded[thread]:
            dropped += 1
            continue
        if op == "issue":
            continue  # no global effect until the deliver executes it
        if op == "commit":
            steps.append(Step.run(thread, until="commit"))
            in_tx[thread] = False
            continue
        if op == "abort":
            steps.append(Step.wound(thread))
            in_tx[thread] = False
            wounded[thread] = True
            continue
        # op is local / deliver: one concrete access of kind ``access``.
        if access in _TX_OPS:
            if not in_tx[thread]:
                in_tx[thread] = True
                episodes[thread].append(("tx", []))
                steps.append(Step.run(thread, until="begin"))
                window = _FIRST_WINDOW
            else:
                window = _WINDOW
            episodes[thread][-1][1].extend(
                [(_TX_OPS[access], 0), ("spacer", _SPACER)]
            )
            steps.append(Step.run(thread, until="ops", count=window))
        elif access in _PLAIN_OPS:
            if in_tx[thread]:
                episodes[thread][-1][1].extend(
                    [(_PLAIN_OPS[access], 0), ("spacer", _SPACER)]
                )
                steps.append(Step.run(thread, until="ops", count=_WINDOW))
            else:
                episodes[thread].append(
                    ("plain", [(_PLAIN_OPS[access], 0), ("spacer", _SPACER)])
                )
                steps.append(
                    Step.run(thread, until="ops", count=_FIRST_WINDOW)
                )
        # Unknown kinds (e.g. a deliver the annotator could not resolve)
        # are skipped: the tail drain still retires every thread.
    for thread in range(caches):
        steps.append(Step.run(thread, until="done"))

    plain_ops = any(
        op in ("lr", "lw")
        for thread_eps in episodes
        for _kind, ops in thread_eps
        for op, _index in ops
    )
    if dropped:
        description = (
            f"{description} [{dropped} post-abort model event(s) dropped; "
            "the wounded thread retries its body instead]"
        ).strip()
    script = ScheduleScript(
        name=name,
        steps=tuple(steps),
        description=description,
        citation=citation,
    )

    def build(
        cells: Sequence[int], unique: Iterator[int]
    ) -> Tuple[List[List[WorkItem]], ScheduleScript]:
        bodies: List[List[WorkItem]] = []
        for thread_eps in episodes:
            items: List[WorkItem] = []
            for kind, ops in thread_eps:
                items.append(
                    WorkItem(
                        _bridge_body(ops, cells, unique),
                        transactional=(kind == "tx"),
                    )
                )
            bodies.append(items)
        return bodies, script

    return ScheduleSpec(
        name=name,
        description=description,
        citation=citation,
        threads=caches,
        cells=1,
        forbid_aborts=False,
        build=build,
        plain_ops=plain_ops,
    )


# ------------------------------------------------------------------ replay


def spec_from_violation(violation, name: Optional[str] = None) -> ScheduleSpec:
    """The ScheduleSpec replaying one model-checker Violation."""
    schedule_name = name or f"mc-{violation.rule.lower()}"
    return schedule_from_trace(
        violation.trace,
        violation.caches,
        schedule_name,
        description=f"{violation.rule}: {violation.message}",
    )


def replay_violation(
    violation,
    backend: str = "FlexTM",
    seed: int = 1,
    cycle_limit: Optional[int] = None,
) -> Dict[str, object]:
    """Replay a Violation on the real simulator and classify it."""
    from repro.adversary.conformance import (
        DEFAULT_CYCLE_LIMIT,
        run_schedule_cell,
    )

    spec = spec_from_violation(violation)
    cell = run_schedule_cell(
        backend,
        spec.name,
        seed=seed,
        cycle_limit=cycle_limit or DEFAULT_CYCLE_LIMIT,
        strict=True,
        spec=spec,
    )
    return {
        "rule": violation.rule,
        "schedule": spec.name,
        "backend": backend,
        "classification": (
            "confirmed" if cell.verdict == "violates" else "spec-only"
        ),
        "verdict": cell.verdict,
        "detail": cell.detail,
        "commits": cell.commits,
        "aborts": cell.aborts,
        "trace": violation.render_trace(),
    }


# ------------------------------------------------------------------ export

COUNTEREXAMPLE_SCHEMA = "repro.modelcheck.counterexample/v1"


def export_counterexample(violation, path: Path) -> Dict[str, object]:
    """Write one violation + its ScheduleScript as a JSON document."""
    spec = spec_from_violation(violation)
    _bodies, script = spec.build([0], itertools.count())
    doc: Dict[str, object] = {
        "schema": COUNTEREXAMPLE_SCHEMA,
        "rule": violation.rule,
        "message": violation.message,
        "caches": violation.caches,
        "trace": [list(event) for event in violation.trace],
        "rendered": violation.render_trace(),
        "script": script.to_json(),
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def load_counterexample(path: Path) -> Tuple[Dict[str, object], ScheduleSpec]:
    """Rebuild the replayable ScheduleSpec from an exported document."""
    doc = json.loads(path.read_text())
    if doc.get("schema") != COUNTEREXAMPLE_SCHEMA:
        raise ValueError(f"{path}: not a {COUNTEREXAMPLE_SCHEMA} document")
    trace = [tuple(event) for event in doc["trace"]]
    script = ScheduleScript.from_json(doc["script"])
    spec = schedule_from_trace(
        trace,
        int(doc["caches"]),
        script.name,
        description=script.description,
        citation=script.citation,
    )
    return doc, spec
