"""The ScheduleDirector: executes a ScheduleScript through the scheduler.

The scheduler asks an installed director ``pick(scheduler, cycle_limit)``
once per iteration instead of running its least-advanced-clock policy.
The director interprets the script's directives in order:

* side-effect directives (``preempt``/``place``/``wound``/``stall``/
  ``pin``/``unpin``) execute immediately through the scheduler's
  control primitives and advance to the next directive without
  consuming a scheduler step;
* a ``run`` directive repeatedly returns the target thread's processor
  — installing the thread first if it is parked or queued, evicting a
  non-pinned bystander if every core is busy — until its ``until``
  condition holds or its step budget runs out.

Every directive resolution is appended to :attr:`ScheduleDirector.log`
with a machine-readable outcome, so a conformance report can show *how*
the schedule actually unfolded (a directive that could not apply —
wounding a descriptor-less STM thread, say — is a logged no-op, not an
error: the catalog runs unchanged across all six backends).

When the script is exhausted the director parks nothing further: it
releases any still-parked threads back to the ready queue and defers
to the scheduler's default policy so the run drains normally.  The
director consumes no randomness, so a (script, workload) pair replays
bit-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.adversary.script import ScheduleScript, Step


class ScheduleDirector:
    """Interprets one ScheduleScript; plugs into Scheduler(director=...)."""

    def __init__(self, script: ScheduleScript):
        self.script = script
        self.finished = False
        #: Directive resolutions: {index, action, thread, outcome, cycle}.
        self.log: List[Dict[str, object]] = []
        self._index = 0
        self._pinned: Set[int] = set()
        #: Baseline bookkeeping for the active run directive.
        self._run_index = -1
        self._baseline_commits = 0
        self._baseline_aborts = 0
        self._steps_used = 0

    # -- scheduler hooks -----------------------------------------------------

    def pins(self, thread) -> bool:
        """True when a pin directive shields this thread from preemption."""
        return thread.thread_id in self._pinned

    def pick(self, scheduler, cycle_limit: int) -> Optional[int]:
        """Choose the processor to step (None ends the run)."""
        while not self.finished:
            if self._index >= len(self.script.steps):
                self._finish(scheduler)
                break
            step = self.script.steps[self._index]
            if step.action == "run":
                proc = self._run_step(scheduler, step, cycle_limit)
                if proc is not None:
                    return proc
            else:
                self._apply(scheduler, step)
        return scheduler._pick_processor(cycle_limit)

    # -- directive interpretation --------------------------------------------

    def _finish(self, scheduler) -> None:
        self.finished = True
        self._pinned.clear()
        scheduler.release_parked()
        self._note(scheduler, len(self.script.steps), "end-of-script", -1,
                   "released")

    def _note(self, scheduler, index: int, action: str, thread: int,
              outcome: str) -> None:
        self.log.append({
            "index": index,
            "action": action,
            "thread": thread,
            "outcome": outcome,
            "cycle": scheduler.machine.max_cycle(),
        })

    def _advance(self, scheduler, step: Step, outcome: str) -> None:
        self._note(scheduler, self._index, step.action, step.thread, outcome)
        self._index += 1

    def _apply(self, scheduler, step: Step) -> None:
        """Execute one side-effect directive and advance past it."""
        if step.action == "preempt":
            ok = scheduler.park(step.thread)
            self._advance(scheduler, step, "parked" if ok else "not-running")
        elif step.action == "place":
            ok = scheduler.place(step.thread, step.processor)
            self._advance(scheduler, step, "placed" if ok else "not-placeable")
        elif step.action == "wound":
            self._advance(scheduler, step, self._wound(scheduler, step))
        elif step.action == "stall":
            proc = scheduler.processor_of(step.thread)
            if proc is None:
                self._advance(scheduler, step, "not-running")
            else:
                scheduler.machine.processors[proc].clock.advance(step.count)
                self._advance(scheduler, step, "stalled")
        elif step.action == "pin":
            self._pinned.add(step.thread)
            self._advance(scheduler, step, "pinned")
        elif step.action == "unpin":
            self._pinned.discard(step.thread)
            self._advance(scheduler, step, "unpinned")
        else:  # pragma: no cover - Step validation rejects unknown actions
            self._advance(scheduler, step, "unknown-action")

    def _wound(self, scheduler, step: Step) -> str:
        """Force-abort the target's in-flight transaction (OS path)."""
        slot = scheduler.slot_of(step.thread)
        if slot is None:
            return "unknown-thread"
        descriptor = slot.thread.descriptor
        if descriptor is None:
            # STM backends keep no hardware descriptor; the directive
            # is a logged no-op so one catalog spans all six systems.
            return "no-descriptor"
        if scheduler.machine.force_abort(descriptor, by=-1, kind="adversary"):
            return "wounded"
        return "no-active-transaction"

    # -- the run directive ---------------------------------------------------

    def _run_step(self, scheduler, step: Step,
                  cycle_limit: int) -> Optional[int]:
        """One scheduler step toward a run directive (None = advanced)."""
        slot = scheduler.slot_of(step.thread)
        if slot is None:
            self._advance(scheduler, step, "unknown-thread")
            return None
        if self._run_index != self._index:
            self._run_index = self._index
            self._baseline_commits = slot.thread.commits
            self._baseline_aborts = slot.thread.aborts
            self._steps_used = 0
        if self._satisfied(scheduler, slot, step):
            self._advance(scheduler, step, "completed")
            return None
        if slot.done:
            # Retirement satisfies "done"; for any other condition the
            # target can make no further progress toward it.
            outcome = "completed" if step.until == "done" else "target-done"
            self._advance(scheduler, step, outcome)
            return None
        if self._steps_used >= step.budget:
            self._advance(scheduler, step, "budget-exhausted")
            return None
        proc = scheduler.processor_of(step.thread)
        if proc is None:
            if not self._schedule_target(scheduler, step.thread):
                self._advance(scheduler, step, "unschedulable")
                return None
            proc = scheduler.processor_of(step.thread)
        if scheduler.machine.processors[proc].clock.now >= cycle_limit:
            self._advance(scheduler, step, "cycle-limit")
            return None
        self._steps_used += 1
        return proc

    def _satisfied(self, scheduler, slot, step: Step) -> bool:
        if step.until == "ops":
            return self._steps_used >= step.count
        if step.until == "begin":
            return bool(slot.thread.in_transaction)
        if step.until == "commit":
            return slot.thread.commits - self._baseline_commits >= step.count
        if step.until == "abort":
            return slot.thread.aborts - self._baseline_aborts >= step.count
        if step.until == "cycle":
            return scheduler.machine.max_cycle() >= step.count
        # until == "done" is handled by the slot.done check above.
        return False

    def _schedule_target(self, scheduler, thread_id: int) -> bool:
        """Make the run target runnable, evicting a bystander if needed."""
        if scheduler.place(thread_id):
            return True
        if scheduler.free_processors():
            return False  # free core but the thread is unplaceable (done)
        # Every core is busy: park the lowest-processor bystander that is
        # neither the target nor pinned, then retry (deterministic order).
        for proc in sorted(scheduler._running):
            slot = scheduler._running[proc]
            victim = slot.thread.thread_id
            if victim == thread_id or victim in self._pinned:
                continue
            if scheduler.park(victim):
                # Re-queue instead of leaving the bystander parked
                # forever: run directives should not strand threads a
                # later directive never mentions.
                scheduler._ready.append(scheduler._parked.pop(victim))
                return scheduler.place(thread_id)
        return False
