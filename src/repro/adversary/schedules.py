"""The named-schedule catalog: theory-bound adversarial interleavings.

Each :class:`ScheduleSpec` packages a workload (per-thread transaction
bodies) with the :class:`~repro.adversary.script.ScheduleScript` that
drives it through a specific interleaving named by the TM-theory
literature — chiefly Kuznetsov & Ravi, "Progressive Transactional
Memory in Time and Space" (arXiv:1502.04908) and "Why Transactional
Memory Should Not Be Obstruction-Free" (arXiv:1502.02725) — plus the
classic opacity/zombie probes (Guerraoui & Kapalka).

Two conformance classes:

* ``forbid_aborts`` schedules encode *progressiveness*: the papers'
  read-read and disjoint-access interleavings admit no conflict, so a
  progressive TM must commit every transaction with zero aborts.  Any
  abort is a ``violates`` verdict.  (FlexTM's Bloom signatures could in
  principle alias disjoint lines into a false conflict; the catalog's
  cells are line-aligned precisely so this stays a real conformance
  check.)
* the rest are conflict schedules where aborting is the *correct*
  response (``aborts-as-required``) — the verdict machinery instead
  checks serializability, opacity (via the probe) and completion.

Bodies are built from an op-list mini-language (``("r", addr)``,
``("w", addr)``, ``("work", n)``, ``("spacer", n)``) with globally
unique write values so the oracles attribute reads exactly.  Spacers
are runs of 1-cycle work ops: they give the director a wide, backend-
independent window of scheduler steps to park/wound a thread *between*
two specific accesses without counting backend-specific op costs.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

from repro.adversary.script import ScheduleScript, Step
from repro.runtime.txthread import WorkItem

#: Ops that position a directive window between two accesses.  40 steps
#: of "run" lands safely past begin + one or two reads on every backend
#: (the costliest, TL2, needs ~10) while a 300-op spacer guarantees the
#: thread is still short of its next access.
_WINDOW = 40
_SPACER = 300

#: Papers the catalog encodes.
PROGRESSIVE = "Kuznetsov & Ravi, arXiv:1502.04908 (progressiveness)"
NOT_OF = "Kuznetsov & Ravi, arXiv:1502.02725 (obstruction-freedom cost)"
OPACITY = "Guerraoui & Kapalka, PPoPP 2008 (opacity / zombie reads)"


def _body(ops: Sequence[Tuple], unique):
    """One transaction body from the op-list mini-language."""

    def body(ctx):
        for op in ops:
            kind = op[0]
            if kind == "r":
                yield from ctx.read(op[1])
            elif kind == "w":
                yield from ctx.write(op[1], next(unique))
            elif kind == "work":
                yield from ctx.work(op[1])
            elif kind == "spacer":
                for _ in range(op[1]):
                    yield from ctx.work(1)
            else:  # pragma: no cover - catalog bugs should fail loudly
                raise ValueError(f"unknown body op {op!r}")

    return body


def _thread(unique, *txns: Sequence[Tuple]) -> List[WorkItem]:
    """One thread's work queue: each op-list is one transaction."""
    return [WorkItem(_body(ops, unique)) for ops in txns]


@dataclasses.dataclass(frozen=True)
class ScheduleSpec:
    """One named schedule: workload builder + script + conformance class."""

    name: str
    description: str
    citation: str
    #: Thread count (the machine gets at least this many processors).
    threads: int
    #: Shadow cells the workload touches (A, B, C, ... by index).
    cells: int
    #: Progressiveness schedules: any abort is a conformance violation.
    forbid_aborts: bool
    #: build(cells, unique) -> (bodies per thread, script).
    build: Callable[..., Tuple[List[List[WorkItem]], ScheduleScript]]
    #: Bridged schedules (model-checker counterexamples) mix plain
    #: loads/stores into the workload.  Plain ops never reach the
    #: recording backend, so the serializability and serial-witness
    #: memory oracles are skipped for these cells (opacity, invariants,
    #: wedge and crash detection stay armed).
    plain_ops: bool = False


# ---------------------------------------------------------------- the catalog


def _prog_read_read(cells, unique):
    a = cells[0]
    bodies = [
        _thread(unique, [("r", a), ("spacer", _SPACER)]),
        _thread(unique, [("r", a), ("spacer", _SPACER)]),
    ]
    script = ScheduleScript(
        name="prog-read-read",
        citation=PROGRESSIVE,
        steps=(
            Step.run(0, until="begin"),
            Step.run(1, until="begin"),
            Step.run(0, until="ops", count=_WINDOW),
            Step.run(1, until="ops", count=_WINDOW),
            Step.run(0, until="commit"),
            Step.run(1, until="commit"),
            Step.run(0, until="done"),
            Step.run(1, until="done"),
        ),
    )
    return bodies, script


def _prog_disjoint(cells, unique):
    a, b = cells[0], cells[1]
    bodies = [
        _thread(unique, [("r", a), ("spacer", _SPACER), ("w", a)]),
        _thread(unique, [("r", b), ("spacer", _SPACER), ("w", b)]),
    ]
    script = ScheduleScript(
        name="prog-disjoint",
        citation=PROGRESSIVE,
        steps=(
            Step.run(0, until="begin"),
            Step.run(1, until="begin"),
            Step.run(0, until="ops", count=_WINDOW),
            Step.run(1, until="ops", count=_WINDOW),
            Step.run(0, until="commit"),
            Step.run(1, until="commit"),
            Step.run(0, until="done"),
            Step.run(1, until="done"),
        ),
    )
    return bodies, script


def _prog_wr_conflict(cells, unique):
    a = cells[0]
    txn = [("r", a), ("spacer", _SPACER), ("w", a)]
    bodies = [_thread(unique, list(txn)), _thread(unique, list(txn))]
    script = ScheduleScript(
        name="prog-wr-conflict",
        citation=PROGRESSIVE,
        steps=(
            Step.run(0, until="begin"),
            Step.run(1, until="begin"),
            Step.run(0, until="ops", count=_WINDOW),
            Step.run(1, until="ops", count=_WINDOW),
            Step.run(0, until="commit"),
            Step.run(1, until="done"),
            Step.run(0, until="done"),
        ),
    )
    return bodies, script


def _commit_duel(cells, unique):
    a, b = cells[0], cells[1]
    bodies = [
        _thread(unique, [("w", a), ("spacer", _SPACER), ("w", b)]),
        _thread(unique, [("w", b), ("spacer", _SPACER), ("w", a)]),
    ]
    script = ScheduleScript(
        name="commit-duel",
        citation=NOT_OF,
        steps=(
            Step.run(0, until="begin"),
            Step.run(1, until="begin"),
            Step.run(0, until="ops", count=60),
            Step.run(1, until="ops", count=60),
            Step.stall(1, 500),
            Step.run(0, until="done"),
            Step.run(1, until="done"),
        ),
    )
    return bodies, script


def _read_validation_chain(cells, unique):
    a, b, c = cells[0], cells[1], cells[2]
    bodies = [
        _thread(unique, [
            ("r", a), ("spacer", _SPACER),
            ("r", b), ("spacer", _SPACER),
            ("r", c),
        ]),
        _thread(unique, [("w", a), ("w", b)]),
    ]
    script = ScheduleScript(
        name="read-validation-chain",
        citation=OPACITY,
        steps=(
            Step.run(0, until="begin"),
            Step.run(0, until="ops", count=_WINDOW),
            # Under CGL the writer cannot commit while the reader holds
            # the global lock — a tight budget lets it give up (the
            # schedule is unrealizable there, which is conformant) while
            # every optimistic backend commits in well under 2000 steps.
            Step.run(1, until="commit", budget=2_000),
            Step.run(0, until="ops", count=_SPACER + _WINDOW),
            Step.run(0, until="done"),
            Step.run(1, until="done"),
        ),
    )
    return bodies, script


def _zombie_probe(cells, unique):
    a, b = cells[0], cells[1]
    bodies = [
        _thread(unique, [("r", a), ("spacer", _SPACER), ("r", b), ("work", 10)]),
        _thread(unique, [("w", a), ("w", b)]),
    ]
    script = ScheduleScript(
        name="zombie-probe",
        citation=OPACITY,
        steps=(
            Step.run(0, until="begin"),
            Step.run(0, until="ops", count=_WINDOW),
            Step.preempt(0),
            Step.run(1, until="commit"),
            Step.place(0, processor=0),
            Step.run(0, until="ops", count=_SPACER + _WINDOW),
            Step.wound(0),
            Step.run(0, until="done"),
            Step.run(1, until="done"),
        ),
    )
    return bodies, script


def _of_penalty(cells, unique):
    a = cells[0]
    bodies = [
        _thread(unique, [("r", a), ("w", a), ("spacer", 400)]),
        _thread(unique, [("r", a), ("w", a)], [("r", a), ("w", a)]),
    ]
    script = ScheduleScript(
        name="of-penalty",
        citation=NOT_OF,
        steps=(
            Step.run(0, until="begin"),
            Step.run(0, until="ops", count=50),
            Step.preempt(0),
            Step.pin(1),
            Step.run(1, until="commit", count=2),
            Step.unpin(1),
            Step.place(0),
            Step.run(0, until="done"),
            Step.run(1, until="done"),
        ),
    )
    return bodies, script


def _wound_convoy(cells, unique):
    a, b, c = cells[0], cells[1], cells[2]
    bodies = [
        _thread(unique, [("w", a), ("spacer", 100)]),
        _thread(unique, [("r", a), ("w", b), ("spacer", 100)]),
        _thread(unique, [("r", b), ("w", c), ("spacer", 100)]),
    ]
    script = ScheduleScript(
        name="wound-convoy",
        citation=NOT_OF,
        steps=(
            Step.run(0, until="begin"),
            Step.run(1, until="begin"),
            Step.run(2, until="begin"),
            Step.run(0, until="ops", count=60),
            Step.run(1, until="ops", count=60),
            Step.run(2, until="ops", count=60),
            Step.run(2, until="done"),
            Step.run(1, until="done"),
            Step.run(0, until="done"),
        ),
    )
    return bodies, script


def _migration_restart(cells, unique):
    a, b = cells[0], cells[1]
    bodies = [
        _thread(unique, [("r", a), ("spacer", _SPACER), ("w", a)]),
        _thread(unique, [("r", b), ("w", b)]),
    ]
    script = ScheduleScript(
        name="migration-restart",
        citation=NOT_OF,
        steps=(
            Step.run(0, until="begin"),
            Step.run(0, until="ops", count=_WINDOW),
            Step.preempt(0),
            Step.run(1, until="done"),
            Step.place(0, processor=1),
            Step.run(0, until="done"),
        ),
    )
    return bodies, script


def _adversary_wound(cells, unique):
    a, b = cells[0], cells[1]
    bodies = [
        _thread(unique, [("r", a), ("spacer", _SPACER), ("w", a)]),
        _thread(unique, [("r", b), ("w", b)]),
    ]
    script = ScheduleScript(
        name="adversary-wound",
        citation=NOT_OF,
        steps=(
            Step.run(0, until="begin"),
            Step.run(0, until="ops", count=_WINDOW),
            Step.wound(0),
            Step.run(0, until="done"),
            Step.run(1, until="done"),
        ),
    )
    return bodies, script


#: The catalog, keyed by schedule name (insertion order = run order).
SCHEDULES: Dict[str, ScheduleSpec] = {
    spec.name: spec
    for spec in (
        ScheduleSpec(
            name="prog-read-read",
            description="two readers of one cell fully interleaved — "
                        "progressiveness forbids any abort",
            citation=PROGRESSIVE,
            threads=2, cells=1, forbid_aborts=True,
            build=_prog_read_read,
        ),
        ScheduleSpec(
            name="prog-disjoint",
            description="interleaved transactions on disjoint lines — "
                        "progressiveness forbids any abort (and catches "
                        "signature aliasing)",
            citation=PROGRESSIVE,
            threads=2, cells=2, forbid_aborts=True,
            build=_prog_disjoint,
        ),
        ScheduleSpec(
            name="prog-wr-conflict",
            description="overlapped read-then-write duel on one cell — a "
                        "real conflict the TM may resolve by aborting",
            citation=PROGRESSIVE,
            threads=2, cells=1, forbid_aborts=False,
            build=_prog_wr_conflict,
        ),
        ScheduleSpec(
            name="commit-duel",
            description="opposite-order writes to two cells with a clock "
                        "skew — the classic deadlock-shaped duel",
            citation=NOT_OF,
            threads=2, cells=2, forbid_aborts=False,
            build=_commit_duel,
        ),
        ScheduleSpec(
            name="read-validation-chain",
            description="a slow 3-cell reader races a 2-cell writer that "
                        "commits between its reads — snapshot consistency "
                        "is the oracle",
            citation=OPACITY,
            threads=2, cells=3, forbid_aborts=False,
            build=_read_validation_chain,
        ),
        ScheduleSpec(
            name="zombie-probe",
            description="reader descheduled mid-transaction while a writer "
                        "commits both its cells; the resumed zombie must "
                        "never observe the torn snapshot",
            citation=OPACITY,
            threads=2, cells=2, forbid_aborts=False,
            build=_zombie_probe,
        ),
        ScheduleSpec(
            name="of-penalty",
            description="a parked transaction's summary signatures obstruct "
                        "two successive committers — the obstruction-freedom "
                        "cost schedule",
            citation=NOT_OF,
            threads=2, cells=1, forbid_aborts=False,
            build=_of_penalty,
        ),
        ScheduleSpec(
            name="wound-convoy",
            description="three transactions chained W(A)/R(A)W(B)/R(B)W(C) "
                        "committing in reverse order — a wound cascade",
            citation=NOT_OF,
            threads=3, cells=3, forbid_aborts=False,
            build=_wound_convoy,
        ),
        ScheduleSpec(
            name="migration-restart",
            description="a mid-transaction thread is parked and resumed on "
                        "a different core — the migration abort-restart path",
            citation=NOT_OF,
            threads=2, cells=2, forbid_aborts=False,
            build=_migration_restart,
        ),
        ScheduleSpec(
            name="adversary-wound",
            description="a scripted wound directive force-aborts a "
                        "mid-transaction thread through the OS path",
            citation=NOT_OF,
            threads=2, cells=2, forbid_aborts=False,
            build=_adversary_wound,
        ),
    )
}
