"""Opacity and zombie probes: shadow-state oracles for conformance runs.

Opacity (Guerraoui & Kapalka) demands that *every* transaction — even
one that later aborts — observes a consistent snapshot of committed
state.  A "zombie" is a doomed transaction still running on stale data;
zombies are legal under weaker criteria (TL2-style invisible readers
abort them at validation) but a zombie that *observes an inconsistent
snapshot* and keeps executing is an opacity violation the simulator
must never produce.

The :class:`OpacityProbe` verifies this from outside the system under
test.  It keeps a shadow version history per tracked address, appended
at the exact committed-mutation chokepoints of the machine
(``store``/``cas`` memory writes and the ``cas_commit`` overlay flash),
and records the first value each transaction attempt reads per address
through the universal read chokepoint (:meth:`TxContext.read`).  When
an attempt ends — commit *or* abort — the probe checks snapshot
consistency: some single version of the shadow history must explain
every first-read.  Read-own-writes are excluded (they never touch
committed state), and untracked addresses are ignored.

The probe follows the None-hook convention (``machine.probes`` defaults
to ``None``; every access site is guarded), observes only, and mutates
nothing — an armed run is bit-identical to an unarmed one, a property
the tests lock across all six backends.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class OpacityViolation:
    """One transaction attempt that saw an inconsistent snapshot."""

    thread: int
    #: "commit" or "abort" — aborted zombies violate opacity too.
    outcome: str
    #: The attempt's first-reads, address -> value seen.
    reads: Tuple[Tuple[int, int], ...]
    detail: str


class _Attempt:
    """Shadow record of one in-flight transaction attempt."""

    __slots__ = ("first_reads", "writes")

    def __init__(self) -> None:
        self.first_reads: Dict[int, int] = {}
        self.writes: set = set()


class OpacityProbe:
    """Observes transactional reads against the committed history."""

    def __init__(self) -> None:
        self.machine = None
        #: address -> [(version, value), ...] committed history; version
        #: numbers are global (one counter across all tracked cells).
        self._history: Dict[int, List[Tuple[int, int]]] = {}
        self._initial: Dict[int, int] = {}
        self._version = 0
        self._attempts: Dict[int, _Attempt] = {}
        #: Telemetry.
        self.reads_checked = 0
        self.snapshots_checked = 0
        self.zombie_attempts = 0
        self.stale_reads = 0
        self.violations: List[OpacityViolation] = []

    def attach(self, machine) -> None:
        self.machine = machine

    def track(self, address: int, initial: int) -> None:
        """Register one shadow cell (pre-run, matching its seeded value)."""
        self._history[address] = []
        self._initial[address] = initial

    # -- machine-level hooks (exact commit points) ---------------------------

    def on_memory_write(self, address: int, value: int) -> None:
        """A committed write landed (machine.store / successful CAS)."""
        history = self._history.get(address)
        if history is None:
            return
        self._version += 1
        history.append((self._version, value))

    def on_commit_flash(self, overlay) -> None:
        """A cas_commit flashed a write overlay into committed state.

        The whole overlay is one atomic version: all of a transaction's
        writes become visible at a single point in the shadow history.
        """
        items = sorted(
            (address, value)
            for address, value in dict(overlay).items()
            if address in self._history
        )
        if not items:
            return
        self._version += 1
        for address, value in items:
            self._history[address].append((self._version, value))

    # -- runtime-level hooks (attempt lifecycle) -----------------------------

    def on_begin(self, thread: int) -> None:
        self._attempts[thread] = _Attempt()

    def on_read(self, thread: int, address: int, value) -> None:
        attempt = self._attempts.get(thread)
        if attempt is None or address not in self._history:
            return
        if address in attempt.writes:
            return  # read-own-write never observes committed state
        if address not in attempt.first_reads:
            attempt.first_reads[address] = value
            self.reads_checked += 1

    def on_write(self, thread: int, address: int, value) -> None:
        attempt = self._attempts.get(thread)
        if attempt is None:
            return
        attempt.writes.add(address)

    def on_commit(self, thread: int) -> None:
        self._end(thread, "commit")

    def on_abort(self, thread: int) -> None:
        self._end(thread, "abort")

    # -- the oracle ----------------------------------------------------------

    def _value_at(self, address: int, version: int) -> int:
        """Committed value of a cell as of a global version number."""
        value = self._initial[address]
        for entry_version, entry_value in self._history[address]:
            if entry_version > version:
                break
            value = entry_value
        return value

    def _end(self, thread: int, outcome: str) -> None:
        attempt = self._attempts.pop(thread, None)
        if attempt is None or not attempt.first_reads:
            return
        self.snapshots_checked += 1
        if outcome == "abort":
            self.zombie_attempts += 1
        # Candidate snapshot points: initial state plus every committed
        # version of any read cell.  The attempt is consistent iff some
        # single point explains every first-read.
        candidates = {0}
        for address in attempt.first_reads:
            for entry_version, _ in self._history[address]:
                candidates.add(entry_version)
        for version in sorted(candidates, reverse=True):
            if all(
                self._value_at(address, version) == value
                for address, value in attempt.first_reads.items()
            ):
                return
        self.stale_reads += 1
        reads = tuple(sorted(attempt.first_reads.items()))
        self.violations.append(
            OpacityViolation(
                thread=thread,
                outcome=outcome,
                reads=reads,
                detail=(
                    f"thread {thread} ({outcome}) read "
                    + ", ".join(f"[{a}]={v}" for a, v in reads)
                    + " — no single committed version explains this snapshot"
                ),
            )
        )

    def summary(self) -> Dict[str, int]:
        return {
            "reads_checked": self.reads_checked,
            "snapshots_checked": self.snapshots_checked,
            "zombie_attempts": self.zombie_attempts,
            "stale_reads": self.stale_reads,
            "violations": len(self.violations),
        }
