"""SIM-H1xx — hook-site hygiene rules.

Observability (``tracer``, ``metrics``), fault injection (``chaos``)
and adaptive degradation (``resilience``) are *opt-in* layers: the core
simulator must run bit-identically with all of them absent.  That only
holds if every hook use in ``core/``, ``coherence/`` and ``runtime/``
is behind its guard:

* ``chaos`` / ``metrics`` / ``resilience`` attributes are ``None`` by
  default, so any member access must be dominated by an ``is not None``
  check on the same expression (``SIM-H101``);
* the tracer is a shared ``NULL_TRACER`` whose methods are no-ops, so a
  bare emit is *functionally* safe — but the performance contract (one
  attribute read per potential event) and the layering contract (core
  code never does work on behalf of a disabled layer) require every
  emit call to be dominated by an ``.enabled`` test (``SIM-H102``).

"Dominated" is computed per enclosing function with a conservative
structural walk that understands ``if X is not None:`` bodies,
early-exit guards (``if X is None: return``), ``and`` chains,
conditional expressions, and ``assert X is not None``.  Guarding in a
*caller* does not count: each function must re-establish its own
guards, so refactors can never silently strand a hook use.
"""

from __future__ import annotations

import ast
from typing import Callable, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ModuleUnit, Rule, dotted_name, register

#: Directories (relative to the analysis root) the hygiene rules police.
HOOK_SCOPE = ("repro/core/", "repro/coherence/", "repro/runtime/")

#: Optional hooks that default to None.
OPTIONAL_HOOKS = ("chaos", "metrics", "resilience", "probes")


def _in_scope(unit: ModuleUnit) -> bool:
    return any(part in unit.relpath for part in HOOK_SCOPE)


def _terminates(body: List[ast.stmt]) -> bool:
    """True when a block always leaves the enclosing function/loop."""
    if not body:
        return False
    tail = body[-1]
    return isinstance(tail, (ast.Return, ast.Raise, ast.Continue, ast.Break))


class _GuardWalker:
    """Walks one function, tracking which guard facts dominate each node.

    Guard facts are strings: ``"nn:<expr>"`` (expression proven
    non-None) and ``"en:<expr>"`` (expression proven truthy — used for
    ``tracer.enabled``).  Expressions are dotted-name texts, so aliases
    (``tracer = self.machine.tracer``) work as long as the guard tests
    the same alias the emit call uses.
    """

    def __init__(self, visit_use: Callable[[ast.expr, FrozenSet[str]], None]) -> None:
        # visit_use(node, guards) is called for every expression node.
        self._visit_use = visit_use

    # -- fact extraction -----------------------------------------------------

    @staticmethod
    def _facts_if_true(test: ast.expr) -> Set[str]:
        """Facts established when ``test`` evaluates truthy."""
        facts: Set[str] = set()
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                facts |= _GuardWalker._facts_if_true(value)
            return facts
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            if isinstance(op, ast.IsNot) and _is_none(right):
                name = dotted_name(left)
                if name:
                    facts.add(f"nn:{name}")
            elif isinstance(op, ast.IsNot) and _is_none(left):
                name = dotted_name(right)
                if name:
                    facts.add(f"nn:{name}")
        name = dotted_name(test)
        if name:
            facts.add(f"en:{name}")
            # Truthiness of X.attr implies X.attr is not None too.
            facts.add(f"nn:{name}")
        return facts

    @staticmethod
    def _facts_if_false(test: ast.expr) -> Set[str]:
        """Facts established when ``test`` evaluates falsy."""
        facts: Set[str] = set()
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            # not (a or b) == not a and not b
            for value in test.values:
                facts |= _GuardWalker._facts_if_false(value)
            return facts
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return _GuardWalker._facts_if_true(test.operand)
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            if isinstance(op, ast.Is) and _is_none(right):
                name = dotted_name(left)
                if name:
                    facts.add(f"nn:{name}")
            elif isinstance(op, ast.Is) and _is_none(left):
                name = dotted_name(right)
                if name:
                    facts.add(f"nn:{name}")
        return facts

    # -- statement walk ------------------------------------------------------

    def walk_body(self, body: List[ast.stmt], guards: FrozenSet[str]) -> None:
        current = set(guards)
        for statement in body:
            self._walk_statement(statement, current)
            # Early-exit guard pattern: "if <cond>: return/raise" makes
            # the negation of <cond> hold for the rest of the block.
            if isinstance(statement, ast.If) and not statement.orelse:
                if _terminates(statement.body):
                    current |= self._facts_if_false(statement.test)
            if isinstance(statement, ast.Assert):
                current |= self._facts_if_true(statement.test)
            # An assignment to a guarded expression invalidates facts
            # about it (rebinding may reintroduce None).
            if isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                for target in targets:
                    name = dotted_name(target)
                    if name:
                        current -= {f"nn:{name}", f"en:{name}"}

    def _walk_statement(self, statement: ast.stmt, guards: Set[str]) -> None:
        frozen = frozenset(guards)
        if isinstance(statement, ast.If):
            self._walk_expression(statement.test, frozen)
            self.walk_body(statement.body, frozen | self._facts_if_true(statement.test))
            self.walk_body(statement.orelse, frozen | self._facts_if_false(statement.test))
        elif isinstance(statement, (ast.While,)):
            self._walk_expression(statement.test, frozen)
            self.walk_body(statement.body, frozen | self._facts_if_true(statement.test))
            self.walk_body(statement.orelse, frozen)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self._walk_expression(statement.iter, frozen)
            self.walk_body(statement.body, frozen)
            self.walk_body(statement.orelse, frozen)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._walk_expression(item.context_expr, frozen)
            self.walk_body(statement.body, frozen)
        elif isinstance(statement, ast.Try):
            self.walk_body(statement.body, frozen)
            for handler in statement.handlers:
                self.walk_body(handler.body, frozen)
            self.walk_body(statement.orelse, frozen)
            self.walk_body(statement.finalbody, frozen)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested scopes start with no inherited guards.
            pass
        else:
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self._walk_expression(child, frozen)

    def _walk_expression(self, expression: ast.expr, guards: FrozenSet[str]) -> None:
        if isinstance(expression, ast.BoolOp) and isinstance(expression.op, ast.And):
            running = set(guards)
            for value in expression.values:
                self._walk_expression(value, frozenset(running))
                running |= self._facts_if_true(value)
            return
        if isinstance(expression, ast.BoolOp) and isinstance(expression.op, ast.Or):
            running = set(guards)
            for value in expression.values:
                self._walk_expression(value, frozenset(running))
                running |= self._facts_if_false(value)
            return
        if isinstance(expression, ast.IfExp):
            self._walk_expression(expression.test, guards)
            self._walk_expression(
                expression.body, guards | self._facts_if_true(expression.test)
            )
            self._walk_expression(
                expression.orelse, guards | self._facts_if_false(expression.test)
            )
            return
        self._visit_use(expression, guards)
        for child in ast.iter_child_nodes(expression):
            if isinstance(child, ast.expr):
                self._walk_expression(child, guards)


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _hook_receiver(node: ast.expr, hooks: Tuple[str, ...]) -> Optional[str]:
    """Dotted text of ``node`` when it denotes one of the hook objects."""
    name = dotted_name(node)
    if name is None:
        return None
    final = name.rsplit(".", 1)[-1]
    return name if final in hooks else None


@register
class UnguardedOptionalHookRule(Rule):
    """SIM-H101: chaos/resilience member access without a None guard."""

    name = "SIM-H101"
    severity = "error"
    description = (
        "chaos/resilience hook member access not dominated by an "
        "'is not None' check in the same function"
    )

    def applies_to(self, unit: ModuleUnit) -> bool:
        return _in_scope(unit)

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        findings: List[Finding] = []

        for function in unit.functions():

            def visit(node: ast.expr, guards: FrozenSet[str]) -> None:
                if not isinstance(node, ast.Attribute):
                    return
                receiver = _hook_receiver(node.value, OPTIONAL_HOOKS)
                if receiver is None:
                    return
                if f"nn:{receiver}" in guards:
                    return
                findings.append(
                    unit.finding(
                        self,
                        node,
                        f"access to {receiver}.{node.attr} is not guarded by "
                        f"'{receiver} is not None' in this function — the "
                        "opt-in layer would become load-bearing",
                    )
                )

            walker = _GuardWalker(visit)
            walker.walk_body(function.body, frozenset())
        return iter(findings)


@register
class UnguardedTracerEmitRule(Rule):
    """SIM-H102: tracer emit call without a dominating .enabled test."""

    name = "SIM-H102"
    severity = "error"
    description = (
        "tracer method call not dominated by a '<tracer>.enabled' test "
        "in the same function"
    )

    #: Attribute reads on the tracer that are not emissions.
    _NON_EMITTING = {"enabled"}

    def applies_to(self, unit: ModuleUnit) -> bool:
        return _in_scope(unit)

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        findings: List[Finding] = []

        for function in unit.functions():

            def visit(node: ast.expr, guards: FrozenSet[str]) -> None:
                if not isinstance(node, ast.Call):
                    return
                func = node.func
                if not isinstance(func, ast.Attribute):
                    return
                receiver = _hook_receiver(func.value, ("tracer",))
                if receiver is None or func.attr in self._NON_EMITTING:
                    return
                if f"en:{receiver}.enabled" in guards:
                    return
                findings.append(
                    unit.finding(
                        self,
                        node,
                        f"{receiver}.{func.attr}(...) emits without a "
                        f"dominating 'if {receiver}.enabled:' guard in this "
                        "function",
                    )
                )

            walker = _GuardWalker(visit)
            walker.walk_body(function.body, frozenset())
        return iter(findings)
