"""Exhaustive explicit-state model checking of the TMESI/CST spec.

The checker explores *every* reachable interleaving of the protocol
tables in :mod:`repro.coherence.spec` for one cache line across N
caches plus a directory, and verifies the declared invariant catalog
(``spec.INVARIANTS``, rules SIM-M401..407).  It consumes only the spec
tables — never the implementation — so a hole in the spec cannot hide
behind a correct controller, and vice versa.

Abstract state
--------------
One tuple per cache: ``(line, rsig, wsig, pending, r_w, w_w, w_r)``
where ``line`` is a stable Figure 1 state, ``rsig``/``wsig`` are the
signature footprint bits for *the* line, ``pending`` is the access kind
of an in-flight directory request (-1 when none) and the three CST
masks are bitsets of remote cache ids.  Events are:

* ``access(i, kind)`` — dispatched through ``LOCAL_DISPATCH``: a local
  hit applies ``LOCAL_NEXT_STATE`` and the signature insert; a miss
  parks the request (``MISS_REQUESTS``) until its ``deliver``;
* ``deliver(i)`` — the directory atomically forwards to every holder
  (valid line *or* signature stake — the sticky conflict interest the
  real directory retains), applies ``REMOTE_NEXT_STATE``, the
  ``RESPONSE_TABLE``, both CST tables, strong-isolation aborts, then
  grants per ``GETS_GRANT_RULES``/``GRANTS`` and installs per
  ``GRANT_INSTALL``;
* ``commit(i)`` / ``abort(i)`` — Figure 3 flash transforms.  Commit
  first force-aborts every active enemy named in the committer's
  W-R|W-W masks (the lazy CAS-abort sweep); abort is always enabled
  for a transaction, which over-approximates every contention-manager
  policy at once.

Deliberate abstractions (documented divergences from the simulator):

* CST hygiene is eager: when a cache commits/aborts, bits *naming* it
  in remote CSTs clear immediately.  The hardware leaves them until
  the owner's own flash-clear; the only behaviour this hides is a
  stale-bit wound of a fresh transaction — an ``abort`` event the
  model already explores unconditionally — and it keeps the state
  space finite-tractable.
* A cache that is wounded while a request is in flight still receives
  its grant (and signature insert) later; the resulting state is
  identical to the same access re-issued by an immediate retry, which
  is a legal behaviour in its own right.
* A cache with a live signature footprint on the line issues
  transactional accesses and plain Loads, but never a plain Store:
  the runtime's only in-transaction plain stores are the manager's
  TSW CAS traffic, which targets *other* lines (exactly the case
  ``machine._strong_isolation_aborts`` exempts via
  ``issuer.in_transaction``).  Consequently the single dispatch cell
  ``LOCAL_DISPATCH[Store,TI]`` — legal hardware behaviour, undrivable
  by the runtime — is exempted from dead-cell coverage
  (``UNDRIVEN_CELLS``).

Every violation is minimized (BFS parent links), annotated into a
concrete event trace, and exported two ways: SARIF findings under the
SIM-M rule ids (:func:`findings_from`), and — through
:mod:`repro.adversary.bridge` — a :class:`ScheduleScript` replayed on
the real simulator.  See docs/ANALYSIS.md for the state-space table
and the dead-cell story per N.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.engine import Finding, Rule, register
from repro.coherence import spec as spec_tables

#: What dual-update symmetry *means*, independent of the spec's own
#: DUAL_CST arrow: a writes-vs-reads edge mirrors as reads-vs-writes,
#: writes-vs-writes mirrors onto itself.  SIM-M403 checks the spec's
#: routing against this intrinsic mirror, so a coherently mutated
#: DUAL_CST cannot vacuously agree with itself.
_INTRINSIC_MIRROR: Dict[str, str] = {"w_r": "r_w", "r_w": "w_r", "w_w": "w_w"}

#: CST name -> field index inside a cache tuple.
_MASK_INDEX: Dict[str, int] = {"r_w": 4, "w_w": 5, "w_r": 6}

#: A cache: (line, rsig, wsig, pending access index, r_w, w_w, w_r).
CacheState = Tuple[str, bool, bool, int, int, int, int]
State = Tuple[CacheState, ...]
#: Raw exploration event: (op, cache, access kind) — kind is "" for
#: deliver/commit/abort.
Event = Tuple[str, int, str]
#: Annotated trace event: op in {local, issue, deliver, commit, abort}
#: with the access kind resolved for local/issue/deliver.
TraceEvent = Tuple[str, int, str]

_NO_PENDING = -1


@dataclasses.dataclass(frozen=True)
class ProtocolSpec:
    """An immutable snapshot of the protocol tables.

    The checker explores a snapshot rather than the module so the
    mutation-kill suite can corrupt individual cells without tripping
    the spec module's own import-time consistency assertions.
    """

    states: Tuple[str, ...]
    accesses: Tuple[str, ...]
    requests: Tuple[str, ...]
    responses: Tuple[str, ...]
    encodings: Dict[str, Tuple[int, int, int]]
    state_predicates: Dict[str, FrozenSet[str]]
    transactional_accesses: FrozenSet[str]
    write_accesses: FrozenSet[str]
    local_dispatch: Dict[Tuple[str, str], str]
    local_next_state: Dict[Tuple[str, str], str]
    miss_requests: Dict[str, str]
    remote_next_state: Dict[Tuple[str, str], str]
    response_table: Dict[Tuple[str, str], str]
    responder_cst: Dict[Tuple[str, str], str]
    requester_cst: Dict[Tuple[str, str], str]
    dual_cst: Dict[str, str]
    conflict_responses: FrozenSet[str]
    strong_isolation_aborts: FrozenSet[Tuple[str, str]]
    grants: Dict[str, FrozenSet[str]]
    gets_grant_rules: Tuple[Tuple[str, str], ...]
    grant_install: Dict[Tuple[str, str], str]
    commit_transform: Dict[str, str]
    abort_transform: Dict[str, str]
    initial_state: str
    final_line_states: FrozenSet[str]

    @classmethod
    def from_tables(cls) -> "ProtocolSpec":
        """Snapshot the live :mod:`repro.coherence.spec` tables."""
        return cls(
            states=tuple(spec_tables.STATES),
            accesses=tuple(spec_tables.ACCESSES),
            requests=tuple(spec_tables.REQUESTS),
            responses=tuple(spec_tables.RESPONSES),
            encodings=dict(spec_tables.ENCODINGS),
            state_predicates=dict(spec_tables.STATE_PREDICATES),
            transactional_accesses=spec_tables.ACCESS_PREDICATES[
                "is_transactional"
            ],
            write_accesses=spec_tables.ACCESS_PREDICATES["is_write"],
            local_dispatch=dict(spec_tables.LOCAL_DISPATCH),
            local_next_state=dict(spec_tables.LOCAL_NEXT_STATE),
            miss_requests=dict(spec_tables.MISS_REQUESTS),
            remote_next_state=dict(spec_tables.REMOTE_NEXT_STATE),
            response_table=dict(spec_tables.RESPONSE_TABLE),
            responder_cst=dict(spec_tables.RESPONDER_CST),
            requester_cst=dict(spec_tables.REQUESTER_CST),
            dual_cst=dict(spec_tables.DUAL_CST),
            conflict_responses=spec_tables.CONFLICT_RESPONSES,
            strong_isolation_aborts=spec_tables.STRONG_ISOLATION_ABORTS,
            grants=dict(spec_tables.GRANTS),
            gets_grant_rules=tuple(spec_tables.GETS_GRANT_RULES),
            grant_install=dict(spec_tables.GRANT_INSTALL),
            commit_transform=dict(spec_tables.COMMIT_TRANSFORM),
            abort_transform=dict(spec_tables.ABORT_TRANSFORM),
            initial_state=spec_tables.INITIAL_STATE,
            final_line_states=spec_tables.FINAL_LINE_STATES,
        )

    def replace(self, **overrides: object) -> "ProtocolSpec":
        """A mutated copy — the mutation-kill suite's entry point."""
        return dataclasses.replace(self, **overrides)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant violation with its minimal counterexample."""

    rule: str
    message: str
    #: Annotated events from the initial state up to (and including)
    #: the violating event.
    trace: Tuple[TraceEvent, ...]
    caches: int

    def render_trace(self) -> str:
        """``TStore@0; TStore@1!; commit@0`` — ``!`` marks a grant."""
        return "; ".join(_render_event(event) for event in self.trace)


@dataclasses.dataclass
class ModelCheckResult:
    """Everything one exploration produced."""

    caches: int
    strategy: str
    states: int = 0
    transitions: int = 0
    depth: int = 0
    truncated: bool = False
    violations: List[Violation] = dataclasses.field(default_factory=list)
    dead_cells: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.dead_cells

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": "repro.modelcheck/v1",
            "caches": self.caches,
            "strategy": self.strategy,
            "states": self.states,
            "transitions": self.transitions,
            "depth": self.depth,
            "truncated": self.truncated,
            "ok": self.ok,
            "violations": [
                {
                    "rule": violation.rule,
                    "message": violation.message,
                    "trace": [list(event) for event in violation.trace],
                    "rendered": violation.render_trace(),
                    "caches": violation.caches,
                }
                for violation in self.violations
            ],
            "dead_cells": list(self.dead_cells),
        }


def _render_event(event: TraceEvent) -> str:
    op, cache, kind = event
    if op == "local":
        return f"{kind}@{cache}"
    if op == "issue":
        return f"{kind}@{cache}?"
    if op == "deliver":
        return f"{kind}@{cache}!"
    return f"{op}@{cache}"


# --------------------------------------------------------------------------- #
# Transition semantics.


class _Applied:
    """Outcome of applying one event: next state or a violation."""

    __slots__ = ("state", "violation", "cells")

    def __init__(
        self,
        state: Optional[State],
        violation: Optional[Tuple[str, str]],
        cells: List[Tuple[str, str]],
    ) -> None:
        self.state = state
        self.violation = violation
        self.cells = cells


def _initial_state(spec: ProtocolSpec, caches: int) -> State:
    cache: CacheState = (spec.initial_state, False, False, _NO_PENDING, 0, 0, 0)
    return tuple(cache for _ in range(caches))


def _enabled_events(spec: ProtocolSpec, state: State) -> List[Event]:
    events: List[Event] = []
    for i, cache in enumerate(state):
        if cache[3] != _NO_PENDING:
            events.append(("deliver", i, ""))
            continue
        footprint = cache[1] or cache[2]
        for kind in spec.accesses:
            if (
                footprint
                and kind not in spec.transactional_accesses
                and kind in spec.write_accesses
            ):
                # An in-transaction plain store to a tracked line never
                # happens: the manager's CAS traffic targets TSW lines.
                continue
            if spec.local_dispatch.get((kind, cache[0])) != "error":
                events.append(("access", i, kind))
        if cache[1] or cache[2]:
            events.append(("commit", i, ""))
            events.append(("abort", i, ""))
    return events


def _abort_cache(
    spec: ProtocolSpec,
    lines: List[str],
    rsig: List[bool],
    wsig: List[bool],
    masks: Tuple[List[int], List[int], List[int]],
    j: int,
    cells: List[Tuple[str, str]],
) -> Optional[Tuple[str, str]]:
    """Flash-abort cache ``j`` in place (transform, sig + CST clears)."""
    target = spec.abort_transform.get(lines[j])
    cells.append(("ABORT_TRANSFORM", lines[j]))
    if target is None or target not in spec.states:
        return (
            "SIM-M402",
            f"abort of a {lines[j]} line has no legal transform",
        )
    lines[j] = target
    rsig[j] = False
    wsig[j] = False
    clear = ~(1 << j)
    for mask in masks:
        mask[j] = 0
        for k in range(len(lines)):
            mask[k] &= clear
    return None


def _apply(spec: ProtocolSpec, state: State, event: Event) -> _Applied:
    """Apply one event; returns the successor or the first violation."""
    op, i, kind = event
    cells: List[Tuple[str, str]] = []
    lines = [cache[0] for cache in state]
    rsig = [cache[1] for cache in state]
    wsig = [cache[2] for cache in state]
    pending = [cache[3] for cache in state]
    rw = [cache[4] for cache in state]
    ww = [cache[5] for cache in state]
    wr = [cache[6] for cache in state]
    masks = (rw, ww, wr)
    mask_of = {"r_w": rw, "w_w": ww, "w_r": wr}

    def freeze() -> State:
        return tuple(
            (lines[k], rsig[k], wsig[k], pending[k], rw[k], ww[k], wr[k])
            for k in range(len(lines))
        )

    def fail(rule: str, message: str) -> _Applied:
        return _Applied(None, (rule, message), cells)

    if op == "access":
        outcome = spec.local_dispatch.get((kind, lines[i]))
        if outcome is None:
            return fail(
                "SIM-M407",
                f"{kind} against a {lines[i]} line has no dispatch cell",
            )
        cells.append(("LOCAL_DISPATCH", f"{kind},{lines[i]}"))
        if outcome == "local":
            target = spec.local_next_state.get((kind, lines[i]))
            if target is None or target not in spec.states:
                return fail(
                    "SIM-M402",
                    f"local {kind} hit on {lines[i]} has no next state",
                )
            lines[i] = target
            if kind in spec.transactional_accesses:
                if kind in spec.write_accesses:
                    wsig[i] = True
                else:
                    rsig[i] = True
            return _Applied(freeze(), None, cells)
        request = spec.miss_requests.get(kind)
        if request is None or request not in spec.requests:
            return fail(
                "SIM-M407",
                f"{kind} misses but MISS_REQUESTS names no request",
            )
        cells.append(("MISS_REQUESTS", kind))
        pending[i] = spec.accesses.index(kind)
        return _Applied(freeze(), None, cells)

    if op == "deliver":
        kind = spec.accesses[pending[i]]
        request = spec.miss_requests[kind]
        requester_tx = kind in spec.transactional_accesses
        threatened = False
        any_holder = False
        si_victims: List[int] = []
        for j in range(len(lines)):
            if j == i:
                continue
            if lines[j] == spec.initial_state and not rsig[j] and not wsig[j]:
                continue
            any_holder = True
            category = (
                "wsig" if wsig[j] else ("rsig_only" if rsig[j] else "none")
            )
            response: Optional[str] = None
            if category != "none":
                response = spec.response_table.get((request, category))
                if response is None:
                    return fail(
                        "SIM-M405",
                        f"a {category} holder has no response to {request}: "
                        "the conflict is silently lost",
                    )
                cells.append(("RESPONSE_TABLE", f"{request},{category}"))
            next_state = spec.remote_next_state.get((request, lines[j]))
            if next_state is None or next_state not in spec.states:
                return fail(
                    "SIM-M407",
                    f"in-flight {request} cannot be serviced by a "
                    f"{lines[j]} holder: the request wedges",
                )
            cells.append(("REMOTE_NEXT_STATE", f"{request},{lines[j]}"))
            responder_cst = spec.responder_cst.get((request, category))
            requester_cst = (
                spec.requester_cst.get((kind, response))
                if response is not None
                else None
            )
            strong = (request, category) in spec.strong_isolation_aborts
            if response is not None and response in spec.conflict_responses:
                if requester_tx:
                    if (
                        responder_cst is None
                        or requester_cst is None
                        or spec.dual_cst.get(responder_cst) != requester_cst
                    ):
                        return fail(
                            "SIM-M404",
                            f"{response} to a {kind} miss: responder CST "
                            f"{responder_cst!r} and requester CST "
                            f"{requester_cst!r} do not agree through "
                            "DUAL_CST",
                        )
                    cells.append(("DUAL_CST", responder_cst))
                    if _INTRINSIC_MIRROR[responder_cst] != requester_cst:
                        return fail(
                            "SIM-M403",
                            f"{response} to a {kind} miss routes the dual "
                            f"update to ({responder_cst}, {requester_cst}), "
                            "which is not a mirrored CST pair",
                        )
                elif responder_cst is None and not strong:
                    return fail(
                        "SIM-M405",
                        f"{response} to a plain {kind} is neither "
                        "CST-recorded nor strong-isolation resolved",
                    )
            if responder_cst is not None:
                cells.append(("RESPONDER_CST", f"{request},{category}"))
                mask_of[responder_cst][j] |= 1 << i
            if requester_cst is not None:
                cells.append(("REQUESTER_CST", f"{kind},{response}"))
                mask_of[requester_cst][i] |= 1 << j
            if response == "Threatened":
                threatened = True
            if strong and not requester_tx:
                cells.append(
                    ("STRONG_ISOLATION_ABORTS", f"{request},{category}")
                )
                si_victims.append(j)
            lines[j] = next_state
        grant_domain = spec.grants.get(request, frozenset())
        grant: Optional[str] = None
        if request == "GETS":
            for condition, target in spec.gets_grant_rules:
                if (
                    (condition == "threatened" and threatened)
                    or (condition == "no_holders" and not any_holder)
                    or condition == "otherwise"
                ):
                    grant = target
                    cells.append(("GETS_GRANT_RULES", condition))
                    break
        elif len(grant_domain) == 1:
            grant = sorted(grant_domain)[0]
        if grant is None or grant not in grant_domain:
            return fail(
                "SIM-M402",
                f"{request} grants {grant!r}, which is outside "
                f"GRANTS[{request}]",
            )
        cells.append(("GRANTS", f"{request}->{grant}"))
        installed = spec.grant_install.get((kind, grant), grant)
        if (kind, grant) in spec.grant_install:
            cells.append(("GRANT_INSTALL", f"{kind},{grant}"))
        if installed not in spec.states:
            return fail(
                "SIM-M402",
                f"grant {grant} installs unknown state {installed!r}",
            )
        lines[i] = installed
        pending[i] = _NO_PENDING
        if requester_tx:
            if kind in spec.write_accesses:
                wsig[i] = True
            else:
                rsig[i] = True
        for j in si_victims:
            if rsig[j] or wsig[j]:
                violation = _abort_cache(spec, lines, rsig, wsig, masks, j, cells)
                if violation is not None:
                    return _Applied(None, violation, cells)
        return _Applied(freeze(), None, cells)

    if op == "commit":
        enemies = wr[i] | ww[i]
        for j in range(len(lines)):
            if j != i and enemies & (1 << j) and (rsig[j] or wsig[j]):
                violation = _abort_cache(spec, lines, rsig, wsig, masks, j, cells)
                if violation is not None:
                    return _Applied(None, violation, cells)
        target = spec.commit_transform.get(lines[i])
        cells.append(("COMMIT_TRANSFORM", lines[i]))
        if target is None or target not in spec.states:
            return fail(
                "SIM-M402",
                f"commit of a {lines[i]} line has no legal transform",
            )
        lines[i] = target
        rsig[i] = False
        wsig[i] = False
        clear = ~(1 << i)
        for mask in masks:
            mask[i] = 0
            for k in range(len(lines)):
                mask[k] &= clear
        return _Applied(freeze(), None, cells)

    # op == "abort": a spontaneous abort (covers every CM policy).
    violation = _abort_cache(spec, lines, rsig, wsig, masks, i, cells)
    if violation is not None:
        return _Applied(None, violation, cells)
    return _Applied(freeze(), None, cells)


# --------------------------------------------------------------------------- #
# State-level invariants.


def _check_state(spec: ProtocolSpec, state: State) -> Optional[Tuple[str, str]]:
    """SWMR (SIM-M401) and TSW legality (SIM-M406) on one state."""
    exclusive: List[int] = []
    shared: List[int] = []
    for i, cache in enumerate(state):
        line = cache[0]
        if line in ("M", "E"):
            exclusive.append(i)
        elif line == "S":
            shared.append(i)
        if (line == "TMI") != cache[2]:
            return (
                "SIM-M406",
                f"cache{i} is {line} with wsig={cache[2]}: a TMI line must "
                "exist exactly while its owner's write signature is live",
            )
        if line == "TI" and not cache[1]:
            return (
                "SIM-M406",
                f"cache{i} holds TI with no live read signature",
            )
    if len(exclusive) > 1:
        detail = ", ".join(f"cache{i}={state[i][0]}" for i in exclusive)
        return ("SIM-M401", f"two exclusive holders: {detail}")
    if exclusive and shared:
        return (
            "SIM-M401",
            f"cache{exclusive[0]}={state[exclusive[0]][0]} coexists with "
            f"S copies at {', '.join(f'cache{i}' for i in shared)}",
        )
    return None


def _is_final(spec: ProtocolSpec, state: State) -> bool:
    for cache in state:
        if cache[3] != _NO_PENDING or cache[1] or cache[2]:
            return False
        if cache[0] not in spec.final_line_states:
            return False
        if cache[4] or cache[5] or cache[6]:
            return False
    return True


def _static_violations(spec: ProtocolSpec) -> List[Tuple[str, str]]:
    """SIM-M402's static half: the encoding table itself is coherent."""
    out: List[Tuple[str, str]] = []
    if sorted(spec.encodings) != sorted(spec.states):
        out.append(("SIM-M402", "ENCODINGS does not cover exactly STATES"))
        return out
    seen: Dict[Tuple[int, int, int], str] = {}
    for name in spec.states:
        bits = spec.encodings[name]
        if bits in seen:
            out.append(
                (
                    "SIM-M402",
                    f"states {seen[bits]} and {name} share encoding {bits}",
                )
            )
        seen[bits] = name
    expect: Dict[str, Callable[[Tuple[int, int, int]], bool]] = {
        "is_valid": lambda bits: bits != (0, 0, 0),
        "is_transactional": lambda bits: bits[2] == 1,
        "readable": lambda bits: bits != (0, 0, 0),
        "writable": lambda bits: bits[0] == 1 and bits[2] == 0,
        "tstore_hits": lambda bits: bits[0] == 1 and bits[2] == 1,
    }
    for predicate in sorted(expect):
        derived = frozenset(
            name for name in spec.states if expect[predicate](spec.encodings[name])
        )
        declared = spec.state_predicates.get(predicate)
        if declared is not None and declared != derived:
            out.append(
                (
                    "SIM-M402",
                    f"predicate {predicate} is {sorted(declared)} but the "
                    f"(M,V,T) bits derive {sorted(derived)}",
                )
            )
    return out


# --------------------------------------------------------------------------- #
# Coverage (dead spec cells).


#: Spec cells that are architecturally legal but undrivable under the
#: runtime's access discipline, and hence exempt from dead-cell
#: reporting.  Today exactly one: a plain Store upgrade from a TI line
#: would require an in-transaction non-speculative store to a tracked
#: line (TI exists only while its reader's transaction runs), which the
#: runtime never issues — its in-transaction plain stores are manager
#: CAS operations on TSW lines.
UNDRIVEN_CELLS: FrozenSet[str] = frozenset({"LOCAL_DISPATCH[Store,TI]"})


def coverage_universe(spec: ProtocolSpec) -> List[str]:
    """Every spec cell an exhaustive exploration is expected to reach."""
    cells: List[str] = []
    for (access, state), outcome in sorted(spec.local_dispatch.items()):
        if outcome != "error":
            cells.append(f"LOCAL_DISPATCH[{access},{state}]")
    for access in sorted(spec.miss_requests):
        cells.append(f"MISS_REQUESTS[{access}]")
    for request, state in sorted(spec.remote_next_state):
        cells.append(f"REMOTE_NEXT_STATE[{request},{state}]")
    for request, category in sorted(spec.response_table):
        cells.append(f"RESPONSE_TABLE[{request},{category}]")
    for request, category in sorted(spec.responder_cst):
        cells.append(f"RESPONDER_CST[{request},{category}]")
    for access, response in sorted(spec.requester_cst):
        cells.append(f"REQUESTER_CST[{access},{response}]")
    for cst in sorted(spec.dual_cst):
        cells.append(f"DUAL_CST[{cst}]")
    for request in sorted(spec.grants):
        for grant in sorted(spec.grants[request]):
            cells.append(f"GRANTS[{request}->{grant}]")
    for condition, _target in spec.gets_grant_rules:
        cells.append(f"GETS_GRANT_RULES[{condition}]")
    for access, grant in sorted(spec.grant_install):
        cells.append(f"GRANT_INSTALL[{access},{grant}]")
    for request, category in sorted(spec.strong_isolation_aborts):
        cells.append(f"STRONG_ISOLATION_ABORTS[{request},{category}]")
    for state in sorted(spec.commit_transform):
        cells.append(f"COMMIT_TRANSFORM[{state}]")
    for state in sorted(spec.abort_transform):
        cells.append(f"ABORT_TRANSFORM[{state}]")
    return cells


# --------------------------------------------------------------------------- #
# The explorer.


def check(
    spec: Optional[ProtocolSpec] = None,
    caches: int = 3,
    depth: Optional[int] = None,
    strategy: str = "bfs",
) -> ModelCheckResult:
    """Exhaustively explore the spec for ``caches`` caches + directory.

    BFS (the default) guarantees each reported counterexample is a
    shortest trace; DFS trades minimality for a smaller frontier.  At
    most one violation is reported per rule — the first (shortest)
    one found — and a transition that violates an invariant is not
    expanded further, so one hole cannot cascade into noise.
    """
    # Bind to a non-Optional name so the closures below type-check.
    tables: ProtocolSpec = (
        ProtocolSpec.from_tables() if spec is None else spec
    )
    if caches < 2 or caches > 5:
        raise ValueError(f"caches must be in 2..5, got {caches}")
    if strategy not in ("bfs", "dfs"):
        raise ValueError(f"strategy must be bfs or dfs, got {strategy!r}")
    result = ModelCheckResult(caches=caches, strategy=strategy)
    violations: Dict[str, Violation] = {}
    covered: Set[Tuple[str, str]] = set()

    def record(rule: str, message: str, trace: Tuple[Event, ...]) -> None:
        if rule not in violations:
            violations[rule] = Violation(
                rule=rule,
                message=message,
                trace=annotate_trace(tables, caches, trace),
                caches=caches,
            )

    for rule, message in _static_violations(tables):
        record(rule, message, ())

    start = _initial_state(tables, caches)
    parents: Dict[State, Tuple[Optional[State], Optional[Event]]] = {
        start: (None, None)
    }
    depths: Dict[State, int] = {start: 0}

    def trace_of(state: State) -> Tuple[Event, ...]:
        events: List[Event] = []
        cursor: Optional[State] = state
        while cursor is not None:
            parent, event = parents[cursor]
            if event is not None:
                events.append(event)
            cursor = parent
        events.reverse()
        return tuple(events)

    initial_violation = _check_state(tables, start)
    if initial_violation is not None:
        record(initial_violation[0], initial_violation[1], ())

    # BFS walks the list by index (pop(0) is O(n)); DFS pops the tail.
    frontier: List[State] = [start]
    result.states = 1
    cursor_index = 0
    while True:
        if strategy == "bfs":
            if cursor_index >= len(frontier):
                break
            state = frontier[cursor_index]
            cursor_index += 1
        else:
            if not frontier:
                break
            state = frontier.pop()
        level = depths[state]
        if depth is not None and level >= depth:
            result.truncated = True
            continue
        events = _enabled_events(tables, state)
        if not events and not _is_final(tables, state):
            record(
                "SIM-M407",
                "non-final state with no enabled transition",
                trace_of(state),
            )
            continue
        for event in events:
            applied = _apply(tables, state, event)
            result.transitions += 1
            for cell in applied.cells:
                covered.add(cell)
            if applied.violation is not None:
                rule, message = applied.violation
                record(rule, message, trace_of(state) + (event,))
                continue
            successor = applied.state
            if successor is None or successor in parents:
                continue
            parents[successor] = (state, event)
            depths[successor] = level + 1
            result.states += 1
            result.depth = max(result.depth, level + 1)
            state_violation = _check_state(tables, successor)
            if state_violation is not None:
                record(
                    state_violation[0],
                    state_violation[1],
                    trace_of(successor),
                )
                continue
            frontier.append(successor)

    result.violations = [violations[rule] for rule in sorted(violations)]
    covered_names = {f"{table}[{key}]" for table, key in sorted(covered)}
    covered_names |= UNDRIVEN_CELLS
    result.dead_cells = [
        cell for cell in coverage_universe(tables) if cell not in covered_names
    ]
    return result


def annotate_trace(
    spec: ProtocolSpec, caches: int, trace: Sequence[Event]
) -> Tuple[TraceEvent, ...]:
    """Resolve raw events into local/issue/deliver ops with kinds.

    Replays the trace so each ``access`` is classified as a local hit
    or a request issue, and each ``deliver`` learns which access kind
    it completes — everything the adversary bridge needs to rebuild
    the interleaving on the real simulator.
    """
    state = _initial_state(spec, caches)
    out: List[TraceEvent] = []
    for event in trace:
        op, i, kind = event
        if op == "access":
            outcome = spec.local_dispatch.get((kind, state[i][0]))
            out.append(("local" if outcome == "local" else "issue", i, kind))
        elif op == "deliver":
            pending = state[i][3]
            out.append(
                ("deliver", i, spec.accesses[pending] if pending >= 0 else "")
            )
        else:
            out.append((op, i, ""))
        applied = _apply(spec, state, event)
        if applied.state is None:
            break
        state = applied.state
    return tuple(out)


# --------------------------------------------------------------------------- #
# simcheck integration: SIM-M rules + Finding export.


class _ModelRule(Rule):
    """Model-checker rules run through ``check()``, not the AST walk."""

    severity = "error"
    scope = "modelcheck"


@register
class ModelSWMRRule(_ModelRule):
    name = "SIM-M401"
    description = spec_tables.INVARIANTS["SIM-M401"]


@register
class ModelEncodingRule(_ModelRule):
    name = "SIM-M402"
    description = spec_tables.INVARIANTS["SIM-M402"]


@register
class ModelCSTSymmetryRule(_ModelRule):
    name = "SIM-M403"
    description = spec_tables.INVARIANTS["SIM-M403"]


@register
class ModelCSTAgreementRule(_ModelRule):
    name = "SIM-M404"
    description = spec_tables.INVARIANTS["SIM-M404"]


@register
class ModelLostResponseRule(_ModelRule):
    name = "SIM-M405"
    description = spec_tables.INVARIANTS["SIM-M405"]


@register
class ModelTSWLegalityRule(_ModelRule):
    name = "SIM-M406"
    description = spec_tables.INVARIANTS["SIM-M406"]


@register
class ModelQuiescenceRule(_ModelRule):
    name = "SIM-M407"
    description = spec_tables.INVARIANTS["SIM-M407"]


#: Representative spec table per rule, used to anchor findings to a
#: line in spec.py.
_RULE_ANCHORS: Dict[str, str] = {
    "SIM-M401": "REMOTE_NEXT_STATE",
    "SIM-M402": "ENCODINGS",
    "SIM-M403": "DUAL_CST",
    "SIM-M404": "REQUESTER_CST",
    "SIM-M405": "RESPONSE_TABLE",
    "SIM-M406": "ABORT_TRANSFORM",
    "SIM-M407": "LOCAL_DISPATCH",
}

#: Where the spec lives, relative to the analysis root.
SPEC_PATH = "src/repro/coherence/spec.py"


def _anchor_lines(root: Path) -> Dict[str, int]:
    """Line number of each table assignment in spec.py (1 if unknown)."""
    lines: Dict[str, int] = {}
    path = root / SPEC_PATH
    if not path.exists():
        return lines
    for number, text in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        name = text.split(":", 1)[0].split(" ", 1)[0]
        if name and name == text[: len(name)] and name.isupper():
            lines.setdefault(name, number)
    return lines


def findings_from(result: ModelCheckResult, root: Path) -> List[Finding]:
    """Render violations as simcheck findings anchored into spec.py."""
    anchors = _anchor_lines(root)
    findings: List[Finding] = []
    for violation in result.violations:
        table = _RULE_ANCHORS.get(violation.rule, "STATES")
        message = violation.message
        if violation.trace:
            message = f"{message} [after: {violation.render_trace()}]"
        findings.append(
            Finding(
                rule=violation.rule,
                severity="error",
                path=SPEC_PATH,
                line=anchors.get(table, 1),
                col=0,
                message=message,
                context=f"modelcheck(caches={result.caches})",
            )
        )
    return findings


def iter_model_rules() -> Iterator[Rule]:
    """The registered SIM-M rules, in id order (for SARIF descriptors)."""
    from repro.analysis.engine import all_rules

    rules = all_rules()
    for rule_id in sorted(rules):
        if rules[rule_id].scope == "modelcheck":
            yield rules[rule_id]
