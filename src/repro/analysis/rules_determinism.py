"""SIM-D0xx — determinism rules.

Bit-identical replay is the repo's foundational contract (the parallel
executor, the chaos matrix, and the benchmark gate all diff runs
byte-for-byte), so nothing inside ``src/repro`` may observe wall-clock
time, draw from process-global randomness, or iterate a ``set`` in hash
order.  Simulated time comes from ``repro.sim.clock`` and every random
draw flows through ``repro.sim.rng`` — those two modules are the
sanctioned implementations and are exempt below.

``time.perf_counter`` is deliberately *not* forbidden: the harness uses
it to report wall-time of measurement runs, which is observational (it
never feeds back into simulated behaviour).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.engine import Finding, ModuleUnit, Rule, dotted_name, register

#: Modules allowed to touch the forbidden primitives: they *are* the
#: deterministic time/randomness providers everything else routes
#: through.
SANCTIONED = ("repro/sim/rng.py", "repro/sim/clock.py")


def _is_sanctioned(unit: ModuleUnit) -> bool:
    return unit.relpath.endswith(SANCTIONED)


class _DeterminismRule(Rule):
    def applies_to(self, unit: ModuleUnit) -> bool:
        return not _is_sanctioned(unit)


#: Dotted call targets that read wall-clock time.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}

#: Names whose ``from``-import alone is a violation.
_WALL_CLOCK_IMPORTS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
}


@register
class WallClockRule(_DeterminismRule):
    """Forbid wall-clock reads; simulated time comes from sim.clock."""

    name = "SIM-D001"
    severity = "error"
    description = (
        "wall-clock read (time.time / datetime.now / ...) inside src/repro; "
        "use repro.sim.clock simulated time instead"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target in _WALL_CLOCK_CALLS:
                    yield unit.finding(
                        self, node, f"wall-clock call {target}() breaks deterministic replay"
                    )
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if (node.module, alias.name) in _WALL_CLOCK_IMPORTS:
                        yield unit.finding(
                            self,
                            node,
                            f"from {node.module} import {alias.name} imports a "
                            "wall-clock primitive",
                        )


@register
class GlobalRandomRule(_DeterminismRule):
    """Forbid the process-global ``random`` module outside sim.rng."""

    name = "SIM-D002"
    severity = "error"
    description = (
        "use of the random module outside repro.sim.rng; route draws "
        "through a seeded DeterministicRng stream"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                module = getattr(node, "module", None)
                names = [alias.name for alias in node.names]
                if isinstance(node, ast.Import) and "random" in names:
                    yield unit.finding(
                        self, node, "import random outside repro.sim.rng"
                    )
                elif isinstance(node, ast.ImportFrom) and module == "random":
                    yield unit.finding(
                        self, node, "from random import ... outside repro.sim.rng"
                    )
            elif isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target is not None and target.startswith("random."):
                    yield unit.finding(
                        self,
                        node,
                        f"{target}() draws from process-global random state",
                    )


@register
class OsEntropyRule(_DeterminismRule):
    """Forbid OS entropy sources (urandom, uuid4, secrets)."""

    name = "SIM-D003"
    severity = "error"
    description = "OS entropy source (os.urandom / uuid.uuid4 / secrets.*)"

    _TARGETS = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target in self._TARGETS or (
                    target is not None and target.startswith("secrets.")
                ):
                    yield unit.finding(
                        self, node, f"{target}() is a nondeterministic entropy source"
                    )
            elif isinstance(node, ast.Import):
                if any(alias.name == "secrets" for alias in node.names):
                    yield unit.finding(self, node, "import secrets outside repro.sim.rng")


@register
class BuiltinHashRule(_DeterminismRule):
    """Forbid builtin ``hash()``: str/bytes hashing is per-process salted."""

    name = "SIM-D004"
    severity = "error"
    description = (
        "builtin hash() call; str/bytes hashes are PYTHONHASHSEED-salted "
        "and differ across worker processes — use zlib.crc32 or "
        "hashlib on encoded bytes"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield unit.finding(
                    self,
                    node,
                    "builtin hash() is salted for str/bytes inputs; results "
                    "are not reproducible across processes",
                )


class _SetBindings(ast.NodeVisitor):
    """Collect names/attributes bound to set values in a module.

    Tracks plain names (``seeded = set()``), ``self.x`` attributes
    assigned in methods, and ``set``-typed annotations.  Deliberately
    simple: no interprocedural flow, which is plenty for this codebase
    and errs toward missing exotic cases rather than false positives.
    """

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    @staticmethod
    def _is_set_expr(node: Optional[ast.AST]) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        return False

    _SET_TYPE_NAMES = ("set", "Set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet")

    @staticmethod
    def _is_set_annotation(node: Optional[ast.AST]) -> bool:
        """True for a *top-level* set annotation (``Set[str]``, ``set``).

        Only the outermost type constructor counts: ``List[FrozenSet[str]]``
        is a list, not a set.
        """
        if node is None:
            return False
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotation: "set[str]" etc.
            head = node.value.split("[", 1)[0].strip()
            return head.rsplit(".", 1)[-1] in _SetBindings._SET_TYPE_NAMES
        name = dotted_name(node)
        if name is None:
            return False
        return name.rsplit(".", 1)[-1] in _SetBindings._SET_TYPE_NAMES

    def _record_target(self, target: ast.AST) -> None:
        name = dotted_name(target)
        if name is not None:
            self.set_names.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                self._record_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._is_set_expr(node.value) or self._is_set_annotation(node.annotation):
            self._record_target(node.target)
        self.generic_visit(node)


@register
class SetIterationRule(_DeterminismRule):
    """Forbid ordered iteration over set values.

    Set iteration order follows hash order, which for str elements
    varies per process.  Iterating through ``sorted(...)`` (or any
    other explicit ordering) is the sanctioned form; membership tests,
    ``len``, and set algebra are of course fine.
    """

    name = "SIM-D005"
    severity = "error"
    description = (
        "iteration over a set value; wrap in sorted(...) so the order "
        "is deterministic across processes"
    )

    #: Builtins that materialize iteration order from their argument.
    _ORDER_SINKS = {"list", "tuple", "enumerate"}

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        bindings = _SetBindings()
        bindings.visit(unit.tree)

        def is_set_valued(node: ast.AST) -> bool:
            if _SetBindings._is_set_expr(node):
                return True
            name = dotted_name(node)
            return name is not None and name in bindings.set_names

        for node in ast.walk(unit.tree):
            iter_exprs: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_exprs.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iter_exprs.extend(generator.iter for generator in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_SINKS
                and node.args
            ):
                iter_exprs.append(node.args[0])
            for expr in iter_exprs:
                if is_set_valued(expr):
                    described = dotted_name(expr) or "a set expression"
                    yield unit.finding(
                        self,
                        node,
                        f"iteration over set value {described} is hash-ordered; "
                        "wrap in sorted(...)",
                    )


#: Bindings collector is re-exported for tests.
__all__ = [
    "WallClockRule",
    "GlobalRandomRule",
    "OsEntropyRule",
    "BuiltinHashRule",
    "SetIterationRule",
    "SANCTIONED",
]
