"""SIM-E2xx — tracer-event registry rules.

Every event kind an emit site can produce must exist in
:mod:`repro.obs.events` (``SIM-E201``), and every registered kind must
still have a live emit site (``SIM-E202``) — together they keep the
registry, the emit sites, and the docs/tests that import the registry
in lock-step.

Emit sites are calls on a receiver whose final segment is ``tracer``.
Fixed-kind methods (``tx_commit`` -> ``tx_commit``) resolve trivially;
kind-carrying methods (``overflow``, ``sched``, ``coherence``,
``watchdog``, ``degrade``, ``tx_access``) resolve their literal name
argument and apply the method's prefix.  A name argument that is a
local variable is resolved through single-assignment constant
propagation inside the enclosing function (this covers the
``rw = "read" if ... else "write"`` idiom); anything else is skipped —
the registry rule is exact on literals and silent on genuinely dynamic
names rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleUnit,
    Rule,
    dotted_name,
    literal_str_values,
    register,
)
from repro.obs.events import (
    EMIT_PREFIXES,
    EVENT_KINDS,
    FIXED_KINDS,
    KIND_ARG_INDEX,
    KIND_ARG_NAME,
)


def _kind_argument(call: ast.Call, method: str) -> Optional[ast.expr]:
    """The expression carrying the event name for a prefixed method."""
    index = KIND_ARG_INDEX[method]
    if len(call.args) > index:
        return call.args[index]
    wanted = KIND_ARG_NAME[method]
    for keyword in call.keywords:
        if keyword.arg == wanted:
            return keyword.value
    return None


def _enclosing_function(unit: ModuleUnit, node: ast.AST) -> Optional[ast.FunctionDef]:
    current = unit.parent(node)
    while current is not None:
        if isinstance(current, ast.FunctionDef):
            return current
        current = unit.parent(current)
    return None


def _resolve_values(unit: ModuleUnit, call: ast.Call, expr: ast.expr) -> Optional[List[str]]:
    """Literal values ``expr`` can take at the call site, else None."""
    values = literal_str_values(expr)
    if values is not None:
        return values
    if isinstance(expr, ast.Name):
        function = _enclosing_function(unit, call)
        if function is None:
            return None
        assigned: Optional[List[str]] = None
        count = 0
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == expr.id:
                        count += 1
                        assigned = literal_str_values(node.value)
        if count == 1:
            return assigned
    return None


def _tracer_emits(
    unit: ModuleUnit,
) -> Iterator[Tuple[ast.Call, str, Optional[List[str]]]]:
    """Yield ``(call_node, method, kinds_or_None)`` for each emit site.

    ``kinds_or_None`` is the list of resolved event kinds, or ``None``
    when the name argument could not be resolved statically.
    """
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        receiver = dotted_name(node.func.value)
        if receiver is None or receiver.rsplit(".", 1)[-1] != "tracer":
            continue
        if method in FIXED_KINDS:
            yield node, method, [FIXED_KINDS[method]]
        elif method in EMIT_PREFIXES:
            argument = _kind_argument(node, method)
            if argument is None:
                yield node, method, None
                continue
            values = _resolve_values(unit, node, argument)
            if values is None:
                yield node, method, None
            else:
                prefix = EMIT_PREFIXES[method]
                yield node, method, [prefix + value for value in values]


def _trace_event_literals(unit: ModuleUnit) -> Iterator[Tuple[ast.Call, List[str]]]:
    """``TraceEvent("<kind>", ...)`` constructions (the tracer itself)."""
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None or name.rsplit(".", 1)[-1] != "TraceEvent":
            continue
        if node.args:
            values = literal_str_values(node.args[0])
            if values is not None:
                yield node, values


@register
class UnregisteredEventRule(Rule):
    """SIM-E201: emit site producing a kind missing from the registry."""

    name = "SIM-E201"
    severity = "error"
    description = (
        "tracer emit site produces an event kind that is not in "
        "repro.obs.events.EVENT_REGISTRY"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node, method, kinds in _tracer_emits(unit):
            if kinds is None:
                continue
            for kind in kinds:
                if kind not in EVENT_KINDS:
                    yield unit.finding(
                        self,
                        node,
                        f"tracer.{method}(...) emits unregistered event kind "
                        f"{kind!r}; add it to repro.obs.events.EVENT_REGISTRY "
                        "or fix the typo",
                    )
        for node, values in _trace_event_literals(unit):
            for kind in values:
                if kind not in EVENT_KINDS:
                    yield unit.finding(
                        self,
                        node,
                        f"TraceEvent kind {kind!r} is not in "
                        "repro.obs.events.EVENT_REGISTRY",
                    )


@register
class DeadEventRule(Rule):
    """SIM-E202: registered kind with no remaining emit site."""

    name = "SIM-E202"
    severity = "warning"
    scope = "program"
    description = (
        "event kind registered in repro.obs.events but never produced by "
        "any emit site (dead taxonomy)"
    )

    def check_program(self, units: Sequence[ModuleUnit]) -> Iterator[Finding]:
        emitted: Set[str] = set()
        registry_unit: Optional[ModuleUnit] = None
        for unit in units:
            if unit.relpath.endswith("repro/obs/events.py"):
                registry_unit = unit
            for _node, _method, kinds in _tracer_emits(unit):
                if kinds:
                    emitted.update(kinds)
            for _node, values in _trace_event_literals(unit):
                emitted.update(values)
        if registry_unit is None:
            # The registry module is outside the analyzed file set; the
            # deadness check would be vacuously noisy, so skip it.
            return
        for kind in sorted(EVENT_KINDS - emitted):
            yield Finding(
                rule=self.name,
                severity=self.severity,
                path=registry_unit.relpath,
                line=1,
                col=0,
                message=(
                    f"registered event kind {kind!r} has no emit site in the "
                    "analyzed tree; remove it or restore the emitter"
                ),
                context="EVENT_REGISTRY",
            )
