"""SIM-E2xx (continued) — wound-kind registry rules.

The abort taxonomy (``RunResult.aborts_by_kind``, the chaos and
adversary reports, the tracer's ``tx_abort`` attribution) is keyed by
the wound-kind strings staged at
:meth:`~repro.core.machine.FlexTMMachine.stage_wound` /
:meth:`~repro.core.machine.FlexTMMachine.force_abort` call sites.
Those strings are centralized in
:data:`repro.runtime.tmtypes.WOUND_KIND_REGISTRY`; these rules keep the
registry and the emit sites in lock-step, exactly as the tracer-event
rules (``SIM-E201``/``SIM-E202``) do for event kinds:

* ``SIM-E203`` (error) — an emit site stages a kind missing from the
  registry, or a ``force_abort`` call omits the kind entirely (which
  silently lands in the ``unattributed`` bucket — the attribution loss
  strict invariants diagnose at run time, caught here at lint time);
* ``SIM-E204`` (warning) — a registered kind whose literal appears
  nowhere else in the analyzed tree (dead taxonomy).

Kind arguments are resolved like event names: string literals,
conditional-expression literals, and single-assignment local variables
(``cst_kind = "W-W" if ... else "W-R"``).  Genuinely dynamic kinds
(``classify_conflict(...)`` results, parameter pass-through inside
``force_abort`` itself) are skipped rather than guessed — which is why
``SIM-E204`` falls back to whole-tree literal search instead of
emit-site resolution.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, ModuleUnit, Rule, register
from repro.analysis.rules_events import _resolve_values
from repro.runtime.tmtypes import WOUND_KINDS

#: Methods whose (third) argument stages a wound kind.
_STAGING_METHODS = ("stage_wound", "force_abort")
#: Positional index of the kind argument on the bound call.
_KIND_INDEX = 2

#: Module holding the registry (deadness findings anchor here, and its
#: own literals don't count as uses).
_REGISTRY_RELPATH = "repro/runtime/tmtypes.py"


def _kind_argument(call: ast.Call) -> Optional[ast.expr]:
    if len(call.args) > _KIND_INDEX:
        return call.args[_KIND_INDEX]
    for keyword in call.keywords:
        if keyword.arg == "kind":
            return keyword.value
    return None


def _staging_calls(
    unit: ModuleUnit,
) -> Iterator[Tuple[ast.Call, str, Optional[ast.expr]]]:
    """Yield ``(call, method, kind_expr_or_None)`` for each emit site."""
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        if method not in _STAGING_METHODS:
            continue
        yield node, method, _kind_argument(node)


@register
class UnregisteredWoundKindRule(Rule):
    """SIM-E203: staged wound kind missing from WOUND_KIND_REGISTRY."""

    name = "SIM-E203"
    severity = "error"
    description = (
        "stage_wound/force_abort call stages a wound kind that is not in "
        "repro.runtime.tmtypes.WOUND_KIND_REGISTRY (or stages none at all)"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node, method, argument in _staging_calls(unit):
            if argument is None:
                yield unit.finding(
                    self,
                    node,
                    f"{method}(...) without a kind argument lands in the "
                    "'unattributed' abort bucket; pass a kind from "
                    "WOUND_KIND_REGISTRY",
                )
                continue
            values = _resolve_values(unit, node, argument)
            if values is None:
                continue  # genuinely dynamic; the runtime strict check owns it
            for kind in values:
                if kind and kind not in WOUND_KINDS:
                    yield unit.finding(
                        self,
                        node,
                        f"{method}(...) stages unregistered wound kind "
                        f"{kind!r}; add it to WOUND_KIND_REGISTRY or fix "
                        "the typo",
                    )


@register
class DeadWoundKindRule(Rule):
    """SIM-E204: registered wound kind with no remaining use."""

    name = "SIM-E204"
    severity = "warning"
    scope = "program"
    description = (
        "wound kind registered in repro.runtime.tmtypes but its literal "
        "appears nowhere else in the analyzed tree (dead taxonomy)"
    )

    def check_program(self, units: Sequence[ModuleUnit]) -> Iterator[Finding]:
        used: Set[str] = set()
        registry_unit: Optional[ModuleUnit] = None
        for unit in units:
            if unit.relpath.endswith(_REGISTRY_RELPATH):
                registry_unit = unit
                continue
            for node in ast.walk(unit.tree):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    if node.value in WOUND_KINDS:
                        used.add(node.value)
        if registry_unit is None:
            # Registry module outside the analyzed file set: skip rather
            # than flag every kind (mirrors SIM-E202).
            return
        for kind in sorted(WOUND_KINDS - used):
            yield Finding(
                rule=self.name,
                severity=self.severity,
                path=registry_unit.relpath,
                line=1,
                col=0,
                message=(
                    f"registered wound kind {kind!r} is used nowhere in the "
                    "analyzed tree; remove it or restore the emitter"
                ),
                context="WOUND_KIND_REGISTRY",
            )
