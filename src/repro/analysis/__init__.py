"""simcheck — the repo-specific static-analysis engine.

An AST-based lint pass that proves, at review time, the cross-cutting
properties every dynamic layer of this reproduction stakes its
correctness on:

* **determinism** (``SIM-D0xx``) — no wall-clock, global ``random``,
  ``os.urandom``, salted builtin ``hash()`` or ordered iteration over
  ``set`` values inside ``src/repro``; everything routes through
  ``repro.sim.rng`` / ``repro.sim.clock``;
* **hook-site hygiene** (``SIM-H1xx``) — every ``tracer`` / ``chaos`` /
  ``resilience`` use in core/coherence/runtime is guarded, so opt-in
  layers can never become load-bearing;
* **tracer-event registry** (``SIM-E2xx``) — every literal event name
  reaching an emit site exists in ``repro.obs.events``, every wound
  kind staged at a ``stage_wound``/``force_abort`` site exists in
  ``repro.runtime.tmtypes.WOUND_KIND_REGISTRY``, and no registered
  kind of either registry is dead;
* **protocol exhaustiveness** (``SIM-P3xx``) — the (LineState x
  coherence-message) dispatch extracted from ``coherence/l1.py``,
  ``coherence/directory.py`` and ``core/processor.py`` matches the
  machine-readable Figure 1/3 spec in ``repro.coherence.spec``;
* **model-checked protocol safety** (``SIM-M4xx``) — an exhaustive
  explicit-state exploration of the spec tables themselves (SWMR, CST
  dual-update symmetry, lost conflict responses, TSW legality,
  quiescence) with minimal counterexamples bridged onto the real
  simulator; run through ``python -m repro.harness modelcheck`` or
  ``analyze --modelcheck``.

Run it with ``python -m repro.harness analyze``; see docs/ANALYSIS.md.
"""

from __future__ import annotations

from repro.analysis.engine import (
    AnalysisReport,
    Finding,
    ModuleUnit,
    Rule,
    all_rules,
    iter_source_files,
    run_analysis,
)

# Importing the rule modules registers every rule with the engine.
from repro.analysis import modelcheck  # noqa: F401
from repro.analysis import rules_determinism  # noqa: F401
from repro.analysis import rules_events  # noqa: F401
from repro.analysis import rules_hooks  # noqa: F401
from repro.analysis import rules_protocol  # noqa: F401
from repro.analysis import rules_wounds  # noqa: F401

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleUnit",
    "Rule",
    "all_rules",
    "iter_source_files",
    "run_analysis",
]
