"""The simcheck rule engine: findings, registry, module units, runner.

Design notes
------------
Rules come in two granularities:

* **module rules** see one :class:`ModuleUnit` at a time (a parsed
  source file plus cheap indexes) and yield findings for it;
* **program rules** run once over the whole file set — the event-
  registry deadness check and the protocol-exhaustiveness diff need a
  global view.

Findings carry a *fingerprint* that is stable under unrelated edits
(rule id + path + enclosing scope + message, but no line number), which
is what the committed baseline file keys on: a suppressed finding stays
suppressed when code above it moves, and disappears from the baseline
the moment it is fixed (``--update-baseline`` prunes stale entries).

Inline suppressions are also honoured: a ``# simcheck: ignore[RULE]``
comment on the offending line (or the line above) silences that rule
there, for the rare case where a violation is intentional and local.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
)

_SUPPRESS_RE = re.compile(r"#\s*simcheck:\s*ignore\[([A-Za-z0-9_,\-\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str  # "error" | "warning"
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    context: str = ""  # enclosing class/function qualname

    def fingerprint(self) -> str:
        """Location-insensitive identity used by the baseline file."""
        text = "|".join((self.rule, self.path, self.context, self.message))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
            "fingerprint": self.fingerprint(),
        }


class ModuleUnit:
    """A parsed source file plus the indexes rules keep re-deriving."""

    def __init__(self, root: Path, path: Path, source: str):
        self.root = root
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._suppressed: Dict[int, List[str]] = {}
        self._standalone_comment: Dict[int, bool] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = [part.strip() for part in match.group(1).split(",")]
                self._suppressed[number] = [part for part in rules if part]
                self._standalone_comment[number] = text.lstrip().startswith("#")

    # -- navigation ----------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def qualname(self, node: ast.AST) -> str:
        """Dotted class/function scope containing ``node``."""
        names: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.append(current.name)
            current = self._parents.get(current)
        return ".".join(reversed(names))

    def functions(self) -> Iterator[ast.FunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.FunctionDef):
                yield node

    # -- suppression ---------------------------------------------------------

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Trailing comments cover their own line; a standalone
        ``# simcheck: ignore[...]`` comment line covers the next line."""
        for probe in (line, line - 1):
            if probe != line and not self._standalone_comment.get(probe, False):
                continue
            rules = self._suppressed.get(probe)
            if rules and (rule in rules or "*" in rules):
                return True
        return False

    # -- finding helper ------------------------------------------------------

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, severity: Optional[str] = None
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.name,
            severity=severity or rule.severity,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            context=self.qualname(node),
        )


class Rule:
    """Base class; subclasses register via :func:`register`."""

    #: Stable rule id, e.g. ``SIM-D001``.
    name: str = ""
    #: Default severity for findings ("error" gates the build).
    severity: str = "error"
    #: One-line description (surfaced in --list-rules and SARIF).
    description: str = ""
    #: "module" or "program".
    scope: str = "module"

    def applies_to(self, unit: ModuleUnit) -> bool:
        """Module rules may restrict themselves to a path subset."""
        return True

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        """Module-scope entry point."""
        return iter(())

    def check_program(self, units: Sequence[ModuleUnit]) -> Iterator[Finding]:
        """Program-scope entry point."""
        return iter(())


_REGISTRY: Dict[str, Rule] = {}

RuleT = TypeVar("RuleT", bound=Rule)


def register(rule_class: Type[RuleT]) -> Type[RuleT]:
    """Class decorator adding a rule instance to the global registry."""
    instance = rule_class()
    if not instance.name:
        raise ValueError(f"rule {rule_class!r} has no name")
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.name}")
    _REGISTRY[instance.name] = instance
    return rule_class


def all_rules() -> Dict[str, Rule]:
    """Registered rules by id (importing repro.analysis populates this)."""
    return dict(_REGISTRY)


# --------------------------------------------------------------------------- #
# Shared AST helpers used by several rule modules.


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def literal_str(node: ast.AST) -> Optional[str]:
    """The value of a string constant, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def literal_str_values(node: ast.AST) -> Optional[List[str]]:
    """All values a literal-ish string expression can take.

    Resolves constants and conditional expressions whose arms are
    literal-ish (``"read" if cond else "write"``).  Returns ``None``
    when any arm is unresolvable.
    """
    value = literal_str(node)
    if value is not None:
        return [value]
    if isinstance(node, ast.IfExp):
        body = literal_str_values(node.body)
        orelse = literal_str_values(node.orelse)
        if body is not None and orelse is not None:
            return body + orelse
    return None


# --------------------------------------------------------------------------- #
# Running the analysis.

#: Paths (relative, posix) never analyzed: generated or non-source.
_EXCLUDED_PARTS = {"__pycache__"}


def iter_source_files(root: Path, targets: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for target in targets:
        path = target if target.is_absolute() else root / target
        if path.is_dir():
            out.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _EXCLUDED_PARTS.intersection(candidate.parts)
            )
        elif path.suffix == ".py":
            out.append(path)
    # De-duplicate while preserving the sorted order.
    seen = set()
    unique: List[Path] = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by the committed baseline.
    baselined: List[Finding] = field(default_factory=list)
    #: Findings silenced by inline ``simcheck: ignore`` comments.
    inline_suppressed: List[Finding] = field(default_factory=list)
    #: Baseline fingerprints that matched nothing (stale suppressions).
    stale_baseline: List[str] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.severity == "warning"]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0


def run_analysis(
    root: Path,
    targets: Sequence[Path],
    rules: Optional[Iterable[Rule]] = None,
    baseline_fingerprints: Optional[Dict[str, int]] = None,
) -> AnalysisReport:
    """Parse ``targets`` under ``root`` and run every rule.

    ``baseline_fingerprints`` maps fingerprint -> allowed count; up to
    that many matching findings are moved to ``report.baselined``.
    """
    selected = list(rules) if rules is not None else list(_REGISTRY.values())
    units: List[ModuleUnit] = []
    report = AnalysisReport()
    for path in iter_source_files(root, targets):
        source = path.read_text(encoding="utf-8")
        units.append(ModuleUnit(root, path, source))
    report.files_analyzed = len(units)

    raw: List[Tuple[Optional[ModuleUnit], Finding]] = []
    by_path = {unit.relpath: unit for unit in units}
    for rule in selected:
        if rule.scope == "module":
            for unit in units:
                if rule.applies_to(unit):
                    for finding in rule.check(unit):
                        raw.append((unit, finding))
        else:
            for finding in rule.check_program(units):
                raw.append((by_path.get(finding.path), finding))

    raw.sort(key=lambda pair: (pair[1].path, pair[1].line, pair[1].col, pair[1].rule))

    remaining = dict(baseline_fingerprints or {})
    for unit, finding in raw:
        if unit is not None and unit.is_suppressed(finding.rule, finding.line):
            report.inline_suppressed.append(finding)
            continue
        fingerprint = finding.fingerprint()
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            report.baselined.append(finding)
            continue
        report.findings.append(finding)
    report.stale_baseline = sorted(
        fingerprint for fingerprint, count in remaining.items() if count > 0
    )
    return report
