"""Baseline (suppression) file handling for simcheck.

The baseline is a committed JSON file at the repo root
(``simcheck-baseline.json``) listing findings that are acknowledged but
not yet fixed.  Each entry is keyed by the finding's location-
insensitive fingerprint and carries enough human-readable context
(rule, path, message) that reviewers can audit what is being waved
through.  ``count`` allows several identical findings (same
fingerprint) in one scope.

The file is intentionally boring: plain JSON, sorted keys, trailing
newline — so diffs are minimal and merge conflicts are rare.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.engine import Finding

BASELINE_VERSION = 1

#: Default baseline filename, resolved against the analysis root.
DEFAULT_BASELINE = "simcheck-baseline.json"


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> allowed count.  Missing file means empty baseline."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline format (expected version "
            f"{BASELINE_VERSION})"
        )
    suppressions = data.get("suppressions", {})
    counts: Dict[str, int] = {}
    for fingerprint, entry in suppressions.items():
        if isinstance(entry, dict):
            counts[fingerprint] = int(entry.get("count", 1))
        else:
            counts[fingerprint] = 1
    return counts


def write_baseline(path: Path, findings: List[Finding]) -> Dict[str, int]:
    """Serialize ``findings`` as the new baseline; returns the counts."""
    suppressions: Dict[str, Dict[str, object]] = {}
    for finding in findings:
        fingerprint = finding.fingerprint()
        entry = suppressions.setdefault(
            fingerprint,
            {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "count": 0,
            },
        )
        entry["count"] = int(entry["count"]) + 1
    payload = {
        "version": BASELINE_VERSION,
        "suppressions": {key: suppressions[key] for key in sorted(suppressions)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return {key: int(value["count"]) for key, value in suppressions.items()}


def prune_baseline(path: Path, findings: List[Finding]) -> Tuple[int, int]:
    """Drop baseline entries no current finding matches.

    Keeps every suppression whose fingerprint still matches at least
    one of ``findings`` (entries and counts untouched, so an audit
    trail survives), deletes the rest, and rewrites the file only when
    something was pruned.  Returns ``(kept, pruned)`` entry counts; a
    missing baseline file prunes nothing.
    """
    if not path.exists():
        return (0, 0)
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline format (expected version "
            f"{BASELINE_VERSION})"
        )
    live = {finding.fingerprint() for finding in findings}
    suppressions = data.get("suppressions", {})
    kept = {
        fingerprint: entry
        for fingerprint, entry in suppressions.items()
        if fingerprint in live
    }
    pruned = len(suppressions) - len(kept)
    if pruned:
        payload = {
            "version": BASELINE_VERSION,
            "suppressions": {key: kept[key] for key in sorted(kept)},
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return (len(kept), pruned)
