"""SIM-P3xx — TMESI protocol exhaustiveness rules.

These rules extract the actual (state x coherence-message) dispatch
from the controllers and diff it against the machine-readable Figure
1/3 spec in :mod:`repro.coherence.spec`:

* ``SIM-P301`` — local access dispatch (``L1Controller._try_hit`` /
  ``_upgrade`` / ``_miss``) covers every (AccessKind x LineState) pair
  with exactly the outcome the spec mandates; unhandled pairs and
  pairs that raise where the spec expects handling are reported, as
  are dead transitions (code handling a pair the spec marks illegal).
* ``SIM-P302`` — responder-side next state (``handle_forwarded``)
  matches the spec for every (RequestType x LineState) pair.
* ``SIM-P303`` — the signature response table and responder-side CST
  updates (``FlexTMProcessor.classify_remote``) match Figure 1.
* ``SIM-P304`` — requester-side CST updates
  (``note_request_conflicts``) mirror the responder's (the CST
  dual-update pairing of Section 3.4).
* ``SIM-P305`` — directory grants (``_grant_and_record``) match the
  spec's grant rules.
* ``SIM-P306`` — the flash commit/abort transforms
  (``LineState.after_commit`` / ``after_abort``) match Figure 3.

Extraction works by *concrete enumeration*: the protocol domains are
tiny (at most 24 pairs), so each function is abstractly executed once
per concrete pair, with unrecognized conditions explored both ways.
That keeps the analysis exact on the conditions that matter
(``state is LineState.M``, ``kind in (...)``, ``state.readable`` — the
last expanded through the spec's predicate tables, so a predicate edit
shows up as a protocol diff too).
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.engine import Finding, ModuleUnit, Rule, dotted_name, register
from repro.coherence import spec

# --------------------------------------------------------------------------- #
# Enum vocabulary shared by every extractor.

ENUM_MEMBERS: Dict[str, Dict[str, str]] = {
    "AccessKind": {"LOAD": "Load", "STORE": "Store", "TLOAD": "TLoad", "TSTORE": "TStore"},
    "LineState": {name: name for name in spec.STATES},
    "RequestType": {name: name for name in spec.REQUESTS},
    "ResponseKind": {
        "SHARED": "Shared",
        "INVALIDATED": "Invalidated",
        "THREATENED": "Threatened",
        "EXPOSED_READ": "Exposed-Read",
    },
}


def _enum_value(node: ast.expr) -> Optional[str]:
    """``AccessKind.TSTORE`` -> ``"TStore"`` (None for non-enum refs)."""
    name = dotted_name(node)
    if name is None or "." not in name:
        return None
    enum_name, _, member = name.rpartition(".")
    members = ENUM_MEMBERS.get(enum_name.rsplit(".", 1)[-1])
    if members is None:
        return None
    return members.get(member)


Env = Dict[str, object]
PathEnd = Tuple[str, Optional[str], Env, FrozenSet[str]]


class _Simulator:
    """Abstract executor for one protocol function and one concrete env.

    Conditions evaluate through ``atom_eval`` (three-valued: True /
    False / None=unknown, unknown explores both arms).  ``on_return``
    labels each return path; ``effect_of`` collects side-effect tags
    from expression statements; ``call_assigns`` maps call targets to
    env mutations (``self._drop_line`` invalidating the modeled line).
    """

    def __init__(
        self,
        atom_eval: Callable[[ast.expr, Env], Optional[bool]],
        on_return: Callable[[Optional[ast.expr], Env], Optional[str]],
        effect_of: Optional[Callable[[ast.expr, Env], FrozenSet[str]]] = None,
        call_assigns: Optional[Mapping[str, Tuple[str, object]]] = None,
        state_assign_targets: Optional[Mapping[str, str]] = None,
        preserve_vars: FrozenSet[str] = frozenset(),
    ):
        self._atom_eval = atom_eval
        self._on_return = on_return
        self._effect_of = effect_of or (lambda node, env: frozenset())
        self._call_assigns = dict(call_assigns or {})
        self._state_assign_targets = dict(state_assign_targets or {})
        self._preserve = preserve_vars

    # -- public entry --------------------------------------------------------

    def run(self, body: Sequence[ast.stmt], env: Env) -> List[PathEnd]:
        """Every path end for ``body`` starting from ``env``."""
        out: List[PathEnd] = []
        for fall_env, fall_effects in self._exec_block(list(body), dict(env), frozenset(), out):
            out.append(("fall", None, fall_env, fall_effects))
        return out

    # -- statement execution -------------------------------------------------

    def _exec_block(
        self,
        stmts: List[ast.stmt],
        env: Env,
        effects: FrozenSet[str],
        out: List[PathEnd],
    ) -> List[Tuple[Env, FrozenSet[str]]]:
        states: List[Tuple[Env, FrozenSet[str]]] = [(env, effects)]
        for stmt in stmts:
            advanced: List[Tuple[Env, FrozenSet[str]]] = []
            for env_i, effects_i in states:
                advanced.extend(self._exec_stmt(stmt, env_i, effects_i, out))
            states = advanced
            if not states:
                break
        return states

    def _exec_stmt(
        self, stmt: ast.stmt, env: Env, effects: FrozenSet[str], out: List[PathEnd]
    ) -> List[Tuple[Env, FrozenSet[str]]]:
        if isinstance(stmt, ast.Return):
            out.append(("return", self._on_return(stmt.value, env), dict(env), effects))
            return []
        if isinstance(stmt, ast.Raise):
            out.append(("raise", None, dict(env), effects))
            return []
        if isinstance(stmt, ast.If):
            verdict = self._eval(stmt.test, env)
            results: List[Tuple[Env, FrozenSet[str]]] = []
            if verdict is not False:
                results.extend(self._exec_block(list(stmt.body), dict(env), effects, out))
            if verdict is not True:
                results.extend(self._exec_block(list(stmt.orelse), dict(env), effects, out))
            return results
        if isinstance(stmt, (ast.For, ast.While)):
            # Zero iterations, plus one symbolic pass through the body
            # (enough to observe every per-iteration effect).
            body = list(stmt.body)
            results = self._exec_block(body, dict(env), effects, out)
            results.append((dict(env), effects))
            return results
        if isinstance(stmt, ast.Expr):
            env, effects = self._apply_call_effects(stmt.value, env, effects)
            return [(env, effects)]
        if isinstance(stmt, ast.Assign):
            return [self._apply_assign(stmt, env, effects)]
        return [(env, effects)]

    def _apply_call_effects(
        self, value: ast.expr, env: Env, effects: FrozenSet[str]
    ) -> Tuple[Env, FrozenSet[str]]:
        if isinstance(value, ast.Call):
            target = dotted_name(value.func)
            if target is not None:
                final = target.rsplit(".", 1)[-1]
                for pattern, (key, new) in self._call_assigns.items():
                    if final == pattern or target == pattern:
                        env = dict(env)
                        env[key] = new
            effects = effects | self._effect_of(value, env)
        return env, effects

    def _apply_assign(
        self, stmt: ast.Assign, env: Env, effects: FrozenSet[str]
    ) -> Tuple[Env, FrozenSet[str]]:
        for target in stmt.targets:
            name = dotted_name(target)
            if name is None:
                continue
            if name in self._state_assign_targets:
                value = _enum_value(stmt.value)
                if value is not None:
                    env = dict(env)
                    env[self._state_assign_targets[name]] = value
            elif name in self._preserve:
                continue  # keep the seeded model value
        return env, effects

    # -- condition evaluation ------------------------------------------------

    def _eval(self, node: ast.expr, env: Env) -> Optional[bool]:
        if isinstance(node, ast.BoolOp):
            verdicts = [self._eval(value, env) for value in node.values]
            if isinstance(node.op, ast.And):
                if any(verdict is False for verdict in verdicts):
                    return False
                if all(verdict is True for verdict in verdicts):
                    return True
                return None
            if any(verdict is True for verdict in verdicts):
                return True
            if all(verdict is False for verdict in verdicts):
                return False
            return None
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            verdict = self._eval(node.operand, env)
            return None if verdict is None else not verdict
        return self._atom_eval(node, env)


# --------------------------------------------------------------------------- #
# Atom evaluators.


def make_atom_eval(
    var_map: Mapping[str, str],
    predicate_maps: Mapping[str, Mapping[str, FrozenSet[str]]],
    bool_vars: Mapping[str, str] = {},
    call_atom: Optional[Callable[[ast.Call, Env], Optional[bool]]] = None,
    none_vars: Mapping[str, Tuple[str, str]] = {},
) -> Callable[[ast.expr, Env], Optional[bool]]:
    """Build an atom evaluator.

    ``var_map``: dotted source text -> env key holding an enum value.
    ``predicate_maps``: env key -> (property name -> satisfying set).
    ``bool_vars``: dotted source text -> env key holding a bool.
    ``call_atom``: hook for call-shaped atoms (signature membership).
    ``none_vars``: dotted text -> (env key, sentinel) for ``X is None``
    tests: the test is True exactly when env[key] == sentinel (used to
    model "line is None" as state I).
    """

    def atom_eval(node: ast.expr, env: Env) -> Optional[bool]:
        if isinstance(node, ast.Call) and call_atom is not None:
            return call_atom(node, env)
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left, op, right = node.left, node.ops[0], node.comparators[0]
            left_name = dotted_name(left)
            # X is None / X is not None with a modeled sentinel.
            if (
                isinstance(right, ast.Constant)
                and right.value is None
                and left_name in none_vars
                and isinstance(op, (ast.Is, ast.IsNot))
            ):
                key, sentinel = none_vars[left_name]
                is_none = env[key] == sentinel
                return is_none if isinstance(op, ast.Is) else not is_none
            if left_name in var_map:
                key = var_map[left_name]
                current = env[key]
                if isinstance(op, (ast.Is, ast.Eq, ast.IsNot, ast.NotEq)):
                    expected = _enum_value(right)
                    if expected is None:
                        return None
                    same = current == expected
                    return same if isinstance(op, (ast.Is, ast.Eq)) else not same
                if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                    right, (ast.Tuple, ast.List, ast.Set)
                ):
                    values = [_enum_value(element) for element in right.elts]
                    if any(value is None for value in values):
                        return None
                    member = current in values
                    return member if isinstance(op, ast.In) else not member
            return None
        name = dotted_name(node)
        if name is not None:
            if name in bool_vars:
                value = env[bool_vars[name]]
                return value if isinstance(value, bool) else None
            if "." in name:
                base, _, attribute = name.rpartition(".")
                if base in var_map:
                    key = var_map[base]
                    predicates = predicate_maps.get(key, {})
                    satisfying = predicates.get(attribute)
                    if satisfying is not None:
                        return env[key] in satisfying
        return None

    return atom_eval


def _cst_effects(node: ast.expr, env: Env) -> FrozenSet[str]:
    """Tag ``self.csts.<table>.set(...)`` calls."""
    if isinstance(node, ast.Call):
        target = dotted_name(node.func)
        if target is not None:
            parts = target.split(".")
            if len(parts) >= 3 and parts[-1] == "set" and parts[-3] == "csts":
                return frozenset({f"cst:{parts[-2]}"})
    return frozenset()


# --------------------------------------------------------------------------- #
# AST lookup helpers.


def find_function(
    unit: ModuleUnit, class_name: Optional[str], function_name: str
) -> Optional[ast.FunctionDef]:
    scope: ast.AST = unit.tree
    if class_name is not None:
        scope = next(
            (
                node
                for node in ast.walk(unit.tree)
                if isinstance(node, ast.ClassDef) and node.name == class_name
            ),
            unit.tree,
        )
    for node in ast.walk(scope):
        if isinstance(node, ast.FunctionDef) and node.name == function_name:
            return node
    return None


def _missing(unit: ModuleUnit, rule: Rule, what: str) -> Finding:
    return Finding(
        rule=rule.name,
        severity="error",
        path=unit.relpath,
        line=1,
        col=0,
        message=f"protocol extraction failed: {what} not found — the "
        "spec cross-check cannot run",
        context="",
    )


class _FileRule(Rule):
    """A module rule bound to one specific source file."""

    target_file = ""

    def applies_to(self, unit: ModuleUnit) -> bool:
        return unit.relpath.endswith(self.target_file)


# --------------------------------------------------------------------------- #
# SIM-P301: local dispatch exhaustiveness.

_STATE_PREDICATES = {
    key: frozenset(value) for key, value in spec.STATE_PREDICATES.items()
}
_ACCESS_PREDICATES = {
    key: frozenset(value) for key, value in spec.ACCESS_PREDICATES.items()
}
_REQUEST_PREDICATES = {
    key: frozenset(value) for key, value in spec.REQUEST_PREDICATES.items()
}


@register
class LocalDispatchRule(_FileRule):
    """Diff L1 local access handling against spec.LOCAL_DISPATCH."""

    name = "SIM-P301"
    severity = "error"
    description = (
        "L1 local dispatch (_try_hit/_upgrade/_miss) must handle every "
        "(access x state) pair exactly as spec.LOCAL_DISPATCH mandates"
    )
    target_file = "repro/coherence/l1.py"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        try_hit = find_function(unit, "L1Controller", "_try_hit")
        upgrade = find_function(unit, "L1Controller", "_upgrade")
        miss = find_function(unit, "L1Controller", "_miss")
        for function, label in ((try_hit, "_try_hit"), (upgrade, "_upgrade"), (miss, "_miss")):
            if function is None:
                yield _missing(unit, self, f"L1Controller.{label}")
                return
        assert try_hit is not None and upgrade is not None and miss is not None

        atom_eval = make_atom_eval(
            var_map={"kind": "kind", "state": "state", "line.state": "state"},
            predicate_maps={"kind": _ACCESS_PREDICATES, "state": _STATE_PREDICATES},
        )

        def classify_return(value: Optional[ast.expr], env: Env) -> Optional[str]:
            if value is None or (isinstance(value, ast.Constant) and value.value is None):
                return "fallthrough"
            if isinstance(value, ast.Call):
                target = dotted_name(value.func) or ""
                if target.endswith("_request") or target.endswith("_miss"):
                    return "request"
            return "local"

        simulator = _Simulator(atom_eval, classify_return)

        outcomes: Dict[Tuple[str, str], Set[str]] = {}
        for access in spec.ACCESSES:
            for state in spec.STATES:
                if state == "I":
                    continue
                observed: Set[str] = set()
                env: Env = {"kind": access, "state": state}
                upgrade_feeds: bool = False
                for status, label, _env, _effects in simulator.run(try_hit.body, env):
                    if status == "return" and label not in (None, "fallthrough"):
                        observed.add(label)
                    elif status == "raise":
                        observed.add("error")
                    else:  # fall or explicit `return None`
                        upgrade_feeds = True
                if upgrade_feeds:
                    for status, label, _env, _effects in simulator.run(upgrade.body, env):
                        if status == "return" and label not in (None, "fallthrough"):
                            observed.add(label)
                        elif status == "raise":
                            observed.add("error")
                        else:
                            observed.add("unhandled")
                outcomes[(access, state)] = observed

        # The miss path covers state I through the request-type table.
        miss_map = self._miss_request_map(miss)
        for access in spec.ACCESSES:
            if miss_map is None:
                outcomes[(access, "I")] = {"unextracted"}
            elif access in miss_map:
                outcomes[(access, "I")] = {"request"}
            else:
                outcomes[(access, "I")] = {"unhandled"}

        for access in spec.ACCESSES:
            for state in spec.STATES:
                expected = spec.LOCAL_DISPATCH[(access, state)]
                observed = outcomes[(access, state)]
                if observed == {expected}:
                    continue
                if "unhandled" in observed or not observed:
                    yield unit.finding(
                        self,
                        try_hit,
                        f"unhandled (state, access) pair: ({state}, {access}) "
                        f"can fall through the dispatch; spec expects "
                        f"'{expected}'",
                    )
                elif expected == "error" and observed != {"error"}:
                    yield unit.finding(
                        self,
                        try_hit,
                        f"dead transition: code handles ({state}, {access}) "
                        f"as {sorted(observed)} but the spec marks it illegal",
                    )
                else:
                    yield unit.finding(
                        self,
                        try_hit,
                        f"dispatch mismatch for ({state}, {access}): code "
                        f"yields {sorted(observed)}, spec expects '{expected}'",
                    )

        if miss_map is not None:
            for access, request in sorted(miss_map.items()):
                expected_request = spec.MISS_REQUESTS.get(access)
                if request != expected_request:
                    yield unit.finding(
                        self,
                        miss,
                        f"miss for {access} issues {request}; spec expects "
                        f"{expected_request}",
                    )

    @staticmethod
    def _miss_request_map(miss: ast.FunctionDef) -> Optional[Dict[str, str]]:
        """Extract the AccessKind -> RequestType dict literal in _miss."""
        for node in ast.walk(miss):
            if isinstance(node, ast.Dict):
                mapping: Dict[str, str] = {}
                for key, value in zip(node.keys, node.values):
                    if key is None:
                        return None
                    access = _enum_value(key)
                    request = _enum_value(value)
                    if access is None or request is None:
                        return None
                    mapping[access] = request
                return mapping
        return None


# --------------------------------------------------------------------------- #
# SIM-P302: responder-side next state.


@register
class RemoteNextStateRule(_FileRule):
    """Diff handle_forwarded's state transitions against the spec."""

    name = "SIM-P302"
    severity = "error"
    description = (
        "responder-side next state in handle_forwarded must match "
        "spec.REMOTE_NEXT_STATE for every (request x state) pair"
    )
    target_file = "repro/coherence/l1.py"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        function = find_function(unit, "L1Controller", "handle_forwarded")
        if function is None:
            yield _missing(unit, self, "L1Controller.handle_forwarded")
            return

        atom_eval = make_atom_eval(
            var_map={"req_type": "req", "line.state": "state", "state": "state"},
            predicate_maps={"req": _REQUEST_PREDICATES, "state": _STATE_PREDICATES},
            none_vars={"line": ("state", "I")},
        )

        def classify_return(value: Optional[ast.expr], env: Env) -> Optional[str]:
            return str(env["state"])

        simulator = _Simulator(
            atom_eval,
            classify_return,
            call_assigns={"_drop_line": ("state", "I")},
            state_assign_targets={"line.state": "state"},
        )

        for request in spec.REQUESTS:
            for state in spec.STATES:
                env: Env = {"req": request, "state": state}
                finals: Set[str] = set()
                raised = False
                for status, label, end_env, _effects in simulator.run(function.body, env):
                    if status == "raise":
                        raised = True
                    elif status == "return" and label is not None:
                        finals.add(label)
                    else:
                        finals.add(str(end_env["state"]))
                expected = spec.REMOTE_NEXT_STATE[(request, state)]
                if raised:
                    yield unit.finding(
                        self,
                        function,
                        f"handle_forwarded can raise for ({request}, {state}); "
                        "the spec defines a transition for every pair",
                    )
                if finals != {expected}:
                    yield unit.finding(
                        self,
                        function,
                        f"responder next-state mismatch for ({request}, "
                        f"{state}): code reaches {sorted(finals)}, spec "
                        f"expects {expected}",
                    )


# --------------------------------------------------------------------------- #
# SIM-P303 / SIM-P304: signature responses and CST dual updates.


def _sig_member_atom(node: ast.Call, env: Env) -> Optional[bool]:
    """Model ``self._sig_member("wsig"|"rsig", ...)`` against env["sig"]."""
    target = dotted_name(node.func) or ""
    if not target.endswith("_sig_member"):
        return None
    if not node.args or not isinstance(node.args[0], ast.Constant):
        return None
    which = node.args[0].value
    if which == "wsig":
        return env["sig"] == "wsig"
    if which == "rsig":
        # Reached only after the wsig test failed, so an rsig probe is
        # true exactly for the rsig-only category.
        return env["sig"] == "rsig_only"
    return None


@register
class ResponderClassificationRule(_FileRule):
    """classify_remote vs spec.RESPONSE_TABLE + spec.RESPONDER_CST."""

    name = "SIM-P303"
    severity = "error"
    description = (
        "responder signature classification must match Figure 1's "
        "response table and set exactly the CSTs the spec names"
    )
    target_file = "repro/core/processor.py"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        function = find_function(unit, "FlexTMProcessor", "classify_remote")
        if function is None:
            yield _missing(unit, self, "FlexTMProcessor.classify_remote")
            return

        atom_eval = make_atom_eval(
            var_map={"req_type": "req"},
            predicate_maps={"req": _REQUEST_PREDICATES},
            call_atom=_sig_member_atom,
        )

        def classify_return(value: Optional[ast.expr], env: Env) -> Optional[str]:
            if value is None or (isinstance(value, ast.Constant) and value.value is None):
                return "none"
            resolved = _enum_value(value)
            return resolved if resolved is not None else "unknown"

        simulator = _Simulator(atom_eval, classify_return, effect_of=_cst_effects)

        for request in spec.REQUESTS:
            for category in spec.SIGNATURE_CATEGORIES:
                env: Env = {"req": request, "sig": category}
                ends = simulator.run(function.body, env)
                responses = {label for status, label, _e, _f in ends if status == "return"}
                effects: Set[str] = set()
                for status, _label, _e, path_effects in ends:
                    effects |= set(path_effects)
                expected_response = spec.RESPONSE_TABLE.get((request, category), "none")
                if responses != {expected_response}:
                    yield unit.finding(
                        self,
                        function,
                        f"response mismatch for ({request}, {category}): code "
                        f"returns {sorted(responses)}, Figure 1 says "
                        f"{expected_response}",
                    )
                expected_cst = spec.RESPONDER_CST.get((request, category))
                expected_effects = {f"cst:{expected_cst}"} if expected_cst else set()
                if effects != expected_effects:
                    yield unit.finding(
                        self,
                        function,
                        f"responder CST mismatch for ({request}, {category}): "
                        f"code sets {sorted(effects) or ['nothing']}, spec "
                        f"requires {sorted(expected_effects) or ['nothing']}",
                    )


@register
class RequesterCstRule(_FileRule):
    """note_request_conflicts vs spec.REQUESTER_CST (dual-update mirror)."""

    name = "SIM-P304"
    severity = "error"
    description = (
        "requester-side CST updates must mirror the responder's per the "
        "spec's dual-update pairing"
    )
    target_file = "repro/core/processor.py"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        function = find_function(unit, "FlexTMProcessor", "note_request_conflicts")
        if function is None:
            yield _missing(unit, self, "FlexTMProcessor.note_request_conflicts")
            return

        atom_eval = make_atom_eval(
            var_map={"kind": "kind", "response": "response"},
            predicate_maps={"kind": _ACCESS_PREDICATES},
        )
        simulator = _Simulator(atom_eval, lambda value, env: None, effect_of=_cst_effects)

        for access in spec.ACCESSES:
            for response in spec.RESPONSES:
                env: Env = {"kind": access, "response": response}
                effects: Set[str] = set()
                for _status, _label, _e, path_effects in simulator.run(function.body, env):
                    effects |= set(path_effects)
                expected_cst = spec.REQUESTER_CST.get((access, response))
                expected_effects = {f"cst:{expected_cst}"} if expected_cst else set()
                if effects != expected_effects:
                    yield unit.finding(
                        self,
                        function,
                        f"requester CST mismatch for ({access}, {response}): "
                        f"code sets {sorted(effects) or ['nothing']}, spec "
                        f"requires {sorted(expected_effects) or ['nothing']}",
                    )


# --------------------------------------------------------------------------- #
# SIM-P305: directory grants.


@register
class DirectoryGrantRule(_FileRule):
    """_grant_and_record vs spec grant rules."""

    name = "SIM-P305"
    severity = "error"
    description = (
        "directory grants must match the spec: GETS->TI (threatened) / "
        "E (no holders) / S, GETX->M, TGETX->TMI"
    )
    target_file = "repro/coherence/directory.py"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        function = find_function(unit, "Directory", "_grant_and_record")
        if function is None:
            yield _missing(unit, self, "Directory._grant_and_record")
            return

        atom_eval = make_atom_eval(
            var_map={"req_type": "req"},
            predicate_maps={"req": _REQUEST_PREDICATES},
            bool_vars={"threatened": "threatened", "entry.empty": "empty"},
        )

        def classify_return(value: Optional[ast.expr], env: Env) -> Optional[str]:
            resolved = _enum_value(value) if value is not None else None
            return resolved if resolved is not None else "unknown"

        simulator = _Simulator(
            atom_eval, classify_return, preserve_vars=frozenset({"threatened"})
        )

        for request in spec.REQUESTS:
            for threatened in (True, False):
                for empty in (True, False):
                    env: Env = {"req": request, "threatened": threatened, "empty": empty}
                    grants: Set[str] = set()
                    raised = False
                    for status, label, _e, _f in simulator.run(function.body, env):
                        if status == "return" and label is not None:
                            grants.add(label)
                        elif status == "raise":
                            raised = True
                    if request == "GETS":
                        expected = "TI" if threatened else ("E" if empty else "S")
                    elif request == "GETX":
                        expected = "M"
                    else:
                        expected = "TMI"
                    if raised:
                        yield unit.finding(
                            self,
                            function,
                            f"_grant_and_record can raise for {request} "
                            f"(threatened={threatened}, empty={empty})",
                        )
                    if grants != {expected}:
                        yield unit.finding(
                            self,
                            function,
                            f"grant mismatch for {request} (threatened="
                            f"{threatened}, empty={empty}): code grants "
                            f"{sorted(grants)}, spec expects {expected}",
                        )
                    for grant in sorted(grants):
                        if grant != "unknown" and grant not in spec.GRANTS[request]:
                            yield unit.finding(
                                self,
                                function,
                                f"{request} can grant {grant}, which is outside "
                                f"spec.GRANTS[{request}]",
                            )


# --------------------------------------------------------------------------- #
# SIM-P306: flash commit/abort transforms.


@register
class FlashTransformRule(_FileRule):
    """LineState.after_commit/after_abort vs spec transforms."""

    name = "SIM-P306"
    severity = "error"
    description = (
        "flash commit/abort transforms must match Figure 3: TMI->M/I, "
        "TI->I, MESI states unchanged"
    )
    target_file = "repro/coherence/states.py"

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for method, table in (
            ("after_commit", spec.COMMIT_TRANSFORM),
            ("after_abort", spec.ABORT_TRANSFORM),
        ):
            function = find_function(unit, "LineState", method)
            if function is None:
                yield _missing(unit, self, f"LineState.{method}")
                continue

            atom_eval = make_atom_eval(
                var_map={"self": "state"},
                predicate_maps={"state": _STATE_PREDICATES},
            )

            def classify_return(value: Optional[ast.expr], env: Env) -> Optional[str]:
                if value is not None:
                    resolved = _enum_value(value)
                    if resolved is not None:
                        return resolved
                    if dotted_name(value) == "self":
                        return str(env["state"])
                return "unknown"

            simulator = _Simulator(atom_eval, classify_return)
            for state in spec.STATES:
                finals = {
                    label
                    for status, label, _e, _f in simulator.run(
                        function.body, {"state": state}
                    )
                    if status == "return" and label is not None
                }
                expected = table[state]
                if finals != {expected}:
                    yield unit.finding(
                        self,
                        function,
                        f"{method}({state}) yields {sorted(finals)}; Figure 3 "
                        f"requires {expected}",
                    )
