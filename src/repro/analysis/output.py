"""Renderers for simcheck reports: text, JSON, and SARIF 2.1.0.

SARIF output carries the full rule catalog in the tool descriptor so
code-scanning UIs can show rule help without a side channel; findings
map 1:1 to ``results`` with physical locations.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.engine import AnalysisReport, Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: AnalysisReport, verbose: bool = False) -> str:
    """Human-oriented summary, one line per finding."""
    lines: List[str] = []
    for finding in report.findings:
        location = f"{finding.path}:{finding.line}:{finding.col + 1}"
        scope = f" [{finding.context}]" if finding.context else ""
        lines.append(
            f"{location}: {finding.severity}: {finding.rule}: "
            f"{finding.message}{scope}"
        )
    if verbose:
        for finding in report.baselined:
            lines.append(
                f"{finding.path}:{finding.line}: baselined: {finding.rule}: "
                f"{finding.message}"
            )
        for finding in report.inline_suppressed:
            lines.append(
                f"{finding.path}:{finding.line}: suppressed: {finding.rule}: "
                f"{finding.message}"
            )
    for fingerprint in report.stale_baseline:
        lines.append(
            f"simcheck-baseline.json: stale suppression {fingerprint} matched "
            "nothing — run --update-baseline to prune it"
        )
    summary = (
        f"simcheck: {len(report.errors)} error(s), {len(report.warnings)} "
        f"warning(s), {len(report.baselined)} baselined, "
        f"{len(report.inline_suppressed)} inline-suppressed across "
        f"{report.files_analyzed} file(s)"
    )
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(report: AnalysisReport) -> str:
    """Machine-oriented JSON (stable key order)."""
    payload: Dict[str, object] = {
        "findings": [finding.to_dict() for finding in report.findings],
        "baselined": [finding.to_dict() for finding in report.baselined],
        "inline_suppressed": [
            finding.to_dict() for finding in report.inline_suppressed
        ],
        "stale_baseline": report.stale_baseline,
        "files_analyzed": report.files_analyzed,
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": "error" if finding.severity == "error" else "warning",
        "message": {"text": finding.message},
        "partialFingerprints": {"simcheck/v1": finding.fingerprint()},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def render_sarif(report: AnalysisReport, rules: List[Rule]) -> str:
    """SARIF 2.1.0 log with the rule catalog embedded."""
    descriptors = [
        {
            "id": rule.name,
            "shortDescription": {"text": rule.description or rule.name},
            "defaultConfiguration": {
                "level": "error" if rule.severity == "error" else "warning"
            },
        }
        for rule in sorted(rules, key=lambda rule: rule.name)
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simcheck",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": descriptors,
                    }
                },
                "results": [_sarif_result(finding) for finding in report.findings],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
