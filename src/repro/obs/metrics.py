"""Deterministic run metrics: counters, gauges, histograms, time series.

The tracer (PR 1) records *events*; this module turns the same
observation points into *aggregates with temporal shape*:

* :class:`LogBucketHistogram` — HDR-style log-bucket histogram with an
  exact linear range and bounded-relative-error octaves above it, plus
  nearest-rank p50/p95/p99 (the one percentile rule the whole codebase
  shares — ``sim.stats.Histogram`` delegates here).
* :class:`TimeSeries` — fixed-cycle-window series keyed to the
  **simulated** clock (never wall-clock, so the ``simcheck`` SIM-D
  determinism rules hold), bounded by ring-style eviction of the oldest
  window.
* :class:`MetricsHub` — the opt-in sink every simulator layer feeds
  through None-guarded hooks (the PR 3/4 convention), plus a periodic
  sampler over the PR 4 pressure sensors (signature fill, FP estimate,
  OT occupancy, CST density, resilience-rung residency).

The hub is purely observational: hooks never touch simulated state, so
a metrics-armed run is bit-identical to an unarmed one
(tests/obs/test_metrics.py).  Everything iterates in sorted order and
draws no randomness, so the JSON artifact is itself deterministic.

This module imports nothing from the simulator at module level (only
:mod:`repro.obs.causality`, which is stdlib-pure): ``sim.stats`` imports
the percentile helpers from here, and the sampler's
``repro.resilience.pressure`` import is deferred into the call.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.causality import AbortRecord

#: Percentiles every histogram summary reports.
PERCENTILES = (0.50, 0.95, 0.99)

#: Default fixed window width (simulated cycles) for time series.
DEFAULT_WINDOW_CYCLES = 2048

#: Default scheduler steps between pressure-sensor sweeps.
DEFAULT_SAMPLE_INTERVAL = 256


def nearest_rank_index(count: int, fraction: float) -> int:
    """Index of the nearest-rank percentile in a sorted sequence.

    The single percentile rule shared by :class:`LogBucketHistogram`
    and ``sim.stats.Histogram``: ``min(n-1, round(fraction * (n-1)))``.
    Returns -1 for an empty population.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if count <= 0:
        return -1
    return min(count - 1, int(round(fraction * (count - 1))))


def nearest_rank(ordered: Sequence[int], fraction: float) -> int:
    """Nearest-rank percentile of an already-sorted sequence (0 if empty)."""
    index = nearest_rank_index(len(ordered), fraction)
    return ordered[index] if index >= 0 else 0


class LogBucketHistogram:
    """Log-bucket histogram: exact small values, ~12.5% error above.

    Values below ``linear_max`` land in exact unit buckets.  Above,
    each power-of-two octave is split into ``subbuckets`` equal slices,
    so a reported percentile is the *lower bound* of its bucket and
    under-reports by at most ``1/subbuckets`` of the true value.
    Memory is O(buckets touched), never O(samples) — this is what lets
    the hub histogram every commit/abort without unbounded growth.
    """

    __slots__ = ("name", "linear_max", "subbuckets", "_buckets",
                 "_count", "_total", "_max", "_min")

    def __init__(self, name: str, linear_max: int = 128, subbuckets: int = 8):
        if linear_max < 1 or linear_max & (linear_max - 1):
            raise ValueError("linear_max must be a positive power of two")
        if subbuckets < 1 or subbuckets & (subbuckets - 1):
            raise ValueError("subbuckets must be a positive power of two")
        self.name = name
        self.linear_max = linear_max
        self.subbuckets = subbuckets
        #: bucket lower bound -> sample count.
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._total = 0
        self._max = 0
        self._min = 0

    def _bucket_of(self, value: int) -> int:
        """Lower bound of the bucket holding ``value``."""
        if value < self.linear_max:
            return value
        octave = value.bit_length() - 1
        width = (1 << octave) // self.subbuckets
        sub = (value - (1 << octave)) // width
        return (1 << octave) + sub * width

    def record(self, value: int) -> None:
        value = max(0, int(value))
        bucket = self._bucket_of(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        if self._count == 0 or value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._count += 1
        self._total += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def maximum(self) -> int:
        return self._max

    @property
    def minimum(self) -> int:
        return self._min

    def percentile(self, fraction: float) -> int:
        """Nearest-rank percentile (bucket lower bound above linear_max)."""
        rank = nearest_rank_index(self._count, fraction)
        if rank < 0:
            return 0
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen > rank:
                return bucket
        return self._max  # unreachable: counts sum to _count

    @property
    def p50(self) -> int:
        return self.percentile(0.50)

    @property
    def p95(self) -> int:
        return self.percentile(0.95)

    @property
    def p99(self) -> int:
        return self.percentile(0.99)

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self._count,
            "mean": round(self.mean, 4),
            "min": self._min,
            "max": self._max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": [[b, self._buckets[b]] for b in sorted(self._buckets)],
        }


class Gauge:
    """A last-value-wins instantaneous reading."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class TimeSeries:
    """One metric bucketed into fixed windows of the simulated clock.

    Windows are ``cycle // window_cycles``; ``mode`` is ``"sum"``
    (event counts, accumulated cycles) or ``"max"`` (gauge-style
    readings).  Out-of-order arrivals are fine — processors advance
    independently, so cross-processor cycles interleave — and when the
    window map outgrows ``capacity`` the *oldest* window is evicted
    (ring-buffer semantics keyed by window index, with an eviction
    count so truncation is never silent).
    """

    __slots__ = ("name", "window_cycles", "capacity", "mode",
                 "_windows", "evicted")

    def __init__(self, name: str, window_cycles: int,
                 capacity: int = 512, mode: str = "sum"):
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if mode not in ("sum", "max"):
            raise ValueError("mode must be 'sum' or 'max'")
        self.name = name
        self.window_cycles = window_cycles
        self.capacity = capacity
        self.mode = mode
        self._windows: Dict[int, int] = {}
        self.evicted = 0

    def record(self, cycle: int, amount: int = 1) -> None:
        window = cycle // self.window_cycles
        if self.mode == "sum":
            self._windows[window] = self._windows.get(window, 0) + amount
        else:
            current = self._windows.get(window)
            if current is None or amount > current:
                self._windows[window] = amount
        while len(self._windows) > self.capacity:
            self._windows.pop(min(self._windows))
            self.evicted += 1

    def points(self) -> List[List[int]]:
        """``[[window_start_cycle, value], ...]``, cycle-ascending."""
        return [
            [window * self.window_cycles, self._windows[window]]
            for window in sorted(self._windows)
        ]

    def by_window(self) -> Dict[int, int]:
        """Window index -> value (for the pathology annotators)."""
        return dict(self._windows)

    def to_dict(self) -> Dict[str, object]:
        return {
            "window_cycles": self.window_cycles,
            "mode": self.mode,
            "evicted_windows": self.evicted,
            "points": self.points(),
        }


class MetricsHub:
    """The deterministic metrics sink for one simulated run.

    Armed via ``ExperimentConfig(metrics=MetricsHub())`` /
    ``FlexTMMachine.set_metrics``; every simulator hook site guards on
    ``metrics is None`` so an unarmed run pays one attribute read.  All
    hooks observe — none mutates simulated state — which is the
    bit-identical contract the determinism tests pin.
    """

    def __init__(
        self,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
        series_capacity: int = 512,
        max_abort_records: int = 4096,
    ):
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.window_cycles = window_cycles
        self.sample_interval = sample_interval
        self.series_capacity = series_capacity
        self.max_abort_records = max_abort_records
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, LogBucketHistogram] = {}
        self.series_map: Dict[str, TimeSeries] = {}
        self.abort_records: List[AbortRecord] = []
        self.abort_records_dropped = 0
        self.proc_cycles: List[int] = []
        self.samples_taken = 0
        self._machine = None
        self._steps = 0
        self._begin_cycle: Dict[int, int] = {}

    # -- primitive accessors ---------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> LogBucketHistogram:
        if name not in self.histograms:
            self.histograms[name] = LogBucketHistogram(name)
        return self.histograms[name]

    def series(self, name: str, mode: str = "sum") -> TimeSeries:
        if name not in self.series_map:
            self.series_map[name] = TimeSeries(
                name, self.window_cycles, capacity=self.series_capacity,
                mode=mode,
            )
        return self.series_map[name]

    # -- wiring ----------------------------------------------------------------

    def attach(self, machine) -> None:
        """Remember the machine (the sampler reads its sensors)."""
        self._machine = machine

    # -- transaction lifecycle hooks (TxThread) --------------------------------

    def on_begin(self, proc: int, thread: int, cycle: int) -> None:
        self.count("tx.begins")
        self._begin_cycle[thread] = cycle
        self.series("tx.begins").record(cycle)

    def on_commit(self, proc: int, thread: int, cycle: int) -> None:
        self.count("tx.commits")
        self.series("tx.commits").record(cycle)
        begin = self._begin_cycle.pop(thread, None)
        if begin is not None:
            self.histogram("tx.commit_cycles").record(max(0, cycle - begin))

    def on_abort(self, proc: int, thread: int, cycle: int,
                 by: int, kind: str) -> None:
        kind = kind or "unattributed"
        self.count("tx.aborts")
        self.count(f"tx.aborts.{kind}")
        self.series("tx.aborts").record(cycle)
        begin = self._begin_cycle.pop(thread, None)
        wasted = max(0, cycle - begin) if begin is not None else 0
        self.histogram("tx.wasted_cycles").record(wasted)
        self.series("tx.wasted_cycles").record(cycle, wasted)
        if len(self.abort_records) < self.max_abort_records:
            self.abort_records.append(
                AbortRecord(
                    cycle=cycle, thread=thread,
                    proc=proc if proc is not None else -1,
                    by=by, kind=kind, wasted_cycles=wasted,
                )
            )
        else:
            self.abort_records_dropped += 1

    # -- conflict / contention hooks (machine, contention manager) -------------

    def on_conflict(self, proc: int, cycle: int, responder: int,
                    kind: str) -> None:
        self.count("conflicts.total")
        self.count(f"conflicts.{kind}")
        self.series("conflicts").record(cycle)

    def on_stall(self, proc: int, cycle: int, dur: int) -> None:
        self.count("stalls")
        self.histogram("stall_cycles").record(dur)
        self.series("stall_cycles").record(cycle, dur)

    # -- structure hooks (processor, L1, directory) ----------------------------

    def on_overflow(self, proc: int, cycle: int, what: str, dur: int) -> None:
        self.count(f"overflow.{what}")
        self.series("overflow.events").record(cycle)
        if dur:
            self.histogram("overflow_cycles").record(dur)

    def on_alert(self, proc: int, cycle: int) -> None:
        self.count("aou.alerts")
        self.series("aou.alerts").record(cycle)

    def on_evict(self, proc: int, cycle: int) -> None:
        self.count("coh.evictions")

    def on_coherence(self, proc: int, cycle: int) -> None:
        self.count("coh.messages")
        self.series("coh.messages").record(cycle)

    # -- scheduler hooks -------------------------------------------------------

    def on_sched(self, proc: int, cycle: int, what: str) -> None:
        self.count(f"sched.{what}")
        if what in ("preempt", "yield"):
            self.series("sched.switches").record(cycle)

    def on_escalation(self, cycle: int, thread: int, rung: str) -> None:
        self.count(f"resilience.escalations.{rung}")
        self.series("resilience.escalations").record(cycle)

    def on_step(self, scheduler) -> None:
        """Once per scheduler step; sweeps the sensors every Nth step."""
        self._steps += 1
        if self._steps % self.sample_interval:
            return
        self.sample(scheduler.machine)

    # -- the periodic pressure sampler -----------------------------------------

    def sample(self, machine) -> None:
        """One sweep over the PR 4 pressure sensors (observational)."""
        from repro.resilience.pressure import sample_machine

        samples = sample_machine(machine)
        cycle = machine.max_cycle()
        sig_fill = max((s.sig_fill for s in samples), default=0.0)
        sig_fp = max((s.sig_fp for s in samples), default=0.0)
        ot_occupancy = sum(s.ot_occupancy for s in samples)
        cst_density = sum(
            proc.csts.conflict_degree() for proc in machine.processors
        )
        fill_pct = int(sig_fill * 100)
        fp_pct = int(sig_fp * 100)
        self.gauge("pressure.sig_fill_pct").set(fill_pct)
        self.gauge("pressure.sig_fp_pct").set(fp_pct)
        self.gauge("pressure.ot_occupancy").set(ot_occupancy)
        self.gauge("pressure.cst_density").set(cst_density)
        self.series("pressure.sig_fill_pct", mode="max").record(cycle, fill_pct)
        self.series("pressure.sig_fp_pct", mode="max").record(cycle, fp_pct)
        self.series("pressure.ot_occupancy", mode="max").record(cycle, ot_occupancy)
        self.series("pressure.cst_density", mode="max").record(cycle, cst_density)
        resilience = machine.resilience
        if resilience is not None:
            census = resilience.rung_census()
            for rung in sorted(census):
                self.gauge(f"resilience.rung.{rung}").set(census[rung])
                self.series(f"resilience.rung.{rung}", mode="max").record(
                    cycle, census[rung]
                )
        self.samples_taken += 1
        tracer = machine.tracer
        if tracer.enabled:
            tracer.metrics(
                cycle, "sample",
                sig_fill_pct=fill_pct, sig_fp_pct=fp_pct,
                ot_occupancy=ot_occupancy, cst_density=cst_density,
            )

    # -- run boundary ----------------------------------------------------------

    def finalize(self, proc_cycles: List[int]) -> None:
        """Called once by the scheduler with each processor's final clock."""
        self.proc_cycles = list(proc_cycles)
        self.gauge("cycles.total").set(max(proc_cycles, default=0))

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The deterministic JSON-ready view (sorted everywhere)."""
        return {
            "window_cycles": self.window_cycles,
            "sample_interval": self.sample_interval,
            "samples_taken": self.samples_taken,
            "proc_cycles": list(self.proc_cycles),
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].value for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict()
                for k in sorted(self.histograms)
            },
            "series": {
                k: self.series_map[k].to_dict()
                for k in sorted(self.series_map)
            },
            "abort_records": [r.to_dict() for r in self.abort_records],
            "abort_records_dropped": self.abort_records_dropped,
        }

    def commits_by_window(self) -> Dict[int, int]:
        """Window index -> commit count (for the pathology annotators)."""
        series = self.series_map.get("tx.commits")
        return series.by_window() if series is not None else {}


def series_points(hub: Optional[MetricsHub], name: str) -> List[List[int]]:
    """A series' points, or [] when the hub or series is absent."""
    if hub is None:
        return []
    series = hub.series_map.get(name)
    return series.points() if series is not None else []
