"""Zero-dependency HTML dashboard for metrics artifacts.

Renders one or more ``repro.metrics/v1`` JSON artifacts (built by
:mod:`repro.harness.metrics`) into a single self-contained HTML page:
inline CSS, inline SVG time series (no JavaScript, no external assets),
an abort-chain table, the windowed pathology annotations, and a
side-by-side per-backend comparison when several artifacts are given.

Being self-contained is the point: the file travels as a CI artifact or
an email attachment and renders anywhere.  Only stdlib ``html.escape``
is used; the input dicts are treated as untrusted strings.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence

#: Series drawn as charts, in display order (missing ones are skipped).
CHART_SERIES = (
    "tx.commits",
    "tx.aborts",
    "tx.wasted_cycles",
    "conflicts",
    "stall_cycles",
    "overflow.events",
    "aou.alerts",
    "pressure.sig_fill_pct",
    "pressure.sig_fp_pct",
    "pressure.ot_occupancy",
    "pressure.cst_density",
    "sched.switches",
    "resilience.escalations",
)

#: Line colours cycled across artifacts in a comparison.
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 72em; color: #222; }
h1 { border-bottom: 2px solid #1f77b4; padding-bottom: .2em; }
h2 { margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: .3em .7em; text-align: right; }
th { background: #f0f4f8; }
td.l, th.l { text-align: left; }
.chart { display: inline-block; margin: .5em 1em .5em 0; vertical-align: top; }
.chart svg { border: 1px solid #ddd; background: #fcfcfc; }
.chart .t { font-size: .85em; font-weight: 600; }
.legend span { margin-right: 1.2em; font-size: .85em; }
.legend i { display: inline-block; width: 1em; height: .6em;
            margin-right: .3em; }
.empty { color: #888; font-style: italic; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _polyline(points: List[List[int]], width: int, height: int,
              x_min: int, x_max: int, y_max: int, color: str) -> str:
    """One SVG polyline scaled into the chart box."""
    if not points:
        return ""
    span_x = max(1, x_max - x_min)
    span_y = max(1, y_max)
    coords = []
    for x, y in points:
        px = (x - x_min) / span_x * (width - 8) + 4
        py = height - 4 - (y / span_y) * (height - 8)
        coords.append(f"{px:.1f},{py:.1f}")
    return (
        f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
        f'points="{" ".join(coords)}"/>'
    )


def _chart(name: str, per_artifact: List[List[List[int]]],
           width: int = 320, height: int = 120) -> str:
    """One labelled SVG chart overlaying every artifact's series."""
    all_points = [p for points in per_artifact for p in points]
    if not all_points:
        return ""
    x_min = min(p[0] for p in all_points)
    x_max = max(p[0] for p in all_points)
    y_max = max(p[1] for p in all_points)
    lines = "".join(
        _polyline(points, width, height, x_min, x_max, y_max,
                  PALETTE[i % len(PALETTE)])
        for i, points in enumerate(per_artifact)
    )
    return (
        '<div class="chart">'
        f'<div class="t">{_esc(name)} (peak {_esc(y_max)})</div>'
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">{lines}</svg>'
        "</div>"
    )


def _headline_table(artifacts: Sequence[Dict]) -> str:
    rows = []
    for i, artifact in enumerate(artifacts):
        run = artifact.get("run", {})
        totals = artifact.get("totals", {})
        label = run.get("label") or run.get("system") or f"run {i}"
        rows.append(
            "<tr>"
            f'<td class="l"><i style="background:{PALETTE[i % len(PALETTE)]};'
            f'display:inline-block;width:1em;height:.6em"></i> '
            f"{_esc(label)}</td>"
            f"<td>{_esc(totals.get('cycles', '-'))}</td>"
            f"<td>{_esc(totals.get('commits', '-'))}</td>"
            f"<td>{_esc(totals.get('aborts', '-'))}</td>"
            f"<td>{_esc(round(totals.get('throughput', 0.0), 2))}</td>"
            "</tr>"
        )
    return (
        "<table><tr>"
        '<th class="l">run</th><th>cycles</th><th>commits</th>'
        "<th>aborts</th><th>commits/Mcycle</th></tr>"
        + "".join(rows) + "</table>"
    )


def _abort_kind_table(artifacts: Sequence[Dict]) -> str:
    kinds = sorted({
        kind
        for artifact in artifacts
        for kind in artifact.get("totals", {}).get("aborts_by_kind", {})
    })
    if not kinds:
        return '<p class="empty">no aborts recorded</p>'
    header = '<tr><th class="l">run</th>' + "".join(
        f"<th>{_esc(kind)}</th>" for kind in kinds
    ) + "</tr>"
    rows = []
    for i, artifact in enumerate(artifacts):
        run = artifact.get("run", {})
        by_kind = artifact.get("totals", {}).get("aborts_by_kind", {})
        label = run.get("label") or f"run {i}"
        rows.append(
            f'<tr><td class="l">{_esc(label)}</td>'
            + "".join(f"<td>{_esc(by_kind.get(kind, 0))}</td>" for kind in kinds)
            + "</tr>"
        )
    return "<table>" + header + "".join(rows) + "</table>"


def _histogram_table(artifact: Dict) -> str:
    histograms = artifact.get("histograms", {})
    if not histograms:
        return '<p class="empty">no histograms</p>'
    rows = []
    for name in sorted(histograms):
        h = histograms[name]
        rows.append(
            f'<tr><td class="l">{_esc(name)}</td>'
            f"<td>{_esc(h.get('count', 0))}</td>"
            f"<td>{_esc(h.get('mean', 0))}</td>"
            f"<td>{_esc(h.get('p50', 0))}</td>"
            f"<td>{_esc(h.get('p95', 0))}</td>"
            f"<td>{_esc(h.get('p99', 0))}</td>"
            f"<td>{_esc(h.get('max', 0))}</td></tr>"
        )
    return (
        '<table><tr><th class="l">histogram</th><th>n</th><th>mean</th>'
        "<th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>"
        + "".join(rows) + "</table>"
    )


def _chain_table(artifact: Dict) -> str:
    chains = artifact.get("causality", {}).get("chains", [])
    if not chains:
        return '<p class="empty">no wounded-by chains</p>'
    rows = []
    for chain in chains:
        path = " &rarr; ".join(
            f"t{_esc(link.get('thread'))}"
            f"@{_esc(link.get('cycle'))}({_esc(link.get('kind'))})"
            for link in chain.get("links", [])
        )
        rows.append(
            f"<tr><td>{_esc(chain.get('length'))}</td>"
            f"<td>{_esc(chain.get('total_wasted_cycles'))}</td>"
            f"<td>{_esc(chain.get('start_cycle'))}</td>"
            f"<td>{_esc(chain.get('end_cycle'))}</td>"
            f'<td class="l">{path}</td></tr>'
        )
    return (
        "<table><tr><th>length</th><th>wasted cycles</th><th>start</th>"
        '<th>end</th><th class="l">victims (thread@cycle(kind))</th></tr>'
        + "".join(rows) + "</table>"
    )


def _pathology_table(artifact: Dict) -> str:
    pathologies = artifact.get("causality", {}).get("pathologies", [])
    if not pathologies:
        return '<p class="empty">no windowed pathologies flagged</p>'
    rows = []
    for p in pathologies:
        rows.append(
            f"<tr><td>{_esc(p.get('start_cycle'))}</td>"
            f'<td class="l">{_esc(p.get("kind"))}</td>'
            f"<td>{_esc(p.get('aborts'))}</td>"
            f"<td>{_esc(p.get('commits'))}</td>"
            f'<td class="l">{_esc(p.get("detail"))}</td></tr>'
        )
    return (
        '<table><tr><th>window start</th><th class="l">pathology</th>'
        '<th>aborts</th><th>commits</th><th class="l">detail</th></tr>'
        + "".join(rows) + "</table>"
    )


def render_dashboard(artifacts: Sequence[Dict],
                     title: str = "FlexTM run dashboard") -> str:
    """Render metrics artifacts as one self-contained HTML page."""
    if not artifacts:
        raise ValueError("at least one artifact is required")
    legend = "".join(
        f'<span><i style="background:{PALETTE[i % len(PALETTE)]}"></i>'
        f"{_esc(a.get('run', {}).get('label') or f'run {i}')}</span>"
        for i, a in enumerate(artifacts)
    )
    charts = []
    names = list(CHART_SERIES) + sorted(
        name
        for artifact in artifacts
        for name in artifact.get("series", {})
        if name not in CHART_SERIES
    )
    seen = set()
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        per_artifact = [
            artifact.get("series", {}).get(name, {}).get("points", [])
            for artifact in artifacts
        ]
        chart = _chart(name, per_artifact)
        if chart:
            charts.append(chart)
    sections = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f'<div class="legend">{legend}</div>',
        "<h2>Headline</h2>", _headline_table(artifacts),
        "<h2>Aborts by kind</h2>", _abort_kind_table(artifacts),
        "<h2>Time series</h2>",
        "".join(charts) if charts else '<p class="empty">no series</p>',
    ]
    for i, artifact in enumerate(artifacts):
        run = artifact.get("run", {})
        label = run.get("label") or f"run {i}"
        sections.extend([
            f"<h2>Latency &amp; cost distributions — {_esc(label)}</h2>",
            _histogram_table(artifact),
            f"<h2>Wounded-by chains — {_esc(label)}</h2>",
            _chain_table(artifact),
            f"<h2>Windowed pathologies — {_esc(label)}</h2>",
            _pathology_table(artifact),
        ])
    sections.append("</body></html>")
    return "\n".join(sections)
