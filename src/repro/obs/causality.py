"""Abort-causality analysis: the wounded-by DAG.

PR 3 gave every abort a ``(by, kind)`` attribution — *which processor*
wounded the victim and *which CST kind* the conflict was.  This module
turns a run's stream of :class:`AbortRecord` entries into structure:

* a **wounded-by DAG**: record A points at the wounder's own next abort
  (if the transaction that killed A later died too, the damage chains);
* **longest-chain extraction** with per-chain wasted-cycle accounting —
  the "abort storm" view: one root conflict cascading through the
  machine;
* **windowed pathology annotators** that name the contention diseases
  the progress-guarantee literature formalizes: *convoy* (one wounder
  dominating a window's aborts), *friendly fire* (wounders that are
  themselves wounded in the same window), *starvation* (one thread
  absorbing a window's aborts).

Everything here is pure, deterministic post-processing: sorted
iteration orders, no clocks, no randomness, no simulator imports — the
records come from :class:`~repro.obs.metrics.MetricsHub` (or a test's
hand-built list) and the output feeds the dashboard and the metrics
JSON artifact.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, List, Optional, Sequence

#: Aborts below this count never flag a windowed pathology (noise floor).
MIN_WINDOW_ABORTS = 6

#: Fraction of a window's attributed aborts one wounder must own to
#: flag a convoy.
CONVOY_DOMINANCE = 0.5

#: Fraction of a window's attributed aborts whose wounder must itself
#: abort in-window to flag friendly fire.
FRIENDLY_FIRE_FRACTION = 0.5


@dataclasses.dataclass(frozen=True)
class AbortRecord:
    """One attributed abort, as observed by the metrics hub."""

    cycle: int
    thread: int
    proc: int
    #: Wounding processor (-1 when unattributed).
    by: int
    #: Conflict kind ("R-W", "W-R", "W-W", "SI", ... or "unattributed").
    kind: str
    #: Cycles burned by the doomed attempt (begin -> abort).
    wasted_cycles: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "cycle": self.cycle,
            "thread": self.thread,
            "proc": self.proc,
            "by": self.by,
            "kind": self.kind,
            "wasted_cycles": self.wasted_cycles,
        }


@dataclasses.dataclass(frozen=True)
class Chain:
    """One maximal wounded-by chain (indices into the record list)."""

    indices: tuple
    length: int
    total_wasted: int
    start_cycle: int
    end_cycle: int

    def to_dict(self, records: Sequence[AbortRecord]) -> Dict[str, object]:
        return {
            "length": self.length,
            "total_wasted_cycles": self.total_wasted,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "links": [records[i].to_dict() for i in self.indices],
        }


def build_edges(records: Sequence[AbortRecord]) -> List[Optional[int]]:
    """The wounded-by DAG: ``edge[i]`` is the wounder's next abort.

    Record ``i`` was wounded by processor ``records[i].by``; if that
    processor's own transaction later aborts (at a cycle >= ``i``'s),
    the earliest such record continues the chain.  Unattributed aborts
    (``by < 0``) and wounders that never abort get ``None``.
    """
    by_proc: Dict[int, List[int]] = {}
    order = sorted(range(len(records)), key=lambda i: (records[i].cycle, i))
    for i in order:
        by_proc.setdefault(records[i].proc, []).append(i)
    cycles_of: Dict[int, List[int]] = {
        proc: [records[i].cycle for i in indices]
        for proc, indices in by_proc.items()
    }
    edges: List[Optional[int]] = [None] * len(records)
    for i, record in enumerate(records):
        if record.by < 0 or record.by not in by_proc:
            continue
        candidates = by_proc[record.by]
        position = bisect.bisect_left(cycles_of[record.by], record.cycle)
        while position < len(candidates) and candidates[position] == i:
            position += 1
        if position < len(candidates):
            edges[i] = candidates[position]
    return edges


def extract_chains(
    records: Sequence[AbortRecord], limit: int = 10
) -> List[Chain]:
    """Maximal chains through the DAG, longest (then costliest) first.

    A chain starts at a record no edge points to and follows edges until
    they run out.  Equal-cycle wound loops (possible when two processors
    wound each other in the same cycle) are cut at the first revisit.
    """
    edges = build_edges(records)
    targeted = {target for target in edges if target is not None}
    chains: List[Chain] = []
    for root in range(len(records)):
        if root in targeted:
            continue
        indices: List[int] = []
        seen = set()
        cursor: Optional[int] = root
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            indices.append(cursor)
            cursor = edges[cursor]
        chains.append(
            Chain(
                indices=tuple(indices),
                length=len(indices),
                total_wasted=sum(records[i].wasted_cycles for i in indices),
                start_cycle=records[indices[0]].cycle,
                end_cycle=records[indices[-1]].cycle,
            )
        )
    chains.sort(key=lambda c: (-c.length, -c.total_wasted, c.start_cycle))
    return chains[:limit]


def longest_chain(records: Sequence[AbortRecord]) -> Optional[Chain]:
    chains = extract_chains(records, limit=1)
    return chains[0] if chains else None


def annotate_pathologies(
    records: Sequence[AbortRecord],
    window_cycles: int,
    commits_by_window: Optional[Dict[int, int]] = None,
    min_aborts: int = MIN_WINDOW_ABORTS,
) -> List[Dict[str, object]]:
    """Name the contention diseases, window by window.

    Returns one annotation dict per (window, pathology) hit, sorted by
    window then pathology name.  ``commits_by_window`` (window index ->
    commit count, e.g. from the hub's ``tx.commits`` series) sharpens
    the convoy test: a window full of aborts *and* commits is healthy
    churn, not a convoy.
    """
    if window_cycles <= 0:
        raise ValueError("window_cycles must be positive")
    commits_by_window = commits_by_window or {}
    windows: Dict[int, List[AbortRecord]] = {}
    for record in records:
        windows.setdefault(record.cycle // window_cycles, []).append(record)
    annotations: List[Dict[str, object]] = []
    for window in sorted(windows):
        aborts = windows[window]
        if len(aborts) < min_aborts:
            continue
        start = window * window_cycles
        commits = commits_by_window.get(window, 0)
        attributed = [r for r in aborts if r.by >= 0]
        # Convoy: one wounder owns the window and commits are scarce.
        if attributed and len(aborts) > 2 * commits:
            wounder_counts: Dict[int, int] = {}
            for record in attributed:
                wounder_counts[record.by] = wounder_counts.get(record.by, 0) + 1
            top = max(sorted(wounder_counts), key=lambda p: wounder_counts[p])
            if wounder_counts[top] > CONVOY_DOMINANCE * len(attributed):
                annotations.append({
                    "window": window,
                    "start_cycle": start,
                    "kind": "convoy",
                    "detail": (
                        f"proc {top} wounded {wounder_counts[top]} of "
                        f"{len(attributed)} attributed aborts"
                    ),
                    "aborts": len(aborts),
                    "commits": commits,
                })
        # Friendly fire: the wounders are themselves being wounded.
        if attributed:
            aborting_procs = {record.proc for record in aborts}
            friendly = [r for r in attributed if r.by in aborting_procs]
            if len(friendly) > FRIENDLY_FIRE_FRACTION * len(attributed):
                annotations.append({
                    "window": window,
                    "start_cycle": start,
                    "kind": "friendly-fire",
                    "detail": (
                        f"{len(friendly)} of {len(attributed)} attributed "
                        "aborts were inflicted by threads that also aborted"
                    ),
                    "aborts": len(aborts),
                    "commits": commits,
                })
        # Starvation: one thread absorbs the window's aborts.
        victim_counts: Dict[int, int] = {}
        for record in aborts:
            victim_counts[record.thread] = victim_counts.get(record.thread, 0) + 1
        for thread in sorted(victim_counts):
            if victim_counts[thread] >= min_aborts:
                annotations.append({
                    "window": window,
                    "start_cycle": start,
                    "kind": "starvation",
                    "detail": (
                        f"thread {thread} aborted {victim_counts[thread]} "
                        "times in one window"
                    ),
                    "aborts": len(aborts),
                    "commits": commits,
                })
    annotations.sort(key=lambda a: (a["window"], a["kind"], a["detail"]))
    return annotations
