"""Cycle-attribution profiling.

Consumes an :class:`~repro.obs.tracer.EventTracer` stream and buckets
every simulated processor cycle into the categories the paper's
Figure 5 discussion reasons about informally:

* ``useful_work`` — cycles inside attempts that went on to commit;
* ``stalled_on_conflict`` — backoff/wait cycles charged by the conflict
  manager and the post-abort retry backoff;
* ``aborted_discarded`` — cycles inside attempts that aborted (plus
  work in flight when the run hit its cycle limit);
* ``overflow_walk`` — overflow-table spill and refill walks;
* ``non_tx`` — everything outside transactions: non-transactional
  items, scheduler switch costs, idle tails.

The attribution is a per-processor state machine over the event stream.
Every cycle lands in exactly one bucket, so the buckets sum to the
total simulated cycles (``sum`` of each processor's final clock) by
construction — the invariant tests/obs/test_profiler.py pins down.

Durations reported by events fall in two classes: *settled* durations
(the cycles already elapsed when the event was emitted — conflict-
manager backoffs) are moved out of the enclosing bucket immediately;
*unsettled* durations (overflow walks, emitted mid-operation before the
issuing processor's clock advances) are parked as deferred transfers
and satisfied by the next cycles that flush on that processor.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.obs.tracer import EventTracer, TraceEvent

BUCKETS = (
    "useful_work",
    "stalled_on_conflict",
    "aborted_discarded",
    "overflow_walk",
    "non_tx",
)

#: Event kinds whose duration is processor time spent walking the OT.
_OVERFLOW_WALK_KINDS = ("overflow_spill", "overflow_walk")
#: Scheduler events that take the running thread off the core.
_SWITCH_OUT_KINDS = ("preempt", "yield")


@dataclasses.dataclass
class ProcessorProfile:
    """One processor's cycle buckets."""

    proc: int
    useful_work: int = 0
    stalled_on_conflict: int = 0
    aborted_discarded: int = 0
    overflow_walk: int = 0
    non_tx: int = 0

    @property
    def total(self) -> int:
        return sum(getattr(self, bucket) for bucket in BUCKETS)

    def as_dict(self) -> Dict[str, int]:
        return {bucket: getattr(self, bucket) for bucket in BUCKETS}


@dataclasses.dataclass
class CycleProfile:
    """The whole machine's attribution: per-processor + aggregate."""

    processors: List[ProcessorProfile]

    @property
    def total_cycles(self) -> int:
        return sum(profile.total for profile in self.processors)

    def aggregate(self) -> Dict[str, int]:
        out = {bucket: 0 for bucket in BUCKETS}
        for profile in self.processors:
            for bucket in BUCKETS:
                out[bucket] += getattr(profile, bucket)
        return out


class _ProcState:
    """Attribution state machine for one processor."""

    __slots__ = ("profile", "last", "in_tx", "pending_tx", "deferred_overflow")

    def __init__(self, proc: int):
        self.profile = ProcessorProfile(proc)
        self.last = 0
        self.in_tx = False
        #: Cycles accumulated by the current attempt, awaiting its fate.
        self.pending_tx = 0
        #: Overflow-walk cycles announced but not yet elapsed.
        self.deferred_overflow = 0

    def flush(self, cycle: int) -> None:
        """Assign the cycles since the last event to a bucket."""
        delta = cycle - self.last
        if delta <= 0:
            return
        self.last = cycle
        if self.deferred_overflow:
            take = min(delta, self.deferred_overflow)
            self.profile.overflow_walk += take
            self.deferred_overflow -= take
            delta -= take
            if not delta:
                return
        if self.in_tx:
            self.pending_tx += delta
        else:
            self.profile.non_tx += delta

    def settle_stall(self, dur: int) -> None:
        """Move already-elapsed wait cycles into the stalled bucket."""
        if self.in_tx:
            take = min(dur, self.pending_tx)
            self.pending_tx -= take
        else:
            take = min(dur, self.profile.non_tx)
            self.profile.non_tx -= take
        self.profile.stalled_on_conflict += take

    def close_attempt(self, committed: bool, extra: int = 0) -> None:
        spent = self.pending_tx + extra
        self.pending_tx = 0
        if committed:
            self.profile.useful_work += spent
        else:
            self.profile.aborted_discarded += spent
        self.in_tx = False


class CycleProfiler:
    """Builds a :class:`CycleProfile` from a finalized event trace."""

    def __init__(self, tracer: EventTracer):
        if not tracer.proc_cycles:
            raise ValueError(
                "tracer has no final processor cycles; profile after the "
                "scheduler finalizes the run"
            )
        self.tracer = tracer

    def profile(self) -> CycleProfile:
        states = {
            proc: _ProcState(proc) for proc in range(len(self.tracer.proc_cycles))
        }
        #: Attempt cycles stashed while a mid-transaction thread is off-core.
        stashed: Dict[int, int] = {}
        for event in self.tracer.events:
            state = states.get(event.proc)
            if state is None:  # event from an unknown processor; skip
                continue
            self._apply(event, state, stashed)
        for proc, final_cycle in enumerate(self.tracer.proc_cycles):
            state = states[proc]
            state.flush(final_cycle)
            if state.in_tx or state.pending_tx:
                # The run's cycle limit cut this attempt short: the work
                # was never committed, so it counts as discarded.
                state.close_attempt(committed=False)
        if states:
            # Threads suspended mid-transaction when the run ended: their
            # stashed attempt cycles were never committed, so discarded.
            states[0].profile.aborted_discarded += sum(stashed.values())
        return CycleProfile(
            processors=[states[proc].profile for proc in sorted(states)]
        )

    def _apply(self, event: TraceEvent, state: _ProcState,
               stashed: Dict[int, int]) -> None:
        kind = event.kind
        state.flush(event.cycle)
        if kind == "tx_begin":
            if state.in_tx:
                # Nested or restarted begin without a visible end: treat
                # the open attempt as discarded rather than losing it.
                state.close_attempt(committed=False)
            state.in_tx = True
            state.pending_tx = 0
        elif kind == "tx_commit":
            state.close_attempt(committed=True, extra=stashed.pop(event.thread, 0))
        elif kind == "tx_abort":
            state.close_attempt(committed=False, extra=stashed.pop(event.thread, 0))
        elif kind == "conflict_stall":
            state.settle_stall(event.dur)
        elif kind in _OVERFLOW_WALK_KINDS:
            # Announced mid-operation: the walk cycles land on the clock
            # when the enclosing operation retires, so defer the transfer.
            state.deferred_overflow += event.dur
        elif kind in _SWITCH_OUT_KINDS:
            if state.in_tx:
                stashed[event.thread] = stashed.get(event.thread, 0) + state.pending_tx
                state.pending_tx = 0
                state.in_tx = False
        elif kind == "dispatch":
            if event.thread in stashed and event.cause != "aborted":
                state.in_tx = True
                state.pending_tx = stashed.pop(event.thread)
        # All other kinds (reads, conflicts, alerts, coherence) are
        # informational: the flush above already attributed their cycles.


def profile_run(trace: Optional[EventTracer]) -> Optional[CycleProfile]:
    """Convenience: profile a RunResult's trace handle (None-safe)."""
    if trace is None:
        return None
    return CycleProfiler(trace).profile()
