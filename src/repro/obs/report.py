"""The per-run observability report.

Joins the cycle-attribution profile with the run's headline numbers and
the :class:`~repro.sim.stats.StatsRegistry` snapshot into one plain-text
document — the "why did the cycles go where they went" companion to the
paper-style tables the harnesses already print.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.profiler import BUCKETS, CycleProfile


def _format_table(headers, rows, title=""):
    # Imported lazily: repro.harness imports repro.obs (runner attaches
    # tracers), so a module-level import here would be circular.
    from repro.harness.report import format_table

    return format_table(headers, rows, title=title)

#: Human labels for the profiler buckets, in report order.
_BUCKET_LABELS = {
    "useful_work": "useful work (committed)",
    "stalled_on_conflict": "stalled on conflict",
    "aborted_discarded": "aborted & discarded",
    "overflow_walk": "overflow-table walks",
    "non_tx": "non-transactional",
}


def _percent(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "0.0%"


def render_profile(profile: CycleProfile) -> str:
    """The cycle-attribution breakdown: aggregate + per-processor."""
    aggregate = profile.aggregate()
    total = profile.total_cycles
    rows = [
        [_BUCKET_LABELS[bucket], aggregate[bucket], _percent(aggregate[bucket], total)]
        for bucket in BUCKETS
    ]
    rows.append(["total", total, "100.0%"])
    lines = [
        _format_table(
            ["Bucket", "Cycles", "Share"], rows,
            title="Cycle attribution (all processors)",
        ),
        "",
    ]
    per_proc_rows: List[List[object]] = []
    for proc_profile in profile.processors:
        per_proc_rows.append(
            [f"proc {proc_profile.proc}"]
            + [getattr(proc_profile, bucket) for bucket in BUCKETS]
            + [proc_profile.total]
        )
    lines.append(
        _format_table(
            ["Processor", "useful", "stalled", "aborted", "ovf-walk", "non-tx", "total"],
            per_proc_rows,
            title="Per-processor breakdown",
        )
    )
    return "\n".join(lines)


def render_run_report(
    profile: CycleProfile,
    result=None,
    stats: Optional[Dict[str, object]] = None,
    title: str = "Traced run",
) -> str:
    """Profile + RunResult headline + stats snapshot, as one document."""
    lines = [f"== {title} ==", ""]
    if result is not None:
        lines += [
            f"cycles={result.cycles}  commits={result.commits}  "
            f"aborts={result.aborts}  nontx_items={result.nontx_items}",
            f"throughput={result.throughput:.1f} commits/Mcycle  "
            f"abort_ratio={result.abort_ratio:.3f}",
            "",
        ]
    lines.append(render_profile(profile))
    snapshot = stats if stats is not None else (
        result.stats if result is not None else None
    )
    if snapshot:
        lines.append("")
        rows = [
            [name, value if not isinstance(value, float) else f"{value:.2f}"]
            for name, value in sorted(snapshot.items())
        ]
        lines.append(_format_table(["Stat", "Value"], rows, title="Machine statistics"))
    return "\n".join(lines)
