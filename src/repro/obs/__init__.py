"""Observability: transaction-lifecycle tracing and cycle profiling.

The subsystem has four pieces (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.tracer` — the :class:`Tracer` protocol, the
  zero-overhead :class:`NullTracer` default, and the recording
  :class:`EventTracer`;
* :mod:`repro.obs.profiler` — attributes every simulated cycle to
  useful-work / stalled / aborted / overflow-walk / non-tx buckets;
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and
  JSONL exporters plus a schema validator;
* :mod:`repro.obs.report` — the plain-text per-run report joining the
  profile with the machine's statistics registry;
* :mod:`repro.obs.metrics` — the deterministic :class:`MetricsHub`
  (counters, gauges, log-bucket histograms, sim-clock time series);
* :mod:`repro.obs.causality` — the wounded-by DAG, chain extraction and
  windowed pathology annotators over abort-attribution records;
* :mod:`repro.obs.dashboard` — the zero-dependency self-contained HTML
  dashboard renderer.
"""

from repro.obs.tracer import (
    CST_KINDS,
    EventTracer,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    classify_conflict,
)
from repro.obs.profiler import (
    BUCKETS,
    CycleProfile,
    CycleProfiler,
    ProcessorProfile,
    profile_run,
)
from repro.obs.export import (
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.report import render_profile, render_run_report
from repro.obs.causality import (
    AbortRecord,
    Chain,
    annotate_pathologies,
    build_edges,
    extract_chains,
    longest_chain,
)
from repro.obs.metrics import (
    Gauge,
    LogBucketHistogram,
    MetricsHub,
    TimeSeries,
    nearest_rank,
    nearest_rank_index,
)
from repro.obs.dashboard import render_dashboard

__all__ = [
    "CST_KINDS",
    "BUCKETS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "EventTracer",
    "TraceEvent",
    "classify_conflict",
    "CycleProfile",
    "CycleProfiler",
    "ProcessorProfile",
    "profile_run",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "render_profile",
    "render_run_report",
    "AbortRecord",
    "Chain",
    "annotate_pathologies",
    "build_edges",
    "extract_chains",
    "longest_chain",
    "Gauge",
    "LogBucketHistogram",
    "MetricsHub",
    "TimeSeries",
    "nearest_rank",
    "nearest_rank_index",
    "render_dashboard",
]
