"""Central registry of every tracer event kind.

The tracer's event taxonomy used to live only in the
:mod:`repro.obs.tracer` docstring, which meant a typo'd event name at an
emit site (``"coh_evcit"``) or an undocumented new kind would sail
through review and only surface when a trace consumer silently matched
nothing.  This module is the single source of truth:

* every ``kind`` an :class:`~repro.obs.tracer.EventTracer` can record
  appears here with a one-line description;
* the ``simcheck`` static pass (rule ``SIM-E201``) resolves the literal
  event-name argument at every emit site — applying the per-method
  prefixes in :data:`EMIT_PREFIXES` — and fails the build when the
  resolved kind is missing from :data:`EVENT_REGISTRY`;
* rule ``SIM-E202`` reports registry entries that no emit site produces
  any more (dead taxonomy), so the registry cannot rot in the other
  direction either;
* docs and tests import :data:`EVENT_KINDS` instead of copying the
  table.

Adding an event kind is therefore a two-line change: emit it, and
register it here (``docs/OBSERVABILITY.md`` is generated prose; the
registry is the contract).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

#: kind -> one-line description.  Grouped to mirror the tracer API.
EVENT_REGISTRY: Dict[str, str] = {
    # -- transaction lifecycle (Tracer.tx_begin/tx_commit/tx_abort/tx_access)
    "tx_begin": "transaction attempt starts (thread, backend, incarnation)",
    "tx_commit": "attempt committed",
    "tx_abort": "attempt aborted (cause + wounding processor + CST kind)",
    "tx_read": "sampled transactional load",
    "tx_write": "sampled transactional store",
    # -- conflicts and alerts (Tracer.conflict/aou_alert/stall)
    "conflict_detected": "a CST-setting response (R-W / W-R / W-W / SI)",
    "aou_alert": "alert-on-update delivery (line + reason)",
    "conflict_stall": "cycles spent waiting on an enemy (duration)",
    # -- overflow machinery (Tracer.overflow)
    "overflow_spill": "TMI eviction walked into the overflow table",
    "overflow_walk": "OT refill walk on an L1 miss",
    "overflow_copyback": "post-commit OT drain (controller-overlapped)",
    # -- scheduling (Tracer.sched)
    "preempt": "scheduler took the core away at quantum expiry",
    "yield": "thread voluntarily gave the core up",
    "dispatch": "thread installed on a core",
    "retire": "thread finished for good",
    # -- coherence (Tracer.coherence)
    "coh_request": "directory request (type, line, grant, nack)",
    "coh_response": "signature-qualified forwarded response",
    "coh_evict": "L1 eviction (victimized line + state)",
    # -- liveness watchdog (Tracer.watchdog)
    "watchdog_escalate": "no-commit window escalated the watchdog level",
    "watchdog_backoff_boost": "watchdog widened contention-manager backoff",
    "watchdog_forced_abort": "watchdog force-aborted the most prolific wounder",
    "watchdog_recover": "commits resumed; watchdog ladder reset",
    # -- degradation ladder (Tracer.degrade)
    "degrade_escalate": "abort streak moved a thread up the resilience ladder",
    "degrade_policy_flip": "lazy->eager conflict-resolution flip (EAGER rung)",
    "degrade_rotate": "signature hash-family rotation under Bloom pressure",
    "degrade_irrevocable_grant": "serial-irrevocable token granted to a thread",
    "degrade_irrevocable_drain": "in-flight peer force-aborted during a grant",
    "degrade_irrevocable_release": "serial-irrevocable token released",
    "degrade_recover": "streak cleared; thread returned to the HEALTHY rung",
    # -- metrics hub (Tracer.metrics)
    "metrics_sample": "periodic pressure sample (sig fill/FP, OT, CST density)",
}

#: Every registered kind, for membership tests and docs/tests.
EVENT_KINDS: FrozenSet[str] = frozenset(EVENT_REGISTRY)

#: How each kind-carrying tracer method derives the recorded event kind
#: from its name argument: ``kind = prefix + <literal argument>``.
#: Methods that always record a single fixed kind appear in
#: :data:`FIXED_KINDS` instead; both tables drive rule ``SIM-E201``.
EMIT_PREFIXES: Mapping[str, str] = {
    "tx_access": "tx_",  # argument is "read" / "write"
    "overflow": "overflow_",
    "sched": "",
    "coherence": "",
    "watchdog": "watchdog_",
    "degrade": "degrade_",
    "metrics": "metrics_",
}

#: Tracer methods whose recorded kind is fixed (no name argument).
FIXED_KINDS: Mapping[str, str] = {
    "tx_begin": "tx_begin",
    "tx_commit": "tx_commit",
    "tx_abort": "tx_abort",
    "conflict": "conflict_detected",
    "aou_alert": "aou_alert",
    "stall": "conflict_stall",
}

#: Position (0-based, after self) of the kind-name argument in each
#: prefixed method's signature, for emit-site resolution:
#: ``tx_access(proc, thread, cycle, rw, ...)`` -> index 3, etc.
KIND_ARG_INDEX: Mapping[str, int] = {
    "tx_access": 3,
    "overflow": 2,
    "sched": 2,
    "coherence": 2,
    "watchdog": 1,
    "degrade": 1,
    "metrics": 1,
}

#: Keyword name of the kind argument (emit sites may pass it by name).
KIND_ARG_NAME: Mapping[str, str] = {
    "tx_access": "rw",
    "overflow": "what",
    "sched": "what",
    "coherence": "msg",
    "watchdog": "what",
    "degrade": "what",
    "metrics": "what",
}


def is_registered(kind: str) -> bool:
    """True when ``kind`` is a documented tracer event."""
    return kind in EVENT_REGISTRY
