"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and JSONL.

The Chrome format (loadable at https://ui.perfetto.dev or
``chrome://tracing``) maps the simulation onto one process with one
track per processor:

* transaction attempts become complete (``ph: "X"``) slices on the
  processor that began them, named ``tx <thread>#<incarnation>`` and
  colored by outcome (committed vs aborted);
* conflicts, alerts, aborts and scheduler actions become instant
  (``ph: "i"``) events;
* conflict stalls and overflow walks become their own short slices.

Cycle stamps are exported 1:1 as microsecond timestamps, so "1 us" in
the viewer is one simulated cycle.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional

from repro.obs.tracer import EventTracer, TraceEvent

#: Instant-event kinds surfaced as markers on the processor track.
_INSTANT_KINDS = {
    "conflict_detected",
    "aou_alert",
    "overflow_spill",
    "overflow_walk",
    "overflow_copyback",
    "tx_read",
    "tx_write",
    "preempt",
    "yield",
    "dispatch",
    "retire",
    "coh_request",
    "coh_response",
    "coh_evict",
}


def _instant(event: TraceEvent) -> Dict[str, object]:
    name = event.kind
    if event.cause:
        name = f"{name}:{event.cause}"
    elif event.data and "cst" in event.data:
        name = f"conflict {event.data['cst']}"
    return {
        "name": name,
        "ph": "i",
        "ts": event.cycle,
        "pid": 0,
        "tid": event.proc,
        "s": "t",
        "args": event.to_dict(),
    }


def to_chrome_trace(tracer: EventTracer, label: str = "repro") -> Dict[str, object]:
    """Build the ``trace_event`` JSON document for one traced run."""
    trace_events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"FlexTM simulation ({label})"},
        }
    ]
    num_procs = len(tracer.proc_cycles) or (
        1 + max((event.proc for event in tracer.events), default=0)
    )
    for proc in range(num_procs):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": proc,
                "args": {"name": f"proc {proc}"},
            }
        )

    #: thread id -> (begin cycle, begin proc, incarnation) of the open attempt.
    open_attempts: Dict[int, tuple] = {}
    for event in tracer.events:
        kind = event.kind
        if kind == "tx_begin":
            incarnation = (event.data or {}).get("incarnation", 0)
            open_attempts[event.thread] = (event.cycle, event.proc, incarnation)
        elif kind in ("tx_commit", "tx_abort"):
            begin = open_attempts.pop(event.thread, None)
            if begin is None:
                continue
            start, proc, incarnation = begin
            outcome = "commit" if kind == "tx_commit" else "abort"
            args: Dict[str, object] = {
                "thread": event.thread,
                "incarnation": incarnation,
                "outcome": outcome,
            }
            if kind == "tx_abort":
                args["cause"] = event.cause
                args["by"] = (event.data or {}).get("by", -1)
            trace_events.append(
                {
                    "name": f"tx {event.thread}#{incarnation} {outcome}",
                    "cat": "tx",
                    "ph": "X",
                    "ts": start,
                    "dur": max(1, event.cycle - start),
                    "pid": 0,
                    "tid": proc,
                    "args": args,
                    "cname": "thread_state_running" if outcome == "commit"
                    else "terrible",
                }
            )
        elif kind == "conflict_stall":
            trace_events.append(
                {
                    "name": "stall",
                    "cat": "conflict",
                    "ph": "X",
                    "ts": max(0, event.cycle - event.dur),
                    "dur": max(1, event.dur),
                    "pid": 0,
                    "tid": event.proc,
                    "args": event.to_dict(),
                }
            )
        elif kind in _INSTANT_KINDS:
            trace_events.append(_instant(event))
    # Attempts still open when the run ended: emit them up to the final
    # cycle of their processor so the timeline shows the cut-off work.
    for thread, (start, proc, incarnation) in sorted(open_attempts.items()):
        end = tracer.proc_cycles[proc] if proc < len(tracer.proc_cycles) else start + 1
        trace_events.append(
            {
                "name": f"tx {thread}#{incarnation} unfinished",
                "cat": "tx",
                "ph": "X",
                "ts": start,
                "dur": max(1, end - start),
                "pid": 0,
                "tid": proc,
                "args": {"thread": thread, "incarnation": incarnation,
                         "outcome": "unfinished"},
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.obs",
            "events_recorded": len(tracer.events),
            "events_dropped": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: EventTracer, path: str, label: str = "repro") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer, label=label), handle)


def to_jsonl(tracer: EventTracer) -> Iterator[str]:
    """One compact JSON object per event, in emission order."""
    for event in tracer.events:
        yield json.dumps(event.to_dict(), separators=(",", ":"))


def write_jsonl(tracer: EventTracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for line in to_jsonl(tracer):
            handle.write(line)
            handle.write("\n")


def validate_chrome_trace(document: Dict[str, object]) -> Optional[str]:
    """Schema check for the ``trace_event`` JSON; returns an error or None.

    Used by the trace CLI (post-write sanity) and the schema tests.
    """
    if not isinstance(document, dict):
        return "document is not an object"
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return "traceEvents missing or not a list"
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            return f"event {index} is not an object"
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                return f"event {index} missing {key!r}"
        phase = event["ph"]
        if phase not in ("M", "X", "i", "b", "e"):
            return f"event {index} has unknown phase {phase!r}"
        if phase != "M" and "ts" not in event:
            return f"event {index} missing 'ts'"
        if phase == "X":
            if "dur" not in event or event["dur"] < 0:
                return f"event {index} missing non-negative 'dur'"
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            return f"event {index} missing instant scope 's'"
    return None
