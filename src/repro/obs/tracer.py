"""Transaction-lifecycle tracing (the observability tentpole).

Every layer of the simulator reports structured, cycle-stamped events
through a :class:`Tracer`.  Two implementations exist:

* :class:`NullTracer` — the default.  ``enabled`` is ``False`` and every
  call site guards with ``if tracer.enabled:``, so the hot path pays one
  attribute read per potential event and benchmarks are unaffected.
* :class:`EventTracer` — records :class:`TraceEvent` entries in emission
  order.  Per-processor streams are cycle-monotonic (each processor's
  clock only moves forward), which is what the cycle-attribution
  profiler and the exporters rely on.

Tracing is purely observational: attaching an :class:`EventTracer`
never changes a single simulated cycle, so a traced run reproduces the
untraced run bit for bit (tests/obs/test_trace_integration.py).

Event taxonomy (the ``kind`` field of :class:`TraceEvent`):

========================  =====================================================
``tx_begin``              transaction attempt starts (thread, incarnation)
``tx_commit``             attempt committed
``tx_abort``              attempt aborted (``cause`` + wounding processor)
``tx_read`` / ``tx_write``  sampled transactional data accesses
``conflict_detected``     a CST-setting response (R-W / W-R / W-W / SI)
``aou_alert``             alert-on-update delivery (line + reason)
``conflict_stall``        cycles spent waiting on an enemy (duration)
``overflow_spill``        TMI eviction walked into the overflow table
``overflow_walk``         OT refill walk on an L1 miss
``overflow_copyback``     post-commit OT drain (controller-overlapped)
``preempt`` / ``yield``   scheduler took the core away / thread gave it up
``dispatch`` / ``retire``  thread installed on a core / finished for good
``coh_request``           directory request (type, line, grant, nack)
``coh_response``          signature-qualified forwarded response
``coh_evict``             L1 eviction (victimized line + state)
``watchdog_*``            liveness-watchdog ladder (escalate / backoff_boost /
                          forced_abort / recover)
``degrade_*``             degradation-ladder actions (escalate / policy_flip /
                          rotate / irrevocable_grant / irrevocable_drain /
                          irrevocable_release / recover)
``metrics_*``             metrics-hub pressure samples (signature fill / FP /
                          OT occupancy / CST density, cycle-stamped)
========================  =====================================================
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

#: CST kinds reported by ``conflict_detected`` events.  "SI" marks a
#: strong-isolation abort caused by a non-transactional writer.
CST_KINDS = ("R-W", "W-R", "W-W", "SI")


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured, cycle-stamped observation."""

    kind: str
    cycle: int
    proc: int
    thread: int = -1
    line: int = -1
    dur: int = 0
    cause: str = ""
    #: Event-specific payload (responder, CST kind, grant state, ...).
    data: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "cycle": self.cycle,
            "proc": self.proc,
        }
        if self.thread >= 0:
            out["thread"] = self.thread
        if self.line >= 0:
            out["line"] = self.line
        if self.dur:
            out["dur"] = self.dur
        if self.cause:
            out["cause"] = self.cause
        if self.data:
            out.update(self.data)
        return out


class Tracer:
    """The tracing interface every simulator layer emits through.

    ``enabled`` is the contract: call sites test it before building any
    event payload, so a disabled tracer costs one attribute read.
    """

    enabled = False

    # -- transaction lifecycle -------------------------------------------------

    def tx_begin(self, proc: int, thread: int, cycle: int, system: str,
                 incarnation: int) -> None:
        pass

    def tx_commit(self, proc: int, thread: int, cycle: int) -> None:
        pass

    def tx_abort(self, proc: int, thread: int, cycle: int, cause: str,
                 by: int = -1, conflict: str = "") -> None:
        pass

    def tx_access(self, proc: int, thread: int, cycle: int, rw: str,
                  address: int) -> None:
        pass

    # -- conflicts and alerts --------------------------------------------------

    def conflict(self, proc: int, cycle: int, responder: int, cst_kind: str,
                 line: int) -> None:
        pass

    def aou_alert(self, proc: int, cycle: int, line: int, reason: str) -> None:
        pass

    def stall(self, proc: int, cycle: int, dur: int, enemy: int = -1,
              settled: bool = True) -> None:
        pass

    # -- overflow machinery ----------------------------------------------------

    def overflow(self, proc: int, cycle: int, what: str, line: int = -1,
                 dur: int = 0) -> None:
        pass

    # -- scheduling ------------------------------------------------------------

    def sched(self, proc: int, cycle: int, what: str, thread: int,
              status: str = "") -> None:
        pass

    # -- coherence -------------------------------------------------------------

    def coherence(self, proc: int, cycle: int, msg: str, line: int,
                  responder: int = -1, detail: str = "") -> None:
        pass

    # -- liveness watchdog -----------------------------------------------------

    def watchdog(self, cycle: int, what: str, **data) -> None:
        """Watchdog escalation ladder events (escalate/boost/abort/recover)."""
        pass

    # -- degradation ladder ------------------------------------------------------

    def degrade(self, cycle: int, what: str, **data) -> None:
        """Resilience-controller actions (escalate/flip/rotate/irrevocable)."""
        pass

    # -- metrics hub -------------------------------------------------------------

    def metrics(self, cycle: int, what: str, **data) -> None:
        """Metrics-hub observations (periodic pressure samples)."""
        pass

    # -- run boundary ----------------------------------------------------------

    def finalize(self, proc_cycles: List[int]) -> None:
        """Called once by the scheduler with each processor's final clock."""
        pass


class NullTracer(Tracer):
    """The zero-overhead default; every hook is a no-op."""

    __slots__ = ()


#: Shared do-nothing instance installed everywhere by default.
NULL_TRACER = NullTracer()


class EventTracer(Tracer):
    """Records structured events for profiling and export.

    Args:
        sample_memory: record one in N ``tx_read``/``tx_write`` events
            (1 = every access).  Lifecycle and conflict events are never
            sampled.
        trace_coherence: record per-message directory/L1 events.  These
            dominate event volume; disable for long runs.
        max_events: stop recording past this many events (``dropped``
            counts the overflow).  ``None`` = unbounded.
    """

    enabled = True

    def __init__(
        self,
        sample_memory: int = 1,
        trace_coherence: bool = True,
        max_events: Optional[int] = None,
    ):
        if sample_memory < 1:
            raise ValueError("sample_memory must be >= 1")
        self.sample_memory = sample_memory
        self.trace_coherence = trace_coherence
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0
        #: Final per-processor cycle counts (set by finalize()).
        self.proc_cycles: List[int] = []
        self._access_tick = 0

    # -- recording core --------------------------------------------------------

    def _record(self, event: TraceEvent) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # -- transaction lifecycle -------------------------------------------------

    def tx_begin(self, proc, thread, cycle, system, incarnation):
        self._record(TraceEvent("tx_begin", cycle, proc, thread,
                                data={"system": system, "incarnation": incarnation}))

    def tx_commit(self, proc, thread, cycle):
        self._record(TraceEvent("tx_commit", cycle, proc, thread))

    def tx_abort(self, proc, thread, cycle, cause, by=-1, conflict=""):
        data = {"by": by}
        if conflict:
            data["conflict"] = conflict
        self._record(TraceEvent("tx_abort", cycle, proc, thread, cause=cause,
                                data=data))

    def tx_access(self, proc, thread, cycle, rw, address):
        self._access_tick += 1
        if self._access_tick % self.sample_memory:
            return
        self._record(TraceEvent(f"tx_{rw}", cycle, proc, thread, line=address))

    # -- conflicts and alerts --------------------------------------------------

    def conflict(self, proc, cycle, responder, cst_kind, line):
        self._record(TraceEvent("conflict_detected", cycle, proc, line=line,
                                data={"responder": responder, "cst": cst_kind}))

    def aou_alert(self, proc, cycle, line, reason):
        self._record(TraceEvent("aou_alert", cycle, proc, line=line, cause=reason))

    def stall(self, proc, cycle, dur, enemy=-1, settled=True):
        self._record(TraceEvent("conflict_stall", cycle, proc, dur=dur,
                                data={"enemy": enemy, "settled": settled}))

    # -- overflow machinery ----------------------------------------------------

    def overflow(self, proc, cycle, what, line=-1, dur=0):
        self._record(TraceEvent(f"overflow_{what}", cycle, proc, line=line, dur=dur))

    # -- scheduling ------------------------------------------------------------

    def sched(self, proc, cycle, what, thread, status=""):
        self._record(TraceEvent(what, cycle, proc, thread, cause=status))

    # -- coherence -------------------------------------------------------------

    def coherence(self, proc, cycle, msg, line, responder=-1, detail=""):
        if not self.trace_coherence:
            return
        data = {"responder": responder} if responder >= 0 else None
        self._record(TraceEvent(msg, cycle, proc, line=line, cause=detail,
                                data=data))

    # -- liveness watchdog -----------------------------------------------------

    def watchdog(self, cycle, what, **data):
        self._record(TraceEvent(f"watchdog_{what}", cycle, proc=-1,
                                data=dict(data) if data else None))

    # -- degradation ladder ------------------------------------------------------

    def degrade(self, cycle, what, **data):
        self._record(TraceEvent(f"degrade_{what}", cycle, proc=-1,
                                data=dict(data) if data else None))

    # -- metrics hub -------------------------------------------------------------

    def metrics(self, cycle, what, **data):
        self._record(TraceEvent(f"metrics_{what}", cycle, proc=-1,
                                data=dict(data) if data else None))

    # -- run boundary ----------------------------------------------------------

    def finalize(self, proc_cycles):
        self.proc_cycles = list(proc_cycles)

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def per_processor(self) -> Dict[int, List[TraceEvent]]:
        """Events grouped by processor, preserving emission order."""
        grouped: Dict[int, List[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.proc, []).append(event)
        return grouped


def classify_conflict(access_kind, response_kind) -> Optional[str]:
    """Map a (requester access, responder signature hit) pair to a CST kind.

    The requester's view: its TLoad that hit a remote Wsig is an R-W
    conflict; its TStore against a remote Wsig is W-W; against an
    exposed read (remote Rsig) it is W-R.  Accepts the coherence enums
    or their string values (this module stays dependency-free).
    """
    access = getattr(access_kind, "value", access_kind)
    response = getattr(response_kind, "value", response_kind)
    if response == "Threatened":
        return "R-W" if access == "TLoad" else "W-W"
    if response == "Exposed-Read" and access == "TStore":
        return "W-R"
    return None
