"""Closed-form area model for FlexTM's hardware add-ons (Table 2).

The paper sized processor components from published die images and the
FlexTM additions with CACTI 6 at a uniform 65nm node.  We replace CACTI
with a small analytical model calibrated at the same node:

* **Signatures** — 2048-bit, 4-banked, separate read/write ports; the
  published numbers imply ~0.0165 mm^2 per signature, linear in bits.
  Each hardware context needs two (Rsig + Wsig).
* **CSTs** — three full-map bit-vector registers per context; register
  area is cells x bit width.
* **State bits** — T and A per L1 line, plus ``log2(threads)`` ID bits
  on an SMT to identify the TMI owner; the L1 grows by roughly
  ``extra_bits / line_data_bits`` (the state array is accessed in
  parallel with the data array, so latency is unaffected — Section 6's
  argument), including a transistor per bit for flash-clearing.
* **OT controller** — an FSM like Niagara-2's TSB walker plus buffers
  and MSHRs for 8 write-backs and 8 misses, sized by the L1 line.

The model's output is compared against the paper's published figures in
the Table 2 harness; agreement is within a few percent on signatures
and state bits and within modelling tolerance (~30%) on the small OT
controller, whose published numbers embed per-design datapath detail.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List


@dataclasses.dataclass(frozen=True)
class ProcessorSpec:
    """One 65nm processor from Table 2's 'Actual Die' section."""

    name: str
    smt_threads: int
    feature_nm: int
    die_mm2: float
    core_mm2: float
    l1d_mm2: float
    line_bytes: int
    l2_mm2: float


MEROM = ProcessorSpec("Merom", 1, 65, 143.0, 31.5, 1.8, 64, 49.6)
POWER6 = ProcessorSpec("Power6", 2, 65, 340.0, 53.0, 2.6, 128, 126.0)
NIAGARA2 = ProcessorSpec("Niagara-2", 8, 65, 342.0, 11.7, 0.4, 16, 92.0)

PROCESSORS: List[ProcessorSpec] = [MEROM, POWER6, NIAGARA2]

#: mm^2 for one 2048-bit 4-banked signature with separate R/W ports
#: (calibrated against the published 65nm CACTI numbers).
SIGNATURE_MM2_PER_2048_BITS = 0.0165
#: mm^2 per register-file bit cell at 65nm (CST registers).
REGISTER_CELL_MM2 = 2.0e-6
#: OT controller: FSM floor plus buffer area per byte (8 write-back +
#: 8 miss buffers, each one L1 line).
OT_FSM_MM2 = 0.005
OT_BUFFER_MM2_PER_BYTE = 1.45e-4
OT_BUFFER_LINES = 16


@dataclasses.dataclass
class AreaEstimate:
    """FlexTM add-on areas for one processor."""

    processor: str
    signature_mm2: float
    cst_registers: int
    cst_mm2: float
    ot_controller_mm2: float
    extra_state_bits: int
    state_bit_labels: str
    l1_increase_percent: float
    core_increase_percent: float

    def row(self) -> List[object]:
        return [
            self.processor,
            round(self.signature_mm2, 3),
            self.cst_registers,
            round(self.ot_controller_mm2, 3),
            f"{self.extra_state_bits}({self.state_bit_labels})",
            f"{self.core_increase_percent:.2f}%",
            f"{self.l1_increase_percent:.2f}%",
        ]


class FlexTMAreaModel:
    """Computes Table 2's 'CACTI Prediction' section."""

    def __init__(self, signature_bits: int = 2048, num_processors: int = 16):
        self.signature_bits = signature_bits
        self.num_processors = num_processors

    def id_bits(self, spec: ProcessorSpec) -> int:
        """Bits to name the SMT context owning a TMI line."""
        if spec.smt_threads <= 1:
            return 0
        return int(math.ceil(math.log2(spec.smt_threads)))

    def extra_state_bits(self, spec: ProcessorSpec) -> int:
        """T + A per line, plus owner ID bits on an SMT."""
        return 2 + self.id_bits(spec)

    def state_bit_labels(self, spec: ProcessorSpec) -> str:
        return "T,A" if spec.smt_threads <= 1 else "T,A,ID"

    def signature_area(self, spec: ProcessorSpec) -> float:
        """Rsig + Wsig per hardware context, linear in signature bits."""
        per_signature = SIGNATURE_MM2_PER_2048_BITS * self.signature_bits / 2048.0
        return 2 * spec.smt_threads * per_signature

    def cst_registers(self, spec: ProcessorSpec) -> int:
        """Three full-map registers per hardware context."""
        return 3 * spec.smt_threads

    def cst_area(self, spec: ProcessorSpec) -> float:
        return self.cst_registers(spec) * self.num_processors * REGISTER_CELL_MM2

    def ot_controller_area(self, spec: ProcessorSpec) -> float:
        buffer_bytes = OT_BUFFER_LINES * spec.line_bytes
        return OT_FSM_MM2 + OT_BUFFER_MM2_PER_BYTE * buffer_bytes

    def l1_increase_percent(self, spec: ProcessorSpec) -> float:
        """State-array growth relative to the line's data bits.

        Includes the extra transistor per bit for flash-clear support;
        the data array dominates L1 area, so the percentage is simply
        extra bits over data bits.
        """
        data_bits = spec.line_bytes * 8
        return 100.0 * self.extra_state_bits(spec) / data_bits

    def core_increase_percent(self, spec: ProcessorSpec) -> float:
        l1_extra_mm2 = spec.l1d_mm2 * self.l1_increase_percent(spec) / 100.0
        total = (
            self.signature_area(spec)
            + self.cst_area(spec)
            + self.ot_controller_area(spec)
            + l1_extra_mm2
        )
        return 100.0 * total / spec.core_mm2

    def estimate(self, spec: ProcessorSpec) -> AreaEstimate:
        return AreaEstimate(
            processor=spec.name,
            signature_mm2=self.signature_area(spec),
            cst_registers=self.cst_registers(spec),
            cst_mm2=self.cst_area(spec),
            ot_controller_mm2=self.ot_controller_area(spec),
            extra_state_bits=self.extra_state_bits(spec),
            state_bit_labels=self.state_bit_labels(spec),
            l1_increase_percent=self.l1_increase_percent(spec),
            core_increase_percent=self.core_increase_percent(spec),
        )

    def table(self) -> Dict[str, AreaEstimate]:
        return {spec.name: self.estimate(spec) for spec in PROCESSORS}


#: The paper's published Table 2 values, for comparison in harnesses
#: and EXPERIMENTS.md.
PUBLISHED_TABLE2 = {
    "Merom": {
        "signature_mm2": 0.033,
        "cst_registers": 3,
        "ot_controller_mm2": 0.16,
        "extra_state_bits": 2,
        "core_increase_percent": 0.60,
        "l1_increase_percent": 0.35,
    },
    "Power6": {
        "signature_mm2": 0.066,
        "cst_registers": 6,
        "ot_controller_mm2": 0.24,
        "extra_state_bits": 3,
        "core_increase_percent": 0.59,
        "l1_increase_percent": 0.29,
    },
    "Niagara-2": {
        "signature_mm2": 0.26,
        "cst_registers": 24,
        "ot_controller_mm2": 0.035,
        "extra_state_bits": 5,
        "core_increase_percent": 2.60,
        "l1_increase_percent": 3.90,
    },
}
