"""Area/complexity analysis (Section 6, Table 2)."""

from repro.area.model import (
    AreaEstimate,
    FlexTMAreaModel,
    ProcessorSpec,
    MEROM,
    POWER6,
    NIAGARA2,
    PROCESSORS,
)

__all__ = [
    "AreaEstimate",
    "FlexTMAreaModel",
    "ProcessorSpec",
    "MEROM",
    "POWER6",
    "NIAGARA2",
    "PROCESSORS",
]
