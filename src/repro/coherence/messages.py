"""Coherence request/response vocabulary (Section 3.3).

Requestors issue three request types:

* ``GETS``  — read miss (Load or TLoad): wants a sharable copy.
* ``GETX``  — ordinary write miss/upgrade (Store): wants exclusivity.
* ``TGETX`` — transactional store miss/upgrade (TStore): wants a copy
  that may be speculatively updated; registers the requestor as one of
  possibly *many* owners at the directory.

Responders consult their signatures (Figure 1's response table):

=========  ================  ================
Request    hit in Wsig       hit in Rsig only
=========  ================  ================
GETX       Threatened        Invalidated
TGETX      Threatened        Exposed-Read
GETS       Threatened        Shared
=========  ================  ================

``Threatened`` signals a write conflict, ``Exposed-Read`` a read
conflict; both cause the responder and (on receipt) the requestor to set
the corresponding CST bits.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Tuple


class AccessKind(enum.Enum):
    """Processor-side memory operations."""

    LOAD = "Load"
    STORE = "Store"
    TLOAD = "TLoad"
    TSTORE = "TStore"

    @property
    def is_transactional(self) -> bool:
        return self in (AccessKind.TLOAD, AccessKind.TSTORE)

    @property
    def is_write(self) -> bool:
        return self in (AccessKind.STORE, AccessKind.TSTORE)


class RequestType(enum.Enum):
    """Messages from an L1 to the directory."""

    GETS = "GETS"
    GETX = "GETX"
    TGETX = "TGETX"

    @property
    def is_exclusive(self) -> bool:
        """GETX/TGETX — the 'X' set in Figure 1."""
        return self in (RequestType.GETX, RequestType.TGETX)


class ResponseKind(enum.Enum):
    """Signature-qualified responses from a remote L1."""

    SHARED = "Shared"
    INVALIDATED = "Invalidated"
    THREATENED = "Threatened"
    EXPOSED_READ = "Exposed-Read"

    @property
    def signals_conflict(self) -> bool:
        """True for responses produced by a signature hit.

        ``INVALIDATED`` is included: it is only generated when a
        non-transactional GETX hits a responder's Rsig (plain MESI
        invalidations return no signature response at all), and strong
        isolation requires the requestor to abort that responder.
        """
        return self in (
            ResponseKind.THREATENED,
            ResponseKind.EXPOSED_READ,
            ResponseKind.INVALIDATED,
        )


@dataclasses.dataclass
class AccessResult:
    """Outcome of one processor memory operation.

    Attributes:
        cycles: latency charged to the requesting core.
        conflicts: (responder_processor, ResponseKind) pairs for every
            conflicting response; empty when the access was clean.
        state: resulting local L1 state of the line.
        hit: True when the access was satisfied without a directory
            request.
        threatened_uncached: True when a non-transactional load observed
            a Threatened response and therefore left the line uncached
            (strong-isolation read path, Section 3.5).
        nacked: True when the access was refused (committed-OT copy-back
            in flight) and must be retried by the issuer.
        aborted_remote: processors whose transactions were aborted as a
            side effect (strong isolation on non-transactional stores).
    """

    cycles: int = 0
    conflicts: List[Tuple[int, ResponseKind]] = dataclasses.field(default_factory=list)
    state: "object" = None
    hit: bool = False
    threatened_uncached: bool = False
    nacked: bool = False
    aborted_remote: List[int] = dataclasses.field(default_factory=list)

    @property
    def conflicted(self) -> bool:
        return bool(self.conflicts)
