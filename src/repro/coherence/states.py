"""Cache-line states: MESI plus the two PDI additions.

Figure 1's encoding table::

        M bit  V bit  T bit
    I     0      0      0
    S     0      1      0
    M     1      0      0
    E     1      1      0
    TMI   1      0      1
    TI    0      0      1

TMI is "M with the T bit" — a speculatively written line whose value
must not escape until commit; it reverts to M on commit and I on abort.
TI is "I with the T bit" — a transactional read of a line some remote
processor holds in TMI; the local copy is the *pre-speculative* value
and must revert to I on either commit or abort (the remote commit could
make it stale).
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """Stable L1 line states of the TMESI protocol."""

    I = "I"
    S = "S"
    E = "E"
    M = "M"
    TMI = "TMI"
    TI = "TI"

    @property
    def encoding(self) -> tuple[int, int, int]:
        """(M bit, V bit, T bit) hardware encoding from Figure 1."""
        return _ENCODING[self]

    @property
    def is_valid(self) -> bool:
        """Line holds usable data (everything except I)."""
        return self is not LineState.I

    @property
    def is_transactional(self) -> bool:
        """T bit set (TMI or TI)."""
        return self in (LineState.TMI, LineState.TI)

    @property
    def readable(self) -> bool:
        """A local load can be satisfied from this state."""
        return self in (LineState.S, LineState.E, LineState.M, LineState.TMI, LineState.TI)

    @property
    def writable(self) -> bool:
        """A local (non-transactional) store can hit in this state."""
        return self in (LineState.E, LineState.M)

    @property
    def tstore_hits(self) -> bool:
        """A transactional store can proceed without a request."""
        return self is LineState.TMI

    def after_commit(self) -> "LineState":
        """Flash-commit transform: TMI -> M, TI -> I, others unchanged."""
        if self is LineState.TMI:
            return LineState.M
        if self is LineState.TI:
            return LineState.I
        return self

    def after_abort(self) -> "LineState":
        """Flash-abort transform: TMI -> I, TI -> I, others unchanged."""
        if self in (LineState.TMI, LineState.TI):
            return LineState.I
        return self


_ENCODING = {
    LineState.I: (0, 0, 0),
    LineState.S: (0, 1, 0),
    LineState.M: (1, 0, 0),
    LineState.E: (1, 1, 0),
    LineState.TMI: (1, 0, 1),
    LineState.TI: (0, 0, 1),
}
