"""Directory-based TMESI coherence (Section 3.3, Figure 1).

The base protocol is an SGI-Origin-style MESI with the directory held at
the shared L2.  FlexTM adds two stable states — **TMI** (transactionally
modified, incoherent: a speculative write buffered in the private L1)
and **TI** (transactionally invalid: a read of a remotely-threatened
line, valid only until commit/abort) — plus signature-derived response
types (``Threatened``, ``Exposed-Read``) and multiple-owner tracking at
the directory.
"""

from repro.coherence.states import LineState
from repro.coherence.messages import AccessKind, RequestType, ResponseKind, AccessResult

__all__ = [
    "LineState",
    "AccessKind",
    "RequestType",
    "ResponseKind",
    "AccessResult",
    "L1Controller",
    "Directory",
    "DirectoryEntry",
]

_LAZY = {
    "L1Controller": ("repro.coherence.l1", "L1Controller"),
    "Directory": ("repro.coherence.directory", "Directory"),
    "DirectoryEntry": ("repro.coherence.directory", "DirectoryEntry"),
}


def __getattr__(name):
    """Lazy exports for classes that depend on :mod:`repro.memory`.

    ``repro.memory.cache`` imports :class:`LineState` from this package;
    importing the L1/directory controllers eagerly here would close an
    import cycle through that module.
    """
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
