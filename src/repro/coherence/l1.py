"""The private L1 cache controller (Figure 1 state machine).

Processor-side behaviour (Load/Store/TLoad/TStore against the six
stable states), remote-request handling with signature-qualified
responses, eviction policy (silent for E/S/TI, write-back for M,
overflow-table spill for TMI), the flash commit/abort sweeps, and the
alert-on-update machinery all live here.

TM-specific policy is injected through a small hook object so that the
coherence layer itself stays TM-agnostic — the decoupling the paper
argues for.  The hooks are:

``classify_remote(requestor, req_type, line_address)``
    Run the signature checks of Figure 1's response table and update the
    responder-side CSTs; returns a :class:`ResponseKind` or ``None``
    when neither signature hits.
``holds_overflow(line_address)``
    True when a TMI line for this address lives in the overflow table
    (the L1 must still count as retaining the line).
``spill_tmi(line_address)``
    Move an evicted TMI line into the overflow table; returns the cycle
    cost.
``on_alert(line_address, reason)``
    Deliver an alert-on-update trap (marked line invalidated/evicted).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.coherence.directory import Directory
from repro.coherence.messages import AccessKind, AccessResult, RequestType, ResponseKind
from repro.coherence.states import LineState
from repro.errors import ProtocolError
from repro.memory.cache import CacheArray, CacheLine
from repro.memory.victim import VictimBuffer
from repro.obs.tracer import NULL_TRACER
from repro.params import SystemParams
from repro.sim.stats import StatsRegistry


class NullL1Hooks:
    """Default hooks: no signatures, no overflow table, no alerts."""

    def classify_remote(self, requestor: int, req_type: RequestType, line_address: int):
        return None

    def holds_overflow(self, line_address: int) -> bool:
        return False

    def spill_tmi(self, line_address: int) -> int:
        raise ProtocolError("TMI eviction without an overflow-table hook")

    def on_alert(self, line_address: int, reason: str) -> None:
        pass


class L1Controller:
    """One processor's private L1 + victim buffer + protocol engine."""

    def __init__(
        self,
        proc_id: int,
        params: SystemParams,
        directory: Directory,
        hooks=None,
        stats: Optional[StatsRegistry] = None,
        tmi_to_victim: bool = False,
    ):
        self.proc_id = proc_id
        self.params = params
        self.directory = directory
        self.hooks = hooks or NullL1Hooks()
        self.stats = stats or StatsRegistry()
        #: Observability hook (replaced by FlexTMMachine.set_tracer).
        self.tracer = NULL_TRACER
        #: Fault injection (installed by FlexTMMachine.set_chaos).
        self.chaos = None
        #: Metrics hub (installed by FlexTMMachine.set_metrics).
        self.metrics = None
        self.array = CacheArray(params.l1.num_sets, params.l1.associativity)
        self.victims = VictimBuffer(params.victim_buffer_entries)
        #: E7 knob — route TMI evictions into an unbounded side buffer
        #: instead of the OT (the paper's "ideal" overflow machine).
        #: Only speculative lines get the unbounded treatment; plain
        #: lines keep the normal victim buffer.
        self.tmi_to_victim = tmi_to_victim
        self.tmi_victims = VictimBuffer(None) if tmi_to_victim else None
        #: Set of line addresses pinned against eviction (OT remap aid).
        self._pinned = set()
        #: Cycles accumulated by evictions performed inside an access.
        self._eviction_cycles = 0

    # ------------------------------------------------------------------ local

    def access(self, kind: AccessKind, line_address: int) -> AccessResult:
        """Perform one processor memory operation; returns the outcome."""
        self.stats.counter(f"l1.access.{kind.value}").increment()
        self._eviction_cycles = 0
        if self.chaos is not None and self.chaos.enabled and self.chaos.l1_pressure():
            self._chaos_evict(line_address)
        line = self.array.lookup(line_address)
        if line is not None:
            hit = self._try_hit(kind, line)
            if hit is None:
                hit = self._upgrade(kind, line)
        else:
            refill = self.victims.extract(line_address)
            if refill is None and self.tmi_victims is not None:
                refill = self.tmi_victims.extract(line_address)
            if refill is not None:
                line = self._install(line_address, refill)
                self.stats.counter("l1.victim_hits").increment()
                hit = self._try_hit(kind, line)
                if hit is None:
                    hit = self._upgrade(kind, line)
                hit.cycles += 1  # victim-buffer lookup penalty
            else:
                hit = self._miss(kind, line_address)
        hit.cycles += self._eviction_cycles
        self._eviction_cycles = 0
        return hit

    def _try_hit(self, kind: AccessKind, line: CacheLine) -> Optional[AccessResult]:
        """Resolve the access locally when the state permits."""
        state = line.state
        if kind in (AccessKind.LOAD, AccessKind.TLOAD) and state.readable:
            return AccessResult(cycles=self.params.l1_hit_cycles, state=state, hit=True)
        if kind is AccessKind.TSTORE and state is LineState.TMI:
            return AccessResult(cycles=self.params.l1_hit_cycles, state=state, hit=True)
        if kind is AccessKind.STORE:
            if state is LineState.M:
                return AccessResult(cycles=self.params.l1_hit_cycles, state=state, hit=True)
            if state is LineState.E:
                line.state = LineState.M  # silent upgrade
                return AccessResult(cycles=self.params.l1_hit_cycles, state=LineState.M, hit=True)
            if state is LineState.TMI:
                raise ProtocolError("non-transactional Store to a local TMI line")
        return None

    def _upgrade(self, kind: AccessKind, line: CacheLine) -> AccessResult:
        """In-place state upgrades that need protocol actions."""
        state = line.state
        if kind is AccessKind.TSTORE:
            if state is LineState.M:
                # Figure 1: M --TStore/Flush--> TMI.  The modified data
                # is written back so later Loads see the latest
                # non-speculative version.  The write-back is *posted*
                # (drains through the write buffer), so the store only
                # pays a couple of cycles, not the L2 round trip.
                self.directory.writeback(self.proc_id, line.line_address)
                line.state = LineState.TMI
                line.t_bit = True
                self.stats.counter("l1.m_to_tmi_flush").increment()
                return AccessResult(
                    cycles=2 + self.params.l1_hit_cycles, state=LineState.TMI, hit=True
                )
            if state in (LineState.E, LineState.S, LineState.TI):
                return self._request(AccessKind.TSTORE, RequestType.TGETX, line.line_address)
        if kind is AccessKind.STORE and state in (LineState.S, LineState.TI):
            return self._request(AccessKind.STORE, RequestType.GETX, line.line_address)
        raise ProtocolError(f"no upgrade path for {kind} in {state}")

    def _miss(self, kind: AccessKind, line_address: int) -> AccessResult:
        request = {
            AccessKind.LOAD: RequestType.GETS,
            AccessKind.TLOAD: RequestType.GETS,
            AccessKind.STORE: RequestType.GETX,
            AccessKind.TSTORE: RequestType.TGETX,
        }[kind]
        self.stats.counter("l1.misses").increment()
        return self._request(kind, request, line_address)

    def _request(self, kind: AccessKind, request: RequestType, line_address: int) -> AccessResult:
        outcome = self.directory.request(self.proc_id, request, line_address)
        result = AccessResult(
            cycles=outcome.cycles + self.params.l1_hit_cycles,
            conflicts=outcome.conflicts,
            state=outcome.grant,
        )
        if outcome.nacked:
            result.nacked = True
            return result
        grant = outcome.grant
        if grant is LineState.TI:
            if kind is AccessKind.TLOAD:
                self._install_or_update(line_address, LineState.TI, t_bit=True)
            else:
                # Strong isolation: a plain Load that was threatened
                # reads the committed value but leaves the line uncached
                # so that it serializes before the writing transaction.
                existing = self.array.peek(line_address)
                if existing is not None and not existing.state.is_transactional:
                    self._drop_line(existing)
                result.threatened_uncached = True
                result.state = LineState.I
        else:
            self._install_or_update(line_address, grant, t_bit=grant is LineState.TMI)
        return result

    def _install_or_update(self, line_address: int, state: LineState, t_bit: bool) -> None:
        existing = self.array.peek(line_address)
        if existing is not None:
            existing.state = state
            existing.t_bit = t_bit
            return
        self._install(line_address, state)

    def _install(self, line_address: int, state: LineState) -> CacheLine:
        victim = self.array.choose_victim(line_address, pinned=lambda l: l.line_address in self._pinned)
        if victim is not None:
            self.evict(victim)
        line = self.array.install(line_address, state)
        line.t_bit = state.is_transactional
        return line

    # --------------------------------------------------------------- eviction

    def evict(self, line: CacheLine) -> None:
        """Apply the per-state eviction policy to a chosen victim."""
        state = line.state
        if self.tracer.enabled:
            clock = getattr(self.hooks, "clock", None)
            self.tracer.coherence(
                self.proc_id,
                clock.now if clock is not None else 0,
                "coh_evict",
                line.line_address,
                detail=state.name,
            )
        if self.metrics is not None:
            clock = getattr(self.hooks, "clock", None)
            self.metrics.on_evict(
                self.proc_id, clock.now if clock is not None else 0
            )
        if line.a_bit:
            # Tracking for an ALoaded line is lost on eviction; alert.
            self.hooks.on_alert(line.line_address, "evicted")
        if state is LineState.TMI:
            if self.tmi_to_victim:
                self.tmi_victims.insert(line.line_address, LineState.TMI)
            else:
                self._eviction_cycles += self.hooks.spill_tmi(line.line_address)
                self.stats.counter("l1.tmi_overflows").increment()
        elif state is LineState.M:
            self._eviction_cycles += self.directory.writeback(self.proc_id, line.line_address)
            self.victims.insert(line.line_address, LineState.E)
        else:
            # Silent eviction of E/S/TI: the directory keeps us listed,
            # so conflict-detecting forwards continue to arrive.
            self.victims.insert(line.line_address, state)
            self.stats.counter("l1.silent_evictions").increment()
        self.array.remove(line.line_address)

    def _chaos_evict(self, line_address: int) -> None:
        """Cache-pressure fault: evict one unpinned line, policy intact.

        Exercises the TMI-spill and silent-eviction paths under
        adversarial pressure; the victim goes through :meth:`evict`, so
        every state keeps its architected eviction behaviour.
        """
        if self.chaos is None:
            return
        candidates = [
            line
            for line in self.array.valid_lines()
            if line.line_address != line_address
            and line.line_address not in self._pinned
        ]
        if not candidates:
            return
        victim = candidates[self.chaos.pick(len(candidates))]
        self.stats.counter("l1.chaos_evictions").increment()
        self.evict(victim)

    def pin(self, line_address: int) -> None:
        """Protect a line from eviction (OT remap service routine)."""
        self._pinned.add(line_address)

    def unpin(self, line_address: int) -> None:
        self._pinned.discard(line_address)

    # ----------------------------------------------------------------- remote

    def handle_forwarded(
        self, requestor: int, req_type: RequestType, line_address: int
    ) -> Tuple[Optional[ResponseKind], bool]:
        """Service a request forwarded by the directory.

        Returns ``(response_kind, retained)`` where ``retained`` tells
        the directory whether we still hold a stake in the line.
        """
        kind = self.hooks.classify_remote(requestor, req_type, line_address)
        line = self.array.peek(line_address)
        in_victims = self.victims.contains(line_address)

        if line is not None and line.state is LineState.TMI:
            # TMI lines never yield: the speculative value stays private
            # and the response (Threatened, via Wsig) was computed above.
            return kind, True

        if req_type.is_exclusive:
            if line is not None:
                if line.state is LineState.M:
                    self.stats.counter("l1.remote_flushes").increment()
                self._drop_line(line)
            if in_victims:
                self.victims.invalidate(line_address)
        else:  # GETS
            if line is not None:
                if line.state is LineState.M:
                    self.stats.counter("l1.remote_flushes").increment()
                    line.state = LineState.S
                elif line.state is LineState.E:
                    line.state = LineState.S
            elif in_victims:
                refill = self.victims.extract(line_address)
                if refill in (LineState.M, LineState.E):
                    refill = LineState.S
                self.victims.insert(line_address, refill)

        # A responder whose signature matched retains a conflict-
        # detection stake in the line even when its cached copy is gone
        # (invalidated or evicted): the directory must keep it listed so
        # *future* requestors still reach these signatures — the
        # invariant behind Section 4.1's sticky directory information.
        retained = (
            kind is not None
            or self.array.peek(line_address) is not None
            or self.victims.contains(line_address)
            or (self.tmi_victims is not None and self.tmi_victims.contains(line_address))
            or self.hooks.holds_overflow(line_address)
        )
        return kind, retained

    def _drop_line(self, line: CacheLine) -> None:
        if line.a_bit:
            self.hooks.on_alert(line.line_address, "invalidated")
        self.array.remove(line.line_address)

    # ------------------------------------------------------------- AOU / PDI

    def aload(self, line_address: int) -> AccessResult:
        """Mark a line for alert-on-update (loads it if necessary)."""
        result = self.access(AccessKind.LOAD, line_address)
        line = self.array.peek(line_address)
        if line is not None:
            line.a_bit = True
        return result

    def arelease(self, line_address: int) -> None:
        """Clear the alert mark."""
        line = self.array.peek(line_address)
        if line is not None:
            line.a_bit = False

    def flash_commit(self) -> int:
        """CAS-Commit success path: TMI -> M, TI -> I (flash-clear T bits)."""
        swept = self.array.flash_transform(self._commit_line)
        self._sweep_victims(commit=True)
        return swept

    def flash_abort(self) -> int:
        """Abort path: TMI -> I, TI -> I."""
        swept = self.array.flash_transform(self._abort_line)
        self._sweep_victims(commit=False)
        return swept

    @staticmethod
    def _commit_line(line: CacheLine) -> None:
        line.state = line.state.after_commit()
        line.t_bit = False

    @staticmethod
    def _abort_line(line: CacheLine) -> None:
        line.state = line.state.after_abort()
        line.t_bit = False

    def _sweep_victims(self, commit: bool) -> None:
        """The flash transforms also cover the victim buffers."""
        stale = []
        for address in list(self.victims._entries):
            state = self.victims._entries[address]
            new_state = state.after_commit() if commit else state.after_abort()
            if new_state is LineState.I:
                stale.append(address)
            elif new_state is not state:
                self.victims._entries[address] = new_state
        for address in stale:
            self.victims.invalidate(address)
        if self.tmi_victims is not None:
            # The TMI side buffer drains entirely: on commit its values
            # are globally visible (the line is simply uncached now); on
            # abort they are discarded.
            self.tmi_victims.clear()

    def speculative_lines(self):
        """All locally buffered TMI lines (cache + TMI side buffer)."""
        for line in self.array.valid_lines():
            if line.state is LineState.TMI:
                yield line.line_address
        if self.tmi_victims is not None:
            for address, state in list(self.tmi_victims._entries.items()):
                if state is LineState.TMI:
                    yield address
