"""Machine-readable TMESI protocol specification (Figure 1 / Figure 3).

The tables in this module transcribe the paper's protocol figures
(Shriraman et al., TR #925 / ISCA 2008) into data that tools can
consume:

* the ``simcheck`` static pass (``repro.analysis.rules_protocol``)
  extracts the actual (state x message) dispatch from
  ``coherence/l1.py``, ``coherence/directory.py`` and
  ``core/processor.py`` and diffs it against these tables, reporting
  unhandled pairs and dead transitions at lint time;
* ``tests/coherence/test_spec_crosscheck.py`` pins the executable
  :class:`~repro.coherence.states.LineState` predicates and encodings
  against the same tables, so the spec, the enum, and the controllers
  can never drift apart silently.

Everything is expressed over plain strings (state / message / access
names) so the spec itself imports nothing from the implementation —
the cross-checks are what tie the two together.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

# --------------------------------------------------------------------------- #
# Vocabulary

#: The six stable L1 states of Figure 1.
STATES: Tuple[str, ...] = ("I", "S", "E", "M", "TMI", "TI")

#: Processor-side memory operations.
ACCESSES: Tuple[str, ...] = ("Load", "Store", "TLoad", "TStore")

#: L1 -> directory request messages (Section 3.3).
REQUESTS: Tuple[str, ...] = ("GETS", "GETX", "TGETX")

#: Signature-qualified responses a remote L1 can return.
RESPONSES: Tuple[str, ...] = ("Shared", "Invalidated", "Threatened", "Exposed-Read")

# --------------------------------------------------------------------------- #
# Figure 1: the (M, V, T) hardware encoding table.

ENCODINGS: Dict[str, Tuple[int, int, int]] = {
    "I": (0, 0, 0),
    "S": (0, 1, 0),
    "M": (1, 0, 0),
    "E": (1, 1, 0),
    "TMI": (1, 0, 1),
    "TI": (0, 0, 1),
}

#: State predicates used by the controllers; ``simcheck`` expands
#: ``state.<predicate>`` conditions through this table, and the
#: cross-check test pins them against the ``LineState`` properties.
STATE_PREDICATES: Dict[str, FrozenSet[str]] = {
    "is_valid": frozenset({"S", "E", "M", "TMI", "TI"}),
    "is_transactional": frozenset({"TMI", "TI"}),  # T bit set
    "readable": frozenset({"S", "E", "M", "TMI", "TI"}),
    "writable": frozenset({"E", "M"}),
    "tstore_hits": frozenset({"TMI"}),
}

#: Access-kind predicates (``AccessKind`` properties).
ACCESS_PREDICATES: Dict[str, FrozenSet[str]] = {
    "is_transactional": frozenset({"TLoad", "TStore"}),
    "is_write": frozenset({"Store", "TStore"}),
}

#: Request-type predicates (``RequestType`` properties).
REQUEST_PREDICATES: Dict[str, FrozenSet[str]] = {
    "is_exclusive": frozenset({"GETX", "TGETX"}),
}

# --------------------------------------------------------------------------- #
# Local access dispatch: what the L1 must do for every
# (access kind x stable state) pair.  Outcome vocabulary:
#
# ``local``    satisfied without a directory request (plain hits, the
#              silent E->M Store upgrade, the TMI TStore hit, and the
#              M --TStore/Flush--> TMI transition of Figure 1);
# ``request``  a directory request is issued (misses and upgrades that
#              need new permissions — GETS / GETX / TGETX);
# ``error``    architecturally illegal; the controller must raise
#              (a non-transactional Store hitting a local TMI line
#              would corrupt the pre-speculative image).

LOCAL_DISPATCH: Dict[Tuple[str, str], str] = {
    # Load: any valid copy satisfies it (TMI sees its own speculation,
    # TI holds the pre-speculative value).
    ("Load", "I"): "request",
    ("Load", "S"): "local",
    ("Load", "E"): "local",
    ("Load", "M"): "local",
    ("Load", "TMI"): "local",
    ("Load", "TI"): "local",
    # TLoad: identical hit behaviour; misses go out as GETS.
    ("TLoad", "I"): "request",
    ("TLoad", "S"): "local",
    ("TLoad", "E"): "local",
    ("TLoad", "M"): "local",
    ("TLoad", "TMI"): "local",
    ("TLoad", "TI"): "local",
    # Store: E upgrades silently to M; S/TI need a GETX upgrade;
    # a Store to a local TMI line is a protocol violation.
    ("Store", "I"): "request",
    ("Store", "S"): "request",
    ("Store", "E"): "local",
    ("Store", "M"): "local",
    ("Store", "TMI"): "error",
    ("Store", "TI"): "request",
    # TStore: TMI hits; M flushes the non-speculative value and flips
    # to TMI locally (Figure 1's "TStore/Flush" arc); everything else
    # issues TGETX.
    ("TStore", "I"): "request",
    ("TStore", "S"): "request",
    ("TStore", "E"): "request",
    ("TStore", "M"): "local",
    ("TStore", "TMI"): "local",
    ("TStore", "TI"): "request",
}

#: The stable state a ``local`` dispatch outcome leaves behind, for
#: every ``local`` cell of :data:`LOCAL_DISPATCH`.  Only two arcs of
#: Figure 1 change state locally: the silent E->M Store upgrade and the
#: M --TStore/Flush--> TMI transition; every other local hit keeps its
#: state.  The model checker (``repro.analysis.modelcheck``) consumes
#: this table verbatim.
LOCAL_NEXT_STATE: Dict[Tuple[str, str], str] = {
    ("Load", "S"): "S",
    ("Load", "E"): "E",
    ("Load", "M"): "M",
    ("Load", "TMI"): "TMI",
    ("Load", "TI"): "TI",
    ("TLoad", "S"): "S",
    ("TLoad", "E"): "E",
    ("TLoad", "M"): "M",
    ("TLoad", "TMI"): "TMI",
    ("TLoad", "TI"): "TI",
    ("Store", "E"): "M",
    ("Store", "M"): "M",
    ("TStore", "M"): "TMI",
    ("TStore", "TMI"): "TMI",
}

#: Which directory request a miss (state I) issues per access kind.
MISS_REQUESTS: Dict[str, str] = {
    "Load": "GETS",
    "TLoad": "GETS",
    "Store": "GETX",
    "TStore": "TGETX",
}

# --------------------------------------------------------------------------- #
# Remote (forwarded-request) dispatch: the responder-side next state for
# every (request x current state) pair.  TMI lines never yield their
# speculative data; exclusive requests invalidate every other state;
# GETS demotes M/E to S and leaves S/TI untouched.

REMOTE_NEXT_STATE: Dict[Tuple[str, str], str] = {
    ("GETS", "I"): "I",
    ("GETS", "S"): "S",
    ("GETS", "E"): "S",
    ("GETS", "M"): "S",
    ("GETS", "TMI"): "TMI",
    ("GETS", "TI"): "TI",
    ("GETX", "I"): "I",
    ("GETX", "S"): "I",
    ("GETX", "E"): "I",
    ("GETX", "M"): "I",
    ("GETX", "TMI"): "TMI",
    ("GETX", "TI"): "I",
    ("TGETX", "I"): "I",
    ("TGETX", "S"): "I",
    ("TGETX", "E"): "I",
    ("TGETX", "M"): "I",
    ("TGETX", "TMI"): "TMI",
    ("TGETX", "TI"): "I",
}

# --------------------------------------------------------------------------- #
# Figure 1's signature response table.  The responder consults Wsig
# first (a Wsig hit always answers Threatened); an Rsig-only hit
# qualifies by request type.  ``None`` = no signature response.

SIGNATURE_CATEGORIES: Tuple[str, ...] = ("wsig", "rsig_only", "none")

RESPONSE_TABLE: Dict[Tuple[str, str], str] = {
    ("GETS", "wsig"): "Threatened",
    ("GETX", "wsig"): "Threatened",
    ("TGETX", "wsig"): "Threatened",
    ("GETS", "rsig_only"): "Shared",
    ("GETX", "rsig_only"): "Invalidated",
    ("TGETX", "rsig_only"): "Exposed-Read",
}

# --------------------------------------------------------------------------- #
# CST dual-update pairing (Figure 3 / Section 3.4).  Conflict responses
# set Conflict Summary Table bits on *both* sides of the exchange:
#
# * the responder records the requestor in one of its CSTs inside
#   ``classify_remote`` (keyed by which signature hit and the request
#   type);
# * the requestor records the responder in the mirrored CST when the
#   response arrives, inside ``note_request_conflicts`` (keyed by its
#   access kind and the response kind).
#
# A ``None`` CST means that path must NOT touch any CST: strong
# isolation on plain GETX aborts the responder outright instead of
# recording a conflict, and Shared/Invalidated responses carry no
# transactional conflict for the requestor.

#: (request, signature category) -> responder CST holding the requestor.
RESPONDER_CST: Dict[Tuple[str, str], str] = {
    ("GETS", "wsig"): "w_r",
    ("TGETX", "wsig"): "w_w",
    ("TGETX", "rsig_only"): "r_w",
}

#: (access kind, response kind) -> requestor CST holding the responder.
REQUESTER_CST: Dict[Tuple[str, str], str] = {
    ("TLoad", "Threatened"): "r_w",
    ("TStore", "Threatened"): "w_w",
    ("TStore", "Exposed-Read"): "w_r",
}

#: Mirror relation of the dual update: when the responder sets table X
#: for a conflict, the requestor's matching update sets DUAL_CST[X].
DUAL_CST: Dict[str, str] = {"w_r": "r_w", "r_w": "w_r", "w_w": "w_w"}

#: Responses that carry a transactional conflict.  Every conflict
#: response must either be recorded in a CST (transactional requestor)
#: or resolved through a strong-isolation abort (plain requestor) —
#: anything else is a *lost* conflict, the SIM-M405 invariant.
CONFLICT_RESPONSES: FrozenSet[str] = frozenset(
    {"Threatened", "Invalidated", "Exposed-Read"}
)

#: Strong isolation (Section 3.5): a *non-transactional* writer's GETX
#: aborts every transactional conflict responder outright instead of
#: recording a CST bit — both the Wsig (Threatened) and Rsig-only
#: (Invalidated) paths.  Keys mirror :data:`RESPONSE_TABLE`.
STRONG_ISOLATION_ABORTS: FrozenSet[Tuple[str, str]] = frozenset(
    {("GETX", "wsig"), ("GETX", "rsig_only")}
)

# --------------------------------------------------------------------------- #
# Directory grants: the state granted to the requestor.  GETS grants TI
# when any responder answered Threatened (a remote TMI exists), E when
# the line had no holders, S otherwise; exclusivity is always granted
# for GETX/TGETX (conflicts are resolved through CSTs, not by stalling).

GRANTS: Dict[str, FrozenSet[str]] = {
    "GETS": frozenset({"TI", "E", "S"}),
    "GETX": frozenset({"M"}),
    "TGETX": frozenset({"TMI"}),
}

#: The GETS grant conditions, most specific first.
GETS_GRANT_RULES: Tuple[Tuple[str, str], ...] = (
    ("threatened", "TI"),
    ("no_holders", "E"),
    ("otherwise", "S"),
)

#: (access kind, granted state) -> state actually installed in the
#: requestor's L1.  Identity for every pair not listed; the one
#: exception is a *plain* Load granted TI: the threatened value is
#: consumed uncached (strong isolation keeps non-transactional reads
#: out of the speculative window), so the line stays I.
GRANT_INSTALL: Dict[Tuple[str, str], str] = {
    ("Load", "TI"): "I",
}

# --------------------------------------------------------------------------- #
# Figure 3: flash commit / abort transforms (CAS-Commit outcome sweeps
# every line in a single cycle; T bits clear either way).

COMMIT_TRANSFORM: Dict[str, str] = {
    "I": "I",
    "S": "S",
    "E": "E",
    "M": "M",
    "TMI": "M",  # speculative writes become the committed version
    "TI": "I",  # pre-speculative copy may now be stale
}

ABORT_TRANSFORM: Dict[str, str] = {
    "I": "I",
    "S": "S",
    "E": "E",
    "M": "M",
    "TMI": "I",  # speculation discarded
    "TI": "I",
}

# --------------------------------------------------------------------------- #
# Model-checker annotations: where exploration starts, what counts as
# quiescent, and the invariant catalog the SIM-M4xx rules verify
# (``repro.analysis.modelcheck`` / docs/ANALYSIS.md).

#: Every cache line starts invalid everywhere.
INITIAL_STATE: str = "I"

#: Line states legal in a quiescent (no in-flight request, no
#: transactional footprint) configuration — exactly the non-T-bit
#: states: TMI/TI only exist inside a transaction's lifetime.
FINAL_LINE_STATES: FrozenSet[str] = frozenset({"I", "S", "E", "M"})

#: The declared invariant catalog.  Each entry is one SIM-M rule the
#: exhaustive model checker verifies over every reachable interleaving
#: of the tables above (one line, N caches, a directory).
INVARIANTS: Dict[str, str] = {
    "SIM-M401": (
        "single-writer/multiple-readers: at most one cache holds the "
        "line M/E, and an M/E holder excludes remote S copies (TMI/TI "
        "are the sanctioned transactional exceptions)"
    ),
    "SIM-M402": (
        "encoding consistency: every state a transition produces is "
        "one of the six ENCODINGS states, the STATE_PREDICATES match "
        "the (M,V,T) bits, and every grant stays inside GRANTS"
    ),
    "SIM-M403": (
        "CST dual-update symmetry: when a conflict response sets a "
        "responder CST bit for a transactional requestor, the "
        "requestor simultaneously sets the intrinsically mirrored CST "
        "(w_r<->r_w, w_w<->w_w) naming the responder"
    ),
    "SIM-M404": (
        "responder/requester CST agreement: RESPONDER_CST, "
        "REQUESTER_CST and DUAL_CST name the same table pair for every "
        "conflict response a transactional requestor can receive"
    ),
    "SIM-M405": (
        "no lost conflict responses: every Threatened / Exposed-Read / "
        "Invalidated response is recorded in a CST or resolved by a "
        "strong-isolation abort — never silently dropped"
    ),
    "SIM-M406": (
        "TSW legality: a TMI line exists exactly while its owner's "
        "write signature is live, and a TI line implies a live read "
        "signature — T-bit states never survive commit/abort"
    ),
    "SIM-M407": (
        "quiescence/deadlock-freedom: every non-final reachable state "
        "has an enabled transition; no in-flight request can hit a "
        "missing dispatch cell and wedge"
    ),
}


def _check_internal_consistency() -> None:
    """Structural sanity of the tables themselves (import-time cheap)."""
    universe = set(STATES)
    for (access, state), outcome in LOCAL_DISPATCH.items():
        assert access in ACCESSES and state in universe, (access, state)
        assert outcome in ("local", "request", "error"), outcome
    assert set(LOCAL_DISPATCH) == {(a, s) for a in ACCESSES for s in STATES}
    assert set(REMOTE_NEXT_STATE) == {(r, s) for r in REQUESTS for s in STATES}
    for (request, category), response in RESPONSE_TABLE.items():
        assert request in REQUESTS and category in SIGNATURE_CATEGORIES
        assert response in RESPONSES
    # Dual-update symmetry: every responder-side CST update has exactly
    # one requestor-side mirror reachable through the access kind that
    # produced the request, and the tables agree through DUAL_CST.
    access_of_request = {"GETS": "TLoad", "TGETX": "TStore"}
    for (request, category), cst in RESPONDER_CST.items():
        access = access_of_request[request]
        response = RESPONSE_TABLE[(request, category)]
        mirrored = REQUESTER_CST.get((access, response))
        assert mirrored == DUAL_CST[cst], (request, category, cst, mirrored)
    for state, target in COMMIT_TRANSFORM.items():
        assert state in universe and target in universe
    for state, target in ABORT_TRANSFORM.items():
        assert state in universe and target in universe
    # Local next states: defined for exactly the "local" dispatch cells,
    # and only the two Figure 1 arcs change state.
    local_cells = {
        cell for cell, outcome in LOCAL_DISPATCH.items() if outcome == "local"
    }
    assert set(LOCAL_NEXT_STATE) == local_cells
    for (access, state), target in LOCAL_NEXT_STATE.items():
        assert target in universe, (access, state, target)
        if target != state:
            assert (access, state) in (("Store", "E"), ("TStore", "M"))
    # Grant installs name real grants and real states.
    for (access, granted), installed in GRANT_INSTALL.items():
        assert access in ACCESSES and installed in universe
        assert any(granted in states for states in GRANTS.values())
    # Strong isolation covers signature-qualified cells and never
    # overlaps a CST-recording path on the responder side.
    for pair in sorted(STRONG_ISOLATION_ABORTS):
        assert pair in RESPONSE_TABLE, pair
        assert pair not in RESPONDER_CST, pair
    assert CONFLICT_RESPONSES <= set(RESPONSES)
    # No lost conflicts, statically: every conflict response is
    # CST-recorded on at least one side or strong-isolation resolved.
    for (request, category), response in RESPONSE_TABLE.items():
        if response not in CONFLICT_RESPONSES:
            continue
        recorded = (request, category) in RESPONDER_CST
        resolved = (request, category) in STRONG_ISOLATION_ABORTS
        assert recorded or resolved, (request, category, response)
    assert INITIAL_STATE in universe
    assert FINAL_LINE_STATES == universe - STATE_PREDICATES["is_transactional"]
    assert sorted(INVARIANTS) == [f"SIM-M40{i}" for i in range(1, 8)]


_check_internal_consistency()
