"""The shared-L2 directory with multiple-owner support.

An adaptation of the SGI Origin 2000 directory for a CMP: the directory
lives at the L2 tags, tracks sharers as a bit vector, and — the FlexTM
extension — tracks *multiple owners* for TMI lines (processors that
issued TGETX) using the same bit-vector mechanism, pinging all of them
on other requests.

Eviction stickiness: L1s silently evict E/S/TI lines, and an M eviction
updates the L2 copy without changing directory state, so the directory's
lists are conservative over-approximations.  Lists are pruned lazily
when an L1's response indicates the line was dropped *and* is not held
sticky by the summary signatures (Cores Summary rule, Section 5).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.coherence.messages import RequestType, ResponseKind
from repro.coherence.states import LineState
from repro.errors import ProtocolError
from repro.memory.cache import CacheArray
from repro.obs.tracer import NULL_TRACER
from repro.params import SystemParams
from repro.sim.stats import StatsRegistry


@dataclasses.dataclass
class DirectoryEntry:
    """Per-line directory state: two bit vectors over processors."""

    sharers: int = 0
    owners: int = 0

    def holders(self) -> int:
        return self.sharers | self.owners

    def add_sharer(self, proc: int) -> None:
        self.sharers |= 1 << proc

    def add_owner(self, proc: int) -> None:
        self.owners |= 1 << proc
        self.sharers &= ~(1 << proc)

    def drop(self, proc: int) -> None:
        mask = ~(1 << proc)
        self.sharers &= mask
        self.owners &= mask

    def demote_owner_to_sharer(self, proc: int) -> None:
        self.owners &= ~(1 << proc)
        self.sharers |= 1 << proc

    def is_owner(self, proc: int) -> bool:
        return bool((self.owners >> proc) & 1)

    def is_sharer(self, proc: int) -> bool:
        return bool((self.sharers >> proc) & 1)

    @property
    def empty(self) -> bool:
        return self.sharers == 0 and self.owners == 0


def _bits(mask: int) -> List[int]:
    """Indices of set bits, ascending."""
    out = []
    index = 0
    while mask:
        if mask & 1:
            out.append(index)
        mask >>= 1
        index += 1
    return out


@dataclasses.dataclass
class DirectoryOutcome:
    """Result of one directory request, consumed by the requesting L1."""

    cycles: int
    responses: List[Tuple[int, ResponseKind]]
    grant: LineState
    nacked: bool = False

    @property
    def conflicts(self) -> List[Tuple[int, ResponseKind]]:
        return [(proc, kind) for proc, kind in self.responses if kind.signals_conflict]


class Directory:
    """Shared L2 + directory controller.

    The directory delegates per-L1 snooping through ``forward``, a
    callable installed by the machine with signature
    ``forward(responder, requestor, req_type, line) -> (ResponseKind | None, retained)``.
    ``None`` means the responder has no stake in the line.
    """

    def __init__(self, params: SystemParams, stats: Optional[StatsRegistry] = None):
        self.params = params
        self.stats = stats or StatsRegistry()
        self._entries: Dict[int, DirectoryEntry] = {}
        # L2 tag array, used only for latency (state correctness is kept
        # in the persistent entry map; see DESIGN.md §4).
        self._l2_tags = CacheArray(params.l2.num_sets, params.l2.associativity)
        self.forward: Optional[Callable] = None
        # Context-switch hooks (installed by the virtualization layer).
        self.summary_conflict_check: Optional[Callable] = None
        # NACK filter: lines in a committed overflow table mid-copy-back.
        self.nack_check: Optional[Callable] = None
        # Observability hooks (installed by FlexTMMachine.set_tracer):
        # the tracer itself and a processor-clock accessor for stamps.
        self.tracer = NULL_TRACER
        self.clock_of: Optional[Callable] = None
        # Fault injection (installed by FlexTMMachine.set_chaos).
        self.chaos = None
        # Metrics hub (installed by FlexTMMachine.set_metrics).
        self.metrics = None

    def entry(self, line_address: int) -> DirectoryEntry:
        if line_address not in self._entries:
            self._entries[line_address] = DirectoryEntry()
        return self._entries[line_address]

    def peek_entry(self, line_address: int) -> Optional[DirectoryEntry]:
        return self._entries.get(line_address)

    def warm_line(self, line_address: int) -> None:
        """Untimed L2 fill (workload warm-up phase; no cycles charged)."""
        if self._l2_tags.lookup(line_address) is None:
            victim = self._l2_tags.choose_victim(line_address)
            if victim is not None:
                self._l2_tags.remove(victim.line_address)
            self._l2_tags.install(line_address, LineState.E)

    def _l2_latency(self, line_address: int) -> int:
        """L2 hit latency, plus memory latency on a tag miss."""
        cycles = self.params.l2_hit_cycles
        if self._l2_tags.lookup(line_address) is None:
            cycles += self.params.memory_cycles
            victim = self._l2_tags.choose_victim(line_address)
            if victim is not None:
                self._l2_tags.remove(victim.line_address)
            self._l2_tags.install(line_address, LineState.E)
            self.stats.counter("l2.misses").increment()
        else:
            self.stats.counter("l2.hits").increment()
        return cycles

    def request(self, requestor: int, req_type: RequestType, line_address: int) -> DirectoryOutcome:
        """Process one L1 miss/upgrade request end to end.

        Forwards to every listed holder (other than the requestor),
        gathers signature-qualified responses, updates the sharer/owner
        vectors, and returns the state to grant.
        """
        if self.forward is None:
            raise ProtocolError("directory has no forward hook installed")
        self.stats.counter(f"dir.requests.{req_type.value}").increment()
        cycles = self._l2_latency(line_address)
        if self.chaos is not None and self.chaos.enabled:
            # Dropped/delayed request messages: the requestor retries
            # after a timeout, so faults surface as extra latency here
            # (never as a spurious NACK — plain loads/stores don't
            # inspect ``nacked``).
            cycles += self.chaos.coherence_extra_cycles(line_address)

        if self.nack_check is not None and self.nack_check(line_address, requestor):
            self.stats.counter("dir.nacks").increment()
            if self.tracer.enabled:
                self._trace_request(requestor, req_type, line_address, "NACK", [])
            return DirectoryOutcome(cycles=cycles, responses=[], grant=LineState.I, nacked=True)

        entry = self.entry(line_address)
        is_write = req_type.is_exclusive
        if self.summary_conflict_check is not None:
            # Summary signatures are consulted on every L1 miss; the
            # callee traps to the software handler when they hit.
            cycles += self.summary_conflict_check(requestor, line_address, is_write)

        responses: List[Tuple[int, ResponseKind]] = []
        targets = _bits(entry.holders() & ~(1 << requestor))
        if targets:
            cycles += self.params.remote_l1_cycles
        for responder in targets:
            kind, retained = self.forward(responder, requestor, req_type, line_address)
            if kind is not None:
                responses.append((responder, kind))
            if not retained and not self._sticky(line_address, responder):
                entry.drop(responder)
            elif kind is not None and not retained:
                # Dropped but sticky: stays listed so future requests
                # keep reaching this processor's signatures.
                self.stats.counter("dir.sticky_retained").increment()
            elif req_type is RequestType.GETS and retained and entry.is_owner(responder):
                threatened = kind is ResponseKind.THREATENED
                if not threatened:
                    # M/E owner flushed and dropped to S; TMI owners
                    # (threatened) keep ownership.
                    entry.demote_owner_to_sharer(responder)

        if (
            targets
            and self.chaos is not None
            and self.chaos.enabled
            and self.chaos.duplicate_response(line_address)
        ):
            # Duplicated forwarded message: the first listed responder
            # snoops the same request twice.  The protocol must treat
            # repeated forwards idempotently; the duplicate response is
            # appended so CST updates see it again too.
            responder = targets[0]
            kind, _ = self.forward(responder, requestor, req_type, line_address)
            if kind is not None:
                responses.append((responder, kind))

        grant = self._grant_and_record(requestor, req_type, line_address, entry, responses)
        if self.tracer.enabled:
            self._trace_request(requestor, req_type, line_address, grant.name, responses)
        if self.metrics is not None:
            now = self.clock_of(requestor) if self.clock_of is not None else 0
            self.metrics.on_coherence(requestor, now)
        return DirectoryOutcome(cycles=cycles, responses=responses, grant=grant)

    def _trace_request(
        self,
        requestor: int,
        req_type: RequestType,
        line_address: int,
        grant: str,
        responses: List[Tuple[int, ResponseKind]],
    ) -> None:
        """Emit one ``coh_request`` plus a ``coh_response`` per response."""
        if not self.tracer.enabled:
            return
        now = self.clock_of(requestor) if self.clock_of is not None else 0
        self.tracer.coherence(
            requestor, now, "coh_request", line_address,
            detail=f"{req_type.value}->{grant}",
        )
        for responder, kind in responses:
            self.tracer.coherence(
                requestor, now, "coh_response", line_address,
                responder=responder, detail=kind.value,
            )

    def _sticky(self, line_address: int, processor: int) -> bool:
        """Cores-Summary stickiness for descheduled transactions."""
        # Installed by the virtualization layer; absent means no
        # descheduled transactions exist.
        checker = getattr(self, "sticky_check", None)
        return bool(checker and checker(line_address, processor))

    def _grant_and_record(
        self,
        requestor: int,
        req_type: RequestType,
        line_address: int,
        entry: DirectoryEntry,
        responses: List[Tuple[int, ResponseKind]],
    ) -> LineState:
        threatened = any(kind is ResponseKind.THREATENED for _, kind in responses)
        if req_type is RequestType.GETS:
            if threatened:
                # TLoads install in TI (the L1 decides; plain Loads stay
                # uncached).  Either way the requestor is recorded as a
                # sharer so future TMI commits can invalidate its copy.
                entry.add_sharer(requestor)
                return LineState.TI
            if entry.empty:
                entry.add_owner(requestor)  # E grants exclusivity
                return LineState.E
            entry.add_sharer(requestor)
            return LineState.S
        if req_type is RequestType.GETX:
            # Remote copies were invalidated by the forward loop, which
            # also pruned holders with no remaining stake.  Holders that
            # answered with a signature response, hold TMI, or are
            # sticky (descheduled transactions, Cores Summary) stay
            # listed so they keep receiving coherence requests.
            entry.add_owner(requestor)
            return LineState.M
        if req_type is RequestType.TGETX:
            entry.add_owner(requestor)  # joins the (possibly plural) owners
            return LineState.TMI
        raise ProtocolError(f"unknown request type {req_type}")

    # -- write-back / eviction notifications ----------------------------------

    def writeback(self, processor: int, line_address: int) -> int:
        """M-line eviction: update the L2 copy, keep directory state."""
        self.stats.counter("dir.writebacks").increment()
        return self._l2_latency(line_address)

    def drop_processor(self, processor: int, line_address: int) -> None:
        """Remove a processor from a line's lists (explicit, e.g. tests)."""
        entry = self._entries.get(line_address)
        if entry is not None:
            entry.drop(processor)

    def owners_of(self, line_address: int) -> List[int]:
        entry = self._entries.get(line_address)
        return _bits(entry.owners) if entry else []

    def sharers_of(self, line_address: int) -> List[int]:
        entry = self._entries.get(line_address)
        return _bits(entry.sharers) if entry else []
