"""Memory-hierarchy substrate: address math, caches, victim buffer."""

from repro.memory.address import AddressMap
from repro.memory.cache import CacheArray, CacheLine
from repro.memory.victim import VictimBuffer
from repro.memory.main_memory import MainMemory

__all__ = [
    "AddressMap",
    "CacheArray",
    "CacheLine",
    "VictimBuffer",
    "MainMemory",
]
