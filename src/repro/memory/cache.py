"""A set-associative cache array with LRU replacement.

The array stores :class:`CacheLine` records carrying the coherence state
bits of Figure 2: the MESI state is encoded by the protocol layer; the
``T`` (transactional/TMI or TI) and ``A`` (alert-on-update mark) bits
live here so the flash-clear commit/abort operations can sweep them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, List, Optional

from repro.coherence.states import LineState
from repro.errors import ProtocolError


@dataclasses.dataclass
class CacheLine:
    """One L1 line: tag + coherence and FlexTM state bits."""

    line_address: int
    state: LineState = LineState.I
    # FlexTM bits (Figure 2): T marks TMI/TI encodings, A marks AOU lines.
    t_bit: bool = False
    a_bit: bool = False
    # SMT owner id for TMI lines (unused on single-threaded cores).
    owner_context: int = 0
    # Monotonic timestamp for LRU.
    last_use: int = 0

    @property
    def is_speculative(self) -> bool:
        """True for TMI (speculatively written) lines."""
        return self.state is LineState.TMI

    def __repr__(self) -> str:
        flags = ("T" if self.t_bit else "") + ("A" if self.a_bit else "")
        return f"CacheLine(0x{self.line_address:x}, {self.state.name}{',' + flags if flags else ''})"


class CacheArray:
    """Tag/state array for a private cache.

    Data values are not stored here — the simulator is state-accurate,
    not value-accurate, at the cache level (values live in the
    functional memory image held by the machine).
    """

    def __init__(self, num_sets: int, associativity: int):
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a positive power of two")
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        self.num_sets = num_sets
        self.associativity = associativity
        self._sets: List[Dict[int, CacheLine]] = [{} for _ in range(num_sets)]
        self._use_tick = 0

    def _set_for(self, line_address: int) -> Dict[int, CacheLine]:
        return self._sets[line_address & (self.num_sets - 1)]

    def set_index(self, line_address: int) -> int:
        return line_address & (self.num_sets - 1)

    def lookup(self, line_address: int) -> Optional[CacheLine]:
        """Find a valid line (state != I), updating LRU on hit."""
        line = self._set_for(line_address).get(line_address)
        if line is None or line.state is LineState.I:
            return None
        self._use_tick += 1
        line.last_use = self._use_tick
        return line

    def peek(self, line_address: int) -> Optional[CacheLine]:
        """Find a line without touching LRU state (snoops, asserts)."""
        line = self._set_for(line_address).get(line_address)
        if line is None or line.state is LineState.I:
            return None
        return line

    def choose_victim(self, line_address: int, pinned: Optional[Callable[[CacheLine], bool]] = None) -> Optional[CacheLine]:
        """LRU victim in ``line_address``'s set, or None if there is room.

        ``pinned`` lines are skipped (used to keep one way free for
        non-TMI lines during OT remapping, Section 4.1); if every way is
        pinned the least-recently-used pinned line is returned anyway so
        the caller can take its slow path.
        """
        cache_set = self._set_for(line_address)
        valid = [line for line in cache_set.values() if line.state is not LineState.I]
        if len(valid) < self.associativity:
            return None
        candidates = valid
        if pinned is not None:
            unpinned = [line for line in valid if not pinned(line)]
            if unpinned:
                candidates = unpinned
        return min(candidates, key=lambda line: line.last_use)

    def install(self, line_address: int, state: LineState) -> CacheLine:
        """Place a line; the set must have room (caller evicts first)."""
        cache_set = self._set_for(line_address)
        existing = cache_set.get(line_address)
        if existing is not None and existing.state is not LineState.I:
            raise ProtocolError(f"line 0x{line_address:x} already present as {existing.state.name}")
        valid = sum(1 for line in cache_set.values() if line.state is not LineState.I)
        if valid >= self.associativity:
            raise ProtocolError(f"set for 0x{line_address:x} is full; evict first")
        self._use_tick += 1
        line = CacheLine(line_address=line_address, state=state, last_use=self._use_tick)
        cache_set[line_address] = line
        return line

    def remove(self, line_address: int) -> None:
        """Drop a line entirely (post-eviction cleanup)."""
        self._set_for(line_address).pop(line_address, None)

    def valid_lines(self) -> Iterator[CacheLine]:
        """All lines whose state is not I."""
        for cache_set in self._sets:
            for line in cache_set.values():
                if line.state is not LineState.I:
                    yield line

    def occupancy(self) -> int:
        return sum(1 for _ in self.valid_lines())

    def set_occupancy(self, line_address: int) -> int:
        cache_set = self._set_for(line_address)
        return sum(1 for line in cache_set.values() if line.state is not LineState.I)

    def flash_transform(self, transform: Callable[[CacheLine], None]) -> int:
        """Apply a state transform to every valid line; returns lines touched.

        Models the flash commit/abort hardware: a single-cycle sweep
        conditioned on the T bits.
        """
        touched = 0
        for cache_set in self._sets:
            dead = []
            for line in cache_set.values():
                if line.state is LineState.I:
                    dead.append(line.line_address)
                    continue
                transform(line)
                touched += 1
                if line.state is LineState.I:
                    dead.append(line.line_address)
            for address in dead:
                cache_set.pop(address, None)
        return touched
