"""The 32-entry L1 victim buffer (Table 3a).

Holds recently evicted lines; a hit refills the L1 at near-L1 latency
instead of paying the L2 round trip.  The overflow study (Section 7.3)
also uses an *unbounded* victim buffer to approximate an ideal machine
in which TMI lines never overflow — ``capacity=None`` models that.
"""

from __future__ import annotations

import collections
from typing import Optional

from repro.coherence.states import LineState


class VictimBuffer:
    """Small fully-associative FIFO of evicted lines."""

    def __init__(self, capacity: Optional[int] = 32):
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be >= 0 or None for unbounded")
        self.capacity = capacity
        self._entries: "collections.OrderedDict[int, LineState]" = collections.OrderedDict()

    def insert(self, line_address: int, state: LineState) -> None:
        """Add an evicted line, displacing the oldest entry when full."""
        if state is LineState.I:
            return
        if line_address in self._entries:
            self._entries.move_to_end(line_address)
            self._entries[line_address] = state
            return
        if self.capacity == 0:
            return
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[line_address] = state

    def extract(self, line_address: int) -> Optional[LineState]:
        """Remove and return a line's state on a hit, else None."""
        return self._entries.pop(line_address, None)

    def contains(self, line_address: int) -> bool:
        return line_address in self._entries

    def invalidate(self, line_address: int) -> None:
        self._entries.pop(line_address, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
