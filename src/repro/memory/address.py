"""Address arithmetic shared across the hierarchy.

Simulated addresses are plain non-negative integers (byte addresses).
All coherence and signature machinery operates on *line addresses*
(byte address with the offset bits stripped).
"""

from __future__ import annotations


class AddressMap:
    """Byte-address <-> line-address conversion for one line size."""

    __slots__ = ("line_bytes", "offset_bits")

    def __init__(self, line_bytes: int):
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        self.line_bytes = line_bytes
        self.offset_bits = line_bytes.bit_length() - 1

    def line_of(self, byte_address: int) -> int:
        """Line address containing a byte address."""
        if byte_address < 0:
            raise ValueError("addresses are non-negative")
        return byte_address >> self.offset_bits

    def base_of(self, line_address: int) -> int:
        """First byte address of a line."""
        return line_address << self.offset_bits

    def offset_of(self, byte_address: int) -> int:
        """Offset of a byte within its line."""
        return byte_address & (self.line_bytes - 1)

    def lines_spanning(self, byte_address: int, length: int) -> range:
        """Line addresses touched by ``length`` bytes starting at ``byte_address``."""
        if length <= 0:
            raise ValueError("length must be positive")
        first = self.line_of(byte_address)
        last = self.line_of(byte_address + length - 1)
        return range(first, last + 1)

    def set_index(self, line_address: int, num_sets: int) -> int:
        """Set selection: low-order line-address bits."""
        return line_address & (num_sets - 1)
