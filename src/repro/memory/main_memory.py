"""Functional memory image.

The protocol layers are state-accurate; actual data values live here so
that workloads (and the versioning tests that check redo-log semantics)
can verify that committed values become visible and aborted values do
not.  Values are per-*word* (we use the byte address as the word key);
a line's worth of words moves on line fills and write-backs, but since
the image is flat we only need per-word reads/writes plus the notion of
a speculative overlay maintained by the versioning layer.
"""

from __future__ import annotations

from typing import Dict, Iterable


class MainMemory:
    """Flat word-addressable backing store with a default value of 0."""

    def __init__(self):
        self._words: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read(self, address: int) -> int:
        self.reads += 1
        return self._words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        self.writes += 1
        self._words[address] = value

    def bulk_write(self, updates: Iterable[tuple]) -> None:
        """Apply (address, value) pairs — commit-time redo-log drain."""
        for address, value in updates:
            self.write(address, value)

    def snapshot(self) -> Dict[int, int]:
        """Copy of all non-default words (test/debug aid)."""
        return dict(self._words)

    def __len__(self) -> int:
        return len(self._words)
