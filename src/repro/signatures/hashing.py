"""Hash functions for Bloom-filter signatures.

Hardware signature proposals (Bulk, LogTM-SE, and the Sanchez et al.
study the paper cites) use families of cheap XOR-based hashes.  We
implement two:

* :class:`BitSelectHash` — selects a fixed slice of address bits; the
  cheapest option, and the one most prone to aliasing.
* :class:`H3Hash` — the classic H3 universal family: each output bit is
  the XOR of a random subset of input bits, realized as an AND with a
  per-bit mask followed by a parity reduction.

A :class:`HashFamily` bundles ``k`` independent hashes for a ``k``-banked
signature.
"""

from __future__ import annotations

import functools
from typing import Sequence, Tuple

from repro.sim.rng import DeterministicRng

#: Number of physical-address bits the hash hardware consumes.
ADDRESS_BITS = 40

#: Per-address index-cache capacity; the cache is flash-cleared when it
#: fills, so memory stays bounded on adversarial address streams.
INDEX_CACHE_ENTRIES = 1 << 16


def _parity(value: int) -> int:
    """Parity (XOR reduction) of an integer's bits."""
    value ^= value >> 32
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


class BitSelectHash:
    """Hash that extracts ``index_bits`` address bits starting at ``shift``."""

    def __init__(self, index_bits: int, shift: int = 0):
        if index_bits < 1:
            raise ValueError("index_bits must be >= 1")
        if shift < 0:
            raise ValueError("shift must be >= 0")
        self._mask = (1 << index_bits) - 1
        self._shift = shift
        self.index_bits = index_bits

    def __call__(self, address: int) -> int:
        return (address >> self._shift) & self._mask


class H3Hash:
    """One member of the H3 universal hash family.

    ``masks[i]`` selects the input bits XORed together to produce output
    bit ``i``.
    """

    def __init__(self, masks: Sequence[int]):
        if not masks:
            raise ValueError("H3Hash needs at least one mask")
        self._masks = tuple(masks)
        self.index_bits = len(masks)

    def __call__(self, address: int) -> int:
        result = 0
        for bit, mask in enumerate(self._masks):
            if _parity(address & mask):
                result |= 1 << bit
        return result

    @classmethod
    def random(cls, index_bits: int, rng: DeterministicRng) -> "H3Hash":
        """Draw a random H3 member over :data:`ADDRESS_BITS` input bits."""
        masks = [rng.randint(1, (1 << ADDRESS_BITS) - 1) for _ in range(index_bits)]
        return cls(masks)


class HashFamily:
    """``k`` independent hashes feeding the banks of one signature.

    Signature ``insert``/``member`` probes hit :meth:`indices` once per
    signature operation, and the H3 parity reduction dominates their
    cost.  The hashes are pure functions of the address, so the family
    memoizes the per-address index tuple — a transaction re-touching a
    hot line (or the directory re-probing it for every incoming
    request) pays for the hash computation once.  ``cache_entries=0``
    disables the cache (the microbenchmark's baseline).
    """

    def __init__(self, hashes: Sequence, cache_entries: int = INDEX_CACHE_ENTRIES):
        if not hashes:
            raise ValueError("a hash family needs at least one hash")
        if cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        self._hashes = tuple(hashes)
        self._cache_entries = cache_entries
        self._cache: dict = {}

    def __len__(self) -> int:
        return len(self._hashes)

    def indices(self, address: int) -> Tuple[int, ...]:
        """Bank-local bit indices selected by each hash for ``address``."""
        indices = self._cache.get(address)
        if indices is None:
            indices = tuple(hash_fn(address) for hash_fn in self._hashes)
            if self._cache_entries:
                if len(self._cache) >= self._cache_entries:
                    self._cache.clear()
                self._cache[address] = indices
        return indices

    @property
    def index_bits(self) -> int:
        return self._hashes[0].index_bits


def make_hash_family(
    signature_bits: int,
    num_hashes: int,
    seed: int = 0xF1E7,
    kind: str = "h3",
) -> HashFamily:
    """Build (or reuse) the hash family for a banked signature.

    The signature is split into ``num_hashes`` equal banks, so each hash
    produces ``log2(signature_bits / num_hashes)`` index bits — the
    4-banked 2048-bit configuration of the paper yields 9 bits per bank.

    Construction is deterministic in its arguments, so same-shaped
    requests share one memoized family: every Rsig/Wsig/Osig on a
    machine (and across machines in one process) then shares a single
    per-address index cache instead of each re-deriving the same
    hashes.
    """
    return _shared_family(signature_bits, num_hashes, seed, kind)


@functools.lru_cache(maxsize=None)
def _shared_family(
    signature_bits: int, num_hashes: int, seed: int, kind: str
) -> HashFamily:
    if signature_bits % num_hashes != 0:
        raise ValueError("signature_bits must divide evenly into banks")
    bank_bits = signature_bits // num_hashes
    index_bits = bank_bits.bit_length() - 1
    if (1 << index_bits) != bank_bits:
        raise ValueError("bank size must be a power of two")
    if kind == "h3":
        rng = DeterministicRng(seed)
        return HashFamily([H3Hash.random(index_bits, rng) for _ in range(num_hashes)])
    if kind == "bit-select":
        return HashFamily(
            [BitSelectHash(index_bits, shift=i * index_bits) for i in range(num_hashes)]
        )
    raise ValueError(f"unknown hash kind: {kind!r}")
